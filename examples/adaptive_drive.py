"""Adaptive drive: the full system over a sunset and an urban evening.

Simulates the paper's end-to-end story on the Zynq SoC model: the ambient
light sensor drives the hysteresis controller; day <-> dusk swaps the
BRAM-resident SVM model instantly; dusk <-> dark partially reconfigures the
vehicle partition through the paper's PR controller (~20 ms, one dropped
frame at 50 fps) while pedestrian detection never misses a frame.

With ``--fault-plan`` the same drive runs under a canned fault scenario
(see FAULTS.md): DMA aborts, corrupt bitstreams, PR watchdog timeouts,
sensor blackouts, detector exceptions — while the pedestrian partition
still processes every frame.

Run:  python examples/adaptive_drive.py [--trace sunset|tunnel|urban]
                                        [--fault-plan worst_case|...]
"""

from __future__ import annotations

import argparse

from repro.adaptive import sunset_trace, tunnel_trace, urban_evening_trace
from repro.core import AdaptiveDetectionSystem
from repro.faults import SCENARIOS, get_scenario


TRACES = {
    "sunset": lambda: sunset_trace(duration_s=120.0),
    "tunnel": lambda: tunnel_trace(duration_s=60.0),
    "urban": lambda: urban_evening_trace(duration_s=120.0),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", choices=sorted(TRACES), default="sunset")
    parser.add_argument(
        "--fault-plan",
        choices=sorted(SCENARIOS) + ["none"],
        default="none",
        help="canned fault scenario to inject during the drive",
    )
    args = parser.parse_args()

    trace = TRACES[args.trace]()
    plan = None
    if args.fault_plan != "none":
        plan = get_scenario(args.fault_plan, duration_s=trace.duration)
    system = AdaptiveDetectionSystem(fault_plan=plan)
    print(f"=== Driving the '{args.trace}' illuminance trace "
          f"({trace.duration:.0f} s at 50 fps"
          + (f", fault plan '{args.fault_plan}'" if plan else "")
          + ") ===\n")
    report = system.run_drive(trace)

    print("timeline:")
    events: list[tuple[float, str]] = []
    for change in report.condition_changes:
        events.append(
            (change.time_s,
             f"condition {change.previous.value} -> {change.new.value} "
             f"({change.lux:.1f} lx)")
        )
    for t, model in report.model_swaps:
        events.append((t, f"model swap -> {model} SVM (BRAM select, no downtime)"))
    for rec in report.reconfigurations:
        events.append(
            (rec.start_s,
             f"partial reconfiguration -> {rec.bitstream} "
             f"({rec.duration_s * 1e3:.1f} ms @ {rec.throughput_mb_s:.0f} MB/s)")
        )
    for t, message in sorted(events):
        print(f"  t={t:7.2f}s  {message}")

    summary = report.summary()
    print("\nframe accounting:")
    print(f"  frames issued:              {summary['frames']}")
    print(f"  vehicle frames dropped:     {summary['vehicle_dropped']} "
          f"({summary['drops_per_reconfiguration']:.1f} per reconfiguration)")
    print(f"  pedestrian frames dropped:  {summary['pedestrian_dropped']} "
          f"(the static partition never stops)")

    if plan is not None:
        print("\nfault audit:")
        print(f"  fault firings:              {plan.firings()}")
        print(f"  frames with fault events:   {summary['frames_with_faults']}")
        print(f"  frames degraded (fallback): {summary['frames_degraded']}")
        print(f"  failed reconfigurations:    {summary['failed_reconfigurations']}")
        for event in report.degradations:
            print(f"    t={event.time_s:7.2f}s  {event.label()}")
        ped_ok = all(f.pedestrian_accepted for f in report.frames)
        print(f"  pedestrian partition:       "
              f"{'processed 100% of frames' if ped_ok else 'DROPPED FRAMES (BUG)'}")

    # Condition occupancy.
    occupancy: dict[str, int] = {}
    for frame in report.frames:
        occupancy[frame.condition.value] = occupancy.get(frame.condition.value, 0) + 1
    print("\ncondition occupancy:")
    for name, count in sorted(occupancy.items()):
        bar = "#" * int(40 * count / summary["frames"])
        print(f"  {name:5s} {count:6d} frames {bar}")

    if args.trace == "tunnel":
        print("\nNote: the tunnel is lit, so it is classified as dusk — handled "
              "by a model swap; no partial reconfiguration was needed "
              "(Section IV-B of the paper).")


if __name__ == "__main__":
    main()
