"""Partial-reconfiguration demo: the paper's PR controller vs the field.

Drives an 8 MB partial bitstream through the four configuration paths of
Section IV-A — PCAP, AXI HWICAP, ZyCAP, and the paper's PL-DDR controller —
prints the Fig. 7 event trace for the paper controller, and demonstrates
the HP-port-contention argument by timing a pedestrian frame issued during
a ZyCAP-style vs a paper-style reconfiguration.

Run:  python examples/reconfiguration_demo.py
"""

from __future__ import annotations

from repro.zynq import (
    ALL_CONTROLLERS,
    THEORETICAL_MAX_MB_S,
    PaperPrController,
    ZycapController,
    ZynqSoC,
)

PAPER_NUMBERS = {"pcap": 145.0, "hwicap": 19.0, "zycap": 382.0, "paper-pr": 390.0}


def throughput_comparison() -> None:
    print("=== Section IV-A: configuration throughput, 8 MB partial bitstream ===")
    print(f"{'controller':<10} {'path':<42} {'MB/s':>7} {'paper':>7} {'ms':>8}")
    paths = {
        "pcap": "PS DDR -> central interconnect -> PCAP",
        "hwicap": "PS GP port -> AXI-Lite -> HWICAP",
        "zycap": "PS DDR -> HP port -> PL DMA -> ICAP",
        "paper-pr": "PL DDR -> PL DMA -> ICAP manager -> ICAPE2",
    }
    for cls in ALL_CONTROLLERS:
        soc = ZynqSoC(controller_cls=cls)
        report = soc.reconfigure_vehicle("dark")
        soc.sim.run()
        print(f"{cls.name:<10} {paths[cls.name]:<42} "
              f"{report.throughput_mb_s:7.1f} {PAPER_NUMBERS[cls.name]:7.1f} "
              f"{report.duration_s * 1e3:8.2f}")
    print(f"{'(ceiling)':<10} {'ICAP/PCAP port, 32 bit @ 100 MHz':<42} "
          f"{THEORETICAL_MAX_MB_S:7.1f} {400.0:7.1f} {'-':>8}")


def fig7_trace() -> None:
    print("\n=== Fig. 7: the paper PR controller, event by event ===")
    soc = ZynqSoC(controller_cls=PaperPrController)
    soc.reconfigure_vehicle("dark")
    soc.sim.run()
    for record in soc.trace.records:
        print(f"  t={record.time * 1e3:8.3f} ms  [{record.source}] {record.message}")
    print(f"  completion interrupts: {soc.interrupts.count(soc.pr.irq_line)}")


def contention_demo() -> None:
    print("\n=== HP-port contention: why the bitstream lives in PL DDR ===")

    def pedestrian_latency(cls) -> float:
        soc = ZynqSoC(controller_cls=cls)
        finished: list[float] = []
        soc.reconfigure_vehicle("dark")
        soc.sim.schedule(
            0.001,
            lambda: soc.submit_frame(
                "pedestrian", on_result=lambda: finished.append(soc.sim.now)
            ),
        )
        soc.sim.run()
        return (finished[0] - 0.001) * 1e3

    paper_ms = pedestrian_latency(PaperPrController)
    zycap_ms = pedestrian_latency(ZycapController)
    print(f"  pedestrian frame turnaround during a PR:")
    print(f"    paper controller (PL DDR path): {paper_ms:7.2f} ms")
    print(f"    ZyCAP placement (HP port path): {zycap_ms:7.2f} ms")
    print("  The paper controller leaves the HP ports to the video DMAs —")
    print('  "leave the AXI HP port of PS for other high speed data transfers".')


def failure_demo() -> None:
    print("\n=== Failure injection: corrupt bitstream ===")
    from repro.zynq import BitstreamRepository, PartialBitstream

    repo = BitstreamRepository()
    repo.add(PartialBitstream(name="day_dusk", payload_seed=1))
    bad = PartialBitstream(name="dark", payload_seed=2)
    bad.corrupt()
    repo.add(bad)
    soc = ZynqSoC(repository=repo)
    try:
        soc.reconfigure_vehicle("dark")
    except Exception as exc:  # noqa: BLE001 - demo output
        print(f"  rejected before touching ICAP: {exc}")
    ok = soc.submit_frame("pedestrian")
    soc.sim.run()
    print(f"  pedestrian detection unaffected: frame accepted = {ok}")


if __name__ == "__main__":
    throughput_comparison()
    fig7_trace()
    contention_demo()
    failure_demo()
