"""Tracking demo: stable vehicle identities through a dark drive sequence.

Renders a temporally-coherent night sequence (vehicles keep their lanes and
close/recede smoothly, lamps flicker with brake events, wet-road
reflections), runs the dark pipeline per frame, and compares raw per-frame
detection against the tracking extension — which coasts through dropouts
and assigns stable track ids.

Run:  python examples/tracking_demo.py [--frames 25]
"""

from __future__ import annotations

import argparse

from repro.datasets import DARK_LIGHTING, SceneConfig, SequenceConfig, render_sequence
from repro.pipelines import DarkVehicleDetector, TrackingPipeline, evaluate_tracking


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=25)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print("=== Rendering a coherent dark drive sequence ===")
    config = SequenceConfig(
        scene=SceneConfig(
            height=360, width=640, n_vehicles=2,
            vehicle_fill=(0.08, 0.16), wet_road_probability=0.6, seed=args.seed,
        ),
        n_frames=args.frames,
    )
    frames = render_sequence(config, DARK_LIGHTING)
    ids = {o.track_id for f in frames for o in f.vehicles}
    print(f"  {len(frames)} frames, ground-truth identities: {sorted(ids)}")

    print("\n=== Training the dark pipeline ===")
    detector = DarkVehicleDetector()
    detector.train()

    print("\n=== Per-frame detections with track ids ===")
    tracked = TrackingPipeline(detector)
    for index, frame in enumerate(frames):
        detections = tracked.detect(frame.rgb)
        row = ", ".join(
            f"id{d.extra['track_id']}@x={d.rect.center[0]:.0f}"
            + ("(coast)" if d.extra["coasting"] else "")
            for d in detections
        )
        print(f"  frame {index:2d}: {row or '-'}")

    print("\n=== Detector-only vs detector+tracker ===")
    plain = evaluate_tracking(detector, frames)
    tracked_eval = evaluate_tracking(TrackingPipeline(detector), frames)
    print(f"  detector only:     recall={plain.recall:6.1%}  missed={plain.missed:3d}  "
          f"spurious={plain.spurious}  MOTA={plain.mota:.2f}")
    print(f"  detector+tracker:  recall={tracked_eval.recall:6.1%}  missed={tracked_eval.missed:3d}  "
          f"spurious={tracked_eval.spurious}  MOTA={tracked_eval.mota:.2f}  "
          f"id-switches={tracked_eval.id_switches}")


if __name__ == "__main__":
    main()
