"""Night detection deep-dive: the dark pipeline stage by stage (Fig. 3/4).

Renders iROADS-like dark frames (with oncoming headlights and wet-road
reflections as distractors), then walks each frame through the pipeline —
channel split, dual threshold, merge, decimation, closing, sliding DBN,
spatial correlation — printing what every stage produced, and finally the
Fig. 5-style detection overlays.

Run:  python examples/night_detection.py [--frames 3]
"""

from __future__ import annotations

import argparse

from repro.datasets import make_iroads_like
from repro.imaging import ascii_render_with_boxes, luminance
from repro.pipelines import DarkStageTrace, DarkVehicleDetector


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=3)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    print("=== Training the dark pipeline ===")
    detector = DarkVehicleDetector()
    report = detector.train()
    print(f"  DBN (81-20-8-4) window accuracy: {report['dbn_train_accuracy']:.1%}")
    print(f"  pair SVM support vectors: {report['pair_svm']['n_support']}")

    dataset = make_iroads_like(n_frames=args.frames, seed=args.seed, wet_road_probability=0.7)
    hits = total = 0
    for index, frame in enumerate(dataset.frames):
        trace = DarkStageTrace()
        detections = detector.detect(frame.rgb, trace=trace)
        truth = len(frame.vehicles)
        print(f"\n=== Frame {index}: {truth} vehicle(s) in ground truth ===")
        print(f"  luma threshold mask:     {int(trace.luma_mask.sum()):6d} px")
        print(f"  +chroma merge (red only): {int(trace.merged_mask.sum()):6d} px")
        print(f"  after decimation+closing: {int(trace.processed_mask.sum()):6d} px")
        print(f"  sliding DBN hit windows:  {int((trace.class_grid > 0).sum()):6d}")
        print(f"  taillight candidates:     {len(trace.candidates):6d}")
        print(f"  matched pairs:            {len(trace.pairs):6d}")
        for det in detections:
            x, y, w, h = det.rect.as_int()
            (lx1, ly1), (lx2, ly2) = det.extra["taillights"]
            print(f"    -> vehicle x={x} y={y} w={w} h={h} "
                  f"(lamps at x={lx1:.0f} and x={lx2:.0f}, score {det.score:.2f})")
        print()
        print(ascii_render_with_boxes(
            luminance(frame.rgb), [d.rect for d in detections], width=76
        ))
        if truth:
            total += 1
            hits += bool(detections)
    if total:
        print(f"\nframes with a vehicle where the pipeline fired: {hits}/{total}")


if __name__ == "__main__":
    main()
