"""Quickstart: train the paper's detectors and run them on synthetic scenes.

Covers the core API surface in one script:

1. render day/dusk corpora (UPM / SYSU stand-ins) and train the three SVM
   models of paper Fig. 1;
2. evaluate them per lighting condition (a miniature Table I);
3. train the dark pipeline (threshold -> DBN -> pairing SVM, paper Fig. 3)
   and detect vehicles in a rendered night scene.

Run:  python examples/quickstart.py [--scale 0.15]
"""

from __future__ import annotations

import argparse

from repro.datasets import (
    DARK_LIGHTING,
    LightingCondition,
    SceneConfig,
    make_sysu_like,
    make_upm_like,
    render_scene,
)
from repro.imaging import ascii_render_with_boxes, luminance
from repro.pipelines import (
    DarkVehicleDetector,
    HogSvmVehicleDetector,
    evaluate_crop_classifier,
    train_condition_models,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15, help="corpus scale (1.0 = paper sizes)")
    args = parser.parse_args()
    n_train = max(30, int(400 * args.scale))
    n_test_pos = max(20, int(200 * args.scale))

    print("=== 1. Train the day / dusk / combined SVM models (Fig. 1) ===")
    day_train = make_upm_like(n_positive=n_train, n_negative=n_train, seed=1)
    dusk_train = make_sysu_like(
        n_positive=n_train, n_negative=n_train, n_very_dark_positive=0, seed=2
    )
    models = train_condition_models(day_train, dusk_train)
    for name, model in models.items():
        print(f"  {name:9s} trained on {model.meta['n_train']} crops "
              f"({model.meta['epochs']} solver epochs)")

    print("\n=== 2. Evaluate per condition (miniature Table I) ===")
    day_test = make_upm_like(n_positive=n_test_pos, n_negative=max(5, n_test_pos // 8), seed=3)
    dusk_test = make_sysu_like(
        n_positive=n_test_pos, n_negative=n_test_pos, n_very_dark_positive=max(2, n_test_pos // 10), seed=4
    )
    detector = HogSvmVehicleDetector()
    for name, model in models.items():
        bound = detector.with_model(model)
        on_day = evaluate_crop_classifier(bound, day_test)
        on_dusk = evaluate_crop_classifier(bound, dusk_test)
        print(f"  {name:9s} day={on_day.accuracy:6.1%}  dusk={on_dusk.accuracy:6.1%}")
    print("  (the paper's point: no single model covers both conditions)")

    print("\n=== 3. Train and run the dark pipeline (Fig. 3) ===")
    dark = DarkVehicleDetector()
    report = dark.train()
    print(f"  DBN 81-20-8-4 trained: {report['dbn_train_accuracy']:.1%} window accuracy")
    scene = render_scene(
        SceneConfig(height=360, width=640, n_vehicles=2, n_oncoming=1,
                    vehicle_fill=(0.08, 0.16), seed=7),
        DARK_LIGHTING,
    )
    detections = dark.detect(scene.rgb)
    print(f"  detections in a dark scene: {len(detections)} "
          f"(ground truth: {len(scene.vehicles)})")
    for det in detections:
        x, y, w, h = det.rect.as_int()
        print(f"    vehicle at x={x} y={y} w={w} h={h} (pair score {det.score:.2f})")
    print()
    print(ascii_render_with_boxes(luminance(scene.rgb), [d.rect for d in detections], width=78))


if __name__ == "__main__":
    main()
