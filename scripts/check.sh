#!/usr/bin/env bash
# The one-command local CI gate: style, types, project invariants, tests.
#
#   ./scripts/check.sh          # everything
#   ./scripts/check.sh --fast   # skip the (slow) full pytest tier
#
# ruff and mypy come from the optional `lint` extra (pip install -e .[lint]);
# when they are not installed the gate reports and skips them rather than
# failing, so the script works in the minimal offline environment too.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check"
    ruff check src tests benchmarks || status=1
else
    echo "== ruff not installed; skipping (pip install -e .[lint])"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy"
    mypy || status=1
else
    echo "== mypy not installed; skipping (pip install -e .[lint])"
fi

echo "== repro lint (determinism / units / telemetry hygiene)"
PYTHONPATH=src python -m repro lint src || status=1

echo "== repro bench --smoke (perf harness sanity; no snapshot written)"
PYTHONPATH=src python -m repro bench --smoke >/dev/null || status=1

echo "== repro incident smoke (flight recorder: induce, bundle, replay)"
PYTHONPATH=src python -m repro incident smoke --duration 20 --scenario flaky_dma >/dev/null || status=1

if [[ $fast -eq 0 ]]; then
    echo "== pytest (tier 1)"
    PYTHONPATH=src python -m pytest -x -q || status=1
else
    echo "== pytest: skipped (--fast); run the analysis tier at least:"
    PYTHONPATH=src python -m pytest -x -q -m analysis || status=1
fi

if [[ $status -eq 0 ]]; then
    echo "check.sh: all gates passed"
else
    echo "check.sh: FAILED" >&2
fi
exit $status
