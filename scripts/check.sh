#!/usr/bin/env bash
# The one-command local CI gate: style, types, project invariants, tests.
#
#   ./scripts/check.sh          # everything
#   ./scripts/check.sh --fast   # skip the (slow) full pytest tier
#
# ruff and mypy come from the optional `lint` extra (pip install -e .[lint]);
# when they are not installed the gate reports and skips them rather than
# failing, so the script works in the minimal offline environment too.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check"
    ruff check src tests benchmarks || status=1
else
    echo "== ruff not installed; skipping (pip install -e .[lint])"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy"
    mypy || status=1
else
    echo "== mypy not installed; skipping (pip install -e .[lint])"
fi

echo "== repro lint (whole-program pass, gated on LINT_BASELINE.json; SARIF artifact: lint.sarif)"
PYTHONPATH=src python -m repro lint src --jobs 4 \
    --compare-baseline LINT_BASELINE.json --sarif-out lint.sarif || status=1

echo "== repro bench --smoke (perf harness sanity; no snapshot written)"
PYTHONPATH=src python -m repro bench --smoke >/dev/null || status=1

if [[ $fast -eq 0 ]]; then
    echo "== repro bench --compare BENCH_repro.json (regression gate vs committed baseline)"
    # --threshold 0.5: the baseline was measured on a different (shared)
    # box; between-run load drift here is routinely +/-30%, which the
    # within-run MAD noise floor cannot see (PERF.md, "Baselines and the
    # regression gate").  The gate exists to catch structural slowdowns --
    # un-batching a window scan costs 5-20x -- not scheduling jitter.
    PYTHONPATH=src python -m repro bench --compare BENCH_repro.json --threshold 0.5 || status=1
else
    echo "== bench compare: skipped (--fast)"
fi

echo "== pytest -m equivalence (batched vs reference byte-identity)"
PYTHONPATH=src python -m pytest -x -q -m equivalence || status=1

echo "== repro incident smoke (flight recorder: induce, bundle, replay)"
PYTHONPATH=src python -m repro incident smoke --duration 20 --scenario flaky_dma >/dev/null || status=1

echo "== repro fleet smoke (sharded drives vs inline digest re-check)"
PYTHONPATH=src python -m repro fleet smoke >/dev/null || status=1

echo "== repro fleet top --once (live-plane smoke + OpenMetrics exposition check)"
fleet_tmp=$(mktemp -d)
PYTHONPATH=src python -m repro fleet top --once --count 4 --duration 1.0 >/dev/null || status=1
PYTHONPATH=src python -m repro fleet run --count 4 --workers 2 --duration 1.0 \
    --out "$fleet_tmp/FLEET_check.json" --metrics-out "$fleet_tmp/fleet.om" >/dev/null || status=1
if ! grep -q "^# EOF" "$fleet_tmp/fleet.om"; then
    echo "check.sh: OpenMetrics exposition missing '# EOF' terminator" >&2
    status=1
fi
rm -rf "$fleet_tmp"

echo "== repro quality compare (detection-quality ratchet vs committed baseline)"
PYTHONPATH=src python -m repro quality compare QUALITY_BASELINE.json >/dev/null || status=1

if [[ $fast -eq 0 ]]; then
    echo "== pytest (tier 1)"
    PYTHONPATH=src python -m pytest -x -q || status=1
else
    echo "== pytest: skipped (--fast); run the analysis tier at least:"
    PYTHONPATH=src python -m pytest -x -q -m analysis || status=1
fi

if [[ $status -eq 0 ]]; then
    echo "check.sh: all gates passed"
else
    echo "check.sh: FAILED" >&2
fi
exit $status
