"""Bench F2 — paper Fig. 2: the day/dusk HOG+SVM hardware pipeline.

The timing model must sustain 50 fps HDTV at 125 MHz with II = 1, and the
software model of the same three stages must be functionally exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import run_fig2_pipeline
from repro.hw.designs import day_dusk_pipeline
from repro.hw.timing import PAPER_CLOCK_HZ


def test_reproduce_fig2_timing(benchmark, report_sink):
    result = run_once(benchmark, run_fig2_pipeline)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_50fps_at_125mhz(benchmark):
    pipe = run_once(benchmark, day_dusk_pipeline)
    assert pipe.clock_hz == PAPER_CLOCK_HZ
    assert pipe.fps == pytest.approx(50.5, abs=0.2)


def test_three_paper_stages_present(benchmark):
    pipe = run_once(benchmark, day_dusk_pipeline)
    names = [s.name for s in pipe.stages]
    assert names == ["HOG descriptor", "HOG normalizer", "SVM classifier"]


def test_functional_model_is_deterministic(benchmark):
    """The software mirror of the HW pipeline: same input, same features."""
    from repro.features.hog import HogDescriptor

    hog = HogDescriptor()
    img = np.random.default_rng(0).random((64, 64))
    a = run_once(benchmark, hog.extract, img)
    assert np.array_equal(a, hog.extract(img))


def test_benchmark_dense_hog_extraction(benchmark):
    """Time the dense HOG front-end over a 360x640 luma plane."""
    from repro.features.hog import HogDescriptor

    hog = HogDescriptor()
    frame = np.random.default_rng(1).random((360, 640))
    blocks, layout = benchmark(hog.extract_dense, frame)
    assert blocks.shape[2] == 36
