"""Bench T1 — regenerate paper Table I (day/dusk/combined SVM models).

Prints the measured-vs-paper table and asserts the paper's claims:
day model best on day; dusk model collapses on day (FN-dominated);
combined best on dusk; the dusk subset improves every model.
The two-SVM-models-vs-one ablation is Table I's combined column itself.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def table1(repro_scale):
    return run_table1(scale=repro_scale, seed=0)


def test_reproduce_table1(benchmark, repro_scale, report_sink):
    result = run_once(benchmark, run_table1, scale=repro_scale, seed=0)
    report_sink.append(result.render_with_paper())
    checks = result.shape_checks()
    assert checks["day_easier_than_dusk"]
    assert checks["day_model_best_on_day"]
    assert checks["combined_best_on_dusk"]
    assert checks["dusk_model_degrades_on_day"]
    assert checks["subset_improves_all_models"]


def test_dusk_model_errors_are_false_negatives(benchmark, table1):
    # Paper: dusk model on day = TP 23 / FN 177 — rejection, not confusion.
    cell = table1.cells["dusk"]["day"]
    run_once(benchmark, lambda: cell.accuracy)
    assert cell.fn > 3 * cell.fp


def test_combined_recovers_dusk_false_negatives(benchmark, table1):
    # Paper: combined FN 254 < dusk FN 319 on the dusk test.
    run_once(benchmark, lambda: None)
    assert table1.cells["combined"]["dusk"].fn <= table1.cells["dusk"]["dusk"].fn


def test_benchmark_window_classification(benchmark):
    """Throughput of the window-classification path (HOG + SVM margin)."""
    from repro.experiments.common import corpora_and_models, detector_with

    corpora, models = corpora_and_models(scale=0.2, seed=0)
    detector = detector_with(models["combined"])
    crop = corpora.day_test.images[0]
    verdict, _score = benchmark(detector.classify_crop, crop)
    assert isinstance(verdict, bool)
