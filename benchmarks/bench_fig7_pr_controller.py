"""Bench F7 — paper Fig. 7: the PR controller, event by event.

Walks an 8 MB bitstream down the PL DDR -> AXI DMA -> ICAP manager ->
ICAPE2 path, prints the timestamped trace, and checks the 390 MB/s figure
and the completion interrupt.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import run_fig7_pr_controller


def test_reproduce_fig7_trace(benchmark, report_sink):
    result = run_once(benchmark, run_fig7_pr_controller)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_duration_matches_20ms_figure(benchmark):
    result = run_once(benchmark, run_fig7_pr_controller)
    assert result.duration_ms == pytest.approx(20.5, abs=0.5)


def test_trace_is_ordered(benchmark):
    result = run_once(benchmark, run_fig7_pr_controller)
    start_idx = next(i for i, e in enumerate(result.events) if "start" in e)
    done_idx = next(i for i, e in enumerate(result.events) if "done" in e)
    assert start_idx < done_idx


def test_benchmark_pr_controller_event_walk(benchmark):
    """Time the full simulated Fig. 7 walk."""
    result = benchmark(run_fig7_pr_controller)
    assert result.throughput_mb_s > 380
