"""Extension bench — temporal tracking over dark drive sequences.

Not a paper artefact (see DESIGN.md §5): the paper's related work pairs
nighttime detection with tracking; this bench quantifies what the tracker
buys on temporally-coherent synthetic sequences.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.tracking_ext import run_tracking_extension


def test_tracking_extension(benchmark, report_sink):
    result = run_once(benchmark, run_tracking_extension, n_frames=40, seed=3)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_tracking_improves_or_matches_recall(benchmark):
    result = run_once(benchmark, run_tracking_extension, n_frames=30, seed=5)
    assert result.tracked.recall >= result.plain.recall - 1e-9


def test_benchmark_tracker_update(benchmark):
    """Throughput of one tracker update with a handful of detections."""
    from repro.imaging.geometry import Rect
    from repro.pipelines.base import Detection
    from repro.pipelines.tracking import TrackerConfig, VehicleTracker

    tracker = VehicleTracker(TrackerConfig(min_hits=1))
    detections = [Detection(rect=Rect(10 * i, 20, 30, 24), score=1.0) for i in range(6)]
    tracker.update(detections)

    def update():
        return tracker.update(detections)

    reported = benchmark(update)
    assert len(reported) == 6
