"""Bench T2 — regenerate paper Table II (resource utilization on XC7Z100)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table2 import PAPER_TABLE2, run_table2


@pytest.fixture(scope="module")
def table2():
    return run_table2()


def test_reproduce_table2(benchmark, report_sink):
    result = run_once(benchmark, run_table2)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_every_cell_within_3_points(benchmark, table2):
    run_once(benchmark, lambda: None)
    measured = table2.utilization_rows()
    for row, cells in PAPER_TABLE2.items():
        for cls, expected in cells.items():
            assert abs(measured[row][cls] - expected) <= 0.03, (row, cls)


def test_partition_sized_by_dark_design(benchmark, table2):
    run_once(benchmark, lambda: None)
    # "the area of reconfigurable partition is considered big enough to
    # fulfill the resource requirement of the largest configuration"
    assert table2.partition.fits(table2.dark)
    assert table2.partition.fits(table2.day_dusk)
    # and the dark design is the binding one: ~1.125x slack on its LUTs.
    slack = table2.partition.capacity.lut / table2.dark.lut
    assert 1.05 <= slack <= 1.35


def test_total_leaves_headroom_for_ads_features(benchmark, table2):
    run_once(benchmark, lambda: None)
    # The paper's conclusion: adaptivity leaves "more free resources
    # available on the hardware for the other complex features of ADS".
    measured = table2.utilization_rows()["total"]
    assert all(v < 0.75 for v in measured.values())


def test_benchmark_table2_generation(benchmark):
    """Time the full resource-model evaluation + floorplanning."""
    result = benchmark(run_table2)
    assert result.partition.area_fraction > 0
