"""Bench F5 — paper Fig. 5: sample dark detections on iROADS-like frames.

Regenerates the qualitative figure: renders dark road scenes, runs the dark
pipeline, and prints ASCII frames with the detections burnt in.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import run_fig5_samples


def test_reproduce_fig5_samples(benchmark, report_sink):
    result = run_once(benchmark, run_fig5_samples, n_frames=4, seed=3)
    report_sink.append(result.render())
    assert result.shape_checks()["detects_in_most_vehicle_frames"]


def test_detections_localise_ground_truth(benchmark):
    from repro.datasets.synthetic import make_iroads_like
    from repro.experiments.common import trained_dark_detector
    from repro.pipelines.evaluation import evaluate_frames

    detector = trained_dark_detector()
    frames = make_iroads_like(n_frames=12, seed=9).frames
    result = run_once(
        benchmark, evaluate_frames, detector, frames, kind="vehicle", iou_threshold=0.25
    )
    assert result.object_recall >= 0.7
    assert result.spurious <= 2


def test_benchmark_single_frame_figure(benchmark):
    """Time rendering + detecting + ASCII for a single Fig. 5 panel."""
    result = benchmark(run_fig5_samples, n_frames=1, seed=5)
    assert result.n_frames == 1
