"""Bench FPS — the headline claim: 50 fps HDTV detection at 125 MHz.

Checks every hardware pipeline's modelled rate and the end-to-end system
rate over a drive with reconfigurations.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import PAPER_FPS, run_fps
from repro.hw.timing import HDTV_TIMING, PAPER_CLOCK_HZ


def test_reproduce_fps_audit(benchmark, report_sink):
    result = run_once(benchmark, run_fps, drive_duration_s=60.0)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_raster_math_gives_50fps(benchmark):
    fps = run_once(benchmark, HDTV_TIMING.fps_at, PAPER_CLOCK_HZ)
    assert fps == pytest.approx(50.5, abs=0.1)
    assert fps >= PAPER_FPS


def test_system_rate_degrades_only_by_pr_drops(benchmark):
    result = run_once(benchmark, run_fps, drive_duration_s=60.0)
    # Vehicle rate dips by at most a frame per reconfiguration; the
    # pedestrian rate is the full 50 fps.
    assert result.system_pedestrian_fps == pytest.approx(PAPER_FPS, abs=0.01)
    assert result.system_vehicle_fps >= PAPER_FPS - 0.1


def test_benchmark_fps_audit(benchmark):
    result = benchmark(run_fps, drive_duration_s=10.0)
    assert result.pipeline_fps
