"""Bench F6 — paper Fig. 6: the full SoC block diagram in motion.

Streams frames through the pedestrian and vehicle DMA paths, audits the
interrupt counts and HP-port traffic, and exercises a reconfiguration in
the middle of steady-state streaming.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import run_fig6_system
from repro.zynq.soc import FRAME_BYTES, ZynqSoC


def test_reproduce_fig6_audit(benchmark, report_sink):
    result = run_once(benchmark, run_fig6_system, n_frames=10)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_interrupts_count_matches_frames(benchmark):
    result = run_once(benchmark, run_fig6_system, n_frames=7)
    irq = result.stats["interrupts"]
    assert irq["dma-ped-mm2s.done"] == 7
    assert irq["dma-veh-s2mm.done"] == 7


def test_streaming_through_reconfiguration(benchmark, report_sink):
    """Steady 50 fps streaming with a PR in the middle: the vehicle path
    loses exactly the in-flight frames, the pedestrian path none."""

    def scenario():
        soc = ZynqSoC()
        period = 1.0 / 50.0
        for i in range(50):
            soc.sim.schedule(
                i * period,
                lambda: (soc.submit_frame("pedestrian"), soc.submit_frame("vehicle")),
            )
        soc.sim.schedule(0.5 * period + 10 * period, lambda: soc.reconfigure_vehicle("dark"))
        soc.sim.run()
        return soc

    soc = run_once(benchmark, scenario)
    assert soc.pedestrian.frames_dropped == 0
    assert soc.vehicle.frames_dropped == 1
    assert soc.vehicle.configuration == "dark"


def test_hp_traffic_accounts_for_frames(benchmark):
    result = run_once(benchmark, run_fig6_system, n_frames=5)
    assert result.hp_bytes["hp0"] >= 5 * FRAME_BYTES  # pedestrian in+out
    assert result.hp_bytes["hp1"] >= 5 * FRAME_BYTES  # vehicle in


def test_benchmark_soc_frame_roundtrip(benchmark):
    """Wall-clock cost of simulating one frame through both detectors."""

    def roundtrip():
        soc = ZynqSoC()
        soc.submit_frame("pedestrian")
        soc.submit_frame("vehicle")
        soc.sim.run()
        return soc

    soc = benchmark(roundtrip)
    assert soc.vehicle.frames_processed == 1
