"""Bench RL — Section IV-B: 20 ms reconfiguration = one dropped frame.

Drives the full system through an urban evening (several dusk<->dark
transitions): each 8 MB PR takes ~20.5 ms, costs exactly one vehicle frame
at 50 fps, and never touches the pedestrian stream.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.reconfig import run_latency


@pytest.fixture(scope="module")
def result():
    return run_latency(duration_s=120.0)


def test_reproduce_latency_experiment(benchmark, report_sink):
    result = run_once(benchmark, run_latency, duration_s=120.0)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_exactly_one_frame_per_reconfiguration(benchmark, result):
    run_once(benchmark, lambda: None)
    summary = result.drive.summary()
    assert summary["reconfigurations"] >= 2
    assert summary["drops_per_reconfiguration"] == pytest.approx(1.0)


def test_pedestrian_stream_uninterrupted(benchmark, result):
    run_once(benchmark, lambda: None)
    assert result.drive.pedestrian_dropped == 0


def test_reconfiguration_time_20ms(benchmark, result):
    run_once(benchmark, lambda: None)
    for report in result.drive.reconfigurations:
        assert report.duration_s * 1e3 == pytest.approx(20.5, abs=0.5)


def test_benchmark_system_drive(benchmark):
    """Wall-clock cost of a 30 s simulated drive (1 500 frames)."""
    from repro.adaptive.sensor import urban_evening_trace
    from repro.core.system import AdaptiveDetectionSystem

    def drive():
        return AdaptiveDetectionSystem().run_drive(urban_evening_trace(duration_s=30.0))

    report = benchmark(drive)
    assert report.n_frames == 1500
