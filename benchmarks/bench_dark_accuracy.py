"""Bench D95 — Section III-B: dark-pipeline accuracy (paper: 95 %).

Evaluates the full Fig. 3 pipeline on the very-dark crop corpus (SYSU
subset stand-in) and on iROADS-like frames, against the HOG+SVM models as
baselines — showing why the dark configuration exists.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.dark_accuracy import PAPER_DARK_ACCURACY, run_dark_accuracy


@pytest.fixture(scope="module")
def result(repro_scale):
    return run_dark_accuracy(scale=repro_scale, seed=0)


def test_reproduce_dark_accuracy(benchmark, repro_scale, report_sink):
    result = run_once(benchmark, run_dark_accuracy, scale=repro_scale, seed=0)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert checks["dark_pipeline_high_accuracy"]
    assert checks["dark_pipeline_beats_hog"]


def test_accuracy_in_papers_neighbourhood(benchmark, result):
    run_once(benchmark, lambda: None)
    # The paper reports 95 %; the synthetic corpus should land at or above.
    assert result.dark_pipeline_crops.accuracy >= PAPER_DARK_ACCURACY - 0.08


def test_hog_models_collapse_in_dark(benchmark, result):
    run_once(benchmark, lambda: None)
    # "using the appearance features such as HOG ... are not helpful in
    # detecting the cars" under very dark conditions.
    for name, counts in result.hog_baselines.items():
        assert counts.recall < result.dark_pipeline_crops.recall, name


def test_frame_level_detection_clean(benchmark, result):
    run_once(benchmark, lambda: None)
    assert result.frames.frame_accuracy >= 0.8
    assert result.frames.spurious <= result.frames.frames_total * 0.1


def test_benchmark_dark_detect_frame(benchmark, dark_frame_640):
    """Time one full dark-pipeline detection on a 640x360 frame (the
    paper's processing resolution)."""
    from repro.experiments.common import trained_dark_detector

    detector = trained_dark_detector()
    detections = benchmark(detector.detect, dark_frame_640.rgb)
    assert isinstance(detections, list)


@pytest.fixture(scope="module")
def dark_frame_640():
    from repro.datasets.lighting import DARK_LIGHTING
    from repro.datasets.scene import SceneConfig, render_scene

    config = SceneConfig(
        height=360, width=640, n_vehicles=2, n_oncoming=1, vehicle_fill=(0.07, 0.17), seed=12
    )
    return render_scene(config, DARK_LIGHTING)
