"""Bench RT — Section IV-A: reconfiguration throughput comparison.

PCAP ~145 MB/s, AXI HWICAP ~19 MB/s, ZyCAP ~382 MB/s, the paper's PR
controller ~390 MB/s; theoretical ceiling 400 MB/s.  This bench is also the
data-path ablation: same bitstream, four interconnect routes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.reconfig import PAPER_THROUGHPUT_MB_S, run_throughput
from repro.zynq.pr import PaperPrController
from repro.zynq.soc import ZynqSoC


@pytest.fixture(scope="module")
def result():
    return run_throughput()


def test_reproduce_throughput_comparison(benchmark, report_sink):
    result = run_once(benchmark, run_throughput)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_each_controller_within_5pct_of_paper(benchmark, result):
    run_once(benchmark, lambda: None)
    for name, expected in PAPER_THROUGHPUT_MB_S.items():
        measured = result.throughput(name)
        assert measured == pytest.approx(expected, rel=0.05), name


def test_speedup_over_pcap_at_least_2_6x(benchmark, result):
    run_once(benchmark, lambda: None)
    # "It results in the speed up of more than 2.6 times for the
    # reconfiguration throughput."
    assert result.throughput("paper-pr") / result.throughput("pcap") >= 2.6


def test_ours_within_97_5pct_of_theoretical(benchmark, result):
    run_once(benchmark, lambda: None)
    assert result.throughput("paper-pr") / 400.0 >= 0.975


def test_benchmark_simulated_reconfiguration(benchmark):
    """Wall-clock cost of simulating one 8 MB reconfiguration."""

    def reconfigure():
        soc = ZynqSoC(controller_cls=PaperPrController)
        report = soc.reconfigure_vehicle("dark")
        soc.sim.run()
        return report

    report = benchmark(reconfigure)
    assert report.ok
