"""Extension bench — the adaptive thesis, end to end.

The paper's core argument measured functionally: render frames across all
three lighting conditions, run the adaptive detector and every fixed
pipeline over the same frames, and show (a) every fixed pipeline fails in
some condition, (b) the adaptive system beats them all overall, (c) its
only dark-condition deficit vs the fixed dark pipeline is the one frame
consumed by the partial reconfiguration.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.adaptive_gain import run_adaptive_gain


def test_adaptive_beats_fixed_pipelines(benchmark, report_sink):
    result = run_once(benchmark, run_adaptive_gain, n_frames_per_condition=8, scale=0.3)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_adaptive_day_and_dusk_recall_high(benchmark):
    result = run_once(benchmark, run_adaptive_gain, n_frames_per_condition=6, scale=0.3)
    adaptive = result._by_name("adaptive")
    assert adaptive.recall("day") >= 0.8
    assert adaptive.recall("dusk") >= 0.6
