"""Bench F3/F4 — paper Fig. 3 and Fig. 4: the dark pipeline.

Walks a rendered dark frame through every stage (split -> thresholds ->
AND -> resize -> closing -> sliding DBN -> spatial correlation), checks the
intermediate products, and verifies the timing model holds 50 fps.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import trained_dark_detector
from repro.experiments.figures import run_fig4_pipeline
from repro.pipelines.dark import DBN_STRIDE, DBN_WINDOW, DarkStageTrace


@pytest.fixture(scope="module")
def dark_frame():
    from repro.datasets.lighting import DARK_LIGHTING
    from repro.datasets.scene import SceneConfig, render_scene

    config = SceneConfig(
        height=360, width=640, n_vehicles=2, n_oncoming=1, vehicle_fill=(0.07, 0.17), seed=31
    )
    return render_scene(config, DARK_LIGHTING)


def test_reproduce_fig4_timing(benchmark, report_sink):
    result = run_once(benchmark, run_fig4_pipeline)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_stage_walk_produces_all_intermediates(benchmark, dark_frame, report_sink):
    detector = trained_dark_detector()
    trace = DarkStageTrace()
    detections = run_once(benchmark, detector.detect, dark_frame.rgb, trace=trace)
    assert trace.luma_mask is not None and trace.chroma_mask is not None
    assert trace.processed_mask is not None and trace.class_grid is not None
    report_sink.append(
        "Fig. 4 stage walk (640x360 dark frame): "
        f"{int(trace.merged_mask.sum())} merged px -> "
        f"{int(trace.processed_mask.sum())} closed px -> "
        f"{int((trace.class_grid > 0).sum())} DBN hits -> "
        f"{len(trace.candidates)} candidates -> {len(detections)} vehicles"
    )
    assert detections


def test_dbn_geometry_matches_paper(benchmark, dark_frame):
    detector = trained_dark_detector()
    mask = run_once(benchmark, detector.preprocess, dark_frame.rgb)
    grid = detector.dbn_grid(mask)
    expected_rows = (mask.shape[0] - DBN_WINDOW) // DBN_STRIDE + 1
    expected_cols = (mask.shape[1] - DBN_WINDOW) // DBN_STRIDE + 1
    assert grid.shape == (expected_rows, expected_cols)


def test_benchmark_preprocess_stage(benchmark, dark_frame):
    """Time stages 1-4 (threshold/merge/resize/closing) on 640x360.

    640 is not divisible by 3, so the decimator falls back to 2x here;
    native 1920x1080 frames use the paper's full 3x factor.
    """
    detector = trained_dark_detector()
    mask = benchmark(detector.preprocess, dark_frame.rgb)
    assert mask.shape == (180, 320)


def test_benchmark_sliding_dbn(benchmark, dark_frame):
    """Time the sliding 9x9 / stride-2 DBN stage."""
    detector = trained_dark_detector()
    mask = detector.preprocess(dark_frame.rgb)
    grid = benchmark(detector.dbn_grid, mask)
    assert grid.size > 0
