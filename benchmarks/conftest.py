"""Benchmark configuration.

Each ``bench_*.py`` file regenerates one paper artefact (table or figure).
The reproduction itself runs inside ``benchmark.pedantic(..., rounds=1)``
so it executes (and is timed) under ``pytest --benchmark-only``; its
assertions check the paper's qualitative claims, and the rendered
measured-vs-paper report prints at the end of the session.

``--repro-scale`` controls corpus sizes for the accuracy experiments:
the default 1.0 reproduces the paper's test-set sizes (Table I trains three
LibLINEAR-style models on ~800 crops each and classifies ~2 000 test crops,
about half a minute); smaller values shrink every corpus proportionally.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.telemetry.metrics import MetricsRegistry, Stopwatch

#: Session-wide registry: every ``run_once`` call lands a wall-time
#: observation here, and the snapshot prints in the terminal summary.
BENCH_METRICS = MetricsRegistry()

#: Rendered measured-vs-paper reports collected by the report_sink fixture.
_ARTEFACT_REPORTS: list[str] = []

#: Where the session snapshot lands: the repository root, next to the
#: BENCH_*.json trajectory that ``python -m repro bench`` writes.
BENCH_SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_artefacts.json"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="1.0",
        help="Corpus scale for accuracy experiments (1.0 = paper sizes)",
    )


@pytest.fixture(scope="session")
def repro_scale(request) -> float:
    return float(request.config.getoption("--repro-scale"))


@pytest.fixture(scope="session")
def report_sink():
    """Collects rendered experiment reports; printed at session end."""
    reports = _ARTEFACT_REPORTS
    yield reports
    if reports:
        print("\n\n" + "\n\n".join(reports) + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The wall time of the single round also lands in the shared
    :data:`BENCH_METRICS` registry (``bench_wall_s{bench=<fn name>}``), so
    the terminal summary can compare artefact costs across one session.
    """
    with Stopwatch() as sw:
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    BENCH_METRICS.gauge("bench_wall_s", bench=fn.__name__).set(sw.elapsed_s)
    BENCH_METRICS.counter("bench_runs").inc()
    return result


def pytest_terminal_summary(terminalreporter):
    snapshot = BENCH_METRICS.snapshot()
    if not snapshot:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("benchmark metrics (repro.telemetry):")
    for series in snapshot:
        labels = series.get("labels", {})
        label_text = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        terminalreporter.write_line(
            f"  {series['name']}{label_text}: {series.get('value', 0.0):g}"
        )
    path = _flush_bench_snapshot()
    terminalreporter.write_line(f"benchmark snapshot -> {path}")


def _flush_bench_snapshot():
    """Write the session's paper-artefact costs to ``BENCH_artefacts.json``.

    Uses the same schema-versioned writer as ``python -m repro bench``, so
    the pytest-benchmark flow feeds the same BENCH_* trajectory: the
    ``metrics`` section carries every ``bench_wall_s`` gauge, and the
    rendered measured-vs-paper reports ride along under
    ``artefact_reports``.
    """
    from repro.perf.baseline import build_snapshot, write_snapshot

    doc = build_snapshot(
        results=[],
        label="artefacts",
        metrics=BENCH_METRICS.snapshot(),
        extra={"artefact_reports": list(_ARTEFACT_REPORTS)},
    )
    write_snapshot(str(BENCH_SNAPSHOT_PATH), doc)
    return BENCH_SNAPSHOT_PATH
