"""Bench F1 — paper Fig. 1: the HOG -> LibLINEAR training flow.

Runs the full flow (day / dusk / combined corpora -> three SVM models) and
checks the paper's observation that the three trained models "look very
different"; times model training.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import run_training_flow


def test_reproduce_training_flow(benchmark, repro_scale, report_sink):
    scale = min(repro_scale, 0.5)  # training-flow stats stabilise early
    result = run_once(benchmark, run_training_flow, scale=scale, seed=0)
    report_sink.append(result.render())
    assert result.shape_checks()["models_look_very_different"]


def test_combined_model_trained_on_both_corpora(benchmark, repro_scale):
    result = run_once(benchmark, run_training_flow, scale=min(repro_scale, 0.5), seed=0)
    n_day = result.model_meta["day"]["n_train"]
    n_dusk = result.model_meta["dusk"]["n_train"]
    assert result.model_meta["combined"]["n_train"] == n_day + n_dusk


def test_benchmark_svm_training(benchmark):
    """Time one LibLINEAR-style training run on HOG features."""
    from repro.experiments.common import build_corpora
    from repro.features.hog import HogDescriptor
    from repro.ml.svm import train_svm
    from repro.pipelines.day_dusk import hog_features_for_dataset

    corpora = build_corpora(scale=0.15, seed=3)
    hog = HogDescriptor()
    features = hog_features_for_dataset(corpora.day_train, hog)
    model = benchmark(train_svm, features, corpora.day_train.labels)
    assert model.meta["epochs"] >= 1
