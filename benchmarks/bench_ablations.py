"""Ablation benches for the design choices DESIGN.md calls out.

* chroma+luma vs luma-only thresholding (paper Section III-B's choice);
* the sliding DBN vs a blob-size heuristic;
* hysteresis control vs naive thresholding (reconfiguration storms);
* reconfigurable-partition slack sweep;
* HP-port contention: paper controller vs ZyCAP placement.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    run_contention,
    run_dbn_ablation,
    run_floorplan_sweep,
    run_hysteresis_ablation,
    run_threshold_ablation,
)


def test_ablation_threshold(benchmark, report_sink):
    result = run_once(benchmark, run_threshold_ablation, n_frames=30, seed=17)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks
    # The chroma mask is what rejects headlights/lamps: spurious detections
    # drop sharply when it is enabled.
    assert result.luma_only.spurious > result.with_chroma.spurious


def test_ablation_dbn_stage(benchmark, report_sink):
    result = run_once(benchmark, run_dbn_ablation, n_frames=30, seed=19)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_ablation_hysteresis(benchmark, report_sink):
    result = run_once(benchmark, run_hysteresis_ablation, duration_s=120.0)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks
    assert result.naive_switches >= 10 * max(result.hysteretic_switches, 1)


def test_ablation_floorplan_slack(benchmark, report_sink):
    result = run_once(benchmark, run_floorplan_sweep)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks


def test_ablation_hp_contention(benchmark, report_sink):
    result = run_once(benchmark, run_contention)
    report_sink.append(result.render())
    checks = result.shape_checks()
    assert all(checks.values()), checks
