"""Tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import pytest

from repro.cli import COMMANDS, main


class TestCli:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_table2_prints_measured_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "XC7Z100" in out
        assert "Reconfigurable Partition" in out
        assert "shape checks" in out

    def test_throughput_prints_controllers(self, capsys):
        assert main(["throughput"]) == 0
        out = capsys.readouterr().out
        for name in ("pcap", "hwicap", "zycap", "paper-pr"):
            assert name in out

    def test_fig7_prints_trace(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "reconfigure -> dark" in out

    def test_fig2_prints_fps(self, capsys):
        assert main(["fig2"]) == 0
        assert "50.5 fps" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_scale_flag_parsed(self, capsys):
        # fig1 honours --scale (capped internally); tiny scale keeps it fast.
        assert main(["fig1", "--scale", "0.1"]) == 0
        assert "divergence" in capsys.readouterr().out


class TestCliErrorPaths:
    def test_unknown_trace_rejected(self):
        with pytest.raises(SystemExit):
            main(["drive", "--trace", "volcano"])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(SystemExit):
            main(["drive", "--duration", "0"])
        with pytest.raises(SystemExit):
            main(["drive", "--duration", "-5"])

    def test_unknown_fault_plan_rejected(self):
        with pytest.raises(SystemExit):
            main(["drive", "--fault-plan", "gremlins"])

    def test_unknown_telemetry_format_rejected(self):
        with pytest.raises(SystemExit):
            main(["drive", "--telemetry-format", "xml"])

    def test_telemetry_command_requires_input(self, capsys):
        assert main(["telemetry"]) == 2
        assert "--telemetry-in" in capsys.readouterr().err

    def test_telemetry_command_missing_file(self, capsys):
        assert main(["telemetry", "--telemetry-in", "/nonexistent/dump.jsonl"]) == 1
        assert "telemetry:" in capsys.readouterr().err

    def test_telemetry_command_rejects_garbage_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("this is not json\n")
        assert main(["telemetry", "--telemetry-in", str(path)]) == 1
        assert "not valid JSONL" in capsys.readouterr().err


class TestCliTelemetry:
    def test_drive_exports_chrome_trace_that_round_trips(self, tmp_path, capsys):
        """Acceptance: drive --telemetry-out produces a Chrome trace that
        ``python -m repro telemetry`` summarises."""
        path = str(tmp_path / "drive.trace.json")
        assert main([
            "drive", "--duration", "10",
            "--telemetry-out", path, "--telemetry-format", "chrome",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out and "(chrome)" in out

        import json

        with open(path) as fh:
            document = json.load(fh)
        assert any(e["name"] == "drive.frame" for e in document["traceEvents"])

        assert main(["telemetry", "--telemetry-in", path]) == 0
        summary = capsys.readouterr().out
        assert "telemetry report" in summary
        assert "drive.frame" in summary
        assert "drive_frames: 500" in summary

    def test_drive_without_telemetry_prints_no_telemetry_line(self, capsys):
        assert main(["drive", "--duration", "5"]) == 0
        assert "telemetry:" not in capsys.readouterr().out

    def test_telemetry_top_appends_hot_span_table(self, tmp_path, capsys):
        path = str(tmp_path / "drive.jsonl")
        assert main(["drive", "--duration", "5", "--telemetry-out", path]) == 0
        capsys.readouterr()
        assert main(["telemetry", "--telemetry-in", path, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "hot spans" in out
        assert "drive.frame wall ms: p50=" in out

    def test_telemetry_without_top_omits_hot_span_table(self, tmp_path, capsys):
        path = str(tmp_path / "drive.jsonl")
        assert main(["drive", "--duration", "5", "--telemetry-out", path]) == 0
        capsys.readouterr()
        assert main(["telemetry", "--telemetry-in", path]) == 0
        assert "hot spans" not in capsys.readouterr().out

    def test_telemetry_format_openmetrics_is_a_scrapable_exposition(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "drive.jsonl")
        assert main(["drive", "--duration", "5", "--telemetry-out", path]) == 0
        capsys.readouterr()
        assert main(
            ["telemetry", "--telemetry-in", path, "--format", "openmetrics"]
        ) == 0
        out = capsys.readouterr().out
        assert out.rstrip().endswith("# EOF")
        assert "# TYPE drive_frames counter" in out
        assert "drive_frames_total" in out
        assert "frame_wall_ms_bucket" in out
        # It parses back with the module's own inverse.
        from repro.telemetry import parse_openmetrics

        assert parse_openmetrics(out)


class TestExtensibility:
    def test_animal_configuration_fits_paper_partition(self):
        """The paper's motivating extra ADS feature drops into the same RP."""
        from repro.hw import animal_design, dark_design, day_dusk_design, plan_vehicle_partition

        partition = plan_vehicle_partition([day_dusk_design().total, dark_design().total])
        assert partition.fits(animal_design().total)

    def test_soc_hosts_third_bitstream(self):
        from repro.zynq import BitstreamRepository, PartialBitstream, ZynqSoC

        repo = BitstreamRepository()
        repo.add(PartialBitstream(name="day_dusk", payload_seed=1))
        repo.add(PartialBitstream(name="dark", payload_seed=2))
        repo.add(PartialBitstream(name="animal", payload_seed=3, size_bytes=8_000_000))
        soc = ZynqSoC(repository=repo)
        soc.reconfigure_vehicle("animal")
        soc.sim.run()
        assert soc.vehicle.configuration == "animal"
        # ... and back, with the same ~20 ms cost.
        report = soc.reconfigure_vehicle("day_dusk")
        soc.sim.run()
        assert report.duration_s * 1e3 == pytest.approx(20.5, abs=0.5)
