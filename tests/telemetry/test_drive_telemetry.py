"""End-to-end telemetry: drives, SoC spans, non-perturbation, paper numbers."""

from __future__ import annotations

import pytest

from repro.adaptive.sensor import sunset_trace, urban_evening_trace
from repro.core.system import AdaptiveDetectionSystem
from repro.experiments.reconfig import PAPER_THROUGHPUT_MB_S, run_latency, run_throughput
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.telemetry import Telemetry, snapshot_values
from repro.zynq.soc import ZynqSoC

pytestmark = pytest.mark.telemetry


def _drive(telemetry=None, fault_plan=None, duration_s: float = 20.0):
    system = AdaptiveDetectionSystem(fault_plan=fault_plan, telemetry=telemetry)
    report = system.run_drive(sunset_trace(duration_s=duration_s))
    return report


class TestNonPerturbation:
    def test_summary_identical_with_and_without_telemetry(self):
        """The acceptance criterion: recording must not change the drive."""
        baseline = _drive(telemetry=None).summary()
        recorded = _drive(telemetry=Telemetry.recording()).summary()
        assert recorded == baseline

    def test_summary_identical_under_faults(self):
        def plan():
            return FaultPlan(
                [
                    FaultSpec(site=FaultSite.DMA_ERROR, start_s=2.0, end_s=2.1, max_firings=1),
                    FaultSpec(site=FaultSite.PR_STALL, start_s=8.0, end_s=12.0, magnitude=0.05),
                ]
            )

        baseline = _drive(fault_plan=plan()).summary()
        recorded = _drive(fault_plan=plan(), telemetry=Telemetry.recording()).summary()
        assert recorded == baseline

    def test_summary_opt_in_addendum(self):
        telemetry = Telemetry.recording()
        report = _drive(telemetry=telemetry)
        plain = report.summary()
        assert "telemetry" not in plain
        extended = report.summary(include_telemetry=True)
        assert extended["telemetry"]["spans"] == len(telemetry.tracer.spans)
        assert extended["telemetry"]["metric_series"] == len(telemetry.metrics)
        # Everything else is untouched.
        extended.pop("telemetry")
        assert extended == plain


class TestDriveSpans:
    def test_per_frame_spans_join_frame_records(self):
        telemetry = Telemetry.recording()
        report = _drive(telemetry=telemetry, duration_s=10.0)
        frames = telemetry.tracer.finished_spans("drive.frame")
        assert len(frames) == len(report.frames) == 500
        by_id = {span.span_id: span for span in frames}
        for record in report.frames:
            span = by_id[record.span_id]
            assert span.attrs["index"] == record.index
            assert span.attrs["condition"] == record.condition.value
        assert telemetry.metrics.value("drive_frames") == 500

    def test_without_telemetry_no_span_ids(self):
        report = _drive(telemetry=None, duration_s=5.0)
        assert all(record.span_id is None for record in report.frames)

    def test_reconfiguration_span_nested_under_a_frame(self):
        telemetry = Telemetry.recording()
        _drive(telemetry=telemetry, duration_s=20.0)
        (pr_span,) = telemetry.tracer.finished_spans("pr.reconfigure")
        assert pr_span.attrs["controller"] == "paper-pr"
        assert pr_span.attrs["outcome"] == "ok"
        assert pr_span.duration_s * 1e3 == pytest.approx(20.5, abs=0.5)
        frame_ids = {s.span_id for s in telemetry.tracer.finished_spans("drive.frame")}
        assert pr_span.parent_id in frame_ids

    def test_faults_tag_enclosing_frame_span(self):
        plan = FaultPlan(
            [FaultSpec(site=FaultSite.DMA_ERROR, start_s=2.0, end_s=2.5, max_firings=1)]
        )
        telemetry = Telemetry.recording()
        _drive(telemetry=telemetry, fault_plan=plan, duration_s=5.0)
        tagged = [
            span
            for span in telemetry.tracer.finished_spans("drive.frame")
            if any(e.name == "fault" for e in span.events)
        ]
        assert tagged, "fault event should land on a frame span"
        assert telemetry.metrics.value("faults_total", site="dma-error") == 1


class TestSocMetrics:
    def test_record_telemetry_publishes_link_and_dma_series(self):
        telemetry = Telemetry.recording()
        _drive(telemetry=telemetry, duration_s=5.0)
        values = snapshot_values(telemetry.metrics.snapshot())
        assert values["link_bytes_moved"][(("link", "hp0"),)] > 0
        assert any(v > 0 for v in values["dma_bytes_transferred"].values())
        assert values["frames_processed"][(("detector", "pedestrian"),)] == 250


class TestPaperNumbersFromMetrics:
    def test_rt_throughput_ranking_reproducible_from_metrics(self):
        """Section IV-A: the MB/s ranking re-derived from the gauges alone."""
        telemetry = Telemetry.recording()
        run_throughput(telemetry=telemetry)
        values = snapshot_values(telemetry.metrics.snapshot())["pr_throughput_mbs"]
        rates = {labels[0][1]: value for labels, value in values.items()}
        assert rates["paper-pr"] > rates["zycap"] > rates["pcap"] > rates["hwicap"]
        for name, paper in PAPER_THROUGHPUT_MB_S.items():
            assert rates[name] == pytest.approx(paper, rel=0.05)

    def test_rl_latency_numbers_reproducible_from_metrics(self):
        """Section IV-B: ~20 ms reconfig = one dropped frame, from metrics."""
        telemetry = Telemetry.recording()
        run_latency(
            trace=urban_evening_trace(duration_s=120.0), telemetry=telemetry
        )
        reconfig = telemetry.metrics.histogram("reconfig_ms")
        assert reconfig.count >= 1
        assert 18.0 <= reconfig.mean <= 23.0
        assert telemetry.metrics.value("drops_per_reconfiguration") == pytest.approx(1.0)
        assert telemetry.metrics.value("frames_dropped", detector="pedestrian") is None


class TestZynqTelemetry:
    def test_soc_dma_transfer_spans(self):
        telemetry = Telemetry.recording()
        soc = ZynqSoC(telemetry=telemetry)
        soc.submit_frame("vehicle")
        soc.sim.run()
        transfers = telemetry.tracer.finished_spans("dma.transfer")
        assert transfers, "frame path should produce DMA transfer spans"
        for span in transfers:
            assert span.attrs["outcome"] == "ok"
            assert span.attrs["bytes"] > 0
            assert span.duration_s > 0

    def test_degradation_events_and_counters(self):
        plan = FaultPlan(
            [FaultSpec(site=FaultSite.DMA_ERROR, start_s=0.0, end_s=1.0, max_firings=1)]
        )
        telemetry = Telemetry.recording()
        soc = ZynqSoC(faults=plan, telemetry=telemetry)
        soc.submit_frame("vehicle")
        soc.sim.run()
        assert telemetry.metrics.value("degradations_total", kind="dma-reset") == 1
