"""Tests for repro.telemetry.metrics: series, registry, timing helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    MetricsRegistry,
    Stopwatch,
    snapshot_values,
    throughput_mbs,
)

pytestmark = pytest.mark.telemetry


class TestThroughputHelper:
    def test_paper_number(self):
        # 8 MB in ~20.5 ms is the paper's ~390 MB/s.
        assert throughput_mbs(8_000_000, 0.02051) == pytest.approx(390.0, abs=0.5)

    def test_empty_interval_is_zero_not_an_error(self):
        assert throughput_mbs(1_000, 0.0) == 0.0
        assert throughput_mbs(1_000, -1.0) == 0.0

    def test_stopwatch_measures_injected_clock(self):
        ticks = iter([10.0, 10.5])
        with Stopwatch(wall_clock=lambda: next(ticks)) as sw:
            pass
        assert sw.elapsed_s == pytest.approx(0.5)
        assert sw.throughput_mbs(5_000_000) == pytest.approx(10.0)


class TestSeries:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("frames")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2.0

    def test_histogram_buckets_and_stats(self):
        hist = MetricsRegistry().histogram("lat_ms", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 1, 1]  # one overflow
        assert hist.count == 4
        assert hist.min == 0.5
        assert hist.max == 500.0
        assert hist.mean == pytest.approx(138.875)

    def test_histogram_bounds_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", bounds=(10.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("empty", bounds=())


class TestRegistry:
    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("drops", detector="vehicle")
        b = registry.counter("drops", detector="vehicle")
        other = registry.counter("drops", detector="pedestrian")
        assert a is b
        assert a is not other
        assert len(registry) == 2

    def test_value_lookup(self):
        registry = MetricsRegistry()
        registry.counter("drops", detector="vehicle").inc(3)
        registry.gauge("mbs", controller="paper-pr").set(390.0)
        assert registry.value("drops", detector="vehicle") == 3.0
        assert registry.value("mbs", controller="paper-pr") == 390.0
        assert registry.value("missing") is None

    def test_snapshot_round_trips_through_snapshot_values(self):
        registry = MetricsRegistry()
        registry.counter("faults", site="dma-error").inc(2)
        registry.histogram("reconfig_ms").observe(20.5)
        table = snapshot_values(registry.snapshot())
        assert table["faults"][(("site", "dma-error"),)] == 2.0
        assert table["reconfig_ms"][()] == pytest.approx(20.5)


class TestHistogramPercentiles:
    def _hist(self, values, bounds=(1.0, 10.0, 100.0)):
        hist = MetricsRegistry().histogram("lat_ms", bounds=bounds)
        for value in values:
            hist.observe(value)
        return hist

    def test_empty_histogram_has_no_percentiles(self):
        hist = MetricsRegistry().histogram("lat_ms", bounds=(1.0,))
        assert hist.percentile(50.0) is None
        assert hist.percentiles() == {}

    def test_q_out_of_range_rejected(self):
        hist = self._hist([5.0])
        with pytest.raises(ConfigurationError):
            hist.percentile(-1.0)
        with pytest.raises(ConfigurationError):
            hist.percentile(100.5)

    def test_interpolates_within_bucket(self):
        # 10 samples uniform in the (1, 10] bucket: the p50 estimate lands
        # mid-bucket by linear interpolation.
        hist = self._hist([float(v) for v in range(1, 11)], bounds=(0.0, 10.0, 100.0))
        estimate = hist.percentile(50.0)
        assert 4.0 <= estimate <= 6.0

    def test_estimates_bounded_by_observations(self):
        hist = self._hist([5.0, 6.0, 7.0])
        assert hist.min <= hist.percentile(0.0) <= hist.max
        assert hist.percentile(100.0) <= hist.max

    def test_overflow_bucket_uses_observed_max(self):
        hist = self._hist([500.0, 600.0])
        assert hist.percentile(99.0) <= 600.0
        assert hist.percentile(99.0) > 100.0

    def test_percentiles_table_keys(self):
        hist = self._hist([1.0, 2.0, 3.0])
        table = hist.percentiles()
        assert set(table) == {"p50", "p90", "p99"}
        table_custom = hist.percentiles(qs=(25.0,))
        assert set(table_custom) == {"p25"}

    def test_to_dict_gains_percentiles_keeps_existing_keys(self):
        hist = self._hist([5.0, 50.0])
        doc = hist.to_dict()
        for key in ("kind", "name", "labels", "bounds", "bucket_counts",
                    "count", "sum", "min", "max"):
            assert key in doc
        assert set(doc["percentiles"]) == {"p50", "p90", "p99"}
