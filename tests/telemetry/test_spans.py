"""Tests for repro.telemetry.spans: the tracing core."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.spans import NULL_SPAN, NullTracer, Span, Tracer

pytestmark = pytest.mark.telemetry


class FakeClock:
    """A settable clock so span bounds are exact in tests."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def tracer(clock) -> Tracer:
    wall = FakeClock(100.0)
    t = Tracer(clock=clock, wall_clock=wall)
    t.wall = wall  # type: ignore[attr-defined]
    return t


class TestLexicalSpans:
    def test_span_records_both_clocks(self, tracer, clock):
        with tracer.span("work", label="a") as span:
            clock.advance(2.0)
            tracer.wall.advance(0.5)
        assert span.finished
        assert span.duration_s == pytest.approx(2.0)
        assert span.wall_duration_s == pytest.approx(0.5)
        assert span.attrs["label"] == "a"
        assert tracer.finished_spans("work") == [span]

    def test_nesting_builds_a_parent_tree(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span is inner
            assert tracer.current_span is outer
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert tracer.current_span is None

    def test_exception_is_recorded_and_span_closed(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("risky") as span:
                raise ValueError("boom")
        assert span.finished
        assert span.attrs["error"] == "ValueError: boom"
        assert tracer.current_span is None

    def test_event_attaches_to_innermost_open_span(self, tracer, clock):
        with tracer.span("frame") as span:
            clock.advance(1.0)
            tracer.event("fault", site="dma-error")
        assert [e.name for e in span.events] == ["fault"]
        assert span.events[0].time_s == pytest.approx(1.0)
        assert span.events[0].attrs == {"site": "dma-error"}

    def test_event_without_open_span_becomes_zero_length_span(self, tracer, clock):
        clock.advance(3.0)
        tracer.event("irq.delivered", line="dma.done")
        (span,) = tracer.finished_spans("irq.delivered")
        assert span.start_s == span.end_s == pytest.approx(3.0)
        assert span.attrs == {"line": "dma.done"}


class TestCallbackSpans:
    def test_begin_end_outside_the_lexical_stack(self, tracer, clock):
        span = tracer.begin("dma.transfer", engine="veh")
        assert tracer.current_span is None  # not lexically scoped
        clock.advance(0.25)
        tracer.end(span, outcome="ok")
        assert span.duration_s == pytest.approx(0.25)
        assert span.attrs == {"engine": "veh", "outcome": "ok"}

    def test_begin_inherits_lexical_parent(self, tracer):
        with tracer.span("frame") as frame:
            child = tracer.begin("dma.transfer")
        assert child.parent_id == frame.span_id

    def test_end_is_idempotent(self, tracer, clock):
        span = tracer.begin("op")
        tracer.end(span)
        first_end = span.end_s
        clock.advance(5.0)
        tracer.end(span)
        assert span.end_s == first_end
        assert len(tracer.spans) == 1

    def test_end_of_null_span_is_a_noop(self, tracer):
        tracer.end(NULL_SPAN)
        assert tracer.spans == []


class TestRingBuffer:
    def test_oldest_finished_spans_are_evicted(self, tracer):
        tracer.max_spans = 2
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.spans] == ["s3", "s4"]
        assert tracer.spans_dropped == 3

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)


class TestNullTracer:
    def test_disabled_and_allocation_free(self):
        null = NullTracer()
        assert not null.enabled
        assert null.span("x") is NULL_SPAN
        assert null.begin("x") is NULL_SPAN
        null.end(NULL_SPAN)
        null.event("x")
        assert null.spans == ()

    def test_null_span_is_its_own_context_manager(self):
        with NullTracer().span("x") as span:
            span.set_attr("k", 1)
            span.add_event("e", 0.0)
        assert span is NULL_SPAN
        assert span.attrs == {}


class TestSerialization:
    def test_to_dict_from_dict_round_trip(self, tracer, clock):
        with tracer.span("op", bytes=64) as span:
            clock.advance(1.5)
            tracer.event("mark", note="mid")
        loaded = Span.from_dict(span.to_dict())
        assert loaded.name == span.name
        assert loaded.span_id == span.span_id
        assert loaded.duration_s == pytest.approx(span.duration_s)
        assert loaded.attrs == span.attrs
        assert [e.name for e in loaded.events] == ["mark"]
        assert loaded.events[0].attrs == {"note": "mid"}
