"""Tests for repro.telemetry.exporters: JSONL / Chrome / text round trips."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    Telemetry,
    export,
    load_dump,
    render_report,
    summarize_file,
)

pytestmark = pytest.mark.telemetry


@pytest.fixture()
def session() -> Telemetry:
    """A small recorded session with nested spans, events, and metrics."""
    clock = {"now": 0.0}
    telemetry = Telemetry.recording(
        clock=lambda: clock["now"], meta={"artefact": "unit", "duration_s": 1.0}
    )
    with telemetry.span("drive.frame", index=0) as frame:
        clock["now"] = 0.005
        telemetry.event("fault", site="dma-error", target="dma-veh-mm2s")
        span = telemetry.tracer.begin("dma.transfer", engine="veh")
        clock["now"] = 0.012
        telemetry.tracer.end(span, outcome="ok")
        clock["now"] = 0.020
    assert frame.finished
    telemetry.counter("frames").inc()
    telemetry.gauge("pr_throughput_mbs", controller="paper-pr").set(390.0)
    telemetry.histogram("reconfig_ms").observe(20.5)
    return telemetry


class TestJsonl:
    def test_round_trip(self, session, tmp_path):
        path = str(tmp_path / "dump.jsonl")
        export(session, path, "jsonl")
        dump = load_dump(path)
        assert dump.meta["artefact"] == "unit"
        assert {s.name for s in dump.spans} == {"drive.frame", "dma.transfer"}
        frame = next(s for s in dump.spans if s.name == "drive.frame")
        child = next(s for s in dump.spans if s.name == "dma.transfer")
        assert child.parent_id == frame.span_id
        assert [e.name for e in frame.events] == ["fault"]
        assert {m["name"] for m in dump.metrics} == {
            "frames",
            "pr_throughput_mbs",
            "reconfig_ms",
        }

    def test_bad_jsonl_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ConfigurationError, match=":2:"):
            load_dump(str(path))

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "weird.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ConfigurationError, match="mystery"):
            load_dump(str(path))


class TestChrome:
    def test_document_shape(self, session, tmp_path):
        path = str(tmp_path / "trace.json")
        export(session, path, "chrome")
        with open(path) as fh:
            document = json.load(fh)
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"drive.frame", "dma.transfer"}
        frame = next(e for e in complete if e["name"] == "drive.frame")
        # Sim seconds map to trace microseconds: the 20 ms frame reads 20 000 µs.
        assert frame["dur"] == pytest.approx(20_000.0)
        assert [e["name"] for e in instants] == ["fault"]
        assert {e["args"]["name"] for e in metadata} == {"drive", "dma"}
        assert document["otherData"]["meta"]["artefact"] == "unit"

    def test_round_trip_preserves_structure_and_metrics(self, session, tmp_path):
        path = str(tmp_path / "trace.json")
        export(session, path, "chrome")
        dump = load_dump(path)  # format sniffed from content
        frame = next(s for s in dump.spans if s.name == "drive.frame")
        child = next(s for s in dump.spans if s.name == "dma.transfer")
        assert child.parent_id == frame.span_id
        assert frame.duration_s == pytest.approx(0.020)
        assert [e.name for e in frame.events] == ["fault"]
        assert frame.events[0].attrs["site"] == "dma-error"
        table = {m["name"]: m for m in dump.metrics}
        assert table["pr_throughput_mbs"]["value"] == 390.0
        assert table["reconfig_ms"]["count"] == 1


class TestTextAndErrors:
    def test_text_report_contains_aggregates(self, session, tmp_path):
        path = str(tmp_path / "report.txt")
        export(session, path, "text")
        content = open(path).read()
        assert "telemetry report" in content
        assert "drive.frame" in content
        assert "pr_throughput_mbs{controller=paper-pr}: 390" in content

    def test_summarize_file_matches_render_report(self, session, tmp_path):
        path = str(tmp_path / "dump.jsonl")
        export(session, path, "jsonl")
        summary = summarize_file(path)
        dump = load_dump(path)
        assert summary == render_report(dump.spans, dump.metrics, dump.meta)

    def test_unknown_format_rejected(self, session, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown telemetry format"):
            export(session, str(tmp_path / "x"), "xml")

    def test_empty_dump_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            load_dump(str(path))
