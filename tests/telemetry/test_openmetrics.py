"""OpenMetrics exposition: render/parse round trip against a hand fixture."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import Telemetry, export
from repro.telemetry.openmetrics import (
    metric_name,
    parse_openmetrics,
    render_openmetrics,
    write_exposition,
)

pytestmark = pytest.mark.telemetry

# Hand-written canonical exposition: one counter, one labelled gauge, one
# histogram.  render_openmetrics must reproduce this text byte for byte
# from the snapshot below, and parse_openmetrics must invert it.
FIXTURE = """\
# TYPE drive_frames counter
drive_frames_total 250.0
# TYPE queue_depth gauge
queue_depth{queue="status"} 3.0
# TYPE frame_wall_ms histogram
frame_wall_ms_bucket{le="1.0"} 2
frame_wall_ms_bucket{le="5.0"} 5
frame_wall_ms_bucket{le="+Inf"} 6
frame_wall_ms_sum 14.5
frame_wall_ms_count 6
# EOF
"""

SNAPSHOT = [
    {"kind": "counter", "name": "drive_frames", "labels": {}, "value": 250.0},
    {"kind": "gauge", "name": "queue_depth", "labels": {"queue": "status"}, "value": 3.0},
    {
        "kind": "histogram",
        "name": "frame_wall_ms",
        "labels": {},
        "bounds": [1.0, 5.0],
        "bucket_counts": [2, 3, 1],
        "count": 6,
        "sum": 14.5,
    },
]


class TestRender:
    def test_fixture_is_reproduced_byte_for_byte(self):
        assert render_openmetrics(SNAPSHOT) == FIXTURE

    def test_counter_named_total_is_not_doubled(self):
        text = render_openmetrics(
            [{"kind": "counter", "name": "faults_total", "labels": {}, "value": 1.0}]
        )
        assert "# TYPE faults counter" in text
        assert "faults_total 1.0" in text
        assert "faults_total_total" not in text

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown metric kind"):
            render_openmetrics([{"kind": "summary", "name": "x", "value": 1.0}])

    def test_conflicting_family_kinds_are_rejected(self):
        with pytest.raises(ConfigurationError, match="both"):
            render_openmetrics(
                [
                    {"kind": "gauge", "name": "x", "labels": {}, "value": 1.0},
                    {"kind": "counter", "name": "x", "labels": {}, "value": 1.0},
                ]
            )

    def test_histogram_shape_mismatch_is_rejected(self):
        with pytest.raises(ConfigurationError, match="bucket counts"):
            render_openmetrics(
                [
                    {
                        "kind": "histogram",
                        "name": "h",
                        "labels": {},
                        "bounds": [1.0, 2.0],
                        "bucket_counts": [1, 2],  # needs len(bounds) + 1
                        "count": 3,
                        "sum": 0.0,
                    }
                ]
            )

    def test_names_are_sanitized(self):
        assert metric_name("fleet.drives/s") == "fleet_drives_s"
        text = render_openmetrics(
            [{"kind": "gauge", "name": "fleet.drives/s", "labels": {}, "value": 2.0}]
        )
        assert "fleet_drives_s 2.0" in text


class TestParse:
    def test_round_trip_through_parse_is_identity(self):
        # render ∘ parse is the identity on canonical expositions.
        assert render_openmetrics(parse_openmetrics(FIXTURE)) == FIXTURE

    def test_histogram_buckets_are_decumulated(self):
        series = {s["name"]: s for s in parse_openmetrics(FIXTURE)}
        histogram = series["frame_wall_ms"]
        assert histogram["bounds"] == [1.0, 5.0]
        assert histogram["bucket_counts"] == [2, 3, 1]
        assert histogram["count"] == 6
        assert histogram["sum"] == 14.5
        # min/max are not part of the exposition format
        assert histogram["min"] is None and histogram["max"] is None

    def test_missing_eof_is_rejected(self):
        with pytest.raises(ConfigurationError, match="EOF"):
            parse_openmetrics("# TYPE x gauge\nx 1.0\n")

    def test_sample_without_type_is_rejected(self):
        with pytest.raises(ConfigurationError, match="no preceding TYPE"):
            parse_openmetrics("mystery 1.0\n# EOF\n")

    def test_malformed_sample_is_rejected(self):
        with pytest.raises(ConfigurationError, match="not a sample line"):
            parse_openmetrics("# TYPE x gauge\nx 1.0 trailing junk\n# EOF\n")

    def test_label_escaping_round_trips(self):
        snapshot = [
            {
                "kind": "gauge",
                "name": "g",
                "labels": {"path": 'a"b\\c'},
                "value": 1.0,
            }
        ]
        text = render_openmetrics(snapshot)
        (parsed,) = parse_openmetrics(text)
        assert parsed["labels"] == {"path": 'a"b\\c'}


class TestExportIntegration:
    def test_telemetry_export_openmetrics_format(self, tmp_path):
        telemetry = Telemetry.recording()
        telemetry.metrics.counter("drive_frames").inc(7)
        telemetry.metrics.histogram("frame_wall_ms").observe(2.5)
        path = tmp_path / "metrics.om"
        export(telemetry, str(path), "openmetrics")
        text = path.read_text()
        assert text.endswith("# EOF\n")
        names = {s["name"] for s in parse_openmetrics(text)}
        assert "drive_frames_total" in names
        assert "frame_wall_ms" in names

    def test_write_exposition_rewrites_whole_document(self, tmp_path):
        path = tmp_path / "metrics.om"
        write_exposition(SNAPSHOT, str(path))
        write_exposition(SNAPSHOT, str(path))  # second scrape overwrites
        assert path.read_text() == FIXTURE
