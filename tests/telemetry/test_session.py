"""Tests for repro.telemetry.session: the Telemetry bundle and null path."""

from __future__ import annotations

import pytest

from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.spans import NULL_SPAN

pytestmark = pytest.mark.telemetry


class TestNullTelemetry:
    def test_disabled_and_inert(self):
        assert not NULL_TELEMETRY.enabled
        NULL_TELEMETRY.counter("c", any_label="x").inc()
        NULL_TELEMETRY.gauge("g").set(5)
        NULL_TELEMETRY.histogram("h").observe(1.0)
        NULL_TELEMETRY.event("e", time_s=0.0)
        assert len(NULL_TELEMETRY.metrics) == 0
        assert NULL_TELEMETRY.metrics.snapshot() == []
        assert NULL_TELEMETRY.metrics.value("c") is None

    def test_stage_returns_the_shared_null_span(self):
        with NULL_TELEMETRY.stage("dark.preprocess") as span:
            pass
        assert span is NULL_SPAN

    def test_bind_clock_is_a_noop_when_disabled(self):
        NULL_TELEMETRY.bind_clock(lambda: 42.0)  # must not raise or record
        assert not NULL_TELEMETRY.enabled

    def test_default_constructor_is_disabled(self):
        assert not Telemetry().enabled


class TestRecordingSession:
    def test_stage_spans_and_histograms_wall_time(self):
        wall = {"now": 0.0}
        telemetry = Telemetry.recording(wall_clock=lambda: wall["now"])
        with telemetry.stage("dark.dbn_grid") as span:
            wall["now"] = 0.004
        assert span.finished
        assert telemetry.tracer.finished_spans("dark.dbn_grid") == [span]
        hist = telemetry.metrics.histogram("stage_wall_ms", stage="dark.dbn_grid")
        assert hist.count == 1
        assert hist.mean == pytest.approx(4.0)

    def test_bind_clock_redirects_sim_time(self):
        telemetry = Telemetry.recording()
        telemetry.bind_clock(lambda: 7.0)
        with telemetry.span("op") as span:
            pass
        assert span.start_s == 7.0

    def test_meta_is_copied(self):
        meta = {"artefact": "drive"}
        telemetry = Telemetry.recording(meta=meta)
        meta["artefact"] = "mutated"
        assert telemetry.meta["artefact"] == "drive"
