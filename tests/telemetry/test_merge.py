"""Cross-process metric merging: registries, series, and plain snapshots."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots, snapshot_values

pytestmark = pytest.mark.telemetry

BOUNDS = (1.0, 5.0, 10.0)


def make_registry(frames: int, wall_ms: float, gauge: float) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("drive_frames").inc(frames)
    for _ in range(frames):
        registry.histogram("frame_wall_ms", bounds=BOUNDS).observe(wall_ms)
    registry.gauge("queue_depth").set(gauge)
    return registry


class TestSeriesMerge:
    def test_counters_add(self):
        a, b = make_registry(3, 0.5, 1.0), make_registry(4, 0.5, 2.0)
        a.merge(b)
        assert a.value("drive_frames") == 7

    def test_gauges_last_writer_wins(self):
        a, b = make_registry(1, 0.5, 1.0), make_registry(1, 0.5, 9.0)
        a.merge(b)
        assert a.value("queue_depth") == 9.0

    def test_histograms_add_bucket_wise(self):
        a, b = make_registry(3, 0.5, 0.0), make_registry(2, 7.0, 0.0)
        a.merge(b)
        hist = a.histogram("frame_wall_ms", bounds=BOUNDS)
        assert hist.count == 5
        assert hist.min == 0.5 and hist.max == 7.0
        assert hist.bucket_counts == [3, 0, 2, 0]

    def test_histogram_bounds_must_agree(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b.histogram("h", bounds=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ConfigurationError, match="bounds"):
            a.merge(b)

    def test_missing_series_carry_over(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only_in_b").inc(2)
        a.merge(b)
        assert a.value("only_in_b") == 2
        # ... without aliasing the source registry's series.
        b.counter("only_in_b").inc(10)
        assert a.value("only_in_b") == 2

    def test_labels_separate_series(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("faults", source="dma").inc()
        b.counter("faults", source="sensor").inc(3)
        a.merge(b)
        assert a.value("faults", source="dma") == 1
        assert a.value("faults", source="sensor") == 3


class TestAssociativity:
    def test_registry_merge_is_associative(self):
        a = make_registry(2, 0.5, 1.0)
        b = make_registry(3, 3.0, 2.0)
        c = make_registry(5, 8.0, 3.0)
        left = snap_registry(snap_registry(a, b), c).snapshot()
        right = snap_registry(a, snap_registry(b, c)).snapshot()
        assert left == right

    def test_snapshot_merge_is_associative(self):
        a = make_registry(2, 0.5, 1.0).snapshot()
        b = make_registry(3, 3.0, 2.0).snapshot()
        c = make_registry(5, 8.0, 3.0).snapshot()
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    def test_snapshot_merge_matches_registry_merge(self):
        a = make_registry(2, 0.5, 1.0)
        b = make_registry(3, 3.0, 2.0)
        via_snapshots = merge_snapshots(a.snapshot(), b.snapshot())
        assert via_snapshots == a.merge(b).snapshot()


def snap_registry(*registries: MetricsRegistry) -> MetricsRegistry:
    target = MetricsRegistry()
    for registry in registries:
        target.merge(registry)
    return target


class TestMergeSnapshots:
    def test_empty_input_is_empty(self):
        assert merge_snapshots() == []
        assert merge_snapshots([], []) == []

    def test_counts_and_values_fold(self):
        merged = merge_snapshots(
            make_registry(2, 0.5, 1.0).snapshot(),
            make_registry(3, 7.0, 4.0).snapshot(),
        )
        values = snapshot_values(merged)
        assert values["drive_frames"][()] == 5
        assert values["queue_depth"][()] == 4.0
        hist = next(s for s in merged if s["kind"] == "histogram")
        assert hist["count"] == 5
        assert "percentiles" in hist

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown metric kind"):
            merge_snapshots([{"kind": "summary", "name": "x", "labels": {}}])

    def test_bucket_count_shape_checked(self):
        broken = [
            {
                "kind": "histogram",
                "name": "h",
                "labels": {},
                "bounds": [1.0, 2.0],
                "bucket_counts": [1],
            }
        ]
        with pytest.raises(ConfigurationError, match="bucket counts"):
            merge_snapshots(broken)

    def test_first_appearance_order_is_kept(self):
        a = MetricsRegistry()
        a.counter("first").inc()
        b = MetricsRegistry()
        b.counter("second").inc()
        b.counter("first").inc()
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert [s["name"] for s in merged] == ["first", "second"]
