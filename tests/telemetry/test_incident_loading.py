"""Telemetry loader over incident bundles + span window filtering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.monitor import FrameSnapshot, TriggerEvent, write_bundle
from repro.telemetry import Span, filter_spans, load_dump, render_report

pytestmark = pytest.mark.telemetry


def span(span_id: int, start: float, end: float | None, name: str = "drive.frame") -> Span:
    return Span(span_id=span_id, name=name, start_s=start, end_s=end)


@pytest.fixture()
def bundle_dir(tmp_path):
    snapshots = [
        FrameSnapshot(record={"index": i, "time_s": i * 0.02}) for i in range(3)
    ]
    triggers = [TriggerEvent(kind="fault", time_s=0.02, frame_index=1, detail="dma")]
    return write_bundle(
        tmp_path / "incident-000-fault",
        {"incident_id": "incident-000-fault", "trigger": triggers[0].to_dict()},
        snapshots,
        triggers,
        violations=[{"time_s": 0.02, "slo": "frame-deadline", "severity": "degraded"}],
        spans=[span(1, 0.0, 0.04).to_dict(), span(2, 0.02, None).to_dict()],
        metrics=[{"kind": "counter", "name": "drive_frames", "labels": {}, "value": 3.0}],
    )


class TestBundleLoading:
    def test_load_dump_recognizes_a_bundle_directory(self, bundle_dir):
        dump = load_dump(bundle_dir)
        assert dump.meta["source"] == "incident-bundle"
        assert dump.meta["incident_id"] == "incident-000-fault"
        assert dump.meta["trigger"] == "fault"
        assert dump.meta["frame_records"] == 3
        assert dump.meta["violation_records"] == 1
        assert [s.span_id for s in dump.spans] == [1, 2]
        assert dump.metrics[0]["name"] == "drive_frames"

    def test_load_dump_accepts_the_manifest_path(self, bundle_dir):
        dump = load_dump(bundle_dir / "manifest.json")
        assert dump.meta["source"] == "incident-bundle"

    def test_loaded_bundle_renders_a_report(self, bundle_dir):
        dump = load_dump(bundle_dir)
        report = render_report(dump.spans, dump.metrics, dump.meta)
        assert "incident-bundle" in report
        assert "drive.frame" in report


class TestFilterSpans:
    def test_overlap_semantics(self):
        spans = [span(1, 0.0, 1.0), span(2, 2.0, 3.0), span(3, 4.0, 5.0)]
        assert [s.span_id for s in filter_spans(spans, since_s=1.5, until_s=3.5)] == [2]
        # Boundary touches count as overlap.
        assert [s.span_id for s in filter_spans(spans, since_s=1.0, until_s=2.0)] == [1, 2]

    def test_open_bounds(self):
        spans = [span(1, 0.0, 1.0), span(2, 2.0, 3.0)]
        assert [s.span_id for s in filter_spans(spans)] == [1, 2]
        assert [s.span_id for s in filter_spans(spans, since_s=1.5)] == [2]
        assert [s.span_id for s in filter_spans(spans, until_s=1.5)] == [1]

    def test_open_span_counts_at_its_start(self):
        spans = [span(1, 2.0, None)]
        assert filter_spans(spans, since_s=0.0, until_s=1.0) == []
        assert [s.span_id for s in filter_spans(spans, since_s=1.0, until_s=3.0)] == [1]

    def test_empty_window_is_rejected(self):
        with pytest.raises(ConfigurationError, match="empty span window"):
            filter_spans([], since_s=2.0, until_s=1.0)
