"""Quality SLOs inside the health monitor: budgets, detectors, the walk."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import ConfigurationError
from repro.monitor.slo import HealthMonitor, HealthState, SloBudgets

pytestmark = [pytest.mark.quality, pytest.mark.monitor]


@dataclass
class Scored:
    """The duck-typed scored-frame surface `_quality_violations` reads."""

    tp: int = 0
    fp: int = 0
    fn: int = 0


def small_budgets(**overrides) -> SloBudgets:
    defaults = dict(
        quality_window=8,
        quality_min_samples=4,
        recovery_frames=3,
    )
    defaults.update(overrides)
    return SloBudgets(**defaults)


def feed(monitor, frames, start_index=0):
    """Feed (quality, ...) frames; returns all violations and transitions."""
    violations, transitions = [], []
    for offset, quality in enumerate(frames):
        index = start_index + offset
        found, transition = monitor.observe_frame(
            index, index * 0.02, quality=quality
        )
        violations.extend(found)
        if transition is not None:
            transitions.append(transition)
    return violations, transitions


class TestBudgetValidation:
    def test_quality_window_must_hold_two_samples(self):
        with pytest.raises(ConfigurationError, match="quality windows"):
            SloBudgets(quality_window=1)
        with pytest.raises(ConfigurationError, match="quality windows"):
            SloBudgets(quality_min_samples=1)

    def test_collapse_must_not_exceed_floor(self):
        with pytest.raises(ConfigurationError, match="collapse <= floor"):
            SloBudgets(quality_collapse_recall=0.7, quality_recall_floor=0.6)

    def test_fp_ceiling_and_drift_params_positive(self):
        with pytest.raises(ConfigurationError, match="fp_per_frame"):
            SloBudgets(quality_fp_per_frame_max=0.0)
        with pytest.raises(ConfigurationError, match="drift parameters"):
            SloBudgets(quality_drift_mad_k=0.0)

    def test_to_dict_round_trips(self):
        budgets = small_budgets(quality_recall_floor=0.7)
        assert SloBudgets(**budgets.to_dict()) == budgets

    def test_pre_quality_budget_dicts_still_load(self):
        # Bundles written before the quality plane carry no quality keys;
        # SloBudgets(**manifest["budgets"]) must keep loading them.
        old = {
            k: v
            for k, v in SloBudgets().to_dict().items()
            if not k.startswith("quality_")
        }
        budgets = SloBudgets(**old)
        assert budgets.quality_window == SloBudgets().quality_window


class TestQualityDetectors:
    def test_quiet_below_min_samples(self):
        monitor = HealthMonitor(small_budgets())
        violations, _ = feed(monitor, [Scored(tp=0, fn=1)] * 3)
        assert violations == []

    def test_fp_rate_ceiling(self):
        monitor = HealthMonitor(small_budgets(quality_fp_per_frame_max=1.0))
        violations, _ = feed(monitor, [Scored(tp=1, fp=2)] * 6)
        assert any(v.slo == "quality-fp-rate" for v in violations)
        assert all(v.severity is HealthState.DEGRADED for v in violations)

    def test_recall_undefined_window_stays_quiet(self):
        # No ground-truth vehicles anywhere: recall is undefined, and an
        # undefined recall must never alarm.
        monitor = HealthMonitor(small_budgets())
        violations, _ = feed(monitor, [Scored()] * 20)
        assert violations == []

    def test_unscored_frames_do_not_engage_quality_slos(self):
        monitor = HealthMonitor(small_budgets())
        violations, transitions = feed(monitor, [None] * 20)
        assert violations == []
        assert transitions == []
        assert monitor.state is HealthState.OK

    def test_absolute_floor_flags_low_recall(self):
        monitor = HealthMonitor(small_budgets())
        violations, _ = feed(
            monitor, [Scored(tp=1, fn=1)] * 8  # windowed recall 0.5 < 0.6
        )
        assert any(v.slo == "quality-recall" for v in violations)

    def test_drift_flags_downward_slides_only(self):
        budgets = small_budgets(quality_drift_mad_k=4.0, quality_drift_floor=0.05)
        # Downward: perfect recall history, then misses.
        down = HealthMonitor(budgets)
        feed(down, [Scored(tp=1)] * 10)
        violations, _ = feed(down, [Scored(tp=0, fn=1)] * 2, start_index=10)
        assert any(v.slo == "quality-drift" for v in violations)
        # Upward: poor-but-legal recall history, then perfection — the
        # same magnitude of change in the other direction must not flag.
        up = HealthMonitor(budgets)
        feed(up, [Scored(tp=2, fn=1)] * 10)  # recall 0.67, above the floor
        violations, _ = feed(up, [Scored(tp=3)] * 10, start_index=10)
        assert not any(v.slo == "quality-drift" for v in violations)


class TestQualityWalk:
    def test_ok_degraded_critical_recovery(self):
        """The acceptance walk: OK -> DEGRADED -> CRITICAL -> back to OK."""
        monitor = HealthMonitor(small_budgets())
        # Healthy traffic: state stays OK.
        _, transitions = feed(monitor, [Scored(tp=1)] * 8)
        assert transitions == []
        assert monitor.state is HealthState.OK
        # Detections die: drift fires first (DEGRADED), the collapse
        # line later (CRITICAL).
        violations, transitions = feed(
            monitor, [Scored(tp=0, fn=1)] * 10, start_index=8
        )
        slos = [v.slo for v in violations]
        assert "quality-drift" in slos
        assert "quality-collapse" in slos
        assert [t.new for t in transitions] == [
            HealthState.DEGRADED,
            HealthState.CRITICAL,
        ]
        assert all("quality-" in t.reason for t in transitions)
        assert monitor.state is HealthState.CRITICAL
        # Detections return: windowed recall climbs back over the floor,
        # clean frames accumulate, and hysteresis steps back down.
        _, transitions = feed(monitor, [Scored(tp=1)] * 14, start_index=18)
        assert [t.new for t in transitions] == [
            HealthState.DEGRADED,
            HealthState.OK,
        ]
        assert monitor.state is HealthState.OK
