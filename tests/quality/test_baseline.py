"""Baseline snapshots, the compare gate, and the quality CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.errors import QualityError
from repro.quality.baseline import (
    DEFAULT_NOISE_FLOOR,
    QUALITY_SCHEMA,
    QUALITY_SCHEMA_VERSION,
    build_snapshot,
    compare,
    load_snapshot,
    quality_suite_specs,
    run_suite,
    write_snapshot,
)
from repro.quality.cli import main as quality_main

pytestmark = pytest.mark.quality

#: Short sim-duration for every suite run in this module (speed).
DURATION_S = 1.0


@pytest.fixture(scope="module")
def suite_drives():
    return run_suite(quality_suite_specs(DURATION_S, seed=0))


class TestSuite:
    def test_suite_names_are_unique_and_stable(self):
        specs = quality_suite_specs(DURATION_S, seed=0)
        names = [spec.name for spec in specs]
        assert len(names) == len(set(names))
        assert names == [spec.name for spec in quality_suite_specs(DURATION_S, seed=0)]

    def test_suite_is_deterministic(self, suite_drives):
        again = run_suite(quality_suite_specs(DURATION_S, seed=0))
        assert json.dumps(suite_drives, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_different_seed_changes_results(self, suite_drives):
        other = run_suite(quality_suite_specs(DURATION_S, seed=1))
        assert json.dumps(suite_drives, sort_keys=True) != json.dumps(
            other, sort_keys=True
        )


class TestSnapshotArtefact:
    def test_round_trip(self, suite_drives, tmp_path):
        doc = build_snapshot(suite_drives, label="test", suite_wall_s=1.5)
        assert doc["schema"] == QUALITY_SCHEMA
        assert doc["schema_version"] == QUALITY_SCHEMA_VERSION
        path = write_snapshot(tmp_path / "QUALITY_test.json", doc)
        assert load_snapshot(path) == doc

    def test_wall_section_is_optional(self, suite_drives, tmp_path):
        doc = build_snapshot(suite_drives, label="test")
        assert "wall" not in doc
        write_snapshot(tmp_path / "QUALITY_nowall.json", doc)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(QualityError, match="not valid JSON"):
            load_snapshot(path)
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(QualityError):
            load_snapshot(path)
        with pytest.raises(QualityError):
            load_snapshot(tmp_path / "missing.json")


def snapshot_copy(suite_drives, label="base"):
    # A deep copy: build_snapshot's drive table shares the nested metric
    # dicts with its input, and these tests tamper with them.
    return json.loads(json.dumps(build_snapshot(suite_drives, label=label)))


class TestCompare:
    def test_identical_suite_is_unchanged(self, suite_drives):
        report = compare(snapshot_copy(suite_drives), suite_drives)
        assert not report.has_regressions
        assert report.counts()["unchanged"] == len(suite_drives)

    def test_recall_regression_beyond_floor_fails(self, suite_drives):
        doc = snapshot_copy(suite_drives)
        name = sorted(suite_drives)[0]
        doc["drives"][name]["overall"]["recall"] += 2 * DEFAULT_NOISE_FLOOR
        report = compare(doc, suite_drives)
        assert report.has_regressions
        assert [e.name for e in report.regressions] == [name]

    def test_regression_within_noise_floor_passes(self, suite_drives):
        doc = snapshot_copy(suite_drives)
        name = sorted(suite_drives)[0]
        doc["drives"][name]["overall"]["recall"] += DEFAULT_NOISE_FLOOR / 2
        assert not compare(doc, suite_drives).has_regressions

    def test_improvement_is_reported_not_failed(self, suite_drives):
        doc = snapshot_copy(suite_drives)
        name = sorted(suite_drives)[0]
        doc["drives"][name]["overall"]["recall"] -= 2 * DEFAULT_NOISE_FLOOR
        report = compare(doc, suite_drives)
        assert not report.has_regressions
        assert [e.name for e in report.improvements] == [name]
        assert "ratchet" in report.render_text()

    def test_missing_and_new_drives(self, suite_drives):
        doc = snapshot_copy(suite_drives)
        doc["drives"]["quality-retired-drive"] = doc["drives"][
            sorted(suite_drives)[0]
        ]
        current = dict(suite_drives)
        current["quality-brand-new"] = current[sorted(suite_drives)[0]]
        report = compare(doc, current)
        counts = report.counts()
        assert counts["missing"] == 1
        assert counts["new"] == 1


class TestCli:
    def run(self, *argv):
        return quality_main([*argv, "--duration", str(DURATION_S)])

    def test_report_then_clean_compare(self, tmp_path, capsys):
        baseline = tmp_path / "QUALITY_BASELINE.json"
        assert self.run("report", "--out", str(baseline)) == 0
        assert baseline.exists()
        assert self.run("compare", str(baseline)) == 0
        out = capsys.readouterr().out
        assert "0 regressed" in out

    def test_compare_fails_on_tampered_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "QUALITY_BASELINE.json"
        assert self.run("report", "--out", str(baseline)) == 0
        doc = json.loads(baseline.read_text())
        name = sorted(doc["drives"])[0]
        doc["drives"][name]["overall"]["recall"] += 0.10
        baseline.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        assert self.run("compare", str(baseline)) == 1
        assert "regressed" in capsys.readouterr().out

    def test_compare_json_format(self, tmp_path, capsys):
        baseline = tmp_path / "QUALITY_BASELINE.json"
        assert self.run("report", "--out", str(baseline)) == 0
        capsys.readouterr()  # drain the report output
        assert self.run("compare", str(baseline), "--format", "json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["baseline"]
        assert not doc["has_regressions"]

    def test_missing_baseline_is_usage_error(self, tmp_path):
        assert self.run("compare", str(tmp_path / "nope.json")) == 2

    def test_report_without_out_prints_only(self, capsys):
        assert self.run("report") == 0
        assert "quality suite" in capsys.readouterr().out
