"""The ground-truth observer: determinism, model behaviour, provenance."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.adaptive.policy import CONFIG_FOR_CONDITION
from repro.adaptive.sensor import LuxTrace
from repro.datasets.lighting import LightingCondition
from repro.errors import QualityError
from repro.quality.observer import (
    NULL_QUALITY,
    ModelQualityObserver,
    QualityModelConfig,
    observer_from_provenance,
)

pytestmark = pytest.mark.quality

#: A bright, constant trace: the true condition is "day" everywhere.
DAY_TRACE = LuxTrace(points=((0.0, 50_000.0), (60.0, 50_000.0)))
DAY_CONFIG = CONFIG_FOR_CONDITION[LightingCondition.DAY].value
DARK_CONFIG = CONFIG_FOR_CONDITION[LightingCondition.DARK].value


@dataclass
class FakeFrame:
    """The FrameRecord surface the observer reads."""

    index: int
    time_s: float
    condition: LightingCondition = LightingCondition.DAY
    vehicle_accepted: bool = True
    vehicle_configuration: str = DAY_CONFIG
    reconfiguring: bool = False


def observe_n(observer, n, **frame_kwargs):
    observer.begin_drive(DAY_TRACE, duration_s=n * 0.02, n_frames=n)
    records = []
    for i in range(n):
        record = observer.observe_frame(
            FakeFrame(index=i, time_s=i * 0.02, **frame_kwargs), DAY_CONFIG
        )
        if record is not None:
            records.append(record)
    observer.finish_drive()
    return records


class TestDeterminism:
    def test_same_seed_same_records(self):
        a = observe_n(ModelQualityObserver(seed=77), 50)
        b = observe_n(ModelQualityObserver(seed=77), 50)
        assert [r.to_dict() for r in a] == [r.to_dict() for r in b]

    def test_different_seeds_differ(self):
        a = observe_n(ModelQualityObserver(seed=1), 50)
        b = observe_n(ModelQualityObserver(seed=2), 50)
        assert [r.to_dict() for r in a] != [r.to_dict() for r in b]

    def test_provenance_round_trip_reproduces(self):
        original = ModelQualityObserver(
            seed=9, config=QualityModelConfig(sample_every=2)
        )
        rebuilt = observer_from_provenance(original.provenance())
        assert rebuilt.seed == original.seed
        assert rebuilt.config == original.config
        assert [r.to_dict() for r in observe_n(original, 40)] == [
            r.to_dict() for r in observe_n(rebuilt, 40)
        ]

    def test_provenance_rejects_unknown_kind(self):
        with pytest.raises(QualityError, match="unknown quality observer kind"):
            observer_from_provenance({"kind": "oracle"})


class TestModelBehaviour:
    def test_dropped_frame_detects_nothing(self):
        records = observe_n(ModelQualityObserver(seed=5), 40, vehicle_accepted=False)
        assert all(r.detections == 0 for r in records)
        assert all(r.tp == 0 for r in records)

    def test_reconfiguring_frame_detects_nothing(self):
        records = observe_n(ModelQualityObserver(seed=5), 40, reconfiguring=True)
        assert all(r.detections == 0 for r in records)

    def test_mismatched_configuration_collapses_recall(self):
        matched = observe_n(ModelQualityObserver(seed=11), 300)
        mismatched = observe_n(
            ModelQualityObserver(seed=11), 300, vehicle_configuration=DARK_CONFIG
        )
        assert all(r.matched for r in matched)
        assert not any(r.matched for r in mismatched)

        def recall(records):
            tp = sum(r.tp for r in records)
            fn = sum(r.fn for r in records)
            return tp / (tp + fn)

        assert recall(matched) > 0.9
        assert recall(mismatched) < 0.5

    def test_matched_ious_at_or_above_threshold(self):
        from repro.quality.observer import MATCH_IOU_THRESHOLD

        records = observe_n(ModelQualityObserver(seed=3), 100)
        ious = [iou for r in records for iou in r.matched_ious]
        assert ious, "expected at least one matched detection in 100 day frames"
        assert all(iou >= MATCH_IOU_THRESHOLD for iou in ious)

    def test_sample_every_skips_frames(self):
        observer = ModelQualityObserver(
            seed=4, config=QualityModelConfig(sample_every=4)
        )
        records = observe_n(observer, 40)
        assert len(records) == 10
        assert [r.index for r in records] == list(range(0, 40, 4))


class TestLifecycle:
    def test_double_begin_raises(self):
        observer = ModelQualityObserver(seed=0)
        observer.begin_drive(DAY_TRACE, duration_s=1.0, n_frames=50)
        with pytest.raises(QualityError, match="already attached"):
            observer.begin_drive(DAY_TRACE, duration_s=1.0, n_frames=50)

    def test_observe_before_begin_raises(self):
        with pytest.raises(QualityError, match="before begin_drive"):
            ModelQualityObserver(seed=0).observe_frame(
                FakeFrame(index=0, time_s=0.0), DAY_CONFIG
            )

    def test_finish_before_begin_raises(self):
        with pytest.raises(QualityError, match="before begin_drive"):
            ModelQualityObserver(seed=0).finish_drive()

    def test_lifecycle_events_are_emitted(self):
        observer = ModelQualityObserver(seed=0)
        observe_n(observer, 10)
        kinds = [event["kind"] for event in observer.events]
        assert kinds == ["quality.drive.start", "quality.drive.summary"]

    def test_unknown_event_kind_rejected(self):
        observer = ModelQualityObserver(seed=0)
        with pytest.raises(QualityError, match="not in the declared vocabulary"):
            observer.quality_event("quality.party")


class TestNullObserver:
    def test_null_is_disabled_and_inert(self):
        assert NULL_QUALITY.enabled is False
        NULL_QUALITY.begin_drive(DAY_TRACE, 1.0, 50)
        assert (
            NULL_QUALITY.observe_frame(FakeFrame(index=0, time_s=0.0), DAY_CONFIG)
            is None
        )
        NULL_QUALITY.finish_drive()
        assert NULL_QUALITY.summary() == {}
        assert NULL_QUALITY.provenance() == {}


class TestModelConfig:
    def test_rejects_bad_sample_every(self):
        with pytest.raises(QualityError, match="sample_every"):
            QualityModelConfig(sample_every=0)

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(QualityError, match="recall_day"):
            QualityModelConfig(recall_day=1.5)

    def test_rejects_bad_fill(self):
        with pytest.raises(QualityError, match="vehicle_fill"):
            QualityModelConfig(vehicle_fill=(0.4, 0.2))

    def test_dict_round_trip(self):
        config = QualityModelConfig(sample_every=3, recall_dark=0.8)
        assert QualityModelConfig.from_dict(config.to_dict()) == config
