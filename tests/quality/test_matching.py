"""The pinned greedy-matching order: equal-IoU ties must break stably."""

from __future__ import annotations

import pytest

from repro.imaging.geometry import Rect, match_detections

pytestmark = pytest.mark.quality


def test_equal_iou_ties_break_by_truth_then_detection_index():
    # Two identical truths, two identical detections: every pair has
    # IoU 1.0.  The pinned order (descending IoU, ascending truth index,
    # ascending detection index) must pick (0,0) then (1,1) — never the
    # cross pairing, regardless of dict/hash/insertion effects.
    box = Rect(10.0, 10.0, 20.0, 20.0)
    matches, unmatched_t, unmatched_d = match_detections([box, box], [box, box])
    assert matches == [(0, 0), (1, 1)]
    assert unmatched_t == []
    assert unmatched_d == []


def test_tie_break_is_insertion_order_stable():
    # A detection overlapping two truths equally goes to the lower truth
    # index; the remaining truth pairs with the remaining detection.
    truth_a = Rect(0.0, 0.0, 10.0, 10.0)
    truth_b = Rect(20.0, 0.0, 10.0, 10.0)
    # One detection straddling neither fully — give each truth its own
    # exact copy so all on-diagonal IoUs are 1.0 and ties are exercised
    # through repeated identical boxes instead.
    matches, _, _ = match_detections([truth_a, truth_b], [truth_b, truth_a])
    # IoU(t0,d1)=1.0 and IoU(t1,d0)=1.0 dominate; among those the pinned
    # sort takes (t0,d1) first (lower truth index).
    assert matches == [(0, 1), (1, 0)]


def test_iou_exactly_at_threshold_matches():
    a = Rect(0.0, 0.0, 10.0, 10.0)
    b = Rect(0.0, 0.0, 10.0, 5.0)  # IoU = 50/100 = 0.5
    assert a.iou(b) == pytest.approx(0.5)
    matches, _, _ = match_detections([a], [b], iou_threshold=0.5)
    assert matches == [(0, 0)]


def test_greedy_prefers_highest_overlap():
    truth = Rect(0.0, 0.0, 10.0, 10.0)
    near = Rect(0.0, 0.0, 10.0, 9.0)
    far = Rect(0.0, 0.0, 10.0, 6.0)
    matches, _, unmatched_d = match_detections([truth], [far, near], iou_threshold=0.5)
    assert matches == [(0, 1)]
    assert unmatched_d == [0]
