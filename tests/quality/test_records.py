"""Record folding, summary merging, and the ConfusionCounts algebra."""

from __future__ import annotations

import pytest

from repro.pipelines.evaluation import ConfusionCounts
from repro.quality.records import (
    QUALITY_SUMMARY_SCHEMA,
    QualityRecord,
    fold_records,
    merge_summaries,
)

pytestmark = pytest.mark.quality


def _record(index, true_condition="day", tp=1, fp=0, fn=0, ious=(), matched=True):
    return QualityRecord(
        index=index,
        time_s=index * 0.02,
        condition=true_condition,
        true_condition=true_condition,
        configuration="day_dusk",
        matched=matched,
        tp=tp,
        fp=fp,
        fn=fn,
        matched_ious=tuple(ious),
        truths=tp + fn,
        detections=tp + fp,
    )


class TestFoldRecords:
    def test_empty_fold_is_zeroed(self):
        summary = fold_records([])
        assert summary["schema"] == QUALITY_SUMMARY_SCHEMA
        assert summary["sampled_frames"] == 0
        assert summary["overall"]["tp"] == 0
        assert summary["by_condition"] == {}
        assert summary["iou"]["count"] == 0

    def test_condition_split_and_mismatches(self):
        records = [
            _record(0, "day", tp=2, ious=(0.8, 0.9)),
            _record(1, "day", tp=1, fn=1, ious=(0.7,)),
            _record(2, "dark", tp=0, fn=2, fp=1, matched=False),
        ]
        summary = fold_records(records)
        assert summary["sampled_frames"] == 3
        assert summary["mismatched_frames"] == 1
        assert summary["by_condition"]["day"]["tp"] == 3
        assert summary["by_condition"]["day"]["frames"] == 2
        assert summary["by_condition"]["dark"]["fn"] == 2
        assert summary["overall"]["recall"] == pytest.approx(3 / 6)
        assert summary["iou"]["count"] == 3
        assert summary["iou"]["min"] == pytest.approx(0.7)
        assert summary["iou"]["max"] == pytest.approx(0.9)

    def test_record_counts_property(self):
        record = _record(0, tp=2, fp=1, fn=3)
        assert record.counts == ConfusionCounts(tp=2, fp=1, fn=3)
        assert record.recall == pytest.approx(2 / 5)


class TestMergeSummaries:
    def test_empty_merge(self):
        merged = merge_summaries([])
        assert merged["scored_drives"] == 0
        assert merged["overall"]["tp"] == 0
        assert merged["iou"]["mean"] is None

    def test_merge_equals_fold_of_concatenation(self):
        a = [_record(i, "day", tp=1, ious=(0.8,)) for i in range(4)]
        b = [_record(i, "dark", tp=0, fn=1, matched=False) for i in range(3)]
        merged = merge_summaries([fold_records(a), fold_records(b)])
        folded = fold_records(a + b)
        assert merged["sampled_frames"] == folded["sampled_frames"]
        assert merged["mismatched_frames"] == folded["mismatched_frames"]
        assert merged["overall"] == folded["overall"]
        assert merged["by_condition"] == folded["by_condition"]
        assert merged["iou"]["count"] == folded["iou"]["count"]
        assert merged["iou"]["sum"] == pytest.approx(folded["iou"]["sum"])

    def test_merge_is_order_independent(self):
        drives = [
            fold_records([_record(i, c, tp=i % 3, fn=1, ious=(0.6 + i / 100,))])
            for i, c in enumerate(["day", "dusk", "dark", "day"])
        ]
        forward = merge_summaries(drives)
        backward = merge_summaries(reversed(drives))
        assert forward == backward

    def test_empty_drive_summaries_are_skipped(self):
        merged = merge_summaries([{}, fold_records([_record(0)]), {}])
        assert merged["scored_drives"] == 1


class TestConfusionCountsAlgebra:
    """Property-based pins of the merge algebra the fleet rollup relies on."""

    def test_merge_matches_sum(self):
        rows = [ConfusionCounts(tp=i, fp=2 * i, fn=3 * i, tn=i) for i in range(5)]
        total = ConfusionCounts()
        for row in rows:
            total = total + row
        assert ConfusionCounts.merge(rows) == total

    def test_dict_round_trip_ignores_extras(self):
        row = ConfusionCounts(tp=3, tn=1, fp=2, fn=4)
        data = {**row.to_dict(), "recall": 0.99, "frames": 7}
        assert ConfusionCounts.from_dict(data) == row


def test_confusion_counts_properties_hypothesis():
    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import strategies as st

    counts = st.builds(
        ConfusionCounts,
        tp=st.integers(0, 10_000),
        tn=st.integers(0, 10_000),
        fp=st.integers(0, 10_000),
        fn=st.integers(0, 10_000),
    )

    @hypothesis.given(a=counts, b=counts, c=counts)
    def check(a, b, c):
        assert (a + b) + c == a + (b + c)  # associativity
        assert a + b == b + a  # commutativity
        assert a + ConfusionCounts() == a  # identity
        assert ConfusionCounts.merge([a, b, c]) == a + b + c

    check()
