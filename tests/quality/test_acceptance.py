"""End-to-end acceptance: a stuck sensor walks health down on *quality*.

The drive: a sunset trace whose sensor freezes mid-drive (a dropout
fault pinned open), so the controller keeps believing daylight while the
scene goes dark.  Latency is untouched — wall-clock SLOs are off — so
every health movement must come from the ground-truth quality plane:
OK -> DEGRADED on recall drift, DEGRADED -> CRITICAL on recall collapse,
an incident bundle triggered by ``quality-degraded``, and a replay of
that bundle that byte-verifies.
"""

from __future__ import annotations

import math

import pytest

from repro.adaptive.sensor import LightSensor, sunset_trace
from repro.core.system import AdaptiveDetectionSystem
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.monitor.replay import replay_bundle
from repro.monitor.session import Monitor, MonitorConfig
from repro.monitor.slo import HealthState
from repro.quality.observer import ModelQualityObserver

pytestmark = [pytest.mark.quality, pytest.mark.monitor]

DURATION_S = 20.0


@pytest.fixture(scope="module")
def stuck_sensor_drive(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("quality-incidents")
    trace = sunset_trace(duration_s=DURATION_S)
    # The sensor wedges at mid-drive and never recovers: the controller
    # keeps the day/dusk image loaded while the trace crosses into dark.
    plan = FaultPlan(
        [
            FaultSpec(
                site=FaultSite.SENSOR_DROPOUT,
                target="sensor",
                start_s=0.5 * DURATION_S,
                end_s=math.inf,
                magnitude=0.0,
            )
        ],
        name="stuck-sensor",
    )
    monitor = Monitor(
        MonitorConfig(
            out_dir=str(out_dir),
            wall_clock_slos=False,
            trigger_on_fault=False,
        )
    )
    observer = ModelQualityObserver(seed=123)
    system = AdaptiveDetectionSystem(
        fault_plan=plan, monitor=monitor, quality=observer
    )
    sensor = LightSensor(trace, noise_rel=0.03, seed=42, faults=plan)
    report = system.run_drive(trace, duration_s=DURATION_S, sensor=sensor)
    return monitor, observer, report


def test_health_walks_down_on_quality_not_latency(stuck_sensor_drive):
    monitor, _, _ = stuck_sensor_drive
    transitions = monitor.health.transitions
    assert [t.new for t in transitions[:2]] == [
        HealthState.DEGRADED,
        HealthState.CRITICAL,
    ]
    # Every transition is quality-driven; with wall-clock SLOs off there
    # is no latency path into DEGRADED at all.
    assert all("quality-" in t.reason for t in transitions)
    assert monitor.health.state is HealthState.CRITICAL


def test_all_violations_are_quality_slos(stuck_sensor_drive):
    monitor, _, _ = stuck_sensor_drive
    slos = {v.slo for v in monitor.health.violations}
    assert slos
    assert all(slo.startswith("quality-") for slo in slos)
    assert "quality-collapse" in slos


def test_recall_really_collapsed(stuck_sensor_drive):
    _, observer, _ = stuck_sensor_drive
    # Frames after the sensor wedged and the scene went dark score at
    # the paper's mismatched-configuration recall; the drive's tail is
    # dominated by them.
    late = [r for r in observer.records if r.time_s > 0.95 * DURATION_S]
    assert late
    assert not any(r.matched for r in late)


def test_incident_bundle_written_with_quality_trigger(stuck_sensor_drive):
    monitor, _, _ = stuck_sensor_drive
    assert monitor.bundles, "quality collapse must trigger the flight recorder"
    assert any("quality-degraded" in str(path) for path in monitor.bundles)


def test_bundle_replay_byte_verifies(stuck_sensor_drive):
    monitor, _, _ = stuck_sensor_drive
    result = replay_bundle(monitor.bundles[0])
    assert result.ok, result.detail
    assert result.frames_compared > 0
