"""The non-perturbation contract: scoring a drive changes no frame byte.

The quality plane is observation only.  These tests pin that at every
level: a single drive's frame digest, a 64-drive fleet's deterministic
views (quality off / quality on / sharded), and the status plane's
quality section.
"""

from __future__ import annotations

import json

import pytest

from repro.core.spec import DriveSpec, frames_digest
from repro.core.system import run_drive_spec
from repro.fleet.outcome import (
    QUALITY_METRIC_NAMES,
    DriveOutcome,
    deterministic_metrics,
    deterministic_outcome_dict,
)
from repro.fleet.rollup import deterministic_view, validate_rollup
from repro.fleet.scheduler import FleetConfig, run_fleet
from repro.fleet.specs import sweep_specs
from repro.fleet.status import StatusBoard, render_status, status_metrics_snapshot
from repro.quality.observer import ModelQualityObserver
from repro.telemetry import Telemetry

pytestmark = [pytest.mark.quality, pytest.mark.fleet]


class TestDriveLevel:
    def test_scored_drive_is_byte_identical_to_unscored(self):
        spec = DriveSpec(
            name="nonperturb", trace="sunset", duration_s=4.0, seed=123
        )
        plain = run_drive_spec(spec)
        observer = ModelQualityObserver.for_spec(spec)
        scored = run_drive_spec(spec, quality=observer)
        assert frames_digest(plain.frames) == frames_digest(scored.frames)
        assert observer.records, "the observer did score the drive"
        assert plain.quality is None
        assert scored.quality is observer

    def test_quality_metrics_are_emitted_and_stripped(self):
        spec = DriveSpec(name="metrics", trace="sunset", duration_s=2.0, seed=3)
        telemetry = Telemetry.recording()
        run_drive_spec(
            spec, telemetry=telemetry, quality=ModelQualityObserver.for_spec(spec)
        )
        names = {series["name"] for series in telemetry.metrics.snapshot()}
        assert "quality_frames_scored_total" in names
        assert "detection_iou" in names
        kept = {
            series["name"]
            for series in deterministic_metrics(telemetry.metrics.snapshot())
        }
        assert not (kept & QUALITY_METRIC_NAMES)


class TestFleetLevel:
    @pytest.fixture(scope="class")
    def runs(self):
        specs = sweep_specs(64, fleet_seed=11, duration_s=1.0)
        inline_off = run_fleet(specs, FleetConfig(workers=0, streaming=False))
        inline_on = run_fleet(
            specs, FleetConfig(workers=0, streaming=False, quality=True)
        )
        sharded_on = run_fleet(
            specs, FleetConfig(workers=2, streaming=False, quality=True)
        )
        return inline_off, inline_on, sharded_on

    def test_rollups_validate(self, runs):
        for rollup in runs:
            validate_rollup(rollup)

    def test_deterministic_views_are_byte_identical(self, runs):
        views = [json.dumps(deterministic_view(r), sort_keys=True) for r in runs]
        assert views[0] == views[1] == views[2]

    def test_quality_sections_agree_between_inline_and_sharded(self, runs):
        _, inline_on, sharded_on = runs
        assert json.dumps(inline_on["quality"], sort_keys=True) == json.dumps(
            sharded_on["quality"], sort_keys=True
        )
        assert inline_on["quality"]["scored_drives"] == 64

    def test_unscored_fleet_has_zeroed_quality_section(self, runs):
        inline_off, _, _ = runs
        assert inline_off["quality"]["scored_drives"] == 0

    def test_outcome_strip_removes_quality(self, runs):
        _, inline_on, _ = runs
        for outcome in inline_on["outcomes"]:
            assert outcome["quality"]["sampled_frames"] > 0
            stripped = deterministic_outcome_dict(outcome)
            assert "quality" not in stripped


class TestStatusPlane:
    def _outcome(self, name="drive", quality=None):
        return DriveOutcome(
            spec={"name": name},
            status="ok",
            summary={"frames": 10},
            quality=quality or {},
        )

    def _scored_summary(self):
        from repro.quality.records import QualityRecord, fold_records

        return fold_records(
            [
                QualityRecord(
                    index=0,
                    time_s=0.0,
                    condition="day",
                    true_condition="day",
                    configuration="day_dusk",
                    matched=True,
                    tp=3,
                    fp=1,
                    fn=1,
                    matched_ious=(0.8, 0.7, 0.9),
                    truths=4,
                    detections=4,
                )
            ]
        )

    def test_snapshot_quality_section(self):
        board = StatusBoard(now_s=0.0)
        board.record_outcome(self._outcome(), now_s=1.0)
        snapshot = board.snapshot(now_s=2.0)
        assert snapshot["quality"] is None
        board.record_outcome(
            self._outcome("scored", quality=self._scored_summary()), now_s=3.0
        )
        snapshot = board.snapshot(now_s=4.0)
        assert snapshot["quality"]["scored_drives"] == 1
        assert snapshot["quality"]["overall"]["tp"] == 3

    def test_quality_gauges_in_metrics_exposition(self):
        board = StatusBoard(now_s=0.0)
        board.record_outcome(
            self._outcome("scored", quality=self._scored_summary()), now_s=1.0
        )
        series = status_metrics_snapshot(board.snapshot(now_s=2.0))
        by_name = {}
        for s in series:
            by_name.setdefault(s["name"], []).append(s)
        assert by_name["fleet_quality_scored_drives"][0]["value"] == 1.0
        assert by_name["fleet_quality_recall"][0]["value"] == pytest.approx(0.75)
        conditions = {
            s["labels"].get("condition")
            for s in by_name["fleet_quality_recall"]
            if s["labels"]
        }
        assert "day" in conditions

    def test_render_status_quality_line(self):
        board = StatusBoard(now_s=0.0)
        board.record_outcome(
            self._outcome("scored", quality=self._scored_summary()), now_s=1.0
        )
        text = render_status(board.snapshot(now_s=2.0))
        assert "quality (1 scored)" in text
        assert "recall=0.750" in text
