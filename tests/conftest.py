"""Shared fixtures: small corpora, trained models, reusable detectors.

Training is expensive, so everything trained is session-scoped and uses
reduced corpus sizes; accuracy-shape assertions in tests use tolerant
thresholds accordingly (the full-scale numbers live in the benchmarks).
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_corpora_and_models():
    """Corpora + day/dusk/combined models at a small scale (cached)."""
    from repro.experiments.common import corpora_and_models

    return corpora_and_models(scale=0.2, seed=0)


@pytest.fixture(scope="session")
def condition_models(small_corpora_and_models):
    return small_corpora_and_models[1]


@pytest.fixture(scope="session")
def condition_corpora(small_corpora_and_models):
    return small_corpora_and_models[0]


@pytest.fixture(scope="session")
def dark_detector():
    """A trained DarkVehicleDetector (cached)."""
    from repro.experiments.common import trained_dark_detector

    return trained_dark_detector()


@pytest.fixture()
def simulator():
    from repro.zynq.events import Simulator

    return Simulator()


@pytest.fixture()
def soc():
    from repro.zynq.soc import ZynqSoC

    return ZynqSoC()


@pytest.fixture(scope="session")
def dark_frame():
    """One rendered dark scene with two vehicles."""
    from repro.datasets.lighting import LightingCondition
    from repro.datasets.scene import SceneConfig, render_scene
    from repro.datasets.lighting import DARK_LIGHTING

    # 180 x 330 divides evenly by the dark pipeline's 3x decimation.
    config = SceneConfig(
        height=180, width=330, n_vehicles=2, n_oncoming=1, vehicle_fill=(0.08, 0.16), seed=99
    )
    return render_scene(config, DARK_LIGHTING)


@pytest.fixture(scope="session")
def day_frame():
    from repro.datasets.lighting import DAY_LIGHTING
    from repro.datasets.scene import SceneConfig, render_scene

    config = SceneConfig(height=180, width=320, n_vehicles=1, n_pedestrians=1, seed=77)
    return render_scene(config, DAY_LIGHTING)
