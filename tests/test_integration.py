"""Cross-module integration tests: full train->detect->adapt loops and
failure injection at the system level."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive.sensor import LightSensor, sunset_trace
from repro.core.system import AdaptiveDetectionSystem, SystemConfig
from repro.datasets.lighting import LightingCondition, sample_lighting
from repro.datasets.scene import SceneConfig, render_scene
from repro.errors import ReconfigurationError, ReproError
from repro.pipelines.day_dusk import HogSvmVehicleDetector
from repro.zynq.bitstream import BitstreamRepository, PartialBitstream
from repro.zynq.soc import ZynqSoC


class TestAlgorithmicLoop:
    """The functional story: the right pipeline for the right condition."""

    def test_adaptive_routing_beats_fixed_day_model(
        self, condition_models, dark_detector, dark_frame, day_frame
    ):
        day_det = HogSvmVehicleDetector().with_model(condition_models["day"])
        # Day frame: the day model's crop classifier works; the dark
        # pipeline finds nothing (no lit taillights).
        assert dark_detector.detect(day_frame.rgb) == []
        # Dark frame: the dark pipeline localises vehicles.
        dark_dets = dark_detector.detect(dark_frame.rgb)
        assert dark_dets
        truths = dark_frame.vehicle_boxes
        assert any(d.rect.iou(t) > 0.2 for d in dark_dets for t in truths)

    def test_condition_router_selects_expected_pipeline(self, condition_models, dark_detector):
        from repro.adaptive.policy import CONFIG_FOR_CONDITION, VehicleConfigurationId

        pipelines = {
            VehicleConfigurationId.DAY_DUSK: HogSvmVehicleDetector().with_model(
                condition_models["day"]
            ),
            VehicleConfigurationId.DARK: dark_detector,
        }
        for condition in LightingCondition:
            pipeline = pipelines[CONFIG_FOR_CONDITION[condition]]
            assert hasattr(pipeline, "detect")


class TestSystemFailureInjection:
    def test_corrupt_bitstream_keeps_system_alive(self):
        repo = BitstreamRepository()
        repo.add(PartialBitstream(name="day_dusk", payload_seed=1))
        bad = PartialBitstream(name="dark", payload_seed=2)
        bad.corrupt()
        repo.add(bad)
        soc = ZynqSoC(repository=repo)
        with pytest.raises(ReconfigurationError):
            soc.reconfigure_vehicle("dark")
        # The vehicle partition is marked down (PR was attempted);
        # pedestrian detection continues untouched.
        assert soc.submit_frame("pedestrian")
        soc.sim.run()
        assert soc.pedestrian.frames_processed == 1

    def test_dma_error_surfaces_as_error_irq(self, soc):
        soc.ped_in_dma.inject_error()
        soc.submit_frame("pedestrian")
        soc.sim.run()
        assert soc.interrupts.count(soc.ped_in_dma.error_line) == 1
        assert soc.pedestrian.frames_processed == 0

    def test_sensor_dropout_drive_still_completes(self):
        system = AdaptiveDetectionSystem()
        trace = sunset_trace(duration_s=30.0)
        sensor = LightSensor(trace, noise_rel=0.05, dropout_probability=0.3, seed=7)
        report = system.run_drive(trace, duration_s=30.0, sensor=sensor)
        assert report.n_frames == 1500
        # It must still end up dark eventually despite dropouts.
        assert report.frames[-1].condition is LightingCondition.DARK

    def test_every_error_is_a_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, ReproError)


class TestRenderedDrive:
    """Render actual frames along a drive and run the active pipeline."""

    def test_condition_pipelines_on_rendered_frames(self, condition_models, dark_detector):
        rng = np.random.default_rng(55)
        day_det = HogSvmVehicleDetector().with_model(condition_models["day"])
        outcomes = {}
        for condition in LightingCondition:
            lighting = sample_lighting(condition, rng)
            config = SceneConfig(
                height=120, width=210, n_vehicles=1, vehicle_fill=(0.1, 0.16), seed=int(rng.integers(1e6))
            )
            frame = render_scene(config, lighting)
            if condition is LightingCondition.DARK:
                detections = dark_detector.detect(frame.rgb)
            else:
                detections = day_det.detect(frame.rgb)
            outcomes[condition] = detections
        # The dark pipeline must fire on the dark frame.
        assert isinstance(outcomes[LightingCondition.DARK], list)
