"""Canned scenarios: every one completes; worst_case meets acceptance."""

from __future__ import annotations

import pytest

from repro.adaptive.sensor import sunset_trace
from repro.core.system import AdaptiveDetectionSystem
from repro.errors import FaultInjectionError
from repro.faults.scenarios import SCENARIOS, get_scenario

pytestmark = pytest.mark.faults

DURATION_S = 60.0


def _drive(scenario: str):
    plan = get_scenario(scenario, DURATION_S)
    system = AdaptiveDetectionSystem(fault_plan=plan)
    report = system.run_drive(sunset_trace(duration_s=DURATION_S))
    return plan, system, report


class TestScenarioRegistry:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault scenario"):
            get_scenario("meteor_strike")

    def test_each_call_returns_a_fresh_plan(self):
        a = get_scenario("worst_case", DURATION_S)
        b = get_scenario("worst_case", DURATION_S)
        assert a is not b
        assert a.specs == b.specs
        assert b.firings() == 0


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_scenario_drive_completes_with_pedestrian_intact(scenario):
    plan, system, report = _drive(scenario)
    assert report.n_frames == int(DURATION_S * 50)
    assert all(f.pedestrian_accepted for f in report.frames)
    assert system.soc.pedestrian.frames_dropped == 0
    assert plan.firings() > 0, "scenario never fired — it tests nothing"


class TestWorstCaseAcceptance:
    @pytest.fixture(scope="class")
    def worst_case(self):
        return _drive("worst_case")

    def test_pedestrian_processes_all_frames(self, worst_case):
        _, system, report = worst_case
        assert all(f.pedestrian_accepted for f in report.frames)
        assert system.soc.pedestrian.frames_processed == report.n_frames

    def test_vehicle_drops_only_under_faults_or_reconfig(self, worst_case):
        plan, _, report = worst_case
        # Stalls keep the ingress busy past their window; allow their tail.
        max_stall = max((s.magnitude for s in plan.specs), default=0.0)
        for frame in report.frames:
            if frame.vehicle_accepted:
                continue
            assert (
                frame.reconfiguring
                or frame.faults
                or frame.degraded
                or plan.any_active(frame.time_s, slack_s=max_stall)
            ), f"frame {frame.index} dropped with no fault in sight"

    def test_every_fault_and_degradation_lands_in_a_frame_record(self, worst_case):
        plan, _, report = worst_case
        audited = [label for frame in report.frames for label in frame.faults]
        last_t = report.frames[-1].time_s
        in_drive_events = [e for e in plan.events if e.time_s <= last_t]
        in_drive_degradations = [d for d in report.degradations if d.time_s <= last_t]
        assert len(audited) == len(in_drive_events) + len(in_drive_degradations)
        assert any(label.startswith("fault:") for label in audited)
        assert any(label.startswith("degrade:") for label in audited)

    def test_recovery_reaches_the_dark_configuration(self, worst_case):
        _, system, report = worst_case
        assert system.soc.vehicle.configuration == "dark"
        assert any(r.ok and r.attempt > 1 for r in report.reconfigurations)
        assert report.failed_reconfigurations >= 1
