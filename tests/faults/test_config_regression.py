"""Regression: SystemConfig must validate controller_cls up front.

Previously a bogus controller_cls passed __post_init__ silently and blew
up deep inside ZynqSoC construction (or worse, at first reconfiguration).
"""

from __future__ import annotations

import pytest

from repro.core.system import SystemConfig
from repro.errors import ConfigurationError
from repro.zynq.pr import BasePrController, PaperPrController, ZycapController

pytestmark = pytest.mark.faults


class TestControllerClsValidation:
    def test_non_class_rejected(self):
        with pytest.raises(ConfigurationError, match="controller_cls"):
            SystemConfig(controller_cls="paper-pr")  # a string sneaks in

    def test_unrelated_class_rejected(self):
        class NotAController:
            pass

        with pytest.raises(ConfigurationError, match="controller_cls"):
            SystemConfig(controller_cls=NotAController)

    def test_instance_rejected(self):
        with pytest.raises(ConfigurationError, match="controller_cls"):
            SystemConfig(controller_cls=42)

    def test_subclasses_accepted(self):
        assert SystemConfig(controller_cls=PaperPrController).controller_cls is PaperPrController
        assert SystemConfig(controller_cls=ZycapController).controller_cls is ZycapController

        class Custom(BasePrController):
            name = "custom"

        assert SystemConfig(controller_cls=Custom).controller_cls is Custom
