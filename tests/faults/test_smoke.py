"""Smoke target: the example drive survives the worst-case scenario."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.faults

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_adaptive_drive_example_worst_case():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "examples" / "adaptive_drive.py"),
            "--trace",
            "sunset",
            "--fault-plan",
            "worst_case",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "fault audit:" in result.stdout
    assert "processed 100% of frames" in result.stdout
    assert "DROPPED FRAMES (BUG)" not in result.stdout
