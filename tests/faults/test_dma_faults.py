"""DMA injection site: aborts, stalls, and driver-level recovery."""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.zynq.bus import BusLink, LinkSpec
from repro.zynq.dma import DmaDescriptor, DmaEngine, DmaState
from repro.zynq.events import Simulator, Trace
from repro.zynq.interrupts import InterruptController
from repro.zynq.soc import ZynqSoC

pytestmark = pytest.mark.faults


def _engine(plan: FaultPlan | None = None):
    sim = Simulator()
    link = BusLink(sim, LinkSpec(name="test"))
    irqs = InterruptController(sim)
    engine = DmaEngine("dma-t", sim, link, irqs, Trace(), faults=plan)
    return sim, irqs, engine


class TestDmaErrorInjection:
    def test_planned_error_aborts_transfer(self):
        plan = FaultPlan([FaultSpec(site=FaultSite.DMA_ERROR, target="dma-t", max_firings=1)])
        sim, irqs, engine = _engine(plan)
        outcomes = []
        engine.start(
            DmaDescriptor(4096, label="frame"),
            on_done=lambda: outcomes.append("done"),
            on_error=lambda: outcomes.append("error"),
        )
        sim.run()
        assert outcomes == ["error"]
        assert engine.state is DmaState.ERROR
        assert irqs.count(engine.error_line) == 1
        assert irqs.count(engine.irq_line) == 0
        assert plan.firings() == 1

    def test_recovery_after_reset(self):
        plan = FaultPlan([FaultSpec(site=FaultSite.DMA_ERROR, target="dma-t", max_firings=1)])
        sim, irqs, engine = _engine(plan)
        engine.start(DmaDescriptor(4096), on_error=lambda: None)
        sim.run()
        engine.reset()
        done = []
        engine.start(DmaDescriptor(4096), on_done=lambda: done.append(sim.now))
        sim.run()
        assert engine.state is DmaState.IDLE
        assert done and engine.transfers_completed == 1

    def test_untargeted_engine_unaffected(self):
        plan = FaultPlan([FaultSpec(site=FaultSite.DMA_ERROR, target="dma-other")])
        sim, irqs, engine = _engine(plan)
        done = []
        engine.start(DmaDescriptor(4096), on_done=lambda: done.append(sim.now))
        sim.run()
        assert done and plan.firings() == 0


class TestDmaStallInjection:
    def test_stall_delays_completion(self):
        def completion_time(plan):
            sim, _, engine = _engine(plan)
            done = []
            engine.start(DmaDescriptor(4096), on_done=lambda: done.append(sim.now))
            sim.run()
            return done[0]

        baseline = completion_time(None)
        stalled = completion_time(
            FaultPlan([FaultSpec(site=FaultSite.DMA_STALL, target="dma-t", magnitude=0.25)])
        )
        assert stalled == pytest.approx(baseline + 0.25)

    def test_stalled_transfer_still_completes_cleanly(self):
        plan = FaultPlan(
            [FaultSpec(site=FaultSite.DMA_STALL, target="dma-t", magnitude=0.1, max_firings=1)]
        )
        sim, irqs, engine = _engine(plan)
        engine.start(DmaDescriptor(4096), on_done=lambda: None)
        sim.run()
        assert engine.state is DmaState.IDLE
        assert engine.transfers_completed == 1
        assert irqs.count(engine.irq_line) == 1


class TestSocDmaRecovery:
    def test_soc_auto_resets_aborted_vehicle_ingress(self):
        plan = FaultPlan(
            [FaultSpec(site=FaultSite.DMA_ERROR, target="dma-veh-mm2s", max_firings=1)]
        )
        soc = ZynqSoC(faults=plan)
        degradations = []
        soc.on_degradation = degradations.append
        assert soc.submit_frame("vehicle") is True  # accepted, aborts in flight
        soc.sim.run()
        # The driver reset the engine; the next frame flows end to end.
        processed_before = soc.vehicle.frames_processed
        assert soc.submit_frame("vehicle") is True
        soc.sim.run()
        assert soc.vehicle.frames_processed == processed_before + 1
        assert any(d.kind == "dma-reset" for d in degradations)

    def test_pedestrian_path_never_sees_the_plan(self):
        plan = FaultPlan([FaultSpec(site=FaultSite.DMA_ERROR)])  # wildcard, always on
        soc = ZynqSoC(faults=plan)
        assert soc.ped_in_dma.faults is None
        assert soc.ped_out_dma.faults is None
        assert soc.submit_frame("pedestrian") is True
        soc.sim.run()
        assert soc.pedestrian.frames_processed == 1
        assert soc.pedestrian.frames_dropped == 0
