"""Deterministic replay: same seed + same plan => byte-identical drives.

This is the invariant future parallelism work must preserve: a drive is a
pure function of (config, trace, sensor seed, fault plan).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.adaptive.sensor import LightSensor, sunset_trace
from repro.core.system import AdaptiveDetectionSystem
from repro.faults.scenarios import get_scenario

pytestmark = pytest.mark.faults


def _drive_bytes(seed: int, scenario: str | None) -> bytes:
    trace = sunset_trace(duration_s=60.0)
    plan = get_scenario(scenario, 60.0) if scenario else None
    system = AdaptiveDetectionSystem(fault_plan=plan)
    sensor = LightSensor(trace, noise_rel=0.03, seed=seed, faults=plan)
    report = system.run_drive(trace, sensor=sensor)
    return repr([dataclasses.astuple(f) for f in report.frames]).encode()


class TestReplay:
    def test_same_seed_and_plan_replay_byte_identical(self):
        assert _drive_bytes(11, "worst_case") == _drive_bytes(11, "worst_case")

    def test_faultless_replay_also_byte_identical(self):
        assert _drive_bytes(11, None) == _drive_bytes(11, None)

    def test_different_seed_diverges(self):
        # Sanity: the comparison above is not vacuous.
        assert _drive_bytes(11, "worst_case") != _drive_bytes(12, "worst_case")
