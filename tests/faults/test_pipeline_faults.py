"""Pipeline injection site: detector exceptions and fail-safe degradation."""

from __future__ import annotations

import pytest

from repro.core.functional import AdaptiveVehicleDetector
from repro.datasets.lighting import LightingCondition, lighting_for_condition
from repro.datasets.scene import SceneConfig, render_scene
from repro.errors import PipelineError
from repro.faults.pipeline import FaultyPipeline
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec

pytestmark = pytest.mark.faults


def _frame(condition: LightingCondition, seed: int = 5):
    config = SceneConfig(
        height=120, width=210, n_vehicles=1, vehicle_fill=(0.1, 0.16), seed=seed
    )
    return render_scene(config, lighting_for_condition(condition)).rgb


def _burst_plan(start_s: float, end_s: float, firings: int | None = None) -> FaultPlan:
    return FaultPlan(
        [FaultSpec(
            site=FaultSite.PIPELINE_EXCEPTION,
            target="vehicle",
            start_s=start_s,
            end_s=end_s,
            max_firings=firings,
        )]
    )


class TestFaultyPipelineWrapper:
    def test_raises_on_scheduled_frames_only(self, condition_models, dark_detector):
        plan = FaultPlan(
            [FaultSpec(site=FaultSite.PIPELINE_EXCEPTION, target="vehicle-dark",
                       start_s=0.02, end_s=0.06)]
        )
        wrapped = FaultyPipeline(dark_detector, plan, frame_period_s=0.02)
        frame = _frame(LightingCondition.DARK)
        wrapped.detect(frame)  # t=0.00: fine
        with pytest.raises(PipelineError):
            wrapped.detect(frame)  # t=0.02: in window
        with pytest.raises(PipelineError):
            wrapped.detect(frame)  # t=0.04: in window
        wrapped.detect(frame)  # t=0.06: window closed
        assert wrapped.frames_seen == 4
        assert wrapped.frames_failed == 2
        assert plan.firings() == 2

    def test_classify_crop_passthrough(self, condition_models, dark_detector):
        plan = FaultPlan()
        wrapped = FaultyPipeline(dark_detector, plan)
        crop = _frame(LightingCondition.DARK)[:40, :40]
        assert wrapped.classify_crop(crop) == dark_detector.classify_crop(crop)


class TestFunctionalDegradation:
    def test_injected_exception_degrades_not_crashes(self, condition_models, dark_detector):
        plan = _burst_plan(0.1, 0.3, firings=1)
        detector = AdaptiveVehicleDetector(condition_models, dark_detector, fault_plan=plan)
        frame = _frame(LightingCondition.DAY)
        ok = detector.process(0.0, 30000.0, frame)
        hit = detector.process(0.2, 30000.0, frame)
        recovered = detector.process(0.4, 30000.0, frame)
        assert not ok.degraded
        assert hit.degraded and hit.detections == []
        assert not recovered.degraded
        assert detector.degraded_frames == 1

    def test_real_pipeline_error_also_degrades(self, condition_models, dark_detector):
        detector = AdaptiveVehicleDetector(condition_models, dark_detector)
        # Feed garbage that makes the pipeline raise internally.
        class Boom:
            name = "boom"

            def detect(self, frame):
                raise PipelineError("synthetic crash")

            def classify_crop(self, crop):
                raise PipelineError("synthetic crash")

        detector._hog["day"] = Boom()
        result = detector.process(0.0, 30000.0, _frame(LightingCondition.DAY))
        assert result.degraded
        assert result.detections == []
