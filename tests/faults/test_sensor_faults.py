"""Sensor injection site: dropouts, spikes, and controller spike rejection."""

from __future__ import annotations

import pytest

from repro.adaptive.controller import ControllerConfig, LightingController
from repro.adaptive.sensor import LightSensor, LuxTrace
from repro.datasets.lighting import LightingCondition
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec

pytestmark = pytest.mark.faults


def _flat_trace(lux: float, duration_s: float = 100.0) -> LuxTrace:
    return LuxTrace(points=((0.0, lux), (duration_s, lux)))


class TestSensorInjection:
    def test_dropout_holds_last_register(self):
        plan = FaultPlan(
            [FaultSpec(site=FaultSite.SENSOR_DROPOUT, target="sensor", start_s=5.0, end_s=10.0)]
        )
        trace = LuxTrace(points=((0.0, 1000.0), (20.0, 10.0)))
        sensor = LightSensor(trace, noise_rel=0.0, faults=plan)
        before = sensor.read(4.0)
        held = [sensor.read(t) for t in (5.0, 6.0, 9.9)]
        assert all(h == before for h in held)
        after = sensor.read(10.0)
        assert after != before  # live again, trace has moved on
        assert plan.firings() == 3

    def test_spike_returns_magnitude_without_poisoning_register(self):
        plan = FaultPlan(
            [FaultSpec(
                site=FaultSite.SENSOR_SPIKE, target="sensor",
                start_s=1.0, end_s=2.0, magnitude=50000.0, max_firings=1,
            ),
             FaultSpec(site=FaultSite.SENSOR_DROPOUT, target="sensor", start_s=3.0, end_s=4.0)]
        )
        sensor = LightSensor(_flat_trace(5.0), noise_rel=0.0, faults=plan)
        assert sensor.read(0.0) == pytest.approx(5.0)
        assert sensor.read(1.5) == pytest.approx(50000.0)
        # The dropout hold returns the last *real* conversion, not the spike.
        assert sensor.read(3.5) == pytest.approx(5.0)

    def test_no_plan_means_stock_behavior(self):
        a = LightSensor(_flat_trace(100.0), noise_rel=0.05, seed=3)
        b = LightSensor(_flat_trace(100.0), noise_rel=0.05, seed=3, faults=FaultPlan())
        assert [a.read(t) for t in range(10)] == [b.read(t) for t in range(10)]


class TestControllerSpikeRejection:
    def test_single_sample_spike_rejected_with_confirmation(self):
        config = ControllerConfig(min_dwell_s=0.0, confirm_samples=2)
        controller = LightingController(config, initial=LightingCondition.DARK)
        # One spike to daylight: no switch.
        assert controller.update(0.0, 1.0) is None
        assert controller.update(0.1, 50000.0) is None
        assert controller.update(0.2, 1.0) is None
        assert controller.condition is LightingCondition.DARK

    def test_sustained_change_still_switches(self):
        config = ControllerConfig(min_dwell_s=0.0, confirm_samples=2)
        controller = LightingController(config, initial=LightingCondition.DARK)
        assert controller.update(0.0, 50000.0) is None  # first agreement
        change = controller.update(0.1, 50000.0)        # confirmed
        assert change is not None
        assert change.new is LightingCondition.DUSK  # one step per update

    def test_default_confirmation_is_immediate(self):
        config = ControllerConfig(min_dwell_s=0.0)
        controller = LightingController(config, initial=LightingCondition.DARK)
        assert controller.update(0.0, 50000.0) is not None

    def test_confirmation_counter_resets_between_episodes(self):
        config = ControllerConfig(min_dwell_s=0.0, confirm_samples=2)
        controller = LightingController(config, initial=LightingCondition.DARK)
        assert controller.update(0.0, 50000.0) is None
        assert controller.update(0.1, 1.0) is None      # back to normal: reset
        assert controller.update(0.2, 50000.0) is None  # needs 2 fresh agreements
        assert controller.condition is LightingCondition.DARK

    def test_invalid_confirm_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(confirm_samples=0)
