"""Bitstream CRC injection site: corruption, detection, re-staging."""

from __future__ import annotations

import pytest

from repro.adaptive.sensor import sunset_trace
from repro.core.system import AdaptiveDetectionSystem
from repro.errors import ReconfigurationError
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.zynq.bitstream import BitstreamRepository, PartialBitstream, paper_bitstreams
from repro.zynq.events import Simulator, Trace
from repro.zynq.interrupts import InterruptController
from repro.zynq.pr import PaperPrController

pytestmark = pytest.mark.faults


class TestPayloadChecksum:
    def test_crc_covers_payload(self):
        bs = PartialBitstream(name="dark")
        assert bs.verify()
        bs.corrupt_payload()
        assert not bs.verify()

    def test_repair_restores_both_corruption_kinds(self):
        bs = PartialBitstream(name="dark")
        original_crc = bs.crc
        bs.corrupt_payload()
        bs.corrupt()
        assert not bs.verify()
        bs.repair()
        assert bs.verify()
        assert bs.crc == original_crc

    def test_payload_deterministic_per_identity(self):
        a = PartialBitstream(name="dark", payload_seed=2)
        b = PartialBitstream(name="dark", payload_seed=2)
        c = PartialBitstream(name="dark", payload_seed=3)
        assert a.payload == b.payload
        assert a.crc == b.crc
        assert a.crc != c.crc

    def test_repository_scrub_and_restage(self):
        repo = paper_bitstreams()
        assert repo.verify_all() == {"dark": True, "day_dusk": True}
        repo.get("dark").corrupt_payload()
        assert repo.verify_all() == {"dark": False, "day_dusk": True}
        repo.restage("dark")
        assert repo.verify_all() == {"dark": True, "day_dusk": True}
        assert repo.checksum("dark") == repo.get("dark").crc


class TestControllerIntegrityPath:
    def test_planned_corruption_fails_the_load(self):
        plan = FaultPlan(
            [FaultSpec(site=FaultSite.BITSTREAM_CORRUPT, target="dark", max_firings=1)]
        )
        sim = Simulator()
        ctrl = PaperPrController(
            sim, InterruptController(sim), paper_bitstreams(), Trace(), faults=plan
        )
        with pytest.raises(ReconfigurationError, match="integrity"):
            ctrl.reconfigure("dark")
        report = ctrl.reports[-1]
        assert report.ok is False
        assert "integrity" in report.error
        assert plan.firings() == 1

    def test_system_repairs_and_retries_to_recovery(self):
        plan = FaultPlan(
            [FaultSpec(site=FaultSite.BITSTREAM_CORRUPT, target="dark", max_firings=1)]
        )
        system = AdaptiveDetectionSystem(fault_plan=plan)
        report = system.run_drive(sunset_trace(duration_s=120.0))
        # The first dark load failed its integrity check ...
        failed = [r for r in report.reconfigurations if not r.ok]
        assert failed and "integrity" in failed[0].error
        # ... was repaired and retried ...
        kinds = [d.kind for d in report.degradations]
        assert "bitstream-repair" in kinds
        assert "reconfig-retry" in kinds
        # ... and the drive ends with the dark image actually loaded.
        assert system.soc.vehicle.configuration == "dark"
        assert any(r.ok and r.attempt > 1 for r in report.reconfigurations)
        # Pedestrian partition untouched throughout.
        assert all(f.pedestrian_accepted for f in report.frames)
