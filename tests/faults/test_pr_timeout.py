"""PR injection site: stalls, the watchdog, and last-good fallback."""

from __future__ import annotations

import pytest

from repro.adaptive.sensor import sunset_trace
from repro.core.system import AdaptiveDetectionSystem, DegradationPolicy, SystemConfig
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.zynq.bitstream import paper_bitstreams
from repro.zynq.events import Simulator, Trace
from repro.zynq.interrupts import InterruptController
from repro.zynq.pr import PaperPrController, PrState
from repro.zynq.soc import ZynqSoC

pytestmark = pytest.mark.faults


def _stall_plan(stall_s: float, firings: int = 1) -> FaultPlan:
    return FaultPlan(
        [FaultSpec(site=FaultSite.PR_STALL, magnitude=stall_s, max_firings=firings)]
    )


class TestWatchdog:
    def test_stall_past_deadline_times_out(self):
        sim = Simulator()
        irqs = InterruptController(sim)
        ctrl = PaperPrController(
            sim, irqs, paper_bitstreams(), Trace(),
            faults=_stall_plan(5.0), timeout_s=0.1,
        )
        done = []
        ctrl.reconfigure("dark", on_done=done.append)
        sim.run()
        report = done[0]
        assert report.timed_out is True
        assert report.ok is False
        assert report.error == "watchdog timeout"
        assert report.duration_s == pytest.approx(0.1, rel=0.01)
        assert ctrl.state is PrState.IDLE
        assert ctrl.active_configuration != "dark"
        assert irqs.count(ctrl.error_line) == 1

    def test_stall_within_deadline_just_runs_long(self):
        sim = Simulator()
        ctrl = PaperPrController(
            sim, InterruptController(sim), paper_bitstreams(), Trace(),
            faults=_stall_plan(0.05), timeout_s=0.5,
        )
        done = []
        ctrl.reconfigure("dark", on_done=done.append)
        sim.run()
        report = done[0]
        assert report.ok is True
        assert report.timed_out is False
        assert report.duration_s == pytest.approx(0.0705, rel=0.05)
        assert ctrl.active_configuration == "dark"

    def test_no_watchdog_without_timeout(self):
        sim = Simulator()
        ctrl = PaperPrController(
            sim, InterruptController(sim), paper_bitstreams(), Trace(),
            faults=_stall_plan(5.0),
        )
        done = []
        ctrl.reconfigure("dark", on_done=done.append)
        sim.run()
        assert done[0].ok is True  # eventually completes, 5 s late


class TestSocFallback:
    def test_partition_restored_to_last_good_image(self):
        soc = ZynqSoC(faults=_stall_plan(5.0), pr_timeout_s=0.1)
        degradations = []
        soc.on_degradation = degradations.append
        reports = []
        soc.reconfigure_vehicle("dark", on_done=reports.append)
        assert soc.vehicle.available is False
        soc.sim.run()
        assert soc.vehicle.available is True
        assert soc.vehicle.configuration == "day_dusk"  # last-good kept
        assert reports[0].timed_out
        assert any(d.kind == "pr-fallback" for d in degradations)


class TestSystemRetry:
    def test_drive_retries_after_timeout_and_recovers(self):
        plan = _stall_plan(5.0)
        system = AdaptiveDetectionSystem(fault_plan=plan)
        report = system.run_drive(sunset_trace(duration_s=120.0))
        timed_out = [r for r in report.reconfigurations if r.timed_out]
        assert timed_out, "the injected stall should trip the watchdog"
        assert any(r.ok and r.attempt > 1 for r in report.reconfigurations)
        assert system.soc.vehicle.configuration == "dark"
        assert all(f.pedestrian_accepted for f in report.frames)

    def test_retries_are_bounded_with_backoff(self):
        # Enough stall firings to exhaust every retry.
        plan = _stall_plan(5.0, firings=10)
        config = SystemConfig(
            degradation=DegradationPolicy(
                max_reconfig_retries=2,
                backoff_initial_s=0.05,
                backoff_factor=2.0,
                pr_timeout_s=0.1,
            )
        )
        system = AdaptiveDetectionSystem(config=config, fault_plan=plan)
        report = system.run_drive(sunset_trace(duration_s=120.0))
        dark_attempts = [r for r in report.reconfigurations if r.bitstream == "dark"]
        # 1 initial + 2 retries per requested reconfiguration, no more.
        assert max(r.attempt for r in dark_attempts) == 3
        assert any(d.kind == "reconfig-abandoned" for d in report.degradations)
        # Degraded but alive: the last-good image keeps detecting.
        assert system.soc.vehicle.available is True
        assert system.soc.vehicle.configuration == "day_dusk"
        assert any(f.degraded for f in report.frames)
        assert all(f.pedestrian_accepted for f in report.frames)

    def test_backoff_delays_grow_and_cap(self):
        policy = DegradationPolicy(
            backoff_initial_s=0.05, backoff_factor=2.0, backoff_max_s=0.15
        )
        assert policy.retry_delay_s(1) == pytest.approx(0.05)
        assert policy.retry_delay_s(2) == pytest.approx(0.10)
        assert policy.retry_delay_s(3) == pytest.approx(0.15)
        assert policy.retry_delay_s(10) == pytest.approx(0.15)
