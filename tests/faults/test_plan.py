"""Tests for repro.faults.plan: windows, targeting, arming, determinism."""

from __future__ import annotations

import pytest

from repro.errors import FaultInjectionError
from repro.faults.plan import ANY_TARGET, FaultEvent, FaultPlan, FaultSite, FaultSpec

pytestmark = pytest.mark.faults


class TestFaultSpec:
    def test_window_matching(self):
        spec = FaultSpec(site=FaultSite.DMA_ERROR, target="dma-x", start_s=1.0, end_s=2.0)
        assert not spec.matches(FaultSite.DMA_ERROR, "dma-x", 0.5)
        assert spec.matches(FaultSite.DMA_ERROR, "dma-x", 1.0)
        assert spec.matches(FaultSite.DMA_ERROR, "dma-x", 1.999)
        assert not spec.matches(FaultSite.DMA_ERROR, "dma-x", 2.0)

    def test_wildcard_and_named_targets(self):
        wild = FaultSpec(site=FaultSite.DMA_ERROR, target=ANY_TARGET)
        named = FaultSpec(site=FaultSite.DMA_ERROR, target="dma-a")
        assert wild.matches(FaultSite.DMA_ERROR, "anything", 0.0)
        assert named.matches(FaultSite.DMA_ERROR, "dma-a", 0.0)
        assert not named.matches(FaultSite.DMA_ERROR, "dma-b", 0.0)
        assert not named.matches(FaultSite.DMA_STALL, "dma-a", 0.0)

    def test_rejects_bad_specs(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(site=FaultSite.DMA_ERROR, start_s=-1.0)
        with pytest.raises(FaultInjectionError):
            FaultSpec(site=FaultSite.DMA_ERROR, start_s=2.0, end_s=1.0)
        with pytest.raises(FaultInjectionError):
            FaultSpec(site=FaultSite.DMA_STALL, magnitude=-0.5)
        with pytest.raises(FaultInjectionError):
            FaultSpec(site=FaultSite.DMA_ERROR, max_firings=0)


class TestFaultPlan:
    def test_fire_consumes_and_logs(self):
        plan = FaultPlan([FaultSpec(site=FaultSite.DMA_ERROR, max_firings=2)])
        assert plan.fire(FaultSite.DMA_ERROR, "dma-a", 0.1) is not None
        assert plan.fire(FaultSite.DMA_ERROR, "dma-a", 0.2) is not None
        assert plan.fire(FaultSite.DMA_ERROR, "dma-a", 0.3) is None
        assert plan.firings() == 2
        assert [e.time_s for e in plan.events] == [0.1, 0.2]

    def test_active_does_not_consume(self):
        plan = FaultPlan([FaultSpec(site=FaultSite.PR_STALL, max_firings=1)])
        assert plan.active(FaultSite.PR_STALL, "dark", 0.0) is not None
        assert plan.active(FaultSite.PR_STALL, "dark", 0.0) is not None
        assert plan.firings() == 0

    def test_miss_returns_none(self):
        plan = FaultPlan([FaultSpec(site=FaultSite.SENSOR_SPIKE, start_s=5.0, end_s=6.0)])
        assert plan.fire(FaultSite.SENSOR_SPIKE, "sensor", 1.0) is None
        assert plan.fire(FaultSite.SENSOR_DROPOUT, "sensor", 5.5) is None
        assert plan.events == []

    def test_any_active_with_slack(self):
        plan = FaultPlan([FaultSpec(site=FaultSite.DMA_STALL, start_s=1.0, end_s=2.0)])
        assert not plan.any_active(0.5)
        assert plan.any_active(1.5)
        assert not plan.any_active(2.5)
        assert plan.any_active(2.5, slack_s=1.0)

    def test_reset_rearms(self):
        plan = FaultPlan([FaultSpec(site=FaultSite.DMA_ERROR, max_firings=1)])
        assert plan.fire(FaultSite.DMA_ERROR, "x", 0.0) is not None
        assert plan.fire(FaultSite.DMA_ERROR, "x", 0.0) is None
        plan.reset()
        assert plan.events == []
        assert plan.fire(FaultSite.DMA_ERROR, "x", 0.0) is not None

    def test_listeners_notified(self):
        seen: list[FaultEvent] = []
        plan = FaultPlan([FaultSpec(site=FaultSite.DMA_ERROR)])
        plan.listeners.append(seen.append)
        plan.fire(FaultSite.DMA_ERROR, "dma-a", 3.0, "boom")
        assert len(seen) == 1
        assert seen[0].label() == "fault:dma-error@dma-a(boom)"

    def test_random_plans_are_seed_deterministic(self):
        a = FaultPlan.random(seed=7, duration_s=30.0, n_faults=8)
        b = FaultPlan.random(seed=7, duration_s=30.0, n_faults=8)
        c = FaultPlan.random(seed=8, duration_s=30.0, n_faults=8)
        assert a.specs == b.specs
        assert a.specs != c.specs
        assert len(a) == 8

    def test_random_plan_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.random(seed=0, duration_s=0.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan.random(seed=0, duration_s=10.0, n_faults=-1)
