"""Property: the pedestrian partition processes every frame, no matter what.

Randomized fault plans and lux traces drive the full system; under every
combination the static partition must stay perfect and the drive must
complete.  Uses hypothesis when available, plus an always-on seeded sweep
so the invariant is exercised even without it.
"""

from __future__ import annotations

import pytest

from repro.adaptive.sensor import LightSensor, LuxTrace
from repro.core.system import AdaptiveDetectionSystem
from repro.faults.plan import FaultPlan

pytestmark = pytest.mark.faults

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False

DURATION_S = 8.0


def _random_trace(seed: int) -> LuxTrace:
    import numpy as np

    rng = np.random.default_rng(seed)
    times = [0.0, DURATION_S * 0.33, DURATION_S * 0.66, DURATION_S]
    luxes = 10 ** rng.uniform(-0.5, 4.7, size=len(times))
    return LuxTrace(points=tuple(zip(times, (float(l) for l in luxes))))


def _assert_pedestrian_perfect(plan_seed: int, trace_seed: int, n_faults: int) -> None:
    plan = FaultPlan.random(seed=plan_seed, duration_s=DURATION_S, n_faults=n_faults)
    trace = _random_trace(trace_seed)
    system = AdaptiveDetectionSystem(fault_plan=plan)
    sensor = LightSensor(trace, noise_rel=0.05, seed=trace_seed, faults=plan)
    report = system.run_drive(trace, duration_s=DURATION_S, sensor=sensor)
    assert report.n_frames == int(DURATION_S * system.config.fps)
    assert all(f.pedestrian_accepted for f in report.frames), (
        f"pedestrian dropped a frame under plan seed {plan_seed}"
    )
    assert system.soc.pedestrian.frames_dropped == 0
    assert system.soc.pedestrian.frames_processed == report.n_frames


class TestPedestrianInvariant:
    def test_seeded_sweep(self):
        for seed in range(12):
            _assert_pedestrian_perfect(plan_seed=seed, trace_seed=seed + 100, n_faults=8)

    def test_no_fault_plan_baseline(self):
        _assert_pedestrian_perfect_no_plan()


def _assert_pedestrian_perfect_no_plan() -> None:
    trace = _random_trace(0)
    system = AdaptiveDetectionSystem()
    report = system.run_drive(trace, duration_s=DURATION_S)
    assert all(f.pedestrian_accepted for f in report.frames)
    assert system.soc.pedestrian.frames_dropped == 0


if HAVE_HYPOTHESIS:

    class TestPedestrianInvariantHypothesis:
        @given(
            plan_seed=st.integers(min_value=0, max_value=2**31 - 1),
            trace_seed=st.integers(min_value=0, max_value=2**31 - 1),
            n_faults=st.integers(min_value=0, max_value=12),
        )
        @settings(max_examples=15, deadline=None)
        def test_pedestrian_processes_every_frame(self, plan_seed, trace_seed, n_faults):
            _assert_pedestrian_perfect(plan_seed, trace_seed, n_faults)

        @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
        @settings(max_examples=10, deadline=None)
        def test_drive_completes_and_audits_every_firing(self, seed):
            plan = FaultPlan.random(seed=seed, duration_s=DURATION_S, n_faults=6)
            trace = _random_trace(seed)
            system = AdaptiveDetectionSystem(fault_plan=plan)
            sensor = LightSensor(trace, noise_rel=0.05, seed=seed, faults=plan)
            report = system.run_drive(trace, duration_s=DURATION_S, sensor=sensor)
            # Every firing that happened during the frame loop appears in
            # some frame's audit trail.
            audited = sum(len(f.faults) for f in report.frames)
            assert audited >= len(
                [e for e in plan.events if e.time_s <= report.frames[-1].time_s]
            )
