"""Tests for repro.datasets.synthetic: corpus factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.lighting import LightingCondition
from repro.datasets.synthetic import (
    SYSU_TEST_NEG,
    SYSU_TEST_POS,
    SYSU_TEST_VERY_DARK_POS,
    TAILLIGHT_CLASS_LARGE,
    TAILLIGHT_CLASS_NONE,
    TAILLIGHT_CLASS_SMALL,
    UPM_TEST_NEG,
    UPM_TEST_POS,
    make_dark_crops,
    make_iroads_like,
    make_pedestrian_frames,
    make_sysu_like,
    make_taillight_windows,
    make_upm_like,
)
from repro.errors import DatasetError
from repro.imaging.color import luminance


class TestPaperCounts:
    def test_table1_test_set_sizes(self):
        # Read off the paper's TP/TN/FP/FN columns.
        assert UPM_TEST_POS == 200 and UPM_TEST_NEG == 25
        assert SYSU_TEST_POS == 1063 and SYSU_TEST_NEG == 752
        assert SYSU_TEST_VERY_DARK_POS == 100


class TestUpmLike:
    def test_counts_and_condition(self):
        ds = make_upm_like(n_positive=10, n_negative=5, seed=1)
        assert ds.n_positive == 10 and ds.n_negative == 5
        assert ds.condition is LightingCondition.DAY
        assert not ds.very_dark.any()

    def test_deterministic(self):
        a = make_upm_like(n_positive=4, n_negative=2, seed=9)
        b = make_upm_like(n_positive=4, n_negative=2, seed=9)
        assert np.array_equal(a.images, b.images)


class TestSysuLike:
    def test_very_dark_tail(self):
        ds = make_sysu_like(n_positive=20, n_negative=10, n_very_dark_positive=5, seed=2)
        assert ds.very_dark.sum() == 5
        assert ds.labels[ds.very_dark].tolist() == [1] * 5

    def test_subset_removes_dark(self):
        ds = make_sysu_like(n_positive=20, n_negative=10, n_very_dark_positive=5, seed=3)
        sub = ds.without_very_dark()
        assert len(sub) == 25
        assert sub.n_positive == 15

    def test_rejects_excess_dark(self):
        with pytest.raises(DatasetError):
            make_sysu_like(n_positive=5, n_negative=5, n_very_dark_positive=6)

    def test_very_dark_positives_are_darker(self):
        ds = make_sysu_like(n_positive=30, n_negative=2, n_very_dark_positive=10, seed=4)
        dark_mean = np.mean([luminance(im).mean() for im in ds.images[ds.very_dark]])
        dusk_pos = ds.images[(ds.labels == 1) & ~ds.very_dark]
        dusk_mean = np.mean([luminance(im).mean() for im in dusk_pos])
        assert dark_mean < dusk_mean * 0.7

    def test_t_range_controls_brightness(self):
        bright = make_sysu_like(10, 2, 0, seed=5, lighting_t_range=(0.9, 1.0))
        dark = make_sysu_like(10, 2, 0, seed=5, lighting_t_range=(0.1, 0.2))
        mb = np.mean([luminance(im).mean() for im in bright.images[bright.labels == 1]])
        md = np.mean([luminance(im).mean() for im in dark.images[dark.labels == 1]])
        assert mb > md


class TestDarkCrops:
    def test_all_flagged_very_dark(self):
        ds = make_dark_crops(n_positive=5, n_negative=5)
        assert ds.very_dark.all()
        assert ds.condition is LightingCondition.DARK


class TestFrames:
    def test_iroads_counts(self):
        ds = make_iroads_like(n_frames=6, height=120, width=240, seed=6)
        assert len(ds) == 6
        assert ds.condition is LightingCondition.DARK

    def test_iroads_vehicle_fraction(self):
        ds = make_iroads_like(n_frames=30, height=120, width=240, with_vehicle_fraction=0.0, seed=7)
        assert all(not f.vehicles for f in ds.frames)

    def test_iroads_rejects_bad_fraction(self):
        with pytest.raises(DatasetError):
            make_iroads_like(with_vehicle_fraction=1.5)

    def test_pedestrian_frames_have_pedestrians(self):
        ds = make_pedestrian_frames(n_frames=4, height=120, width=240, seed=8)
        assert all(f.pedestrians for f in ds.frames)


class TestTaillightWindows:
    def test_shapes_and_labels(self):
        x, y = make_taillight_windows(n_per_class=15, seed=9)
        # Background is double-sampled (five pattern families).
        assert x.shape == (75, 81)
        assert set(np.unique(y)) == {0, 1, 2, 3}
        assert np.bincount(y).tolist() == [30, 15, 15, 15]

    def test_binary_values(self):
        x, _ = make_taillight_windows(n_per_class=10, seed=10)
        assert set(np.unique(x)).issubset({0.0, 1.0})

    def test_size_classes_ordered_by_mass(self):
        x, y = make_taillight_windows(n_per_class=60, seed=11)
        mass = {c: x[y == c].sum(axis=1).mean() for c in (TAILLIGHT_CLASS_SMALL, TAILLIGHT_CLASS_LARGE)}
        assert mass[TAILLIGHT_CLASS_LARGE] > mass[TAILLIGHT_CLASS_SMALL]

    def test_rejects_zero_per_class(self):
        with pytest.raises(DatasetError):
            make_taillight_windows(n_per_class=0)
