"""Tests for repro.datasets.pedestrians."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.pedestrians import (
    PedestrianSpec,
    random_pedestrian_spec,
    render_pedestrian,
)
from repro.errors import DatasetError


class TestSpec:
    def test_width_proportional(self):
        spec = PedestrianSpec(height=50, torso_tone=0.3, legs_tone=0.2)
        assert spec.width == 21

    def test_rejects_tiny(self):
        with pytest.raises(DatasetError):
            PedestrianSpec(height=8, torso_tone=0.3, legs_tone=0.2)

    def test_rejects_bad_stride(self):
        with pytest.raises(DatasetError):
            PedestrianSpec(height=40, torso_tone=0.3, legs_tone=0.2, stride=1.5)

    def test_random_spec_valid(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            spec = random_pedestrian_spec(rng, 48)
            assert 0.1 <= spec.stride <= 0.9


class TestRender:
    def test_shapes(self):
        rng = np.random.default_rng(1)
        sprite = render_pedestrian(PedestrianSpec(48, 0.3, 0.2), rng)
        assert sprite.rgb.shape == (48, 20, 3)
        assert sprite.alpha.shape == (48, 20)

    def test_head_torso_legs_present(self):
        rng = np.random.default_rng(2)
        sprite = render_pedestrian(PedestrianSpec(60, 0.4, 0.3), rng)
        alpha = sprite.alpha
        # Head region, torso region and leg region all have coverage.
        assert alpha[: 60 // 6].sum() > 0
        assert alpha[60 // 3 : 60 // 2].sum() > 0
        assert alpha[-60 // 5 :].sum() > 0

    def test_vertical_silhouette(self):
        # A pedestrian is taller than wide — the HOG cue the static
        # partition's detector uses.
        rng = np.random.default_rng(3)
        sprite = render_pedestrian(PedestrianSpec(64, 0.5, 0.4), rng)
        ys, xs = np.nonzero(sprite.alpha > 0)
        assert (ys.max() - ys.min()) > 1.5 * (xs.max() - xs.min())

    def test_gait_changes_silhouette(self):
        rng = np.random.default_rng(4)
        narrow = render_pedestrian(PedestrianSpec(48, 0.3, 0.3, stride=0.0), rng)
        wide = render_pedestrian(PedestrianSpec(48, 0.3, 0.3, stride=1.0), rng)
        assert not np.array_equal(narrow.alpha, wide.alpha)
