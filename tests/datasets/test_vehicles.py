"""Tests for repro.datasets.vehicles: sprite rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.lighting import DARK_LIGHTING, DAY_LIGHTING, DUSK_LIGHTING
from repro.datasets.vehicles import (
    VehicleSpec,
    random_vehicle_spec,
    render_headlight_pair,
    render_vehicle,
)
from repro.errors import DatasetError
from repro.imaging.color import rgb_to_ycbcr


class TestSpec:
    def test_height_derived(self):
        spec = VehicleSpec(width=40, color=(0.5, 0.5, 0.5))
        assert spec.height == 34

    def test_rejects_tiny(self):
        with pytest.raises(DatasetError):
            VehicleSpec(width=4, color=(0.5, 0.5, 0.5))

    def test_rejects_bad_separation(self):
        with pytest.raises(DatasetError):
            VehicleSpec(width=40, color=(0.5, 0.5, 0.5), taillight_separation=0.1)

    def test_random_spec_in_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            spec = random_vehicle_spec(rng, 48)
            assert 0.60 <= spec.taillight_separation <= 0.78
            assert all(0.0 <= c <= 1.0 for c in spec.color)


class TestRender:
    def test_layers_shapes_match(self):
        rng = np.random.default_rng(1)
        sprite = render_vehicle(VehicleSpec(40, (0.4, 0.4, 0.5)), DAY_LIGHTING, rng)
        assert sprite.rgb.shape[2] == 3
        assert sprite.rgb.shape[:2] == sprite.alpha.shape
        assert sprite.emissive.shape == sprite.rgb.shape

    def test_day_has_no_emission(self):
        rng = np.random.default_rng(2)
        sprite = render_vehicle(VehicleSpec(40, (0.4, 0.4, 0.5)), DAY_LIGHTING, rng)
        assert sprite.emissive.sum() == 0.0
        assert sprite.taillights == []

    def test_dark_emits_two_red_taillights(self):
        rng = np.random.default_rng(3)
        sprite = render_vehicle(VehicleSpec(48, (0.2, 0.2, 0.2)), DARK_LIGHTING, rng)
        assert len(sprite.taillights) == 2
        (x1, y1), (x2, y2) = sprite.taillights
        assert abs(y1 - y2) < 1e-9  # same height
        assert abs(x2 - x1) > 10  # separated
        # Emission is red-dominant.
        assert sprite.emissive[..., 0].sum() > sprite.emissive[..., 2].sum()

    def test_taillight_chroma_is_red(self):
        rng = np.random.default_rng(4)
        sprite = render_vehicle(VehicleSpec(48, (0.2, 0.2, 0.2)), DUSK_LIGHTING, rng)
        lit = np.clip(sprite.rgb * 0.05 + sprite.emissive, 0, 1)
        x, y = sprite.taillights[0]
        cr = rgb_to_ycbcr(lit)[..., 2]
        assert cr[int(y), int(x)] > 0.15

    def test_alpha_covers_body(self):
        rng = np.random.default_rng(5)
        sprite = render_vehicle(VehicleSpec(40, (0.5, 0.5, 0.5)), DAY_LIGHTING, rng)
        x, y, w, h = sprite.body_rect.as_int()
        body_alpha = sprite.alpha[y + 2 : y + h - 2, x + 2 : x + w - 2]
        assert body_alpha.mean() > 0.9

    def test_unlit_lens_blends_with_body(self):
        rng = np.random.default_rng(6)
        spec = VehicleSpec(48, (0.3, 0.3, 0.35))
        sprite = render_vehicle(spec, DAY_LIGHTING, rng)
        # Unlit lens must not be a saturated red disk.
        body = np.asarray(spec.color)
        cx = sprite.body_rect.x + sprite.body_rect.w / 2.0
        ty = sprite.body_rect.y + (sprite.body_rect.h * 0.18 / 0.72)
        # Sample near where lenses are drawn; red excess should be small.
        region = sprite.rgb[:, :, 0] - sprite.rgb[:, :, 1]
        assert region.max() < 0.35


class TestHeadlights:
    def test_pair_is_white(self):
        patch = render_headlight_pair(40, 80, 40, 20, 20, 3, 0.9, 1.0)
        cr = rgb_to_ycbcr(patch)[..., 2]
        assert cr.max() < 0.1

    def test_two_peaks(self):
        patch = render_headlight_pair(40, 80, 40, 20, 30, 2, 1.0, 1.0)
        row = patch[20, :, 0]
        left = row[:40].argmax()
        right = 40 + row[40:].argmax()
        assert abs((right - left) - 30) <= 2

    def test_rejects_bad_geometry(self):
        with pytest.raises(DatasetError):
            render_headlight_pair(10, 10, 5, 5, -1, 2, 1.0, 1.0)
