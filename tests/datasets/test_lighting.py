"""Tests for repro.datasets.lighting: conditions, presets, samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.lighting import (
    DARK_LIGHTING,
    DARK_LUX_UPPER,
    DAY_LIGHTING,
    DUSK_LIGHTING,
    DUSK_LUX_UPPER,
    LightingCondition,
    condition_for_lux,
    lighting_for_condition,
    lighting_for_lux,
    sample_dark_lighting,
    sample_day_lighting,
    sample_dusk_lighting,
    sample_lighting,
)
from repro.errors import DatasetError


class TestConditionMapping:
    def test_boundaries(self):
        assert condition_for_lux(DUSK_LUX_UPPER) is LightingCondition.DAY
        assert condition_for_lux(DUSK_LUX_UPPER - 1) is LightingCondition.DUSK
        assert condition_for_lux(DARK_LUX_UPPER) is LightingCondition.DUSK
        assert condition_for_lux(DARK_LUX_UPPER - 0.1) is LightingCondition.DARK

    def test_extremes(self):
        assert condition_for_lux(100_000) is LightingCondition.DAY
        assert condition_for_lux(0.0) is LightingCondition.DARK

    def test_rejects_negative(self):
        with pytest.raises(DatasetError):
            condition_for_lux(-1.0)


class TestPresets:
    def test_ambient_ordering(self):
        assert DAY_LIGHTING.ambient > DUSK_LIGHTING.ambient > DARK_LIGHTING.ambient

    def test_lights_off_during_day(self):
        assert not DAY_LIGHTING.taillights_on
        assert DUSK_LIGHTING.taillights_on and DARK_LIGHTING.taillights_on

    def test_noise_rises_in_darkness(self):
        assert DAY_LIGHTING.noise_sigma < DARK_LIGHTING.noise_sigma

    def test_preset_lookup(self):
        for condition in LightingCondition:
            assert lighting_for_condition(condition).condition is condition

    def test_lighting_for_lux_condition_consistent(self):
        for lux in (50_000, 100, 1.0):
            model = lighting_for_lux(lux)
            assert model.condition is condition_for_lux(lux)

    def test_lighting_for_lux_interpolates_brighter(self):
        dim = lighting_for_lux(6.0)
        bright = lighting_for_lux(800.0)
        assert bright.ambient > dim.ambient

    def test_model_validation(self):
        from repro.datasets.lighting import LightingModel

        with pytest.raises(DatasetError):
            LightingModel(
                condition=LightingCondition.DAY,
                ambient=-0.1,
                sky_brightness=0.5,
                headlights_on=False,
                taillights_on=False,
                taillight_intensity=0.0,
                road_lights=False,
                glow_scale=1.0,
                noise_sigma=0.01,
                contrast=1.0,
            )


class TestSamplers:
    def test_day_sampler_never_lights(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            model = sample_day_lighting(rng)
            assert not model.taillights_on
            assert model.condition is LightingCondition.DAY

    def test_dusk_sampler_spans_brightness(self):
        rng = np.random.default_rng(1)
        ambients = [sample_dusk_lighting(rng).ambient for _ in range(200)]
        assert max(ambients) - min(ambients) > 0.25

    def test_dusk_sampler_t_range(self):
        rng = np.random.default_rng(2)
        bright = [sample_dusk_lighting(rng, t_range=(0.9, 1.0)).ambient for _ in range(20)]
        dark = [sample_dusk_lighting(rng, t_range=(0.1, 0.2)).ambient for _ in range(20)]
        assert min(bright) > max(dark)

    def test_dusk_sampler_rejects_bad_range(self):
        rng = np.random.default_rng(3)
        with pytest.raises(DatasetError):
            sample_dusk_lighting(rng, t_range=(0.8, 0.2))

    def test_dark_sampler_is_dark(self):
        rng = np.random.default_rng(4)
        for _ in range(10):
            model = sample_dark_lighting(rng)
            assert model.ambient < 0.1
            assert model.taillights_on

    def test_sample_lighting_dispatch(self):
        rng = np.random.default_rng(5)
        for condition in LightingCondition:
            assert sample_lighting(condition, rng).condition is condition
