"""Tests for repro.datasets.scene: frames, crops, sensor model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.lighting import (
    DARK_LIGHTING,
    DAY_LIGHTING,
    DUSK_LIGHTING,
    LightingCondition,
)
from repro.datasets.scene import (
    SceneConfig,
    apply_sensor_model,
    render_background,
    render_condition_scene,
    render_negative_crop,
    render_scene,
    render_vehicle_crop,
)
from repro.errors import DatasetError
from repro.imaging.color import luminance


class TestSceneConfig:
    def test_rejects_tiny_frame(self):
        with pytest.raises(DatasetError):
            SceneConfig(height=10, width=10)

    def test_rejects_negative_counts(self):
        with pytest.raises(DatasetError):
            SceneConfig(n_vehicles=-1)

    def test_rejects_bad_fill(self):
        with pytest.raises(DatasetError):
            SceneConfig(vehicle_fill=(0.4, 0.2))


class TestRenderScene:
    def test_frame_shape_and_range(self):
        frame = render_condition_scene(LightingCondition.DAY, seed=1, height=120, width=160)
        assert frame.rgb.shape == (120, 160, 3)
        assert frame.rgb.min() >= 0.0 and frame.rgb.max() <= 1.0

    def test_deterministic_by_seed(self):
        a = render_condition_scene(LightingCondition.DUSK, seed=5, height=96, width=128)
        b = render_condition_scene(LightingCondition.DUSK, seed=5, height=96, width=128)
        assert np.array_equal(a.rgb, b.rgb)

    def test_ground_truth_counts(self):
        config = SceneConfig(height=160, width=240, n_vehicles=2, n_pedestrians=1, seed=3)
        frame = render_scene(config, DAY_LIGHTING)
        assert len(frame.vehicles) == 2
        assert len(frame.pedestrians) == 1

    def test_dark_vehicles_record_taillights(self):
        config = SceneConfig(height=160, width=240, n_vehicles=1, seed=4)
        frame = render_scene(config, DARK_LIGHTING)
        assert len(frame.vehicles) == 1
        assert len(frame.vehicles[0].taillights) == 2

    def test_day_vehicles_record_no_taillights(self):
        config = SceneConfig(height=160, width=240, n_vehicles=1, seed=4)
        frame = render_scene(config, DAY_LIGHTING)
        assert frame.vehicles[0].taillights == []

    def test_boxes_inside_frame(self):
        config = SceneConfig(height=160, width=240, n_vehicles=3, n_pedestrians=2, seed=6)
        frame = render_scene(config, DUSK_LIGHTING)
        for obj in frame.objects:
            assert obj.rect.x >= 0 and obj.rect.y >= 0
            assert obj.rect.x2 <= 240 and obj.rect.y2 <= 160

    def test_dark_frame_is_darker_than_day(self):
        day = render_condition_scene(LightingCondition.DAY, seed=7, height=96, width=128)
        dark = render_condition_scene(LightingCondition.DARK, seed=7, height=96, width=128)
        assert luminance(dark.rgb).mean() < luminance(day.rgb).mean() * 0.5

    def test_oncoming_only_when_headlights_on(self):
        config = SceneConfig(height=160, width=240, n_vehicles=0, n_oncoming=2, seed=8)
        day = render_scene(config, DAY_LIGHTING)
        dark = render_scene(config, DARK_LIGHTING)
        assert not [o for o in day.objects if o.kind == "headlights"]
        assert len([o for o in dark.objects if o.kind == "headlights"]) == 2


class TestBackground:
    def test_layers_shapes(self):
        rng = np.random.default_rng(0)
        refl, emis = render_background(80, 120, DUSK_LIGHTING, rng)
        assert refl.shape == (80, 120, 3)
        assert emis.shape == (80, 120, 3)

    def test_street_lamps_only_at_dusk(self):
        rng = np.random.default_rng(1)
        _, emis_day = render_background(80, 120, DAY_LIGHTING, rng)
        rng = np.random.default_rng(1)
        _, emis_dusk = render_background(80, 120, DUSK_LIGHTING, rng)
        assert emis_day.sum() == 0.0
        assert emis_dusk.sum() > 0.0


class TestCrops:
    def test_vehicle_crop_shape(self):
        rng = np.random.default_rng(2)
        crop = render_vehicle_crop(DAY_LIGHTING, rng, size=64)
        assert crop.shape == (64, 64, 3)

    def test_vehicle_crop_rejects_small(self):
        rng = np.random.default_rng(3)
        with pytest.raises(DatasetError):
            render_vehicle_crop(DAY_LIGHTING, rng, size=8)

    def test_vehicle_crop_rejects_bad_fill(self):
        rng = np.random.default_rng(4)
        with pytest.raises(DatasetError):
            render_vehicle_crop(DAY_LIGHTING, rng, size=64, fill_range=(0.9, 0.5))

    def test_negative_crop_shape(self):
        rng = np.random.default_rng(5)
        crop = render_negative_crop(DUSK_LIGHTING, rng, size=64)
        assert crop.shape == (64, 64, 3)

    def test_positive_brighter_center_in_dark(self):
        # A dark positive crop contains lit taillights; negatives need not.
        rng = np.random.default_rng(6)
        pos = [render_vehicle_crop(DARK_LIGHTING, rng, 64).max() for _ in range(5)]
        assert min(pos) > 0.45


class TestSensorModel:
    def test_output_clipped(self):
        rng = np.random.default_rng(7)
        img = rng.random((16, 16, 3)) * 2.0 - 0.5
        out = apply_sensor_model(img, DAY_LIGHTING, rng)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_blur_softens_edges(self):
        rng = np.random.default_rng(8)
        img = np.zeros((32, 32, 3))
        img[:, 16:] = 1.0
        sharp = apply_sensor_model(img, DAY_LIGHTING, np.random.default_rng(0))
        soft = apply_sensor_model(img, DARK_LIGHTING, np.random.default_rng(0))
        grad_sharp = np.abs(np.diff(sharp[16, :, 0])).max()
        grad_soft = np.abs(np.diff(soft[16, :, 0])).max()
        assert grad_soft < grad_sharp
