"""Tests for repro.datasets.sequences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.lighting import DARK_LIGHTING, DAY_LIGHTING
from repro.datasets.scene import SceneConfig
from repro.datasets.sequences import SequenceConfig, render_sequence, track_ground_truth
from repro.errors import DatasetError


def _sequence(n_frames=6, n_vehicles=2, lighting=DAY_LIGHTING, seed=3, **scene_kwargs):
    config = SequenceConfig(
        scene=SceneConfig(
            height=120, width=210, n_vehicles=n_vehicles, seed=seed, **scene_kwargs
        ),
        n_frames=n_frames,
    )
    return render_sequence(config, lighting)


class TestConfig:
    def test_rejects_zero_frames(self):
        with pytest.raises(DatasetError):
            SequenceConfig(n_frames=0)

    def test_rejects_bad_brake_probability(self):
        with pytest.raises(DatasetError):
            SequenceConfig(brake_probability=2.0)


class TestSequenceRendering:
    def test_frame_count_and_shapes(self):
        frames = _sequence(n_frames=5)
        assert len(frames) == 5
        assert all(f.rgb.shape == (120, 210, 3) for f in frames)

    def test_track_ids_persist(self):
        frames = _sequence(n_frames=8)
        tracks = track_ground_truth(frames)
        # Each initial vehicle should persist across (almost) all frames.
        longest = max(len(items) for items in tracks.values())
        assert longest >= 6

    def test_distinct_lanes_no_overlap(self):
        frames = _sequence(n_frames=4, n_vehicles=3)
        for frame in frames:
            boxes = frame.vehicle_boxes
            for i in range(len(boxes)):
                for j in range(i + 1, len(boxes)):
                    assert boxes[i].iou(boxes[j]) < 0.5

    def test_motion_is_smooth(self):
        frames = _sequence(n_frames=8)
        tracks = track_ground_truth(frames)
        for items in tracks.values():
            if len(items) < 3:
                continue
            centers = [obj.rect.center for _, obj in items]
            steps = [
                np.hypot(b[0] - a[0], b[1] - a[1])
                for a, b in zip(centers, centers[1:])
            ]
            # Per-frame drift stays small relative to the frame.
            assert max(steps) < 20

    def test_deterministic(self):
        a = _sequence(n_frames=3, seed=9)
        b = _sequence(n_frames=3, seed=9)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.rgb, fb.rgb)

    def test_dark_sequence_has_taillights(self):
        frames = _sequence(n_frames=3, lighting=DARK_LIGHTING, vehicle_fill=(0.1, 0.2))
        for frame in frames:
            for vehicle in frame.vehicles:
                assert len(vehicle.taillights) == 2

    def test_respawn_assigns_new_identity(self):
        config = SequenceConfig(
            scene=SceneConfig(height=120, width=210, n_vehicles=1, seed=11),
            n_frames=60,
            depth_rate_range=(0.02, 0.03),  # fast approach -> forced respawn
        )
        frames = render_sequence(config, DAY_LIGHTING)
        ids = {o.track_id for f in frames for o in f.vehicles}
        assert len(ids) >= 2
