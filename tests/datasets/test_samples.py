"""Tests for repro.datasets.samples: corpora containers and crop extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.lighting import DAY_LIGHTING, LightingCondition
from repro.datasets.samples import ClassificationDataset, extract_window_samples
from repro.datasets.scene import SceneConfig, render_scene
from repro.errors import DatasetError


def _tiny_dataset(n: int = 6) -> ClassificationDataset:
    rng = np.random.default_rng(0)
    return ClassificationDataset(
        name="tiny",
        condition=LightingCondition.DAY,
        images=rng.random((n, 8, 8, 3)),
        labels=np.array([1, -1] * (n // 2)),
        very_dark=np.array([False] * (n - 1) + [True]),
    )


class TestClassificationDataset:
    def test_counts(self):
        ds = _tiny_dataset()
        assert len(ds) == 6
        assert ds.n_positive == 3
        assert ds.n_negative == 3

    def test_rejects_misaligned_labels(self):
        with pytest.raises(DatasetError):
            ClassificationDataset(
                name="bad",
                condition=LightingCondition.DAY,
                images=np.zeros((3, 4, 4, 3)),
                labels=np.array([1, -1]),
            )

    def test_rejects_wrong_image_rank(self):
        with pytest.raises(DatasetError):
            ClassificationDataset(
                name="bad",
                condition=LightingCondition.DAY,
                images=np.zeros((3, 4, 4)),
                labels=np.array([1, -1, 1]),
            )

    def test_subset_by_mask(self):
        ds = _tiny_dataset()
        sub = ds.subset(ds.labels == 1)
        assert len(sub) == 3
        assert sub.n_negative == 0

    def test_without_very_dark(self):
        ds = _tiny_dataset()
        sub = ds.without_very_dark()
        assert len(sub) == 5
        assert not sub.very_dark.any()

    def test_merge(self):
        a = _tiny_dataset()
        b = _tiny_dataset()
        merged = a.merged_with(b, "combo")
        assert len(merged) == 12
        assert merged.name == "combo"

    def test_merge_rejects_shape_mismatch(self):
        a = _tiny_dataset()
        b = ClassificationDataset(
            name="other",
            condition=LightingCondition.DAY,
            images=np.zeros((2, 16, 16, 3)),
            labels=np.array([1, -1]),
        )
        with pytest.raises(DatasetError):
            a.merged_with(b, "combo")


class TestExtractWindows:
    def test_positive_and_negative_extraction(self):
        config = SceneConfig(height=160, width=240, n_vehicles=2, seed=1)
        frame = render_scene(config, DAY_LIGHTING)
        rng = np.random.default_rng(2)
        pos, neg = extract_window_samples(frame, (64, 64), n_negative=5, rng=rng)
        assert len(pos) == 2
        assert len(neg) == 5
        assert all(p.shape == (64, 64, 3) for p in pos)
        assert all(n.shape == (64, 64, 3) for n in neg)

    def test_negatives_avoid_truths(self):
        config = SceneConfig(height=160, width=240, n_vehicles=1, seed=3)
        frame = render_scene(config, DAY_LIGHTING)
        rng = np.random.default_rng(4)
        _, neg = extract_window_samples(frame, (32, 32), n_negative=8, rng=rng, max_iou=0.0)
        assert len(neg) > 0  # sampler still finds clear windows

    def test_kind_filter(self):
        config = SceneConfig(height=160, width=240, n_vehicles=1, n_pedestrians=2, seed=5)
        frame = render_scene(config, DAY_LIGHTING)
        rng = np.random.default_rng(6)
        pos, _ = extract_window_samples(frame, (64, 32), 0, rng, kind="pedestrian")
        assert len(pos) == 2
