"""Tests for repro.adaptive.sensor: traces and the sensor model."""

from __future__ import annotations

import pytest

from repro.adaptive.sensor import (
    LightSensor,
    LuxTrace,
    flicker_trace,
    sunset_trace,
    tunnel_trace,
    urban_evening_trace,
)
from repro.datasets.lighting import LightingCondition, condition_for_lux
from repro.errors import ConfigurationError


class TestLuxTrace:
    def test_interpolation_log_space(self):
        trace = LuxTrace(points=((0.0, 100.0), (10.0, 1.0)))
        mid = trace.lux_at(5.0)
        assert mid == pytest.approx(10.0)  # geometric mean, not 50.5

    def test_clamped_outside(self):
        trace = LuxTrace(points=((1.0, 10.0), (2.0, 100.0)))
        assert trace.lux_at(0.0) == 10.0
        assert trace.lux_at(5.0) == 100.0

    def test_rejects_unordered_times(self):
        with pytest.raises(ConfigurationError):
            LuxTrace(points=((1.0, 10.0), (1.0, 20.0)))

    def test_rejects_non_positive_lux(self):
        with pytest.raises(ConfigurationError):
            LuxTrace(points=((0.0, 0.0),))


class TestStandardTraces:
    def test_sunset_ends_dark(self):
        trace = sunset_trace(duration_s=100.0)
        assert condition_for_lux(trace.lux_at(0.0)) is LightingCondition.DAY
        assert condition_for_lux(trace.lux_at(100.0)) is LightingCondition.DARK

    def test_tunnel_is_dusk_inside(self):
        trace = tunnel_trace(duration_s=100.0)
        assert condition_for_lux(trace.lux_at(50.0)) is LightingCondition.DUSK
        assert condition_for_lux(trace.lux_at(0.0)) is LightingCondition.DAY
        assert condition_for_lux(trace.lux_at(100.0)) is LightingCondition.DAY

    def test_tunnel_never_dark(self):
        # The paper's point: tunnels are handled by day<->dusk, no PR.
        trace = tunnel_trace(duration_s=100.0)
        for i in range(101):
            assert condition_for_lux(trace.lux_at(float(i))) is not LightingCondition.DARK

    def test_urban_evening_crosses_dark_boundary(self):
        trace = urban_evening_trace(duration_s=100.0)
        conditions = {condition_for_lux(trace.lux_at(t * 1.0)) for t in range(101)}
        assert LightingCondition.DARK in conditions
        assert LightingCondition.DUSK in conditions

    def test_flicker_oscillates(self):
        trace = flicker_trace(duration_s=20.0)
        values = [trace.lux_at(t * 0.5) for t in range(40)]
        assert max(values) > min(values)


class TestSensor:
    def test_noiseless_sensor_reads_truth(self):
        trace = LuxTrace(points=((0.0, 50.0),))
        sensor = LightSensor(trace, noise_rel=0.0)
        assert sensor.read(0.0) == pytest.approx(50.0)

    def test_noise_is_multiplicative(self):
        trace = LuxTrace(points=((0.0, 100.0),))
        sensor = LightSensor(trace, noise_rel=0.1, seed=1)
        readings = [sensor.read(0.0) for _ in range(200)]
        assert 80.0 < sum(readings) / len(readings) < 125.0
        assert min(readings) > 0.0

    def test_dropout_returns_last(self):
        trace = LuxTrace(points=((0.0, 10.0), (10.0, 1000.0)))
        sensor = LightSensor(trace, noise_rel=0.0, dropout_probability=0.999999, seed=2)
        first = sensor.read(0.0)
        held = sensor.read(9.0)
        assert held == pytest.approx(first)

    def test_rejects_bad_dropout(self):
        with pytest.raises(ConfigurationError):
            LightSensor(LuxTrace(points=((0.0, 1.0),)), dropout_probability=1.0)

    def test_deterministic_with_seed(self):
        trace = sunset_trace(100.0)
        a = LightSensor(trace, seed=3)
        b = LightSensor(trace, seed=3)
        assert [a.read(t) for t in range(10)] == [b.read(t) for t in range(10)]
