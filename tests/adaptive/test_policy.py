"""Tests for repro.adaptive.policy: switch planning."""

from __future__ import annotations

import pytest

from repro.adaptive.policy import (
    CONFIG_FOR_CONDITION,
    SwitchKind,
    VehicleConfigurationId,
    plan_switch,
)
from repro.datasets.lighting import LightingCondition


class TestMapping:
    def test_day_and_dusk_share_configuration(self):
        # "Two different partial configurations are generated ... one for
        # the day and dusk, and the other one for the dark condition."
        assert (
            CONFIG_FOR_CONDITION[LightingCondition.DAY]
            is CONFIG_FOR_CONDITION[LightingCondition.DUSK]
            is VehicleConfigurationId.DAY_DUSK
        )
        assert CONFIG_FOR_CONDITION[LightingCondition.DARK] is VehicleConfigurationId.DARK


class TestPlanning:
    def test_same_condition_noop(self):
        plan = plan_switch(LightingCondition.DAY, LightingCondition.DAY)
        assert plan.kind is SwitchKind.NONE

    def test_day_dusk_is_model_swap(self):
        plan = plan_switch(LightingCondition.DAY, LightingCondition.DUSK)
        assert plan.kind is SwitchKind.MODEL_SWAP
        assert plan.target_configuration is VehicleConfigurationId.DAY_DUSK

    def test_dusk_day_is_model_swap(self):
        plan = plan_switch(LightingCondition.DUSK, LightingCondition.DAY)
        assert plan.kind is SwitchKind.MODEL_SWAP

    @pytest.mark.parametrize(
        "src",
        [LightingCondition.DAY, LightingCondition.DUSK],
    )
    def test_entering_dark_requires_pr(self, src):
        plan = plan_switch(src, LightingCondition.DARK)
        assert plan.kind is SwitchKind.PARTIAL_RECONFIG
        assert plan.target_configuration is VehicleConfigurationId.DARK

    def test_leaving_dark_requires_pr(self):
        plan = plan_switch(LightingCondition.DARK, LightingCondition.DUSK)
        assert plan.kind is SwitchKind.PARTIAL_RECONFIG
        assert plan.target_configuration is VehicleConfigurationId.DAY_DUSK
