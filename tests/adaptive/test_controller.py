"""Tests for repro.adaptive.controller: hysteresis + dwell behavior."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.adaptive.controller import ControllerConfig, LightingController, NaiveController
from repro.adaptive.sensor import LightSensor, LuxTrace
from repro.datasets.lighting import LightingCondition
from repro.errors import ConfigurationError


def make_controller(**kwargs) -> LightingController:
    defaults = dict(hysteresis=0.3, min_dwell_s=2.0)
    defaults.update(kwargs)
    return LightingController(ControllerConfig(**defaults))


class TestConfig:
    def test_rejects_inverted_boundaries(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(day_dusk_lux=1.0, dusk_dark_lux=5.0)

    def test_rejects_negative_hysteresis(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(hysteresis=-0.1)


class TestTransitions:
    def test_day_to_dusk_requires_margin(self):
        ctl = make_controller()
        # Just below the boundary: inside the hysteresis band, no switch.
        assert ctl.update(0.0, 900.0) is None
        assert ctl.condition is LightingCondition.DAY
        # Well below the band: switch.
        change = ctl.update(10.0, 500.0)
        assert change is not None
        assert change.new is LightingCondition.DUSK

    def test_dusk_to_day_requires_margin(self):
        ctl = make_controller()
        ctl.condition = LightingCondition.DUSK
        assert ctl.update(0.0, 1100.0) is None  # inside band (<= 1300)
        change = ctl.update(10.0, 2000.0)
        assert change.new is LightingCondition.DAY

    def test_dusk_to_dark(self):
        ctl = make_controller()
        ctl.condition = LightingCondition.DUSK
        change = ctl.update(0.0, 2.0)
        assert change.new is LightingCondition.DARK

    def test_multi_step_jump_goes_one_condition_per_update(self):
        ctl = make_controller(min_dwell_s=0.0)
        # Driving into an unlit garage: day -> (dusk) -> dark.
        first = ctl.update(0.0, 0.5)
        assert first.new is LightingCondition.DUSK
        second = ctl.update(0.1, 0.5)
        assert second.new is LightingCondition.DARK

    def test_dwell_time_blocks_rapid_switching(self):
        ctl = make_controller(min_dwell_s=5.0)
        assert ctl.update(0.0, 100.0).new is LightingCondition.DUSK
        # Another legitimate switch request arrives too soon.
        assert ctl.update(1.0, 0.5) is None
        assert ctl.update(6.0, 0.5).new is LightingCondition.DARK

    def test_history_recorded(self):
        ctl = make_controller(min_dwell_s=0.0)
        ctl.update(0.0, 100.0)
        ctl.update(1.0, 0.5)
        assert len(ctl.history) == 2
        assert ctl.history[0].previous is LightingCondition.DAY

    def test_rejects_negative_lux(self):
        with pytest.raises(ConfigurationError):
            make_controller().update(0.0, -1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=3.9, max_value=6.4), min_size=5, max_size=40))
    def test_no_oscillation_inside_band(self, lux_values):
        """Lux wandering strictly inside the dusk/dark hysteresis band
        (5/1.3 = 3.85 .. 5*1.3 = 6.5) never toggles a dusk-initialised
        controller."""
        ctl = LightingController(
            ControllerConfig(hysteresis=0.3, min_dwell_s=0.0),
            initial=LightingCondition.DUSK,
        )
        for i, lux in enumerate(lux_values):
            ctl.update(float(i), lux)
        assert ctl.history == []


class TestRunTrace:
    def test_sunset_produces_ordered_transitions(self):
        from repro.adaptive.sensor import sunset_trace

        ctl = make_controller()
        sensor = LightSensor(sunset_trace(120.0), noise_rel=0.02, seed=1)
        changes = ctl.run_trace(sensor, 0.5, 120.0)
        sequence = [c.new for c in changes]
        assert sequence == [LightingCondition.DUSK, LightingCondition.DARK]

    def test_rejects_bad_period(self):
        ctl = make_controller()
        sensor = LightSensor(LuxTrace(points=((0.0, 10.0),)))
        with pytest.raises(ConfigurationError):
            ctl.run_trace(sensor, 0.0, 10.0)


class TestNaive:
    def test_naive_has_no_hysteresis(self):
        ctl = NaiveController(initial=LightingCondition.DUSK)
        assert ctl.config.hysteresis == 0.0
        assert ctl.config.min_dwell_s == 0.0

    def test_naive_toggles_on_boundary_noise(self):
        ctl = NaiveController(initial=LightingCondition.DUSK)
        switches = 0
        for i, lux in enumerate([4.0, 6.0] * 10):
            if ctl.update(float(i), lux) is not None:
                switches += 1
        assert switches >= 10
