# module: repro.zynq.fixture


def step(clock):
    return clock()
