# module: repro.zynq.fixture
import time

x = time.time()
