# module: repro.pipelines.fixture


def detect(frame: object) -> list:
    """Run detection."""
    return []
