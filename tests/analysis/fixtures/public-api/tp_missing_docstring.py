# module: repro.pipelines.fixture


def detect(frame: object) -> list:
    return []
