# module: repro.fleet.fixture
scheduler.fleet_event('fleet.run.start', drives=4)
