# module: repro.fleet.fixture
scheduler.fleet_event('fleet.party')
