# module: repro.quality.fixture
quality_event('quality.confetti', path='x')
