# module: repro.quality.fixture
observer.quality_event('quality.party')
