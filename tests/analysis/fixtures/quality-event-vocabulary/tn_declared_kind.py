# module: repro.quality.fixture
observer.quality_event('quality.drive.start', trace='sunset')
quality_event('quality.compare', regressed=0)
