# module: repro.cyc.alpha
import repro.cyc.beta
