# module: repro.cyc.alpha
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import repro.cyc.beta
