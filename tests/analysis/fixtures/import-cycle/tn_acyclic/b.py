# module: repro.cyc.beta
import repro.cyc.alpha
