# module: repro.zynq.fixture
with tracer.span('drive.frame') as s:
    pass
