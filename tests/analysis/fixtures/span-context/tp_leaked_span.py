# module: repro.zynq.fixture
s = tracer.span('drive.frame')
