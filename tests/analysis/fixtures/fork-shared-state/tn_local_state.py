# module: repro.fleet.worker


def worker_loop(task_queue):
    results = {}
    results["last"] = task_queue
    return results
