# module: repro.fleet.worker
_RESULTS = {}


def worker_loop(task_queue):
    _RESULTS["last"] = task_queue
