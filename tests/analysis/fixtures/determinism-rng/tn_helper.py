# module: repro.zynq.fixture
from repro.rng import make_rng

rng = make_rng(7)
