# module: repro.zynq.fixture
import random
