# module: repro.pipelines.fixture


def scan(model, chunks):
    for chunk in chunks:
        model.predict_batch(chunk)
