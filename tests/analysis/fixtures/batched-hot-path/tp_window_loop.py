# module: repro.pipelines.fixture


def scan(model, windows):
    out = []
    for w in windows:
        out.append(model.decision_values(w))
    return out
