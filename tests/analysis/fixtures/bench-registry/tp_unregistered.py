# module: repro.perf.suites.fixture


def resize_bench(ctx):
    return lambda: None
