# module: repro.perf.suites.fixture
from repro.perf.registry import bench


@bench('resize_ms', group='imaging')
def resize(ctx):
    return lambda: None
