# module: repro.zynq.fixture
# reprolint: skip-file=determinism-rng
import random

x = 1  # reprolint: skip=determinism-clock
