# module: repro.zynq.fixture
x = 1  # reprolint: skip=determinsm-clock
