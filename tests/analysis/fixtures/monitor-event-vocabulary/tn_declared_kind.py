# module: repro.zynq.fixture
monitor.emit_event('monitor.trigger', 1.0, trigger='fault')
