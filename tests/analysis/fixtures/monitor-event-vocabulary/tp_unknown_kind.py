# module: repro.zynq.fixture
monitor.emit_event('monitor.bogus', 1.0)
