# module: repro.fleet.taint_clean_user
from repro.fleet.rollup import deterministic_view
from repro.fleet.taint_builder import build


def snapshot(frames):
    return deterministic_view(build(frames))
