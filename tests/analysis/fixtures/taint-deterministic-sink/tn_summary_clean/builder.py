# module: repro.fleet.taint_builder
import time


def build(frames):
    t0 = time.perf_counter()
    return {"frames": len(frames), "wall": time.perf_counter() - t0}
