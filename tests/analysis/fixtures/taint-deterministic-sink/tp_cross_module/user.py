# module: repro.fleet.taint_user
from repro.fleet.rollup import deterministic_view
from repro.fleet.taint_helper import wall_value


def snapshot():
    v = wall_value()
    return deterministic_view({"v": v})
