# module: repro.fleet.taint_helper
import time


def wall_value():
    return time.monotonic()
