# module: repro.fleet.fixture
import os

from repro.core.spec import frames_digest


def digest(frames):
    tag = os.environ["RUN_TAG"]
    return frames_digest([tag] + frames)
