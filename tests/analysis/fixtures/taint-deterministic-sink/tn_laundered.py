# module: repro.fleet.fixture
import time

from repro.fleet.rollup import deterministic_view


def snapshot(rollup):
    started = time.perf_counter()
    payload = {"latency_ms": started, "frames": 3}
    return deterministic_view(payload)
