# module: repro.fleet.fixture


def drain(task_queue, process, options):
    item = task_queue.get(timeout=1.0)
    process.join(timeout=2.0)
    mode = options.get("mode")
    return item, mode
