# module: repro.imaging.fixture


def drain(task_queue):
    return task_queue.get()
