# module: repro.fleet.fixture


def drain(task_queue, process):
    item = task_queue.get()
    process.join()
    return item
