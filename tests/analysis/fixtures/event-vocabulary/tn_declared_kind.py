# module: repro.zynq.fixture
trace.emit(0.0, 'pr', 'pr.done', 'reconfigure done')
