# module: repro.zynq.fixture
trace.emit(0.0, 'soc', 'soc.mystery', 'what')
