# module: repro.fleet.fixture


def ship(task_queue, spec):
    task_queue.put((0, spec.to_dict()))
