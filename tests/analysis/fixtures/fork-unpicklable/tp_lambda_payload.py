# module: repro.fleet.fixture


def ship(task_queue, spec):
    on_frame = lambda frame: frame
    task_queue.put((spec, on_frame))
