# module: repro.fleet.fixture
from repro.core.spec import DriveSpec
from repro.telemetry import Tracer


def make_spec():
    return DriveSpec(name="d", trace=Tracer())
