# module: repro.deadpkg
"""Package with a re-export nobody exports or uses."""

from repro.deadpkg.impl import helper, used_helper

__all__ = ["used_helper"]
