# module: repro.fixture
__all__ = ["present", "gone", "present"]


def present():
    return 1
