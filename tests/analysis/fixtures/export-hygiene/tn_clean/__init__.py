# module: repro.cleanpkg
"""Package whose surface matches its __all__."""

from repro.cleanpkg.impl import helper

__all__ = ["helper"]
