# module: repro.zynq.fixture
try:
    f()
except Exception as exc:
    log(exc)
