# module: repro.zynq.fixture
try:
    f()
except Exception:
    pass
