# module: repro.zynq.fixture


def f(duration):
    return duration
