# module: repro.zynq.fixture


def f(duration_s, timeout_ms):
    return duration_s + timeout_ms
