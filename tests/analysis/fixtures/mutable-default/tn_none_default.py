# module: repro.zynq.fixture


def f(items=None):
    return items
