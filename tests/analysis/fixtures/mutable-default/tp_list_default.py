# module: repro.zynq.fixture


def f(items=[]):
    return items
