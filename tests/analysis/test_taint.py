"""The determinism-taint rule: sources, propagation, laundering, and
interprocedural flow through project function summaries."""

import pytest

from repro.analysis import analyze_source
from repro.analysis.core import analyze_sources

pytestmark = pytest.mark.analysis

MODULE = "repro.fleet.fake"
RULE = "taint-deterministic-sink"


def only(source: str, module: str = MODULE) -> list[str]:
    return [
        v.rule_id for v in analyze_source(source, module=module) if v.rule_id == RULE
    ]


def multi(*items: tuple[str, str]) -> list[str]:
    triples = [(f"{m.replace('.', '/')}.py", m, s) for m, s in items]
    return [v.rule_id for v in analyze_sources(triples) if v.rule_id == RULE]


class TestDirectFlow:
    def test_wall_clock_local_reaches_sink(self):
        src = (
            "import time\n"
            "def f():\n"
            "    t = time.perf_counter()\n"
            "    return deterministic_view({'t': t})\n"
        )
        assert only(src) == [RULE]

    def test_environ_subscript_reaches_sink(self):
        src = (
            "import os\n"
            "def f(frames):\n"
            "    tag = os.environ['TAG']\n"
            "    return frames_digest([tag])\n"
        )
        assert only(src) == [RULE]

    def test_getenv_reaches_sink(self):
        src = (
            "import os\n"
            "def f():\n"
            "    return deterministic_outcome_dict(os.getenv('MODE'))\n"
        )
        assert only(src) == [RULE]

    def test_rng_call_reaches_sink(self):
        src = (
            "import random\n"
            "def f():\n"
            "    return frame_core_dict(random.random())\n"
        )
        assert only(src) == [RULE]

    def test_uuid4_reaches_sink(self):
        src = (
            "import uuid\n"
            "def f():\n"
            "    return deterministic_view({'id': str(uuid.uuid4())})\n"
        )
        assert only(src) == [RULE]

    def test_stopwatch_binding_is_tainted(self):
        src = (
            "from repro.telemetry import Stopwatch\n"
            "def f(report):\n"
            "    with Stopwatch() as sw:\n"
            "        pass\n"
            "    return deterministic_view({'elapsed': sw.elapsed_s})\n"
        )
        assert only(src) == [RULE]

    def test_clean_data_is_quiet(self):
        src = (
            "def f(frames):\n"
            "    payload = {'frames': len(frames), 'status': 'ok'}\n"
            "    return deterministic_view(payload)\n"
        )
        assert only(src) == []

    def test_sink_call_at_module_level(self):
        src = "import time\nX = frames_digest([time.time()])\n"
        assert only(src) == [RULE]


class TestPropagation:
    def test_through_arithmetic_and_fstring(self):
        src = (
            "import time\n"
            "def f():\n"
            "    t = time.time()\n"
            "    label = f'at {t * 1000:.1f}'\n"
            "    return deterministic_view({'label': label})\n"
        )
        assert only(src) == [RULE]

    def test_through_containers(self):
        src = (
            "import time\n"
            "def f():\n"
            "    ts = [time.time()]\n"
            "    return frames_digest(ts)\n"
        )
        assert only(src) == [RULE]

    def test_loop_carried_taint(self):
        src = (
            "import time\n"
            "def f(frames):\n"
            "    acc = 0\n"
            "    for _ in frames:\n"
            "        acc = acc + time.perf_counter()\n"
            "    return deterministic_view({'acc': acc})\n"
        )
        assert only(src) == [RULE]

    def test_rebinding_with_clean_value_untaints(self):
        src = (
            "import time\n"
            "def f():\n"
            "    t = time.time()\n"
            "    t = 0.0\n"
            "    return deterministic_view({'t': t})\n"
        )
        assert only(src) == []

    def test_unresolved_call_propagates_argument_taint(self):
        src = (
            "import time\n"
            "def f():\n"
            "    t = round(time.time(), 3)\n"
            "    return deterministic_view({'t': t})\n"
        )
        assert only(src) == [RULE]


class TestLaundering:
    def test_strip_key_in_dict_literal(self):
        src = (
            "import time\n"
            "def f():\n"
            "    return deterministic_view({'latency_ms': time.time()})\n"
        )
        assert only(src) == []

    def test_wall_rollup_key_launders(self):
        src = (
            "import time\n"
            "def f():\n"
            "    return deterministic_view({'wall': time.perf_counter()})\n"
        )
        assert only(src) == []

    def test_non_strip_key_still_fires(self):
        src = (
            "import time\n"
            "def f():\n"
            "    return deterministic_view({'started_at': time.time()})\n"
        )
        assert only(src) == [RULE]

    def test_strip_keyword_on_sink_call(self):
        src = (
            "import time\n"
            "def f(core):\n"
            "    return deterministic_outcome_dict(core, wall_s=time.time())\n"
        )
        assert only(src) == []

    def test_project_dataclass_constructor_is_clean(self):
        # DriveOutcome segregates wall fields by contract; constructing one
        # with a wall kwarg then viewing it deterministically is the
        # sanctioned pattern.
        assert multi(
            (
                "repro.fleet.kinds",
                "class Outcome:\n    def __init__(self, wall_s=None):\n"
                "        self.wall_s = wall_s\n",
            ),
            (
                "repro.fleet.use",
                "import time\n"
                "from repro.fleet.kinds import Outcome\n"
                "def f():\n"
                "    o = Outcome(wall_s=time.time())\n"
                "    return deterministic_view(o)\n",
            ),
        ) == []


class TestInterprocedural:
    def test_tainted_helper_in_another_module(self):
        assert multi(
            (
                "repro.fleet.helper",
                "import time\n\ndef wall():\n    return time.monotonic()\n",
            ),
            (
                "repro.fleet.use",
                "from repro.fleet.helper import wall\n"
                "def f():\n"
                "    return deterministic_view({'w': wall()})\n",
            ),
        ) == [RULE]

    def test_clean_project_function_summary_is_trusted(self):
        # build() reads the clock but returns only laundered data; the
        # caller must stay quiet (no false positive on build_rollup-style
        # helpers).
        assert multi(
            (
                "repro.fleet.helper",
                "import time\n"
                "def build(frames):\n"
                "    t0 = time.perf_counter()\n"
                "    return {'frames': len(frames),\n"
                "            'wall': time.perf_counter() - t0}\n",
            ),
            (
                "repro.fleet.use",
                "from repro.fleet.helper import build\n"
                "def f(frames):\n"
                "    return deterministic_view(build(frames))\n",
            ),
        ) == []

    def test_transitive_taint_chain(self):
        assert multi(
            (
                "repro.fleet.a",
                "import time\n\ndef src():\n    return time.time()\n",
            ),
            (
                "repro.fleet.b",
                "from repro.fleet.a import src\n\ndef wrap():\n    return src()\n",
            ),
            (
                "repro.fleet.c",
                "from repro.fleet.b import wrap\n"
                "def f():\n"
                "    return frames_digest([wrap()])\n",
            ),
        ) == [RULE]
