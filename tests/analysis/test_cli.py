"""CLI contract of ``python -m repro lint``: exit codes, JSON report
shape, suppression comments, and rule listing."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.analysis

CLEAN = (
    '"""A compliant module."""\n'
    "from repro.rng import make_rng\n"
    "\n"
    "RNG = make_rng(7)\n"
)

# Lives under a path segment named "repro/zynq" so the determinism rules
# treat it as sim-domain code.
DIRTY = "import random\n\nx = random.random()\n"


def write_tree(root, source):
    pkg = root / "repro" / "zynq"
    pkg.mkdir(parents=True)
    target = pkg / "generated.py"
    target.write_text(source)
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, CLEAN)
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_seeded_violation_exits_one(self, tmp_path, capsys):
        write_tree(tmp_path, DIRTY)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "determinism-rng" in out
        assert "generated.py" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, CLEAN)
        assert main(["lint", str(tmp_path), "--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "definitely/not/a/path"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestJsonReport:
    def test_shape(self, tmp_path, capsys):
        write_tree(tmp_path, DIRTY)
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "reprolint"
        assert report["files_checked"] == 1
        assert report["violation_count"] == len(report["violations"]) > 0
        entry = report["violations"][0]
        assert set(entry) == {"rule", "path", "line", "col", "message"}
        assert entry["rule"] == "determinism-rng"
        assert entry["line"] == 1

    def test_clean_json(self, tmp_path, capsys):
        write_tree(tmp_path, CLEAN)
        assert main(["lint", str(tmp_path), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["violation_count"] == 0
        assert report["violations"] == []


class TestSuppressions:
    def test_line_suppression_honored(self, tmp_path):
        write_tree(tmp_path, "import random  # reprolint: skip=determinism-rng\n")
        assert main(["lint", str(tmp_path)]) == 0

    def test_file_suppression_honored(self, tmp_path):
        write_tree(tmp_path, "# reprolint: skip-file\n" + DIRTY)
        assert main(["lint", str(tmp_path)]) == 0

    def test_unrelated_suppression_still_fails(self, tmp_path):
        write_tree(tmp_path, "import random  # reprolint: skip=unit-suffix\n")
        assert main(["lint", str(tmp_path)]) == 1


class TestFlags:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "determinism-clock",
            "determinism-rng",
            "unit-suffix",
            "span-context",
            "event-vocabulary",
            "swallowed-error",
            "mutable-default",
            "public-api",
        ):
            assert rule_id in out

    def test_select_narrows_to_one_rule(self, tmp_path, capsys):
        write_tree(tmp_path, "import time\nx = time.time()\nimport random\n")
        assert main(["lint", str(tmp_path), "--select", "determinism-clock"]) == 1
        out = capsys.readouterr().out
        assert "determinism-clock" in out
        assert "determinism-rng" not in out

    def test_ignore_drops_a_rule(self, tmp_path):
        write_tree(tmp_path, DIRTY)
        assert main(["lint", str(tmp_path), "--ignore", "determinism-rng"]) == 0

    def test_rules_catalog_is_markdown(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| rule | family | summary |")
        for rule_id in ("taint-deterministic-sink", "fork-queue-timeout",
                        "import-cycle", "suppression-hygiene"):
            assert f"`{rule_id}`" in out

    def test_jobs_matches_serial_output(self, tmp_path, capsys):
        write_tree(tmp_path, DIRTY)
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        serial = capsys.readouterr().out
        assert main(["lint", str(tmp_path), "--format", "json", "--jobs", "2"]) == 1
        assert capsys.readouterr().out == serial

    def test_bad_jobs_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, CLEAN)
        assert main(["lint", str(tmp_path), "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestSarif:
    def test_sarif_format(self, tmp_path, capsys):
        write_tree(tmp_path, DIRTY)
        assert main(["lint", str(tmp_path), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert "determinism-rng" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "determinism-rng"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("generated.py")
        assert location["region"]["startLine"] == 1
        assert result["ruleIndex"] == sorted(rule_ids).index("determinism-rng")

    def test_sarif_out_writes_artifact(self, tmp_path, capsys):
        write_tree(tmp_path, DIRTY)
        artifact = tmp_path / "lint.sarif"
        assert main(["lint", str(tmp_path), "--sarif-out", str(artifact)]) == 1
        capsys.readouterr()
        doc = json.loads(artifact.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]


class TestBaselineGate:
    def test_update_then_compare_passes(self, tmp_path, capsys):
        write_tree(tmp_path, DIRTY)
        baseline = tmp_path / "LINT_BASELINE.json"
        assert main(["lint", str(tmp_path), "--update-baseline", str(baseline)]) == 0
        assert baseline.is_file()
        assert main(["lint", str(tmp_path), "--compare-baseline", str(baseline)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_new_finding_fails_the_gate(self, tmp_path, capsys):
        target = write_tree(tmp_path, DIRTY)
        baseline = tmp_path / "LINT_BASELINE.json"
        assert main(["lint", str(tmp_path), "--update-baseline", str(baseline)]) == 0
        target.write_text(DIRTY + "import time\ny = time.time()\n")
        assert main(["lint", str(tmp_path), "--compare-baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "NEW FINDINGS" in out
        assert "determinism-clock" in out

    def test_fixed_finding_still_passes_and_hints_ratchet(self, tmp_path, capsys):
        target = write_tree(tmp_path, DIRTY)
        baseline = tmp_path / "LINT_BASELINE.json"
        assert main(["lint", str(tmp_path), "--update-baseline", str(baseline)]) == 0
        target.write_text(CLEAN)
        assert main(["lint", str(tmp_path), "--compare-baseline", str(baseline)]) == 0
        assert "--update-baseline" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, CLEAN)
        missing = tmp_path / "nope.json"
        assert main(["lint", str(tmp_path), "--compare-baseline", str(missing)]) == 2
        assert "no lint baseline" in capsys.readouterr().err
