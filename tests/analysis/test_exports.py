"""Export-hygiene and import-cycle rules (the whole-program family)."""

import pytest

from repro.analysis import analyze_source
from repro.analysis.core import analyze_sources

pytestmark = pytest.mark.analysis


def multi(*items: tuple[str, str, str]) -> list:
    return analyze_sources(list(items))


def only(found, rule_id):
    return [v for v in found if v.rule_id == rule_id]


class TestExportHygiene:
    RULE = "export-hygiene"

    def test_stale_all_entry(self):
        src = '__all__ = ["real", "ghost"]\n\ndef real():\n    pass\n'
        found = only(analyze_source(src, module="repro.fake"), self.RULE)
        assert len(found) == 1
        assert "ghost" in found[0].message

    def test_duplicate_all_entry(self):
        src = '__all__ = ["f", "f"]\n\ndef f():\n    pass\n'
        found = only(analyze_source(src, module="repro.fake"), self.RULE)
        assert len(found) == 1
        assert "duplicate" in found[0].message

    def test_clean_all_is_quiet(self):
        src = '__all__ = ["f", "C"]\n\ndef f():\n    pass\n\nclass C:\n    pass\n'
        assert only(analyze_source(src, module="repro.fake"), self.RULE) == []

    def test_imported_names_count_as_defined(self):
        src = 'from repro.other import helper\n\n__all__ = ["helper"]\n'
        assert only(analyze_source(src, module="repro.fake"), self.RULE) == []

    def test_dead_reexport_in_init(self):
        src = (
            "from repro.pkg.impl import used, unused\n"
            '\n__all__ = ["used"]\n'
        )
        found = only(
            analyze_source(src, module="repro.pkg", path="repro/pkg/__init__.py"),
            self.RULE,
        )
        assert len(found) == 1
        assert "unused" in found[0].message

    def test_used_reexport_is_quiet(self):
        src = (
            "from repro.pkg.impl import helper\n"
            '\n__all__ = ["wrapped"]\n'
            "\ndef wrapped():\n    return helper()\n"
        )
        assert (
            only(
                analyze_source(src, module="repro.pkg", path="repro/pkg/__init__.py"),
                self.RULE,
            )
            == []
        )

    def test_no_all_means_no_reexport_findings(self):
        # Without __all__, the from-imports ARE the implicit surface.
        src = "from repro.pkg.impl import helper\n"
        assert (
            only(
                analyze_source(src, module="repro.pkg", path="repro/pkg/__init__.py"),
                self.RULE,
            )
            == []
        )

    def test_non_init_modules_skip_reexport_check(self):
        src = 'from repro.other import helper\n\n__all__ = ["mine"]\n\ndef mine():\n    pass\n'
        found = only(analyze_source(src, module="repro.fake"), self.RULE)
        assert found == []


class TestImportCycle:
    RULE = "import-cycle"

    def test_cycle_reported_once_by_smallest_member(self):
        found = only(
            multi(
                ("a.py", "repro.aaa", "import repro.bbb\n"),
                ("b.py", "repro.bbb", "import repro.aaa\n"),
            ),
            self.RULE,
        )
        assert len(found) == 1
        assert found[0].path == "a.py"
        assert "repro.aaa -> repro.bbb -> repro.aaa" in found[0].message

    def test_anchored_at_the_import_line(self):
        found = only(
            multi(
                ("a.py", "repro.aaa", "x = 1\ny = 2\nimport repro.bbb\n"),
                ("b.py", "repro.bbb", "import repro.aaa\n"),
            ),
            self.RULE,
        )
        assert found[0].line == 3

    def test_acyclic_graph_is_quiet(self):
        found = only(
            multi(
                ("a.py", "repro.aaa", "import repro.bbb\n"),
                ("b.py", "repro.bbb", "x = 1\n"),
            ),
            self.RULE,
        )
        assert found == []

    def test_type_checking_import_breaks_the_cycle(self):
        found = only(
            multi(
                (
                    "a.py",
                    "repro.aaa",
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    import repro.bbb\n",
                ),
                ("b.py", "repro.bbb", "import repro.aaa\n"),
            ),
            self.RULE,
        )
        assert found == []
