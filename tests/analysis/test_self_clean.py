"""The self-test that keeps ``src/`` permanently lint-clean.

This is the acceptance gate of the analysis subsystem: every determinism,
unit-naming, telemetry-hygiene, robustness, and API-documentation
invariant holds over the entire source tree, forever.  A failure here
lists the exact file:line:rule to fix (or, for a sanctioned exception,
to annotate with ``# reprolint: skip=<rule>``).
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

pytestmark = pytest.mark.analysis

SRC = Path(__file__).resolve().parents[2] / "src"


def test_source_tree_is_lint_clean():
    violations = analyze_paths([SRC])
    report = "\n".join(v.render() for v in violations)
    assert not violations, f"reprolint violations in src/:\n{report}"


def test_source_tree_was_actually_scanned():
    # Guard against a silently-empty walk making the gate vacuous.
    files = list(SRC.rglob("*.py"))
    assert len(files) > 80
