"""The self-test that keeps ``src/`` permanently lint-clean.

This is the acceptance gate of the analysis subsystem: every determinism,
unit-naming, telemetry-hygiene, robustness, and API-documentation
invariant holds over the entire source tree, forever.  A failure here
lists the exact file:line:rule to fix (or, for a sanctioned exception,
to annotate with ``# reprolint: skip=<rule>``).
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.baseline import compare_baseline, load_baseline

pytestmark = pytest.mark.analysis

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
BASELINE = REPO / "LINT_BASELINE.json"


def test_source_tree_is_lint_clean():
    violations = analyze_paths([SRC])
    report = "\n".join(v.render() for v in violations)
    assert not violations, f"reprolint violations in src/:\n{report}"


def test_committed_baseline_gate_passes():
    # The same invariant check.sh enforces: the committed baseline is
    # honest and no finding exceeds it.
    comparison = compare_baseline(analyze_paths([SRC]), load_baseline(BASELINE))
    assert comparison.ok, f"findings beyond LINT_BASELINE.json: {comparison.regressions}"


def test_source_tree_was_actually_scanned():
    # Guard against a silently-empty walk making the gate vacuous.
    files = list(SRC.rglob("*.py"))
    assert len(files) > 80
