"""Registry self-check: every rule is documented and fixture-covered.

Each registered rule must carry a unique id, a family, a non-empty
summary and a docstring, and must have at least one true-positive
(``tp_*``) and one true-negative (``tn_*``) fixture under
``tests/analysis/fixtures/<rule-id>/``.  Fixtures are real analyzer
inputs: a fixture is a ``.py`` file (or a directory of files, for
cross-module rules) whose first line declares its module name via
``# module: <dotted.name>``; every ``tp`` must fire the rule and every
``tn`` must not.
"""

import re
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis import DEFAULT_CONFIG
from repro.analysis.core import Violation, all_rules, analyze_sources

pytestmark = pytest.mark.analysis

FIXTURES = Path(__file__).parent / "fixtures"
_MODULE_HEADER = re.compile(r"#\s*module:\s*(\S+)")


def fixture_items(path: Path) -> list[tuple[str, str, str]]:
    """Load one fixture (file or multi-module directory) as analyzer input."""
    files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
    items = []
    for file in files:
        source = file.read_text()
        match = _MODULE_HEADER.match(source.splitlines()[0])
        assert match, f"{file} must declare '# module: <dotted.name>' on line 1"
        items.append((str(file), match.group(1), source))
    assert items, f"fixture {path} contains no .py files"
    return items


def run_fixture(rule_id: str, path: Path) -> list[Violation]:
    config = replace(DEFAULT_CONFIG, select=(rule_id,))
    found = analyze_sources(fixture_items(path), config)
    assert all(v.rule_id == rule_id for v in found)
    return found


def fixture_cases(rule_id: str, prefix: str) -> list[Path]:
    rule_dir = FIXTURES / rule_id
    if not rule_dir.is_dir():
        return []
    return [p for p in sorted(rule_dir.iterdir()) if p.name.startswith(prefix)]


def test_rule_ids_unique():
    ids = [rule.id for rule in all_rules()]
    assert len(ids) == len(set(ids))


def test_every_rule_documented():
    for rule in all_rules():
        assert rule.id, f"{type(rule).__name__} has no id"
        assert rule.summary.strip(), f"{rule.id} has an empty summary"
        assert (rule.__doc__ or "").strip(), f"{rule.id} has no docstring"
        assert rule.family and rule.family != "general", (
            f"{rule.id} must declare a specific family"
        )


@pytest.mark.parametrize("rule", all_rules(), ids=lambda r: r.id)
def test_rule_fixture_coverage(rule):
    positives = fixture_cases(rule.id, "tp_")
    negatives = fixture_cases(rule.id, "tn_")
    assert positives, f"{rule.id} has no true-positive fixture"
    assert negatives, f"{rule.id} has no true-negative fixture"
    for case in positives:
        assert run_fixture(rule.id, case), f"{case} does not fire {rule.id}"
    for case in negatives:
        found = run_fixture(rule.id, case)
        assert not found, (
            f"{case} unexpectedly fires {rule.id}: "
            f"{[v.render() for v in found]}"
        )


def test_no_orphan_fixture_directories():
    known = {rule.id for rule in all_rules()}
    on_disk = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
    assert on_disk <= known, f"fixtures for unknown rules: {on_disk - known}"
