"""The whole-program pass: import graph, symbol table, resolution,
call edges, and the interprocedural wall-taint fixpoint."""

import pytest

from repro.analysis.project import ProjectContext, parse_module

pytestmark = pytest.mark.analysis


def build(*modules: tuple[str, str], strip: frozenset = frozenset()) -> ProjectContext:
    parsed = [
        parse_module(source, module=name, path=f"{name.replace('.', '/')}.py")
        for name, source in modules
    ]
    return ProjectContext(parsed, wall_strip_keys=strip)


class TestImportGraph:
    def test_module_level_imports_become_edges(self):
        project = build(
            ("repro.a", "import repro.b\n"),
            ("repro.b", "x = 1\n"),
        )
        assert "repro.b" in project.import_graph["repro.a"]

    def test_from_import_of_submodule_becomes_edge(self):
        project = build(
            ("repro.pkg.a", "from repro.pkg import b\n"),
            ("repro.pkg.b", "x = 1\n"),
        )
        assert "repro.pkg.b" in project.import_graph["repro.pkg.a"]

    def test_external_imports_create_no_edges(self):
        project = build(("repro.a", "import os\nimport numpy\n"))
        assert project.import_graph["repro.a"] == {}

    def test_type_checking_imports_excluded(self):
        project = build(
            (
                "repro.a",
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    import repro.b\n",
            ),
            ("repro.b", "x = 1\n"),
        )
        assert "repro.b" not in project.import_graph["repro.a"]

    def test_function_local_imports_create_no_edges(self):
        project = build(
            ("repro.a", "def f():\n    import repro.b\n    return repro.b\n"),
            ("repro.b", "x = 1\n"),
        )
        assert "repro.b" not in project.import_graph["repro.a"]


class TestSymbolTable:
    def test_defs_classified(self):
        project = build(
            (
                "repro.a",
                "import os\n"
                "CONST = 1\n"
                "ITEMS = []\n"
                "def f():\n    pass\n"
                "class C:\n    pass\n",
            )
        )
        summary = project.summaries["repro.a"]
        assert summary.defs["f"] == "function"
        assert summary.defs["C"] == "class"
        assert summary.defs["CONST"] == "value"
        assert summary.defs["os"] == "import"
        assert "ITEMS" in summary.mutable_globals

    def test_all_exports_recorded_with_linenos(self):
        project = build(("repro.a", '__all__ = ["f"]\n\ndef f():\n    pass\n'))
        summary = project.summaries["repro.a"]
        assert summary.exports == [("f", 1)]
        assert summary.exports_lineno == 1

    def test_no_all_means_none(self):
        project = build(("repro.a", "def f():\n    pass\n"))
        assert project.summaries["repro.a"].exports is None


class TestResolution:
    def test_from_import_resolves_to_origin(self):
        project = build(
            ("repro.a", "from repro.b import helper\n"),
            ("repro.b", "def helper():\n    return 1\n"),
        )
        assert project.resolve_function("repro.a", "helper") == "repro.b.helper"

    def test_plain_import_resolves_dotted_calls(self):
        project = build(
            ("repro.a", "import repro\n"),
            ("repro.b", "def helper():\n    return 1\n"),
        )
        assert (
            project.resolve_function("repro.a", "repro.b.helper") == "repro.b.helper"
        )

    def test_reexport_chain_is_chased(self):
        project = build(
            ("repro.pkg", "from repro.pkg.impl import helper\n"),
            ("repro.pkg.impl", "def helper():\n    return 1\n"),
            ("repro.user", "from repro.pkg import helper\n"),
        )
        assert (
            project.resolve_function("repro.user", "helper") == "repro.pkg.impl.helper"
        )

    def test_unknown_names_resolve_to_none(self):
        project = build(("repro.a", "x = 1\n"))
        assert project.resolve("repro.a", "os.path.join") is None
        assert project.resolve_function("repro.a", "print") is None

    def test_resolved_kind(self):
        project = build(
            ("repro.a", "from repro.b import C\n"),
            ("repro.b", "class C:\n    pass\n"),
        )
        assert project.resolved_kind("repro.a", "C") == "class"


class TestCallEdges:
    def test_project_calls_recorded(self):
        project = build(
            (
                "repro.a",
                "from repro.b import helper\n\ndef caller():\n    return helper()\n",
            ),
            ("repro.b", "def helper():\n    return 1\n"),
        )
        assert project.call_edges["repro.a.caller"] == frozenset({"repro.b.helper"})

    def test_method_functions_indexed(self):
        project = build(("repro.a", "class C:\n    def m(self):\n        return 1\n"))
        assert "repro.a.C.m" in project.functions


class TestTaintFixpoint:
    def test_direct_wall_return_is_tainted(self):
        project = build(("repro.a", "import time\n\ndef f():\n    return time.time()\n"))
        assert "repro.a.f" in project.wall_tainted_functions

    def test_taint_propagates_through_callers(self):
        project = build(
            ("repro.a", "import time\n\ndef src():\n    return time.monotonic()\n"),
            (
                "repro.b",
                "from repro.a import src\n\ndef wrap():\n    return src() * 2\n",
            ),
            (
                "repro.c",
                "from repro.b import wrap\n\ndef outer():\n    return wrap()\n",
            ),
        )
        assert {"repro.a.src", "repro.b.wrap", "repro.c.outer"} <= (
            project.wall_tainted_functions
        )

    def test_clean_function_is_not_tainted(self):
        project = build(("repro.a", "def f(x):\n    return x + 1\n"))
        assert "repro.a.f" not in project.wall_tainted_functions

    def test_strip_key_launders_return(self):
        project = build(
            (
                "repro.a",
                "import time\n\ndef f():\n    return {'wall': time.time()}\n",
            ),
            strip=frozenset({"wall"}),
        )
        assert "repro.a.f" not in project.wall_tainted_functions


class TestImportCycles:
    def test_two_module_cycle_detected(self):
        project = build(
            ("repro.a", "import repro.b\n"),
            ("repro.b", "import repro.a\n"),
        )
        assert project.import_cycles() == [["repro.a", "repro.b"]]

    def test_three_module_cycle_detected(self):
        project = build(
            ("repro.a", "import repro.b\n"),
            ("repro.b", "import repro.c\n"),
            ("repro.c", "import repro.a\n"),
        )
        assert project.import_cycles() == [["repro.a", "repro.b", "repro.c"]]

    def test_acyclic_tree_has_no_cycles(self):
        project = build(
            ("repro.a", "import repro.b\nimport repro.c\n"),
            ("repro.b", "import repro.c\n"),
            ("repro.c", "x = 1\n"),
        )
        assert project.import_cycles() == []

    def test_type_checking_back_edge_breaks_cycle(self):
        project = build(
            (
                "repro.a",
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    import repro.b\n",
            ),
            ("repro.b", "import repro.a\n"),
        )
        assert project.import_cycles() == []
