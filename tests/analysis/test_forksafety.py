"""The fork-safety family: untimed blocking waits, unpicklable payloads,
and fork-shared mutable state."""

import pytest

from repro.analysis import analyze_source

pytestmark = pytest.mark.analysis

FLEET = "repro.fleet.fake"


def only(source: str, rule_id: str, module: str = FLEET) -> list[str]:
    return [
        v.rule_id
        for v in analyze_source(source, module=module)
        if v.rule_id == rule_id
    ]


class TestQueueTimeout:
    RULE = "fork-queue-timeout"

    def test_fires_on_bare_queue_get(self):
        src = "def f(task_queue):\n    return task_queue.get()\n"
        assert only(src, self.RULE) == [self.RULE]

    def test_fires_on_bare_join(self):
        src = "def f(proc):\n    proc.join()\n"
        assert only(src, self.RULE) == [self.RULE]

    def test_quiet_with_timeout(self):
        src = (
            "def f(task_queue, proc):\n"
            "    item = task_queue.get(timeout=1.0)\n"
            "    proc.join(timeout=2.0)\n"
            "    return item\n"
        )
        assert only(src, self.RULE) == []

    def test_quiet_on_dict_get(self):
        src = "def f(options_queue, options):\n    return options.get('mode')\n"
        assert only(src, self.RULE) == []

    def test_quiet_on_str_join(self):
        src = "def f(parts):\n    return ', '.join(parts)\n"
        assert only(src, self.RULE) == []

    def test_quiet_on_non_queue_get(self):
        src = "def f(cache):\n    return cache.get()\n"
        assert only(src, self.RULE) == []

    def test_quiet_outside_fork_packages(self):
        src = "def f(task_queue):\n    return task_queue.get()\n"
        assert only(src, self.RULE, module="repro.imaging.fake") == []


class TestUnpicklable:
    RULE = "fork-unpicklable"

    def test_lambda_into_queue_put(self):
        src = "def f(task_queue):\n    task_queue.put(lambda x: x)\n"
        assert only(src, self.RULE) == [self.RULE]

    def test_lambda_via_local_binding(self):
        src = (
            "def f(task_queue, spec):\n"
            "    fn = lambda x: x\n"
            "    task_queue.put((spec, fn))\n"
        )
        assert only(src, self.RULE) == [self.RULE]

    def test_nested_function_is_a_closure(self):
        src = (
            "def f(task_queue):\n"
            "    def hook(frame):\n"
            "        return frame\n"
            "    task_queue.put(hook)\n"
        )
        assert only(src, self.RULE) == [self.RULE]

    def test_open_handle_into_payload(self):
        src = "def f(task_queue, path):\n    task_queue.put(open(path))\n"
        assert only(src, self.RULE) == [self.RULE]

    def test_tracer_into_drive_spec(self):
        src = (
            "def f():\n"
            "    return DriveSpec(name='d', trace=Tracer())\n"
        )
        assert only(src, self.RULE) == [self.RULE]

    def test_generator_expression_payload(self):
        src = "def f(task_queue, xs):\n    task_queue.put(x for x in xs)\n"
        assert only(src, self.RULE) == [self.RULE]

    def test_plain_data_is_quiet(self):
        src = (
            "def f(task_queue, spec):\n"
            "    task_queue.put((0, spec.to_dict()))\n"
        )
        assert only(src, self.RULE) == []

    def test_module_level_function_reference_is_quiet(self):
        src = (
            "def handler(frame):\n"
            "    return frame\n"
            "def f(task_queue):\n"
            "    task_queue.put(handler)\n"
        )
        assert only(src, self.RULE) == []

    def test_put_on_non_queue_is_quiet(self):
        src = "def f(bucket):\n    bucket.put(lambda x: x)\n"
        assert only(src, self.RULE) == []

    def test_quiet_outside_fork_packages(self):
        src = "def f(task_queue):\n    task_queue.put(lambda x: x)\n"
        assert only(src, self.RULE, module="repro.imaging.fake") == []


class TestSharedState:
    RULE = "fork-shared-state"
    WORKER = "repro.fleet.worker"

    def test_mutating_method_on_module_global(self):
        src = (
            "SEEN = []\n"
            "def worker_loop(q):\n"
            "    SEEN.append(q)\n"
        )
        assert only(src, self.RULE, module=self.WORKER) == [self.RULE]

    def test_subscript_assignment_on_module_global(self):
        src = (
            "CACHE = {}\n"
            "def worker_loop(q):\n"
            "    CACHE['x'] = q\n"
        )
        assert only(src, self.RULE, module=self.WORKER) == [self.RULE]

    def test_global_rebind(self):
        src = (
            "STATE = {}\n"
            "def worker_loop(q):\n"
            "    global STATE\n"
            "    STATE = {'q': q}\n"
        )
        assert only(src, self.RULE, module=self.WORKER) == [self.RULE]

    def test_local_mutation_is_quiet(self):
        src = (
            "def worker_loop(q):\n"
            "    seen = []\n"
            "    seen.append(q)\n"
            "    return seen\n"
        )
        assert only(src, self.RULE, module=self.WORKER) == []

    def test_module_level_mutation_is_quiet(self):
        # Import-time mutation happens identically pre-fork in every
        # process; only post-fork divergence is the hazard.
        src = "REGISTRY = {}\nREGISTRY['default'] = 1\n"
        assert only(src, self.RULE, module=self.WORKER) == []

    def test_non_worker_fleet_module_is_quiet(self):
        src = (
            "SEEN = []\n"
            "def record(q):\n"
            "    SEEN.append(q)\n"
        )
        assert only(src, self.RULE, module="repro.fleet.scheduler") == []
