"""The ratcheting baseline: path normalization, compare semantics, and
the round trip through ``LINT_BASELINE.json``."""

import json

import pytest

from repro.analysis.baseline import (
    BaselineComparison,
    baseline_key,
    collect_counts,
    compare_baseline,
    load_baseline,
    normalize_path,
    render_comparison,
    write_baseline,
)
from repro.analysis.core import Violation
from repro.errors import ConfigurationError

pytestmark = pytest.mark.analysis


def v(path="src/repro/fleet/worker.py", rule="fork-queue-timeout", line=1):
    return Violation(rule_id=rule, path=path, line=line, col=1, message="m")


class TestNormalization:
    def test_relative_and_absolute_paths_agree(self):
        assert normalize_path("src/repro/fleet/worker.py") == normalize_path(
            "/root/repo/src/repro/fleet/worker.py"
        )

    def test_rebased_at_last_src_component(self):
        assert (
            normalize_path("/home/src/checkout/src/repro/a.py") == "src/repro/a.py"
        )

    def test_paths_without_src_pass_through(self):
        assert normalize_path("tests/analysis/x.py") == "tests/analysis/x.py"

    def test_key_includes_rule(self):
        assert baseline_key(v()) == "src/repro/fleet/worker.py::fork-queue-timeout"


class TestCompare:
    def test_identical_counts_ok(self):
        violations = [v(line=1), v(line=2)]
        baseline = collect_counts(violations)
        comparison = compare_baseline(violations, baseline)
        assert comparison.ok
        assert comparison.regressions == []
        assert comparison.improvements == []

    def test_new_finding_regresses(self):
        baseline = collect_counts([v(line=1)])
        comparison = compare_baseline([v(line=1), v(line=2)], baseline)
        assert not comparison.ok
        key = baseline_key(v())
        assert comparison.regressions == [(key, 2, 1)]

    def test_new_file_regresses(self):
        comparison = compare_baseline([v(path="src/repro/new.py")], {})
        assert not comparison.ok

    def test_fixed_finding_improves_but_passes(self):
        baseline = collect_counts([v(line=1), v(line=2)])
        comparison = compare_baseline([v(line=1)], baseline)
        assert comparison.ok
        assert comparison.improvements == [(baseline_key(v()), 2, 1)]

    def test_render_lists_new_findings(self):
        comparison = compare_baseline([v()], {})
        text = render_comparison(comparison, [v()])
        assert "NEW FINDINGS" in text
        assert "fork-queue-timeout" in text

    def test_render_clean(self):
        text = render_comparison(BaselineComparison(), [])
        assert "ok" in text


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "LINT_BASELINE.json"
        violations = [v(line=1), v(line=2), v(rule="export-hygiene")]
        write_baseline(path, violations)
        assert load_baseline(path) == collect_counts(violations)
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.analysis/baseline"
        assert document["version"] == 1

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no lint baseline"):
            load_baseline(tmp_path / "nope.json")

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "something/else", "counts": {}}')
        with pytest.raises(ConfigurationError, match="not a lint baseline"):
            load_baseline(path)

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="unreadable"):
            load_baseline(path)
