"""Per-rule tests: each rule fires on a synthetic violation and stays
quiet on compliant code."""

import pytest

from repro.analysis import analyze_source

pytestmark = pytest.mark.analysis

SIM_MODULE = "repro.zynq.fake"
NON_SIM_MODULE = "repro.imaging.fake"
API_MODULE = "repro.pipelines.fake"


def ids(source: str, module: str = SIM_MODULE) -> list[str]:
    return [v.rule_id for v in analyze_source(source, module=module)]


def only(source: str, rule_id: str, module: str = SIM_MODULE) -> list[str]:
    return [v.rule_id for v in analyze_source(source, module=module) if v.rule_id == rule_id]


class TestDeterminismClock:
    def test_fires_on_wall_clock_calls(self):
        src = "import time\nx = time.time()\ny = time.perf_counter()\n"
        assert only(src, "determinism-clock") == ["determinism-clock"] * 2

    def test_fires_on_datetime_now(self):
        src = "import datetime\nx = datetime.datetime.now()\n"
        assert only(src, "determinism-clock") == ["determinism-clock"]

    def test_quiet_outside_sim_domains(self):
        src = "import time\nx = time.time()\n"
        assert only(src, "determinism-clock", module=NON_SIM_MODULE) == []

    def test_quiet_in_telemetry_injection_point(self):
        src = "import time\nx = time.perf_counter()\n"
        assert only(src, "determinism-clock", module="repro.telemetry.spans") == []

    def test_quiet_on_injected_clock(self):
        src = "def f(clock):\n    return clock()\n"
        assert only(src, "determinism-clock") == []


class TestDeterminismRng:
    def test_fires_on_stdlib_random_import(self):
        assert only("import random\n", "determinism-rng") == ["determinism-rng"]

    def test_fires_on_stdlib_random_call(self):
        src = "x = random.Random('seed').randbytes(8)\n"
        assert "determinism-rng" in ids(src)

    def test_fires_on_numpy_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert only(src, "determinism-rng") == ["determinism-rng"]

    def test_fires_on_from_import(self):
        src = "from numpy.random import default_rng\n"
        assert only(src, "determinism-rng") == ["determinism-rng"]

    def test_quiet_on_helper(self):
        src = "from repro.rng import make_rng\nrng = make_rng(7)\n"
        assert only(src, "determinism-rng") == []

    def test_quiet_outside_sim_domains(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert only(src, "determinism-rng", module="tests.fake") == []

    def test_quiet_in_the_helper_module_itself(self):
        src = "import random\n"
        assert only(src, "determinism-rng", module="repro.rng") == []

    def test_generator_annotations_are_fine(self):
        src = "import numpy as np\ndef f(rng: np.random.Generator) -> None:\n    pass\n"
        assert only(src, "determinism-rng") == []


class TestUnitSuffix:
    def test_fires_on_unsuffixed_parameter(self):
        src = "def f(duration):\n    return duration\n"
        assert only(src, "unit-suffix") == ["unit-suffix"]

    def test_fires_on_unsuffixed_field(self):
        src = "class C:\n    latency: float = 0.0\n"
        assert only(src, "unit-suffix") == ["unit-suffix"]

    def test_quiet_with_suffix(self):
        src = "def f(duration_s, timeout_ms, throughput_mbs):\n    pass\n"
        assert only(src, "unit-suffix") == []

    def test_quiet_on_clearly_non_numeric(self):
        src = "def f(delay_label: str) -> str:\n    return delay_label\n"
        assert only(src, "unit-suffix") == []

    def test_quiet_on_unrelated_names(self):
        src = "def f(frame, count, name):\n    pass\n"
        assert only(src, "unit-suffix") == []


class TestSpanContext:
    def test_fires_on_leaked_span(self):
        src = "s = tracer.span('drive.frame')\n"
        assert only(src, "span-context") == ["span-context"]

    def test_quiet_as_context_manager(self):
        src = "with tracer.span('drive.frame') as s:\n    pass\n"
        assert only(src, "span-context") == []

    def test_quiet_on_begin_end(self):
        src = "s = tracer.begin('pr.reconfigure')\ntracer.end(s)\n"
        assert only(src, "span-context") == []

    def test_quiet_inside_telemetry_package(self):
        src = "def span(self, name):\n    return self.tracer.span(name)\n"
        assert only(src, "span-context", module="repro.telemetry.session") == []


class TestEventVocabulary:
    def test_fires_on_unknown_kind(self):
        src = "trace.emit(0.0, 'soc', 'soc.mystery', 'what')\n"
        assert only(src, "event-vocabulary") == ["event-vocabulary"]

    def test_fires_on_non_literal_kind(self):
        src = "trace.emit(0.0, 'soc', kind_var, 'msg')\n"
        assert only(src, "event-vocabulary") == ["event-vocabulary"]

    def test_quiet_on_declared_kind(self):
        src = "trace.emit(0.0, 'pr', 'pr.done', 'reconfigure done')\n"
        assert only(src, "event-vocabulary") == []

    def test_keyword_kind_checked(self):
        src = "trace.emit(0.0, 'pr', kind='pr.bogus', message='x')\n"
        assert only(src, "event-vocabulary") == ["event-vocabulary"]


class TestSwallowedError:
    def test_fires_on_bare_except(self):
        src = "try:\n    f()\nexcept:\n    g()\n"
        assert only(src, "swallowed-error") == ["swallowed-error"]

    def test_fires_on_silent_broad_handler(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert only(src, "swallowed-error") == ["swallowed-error"]

    def test_quiet_when_handler_records(self):
        src = "try:\n    f()\nexcept Exception as exc:\n    log(exc)\n"
        assert only(src, "swallowed-error") == []

    def test_quiet_on_narrow_handler(self):
        src = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert only(src, "swallowed-error") == []


class TestMutableDefault:
    def test_fires_on_list_literal(self):
        src = "def f(items=[]):\n    pass\n"
        assert only(src, "mutable-default") == ["mutable-default"]

    def test_fires_on_dict_constructor(self):
        src = "def f(options=dict()):\n    pass\n"
        assert only(src, "mutable-default") == ["mutable-default"]

    def test_quiet_on_none_default(self):
        src = "def f(items=None):\n    pass\n"
        assert only(src, "mutable-default") == []

    def test_quiet_on_immutable_defaults(self):
        src = "def f(a=0, b='x', c=(1, 2)):\n    pass\n"
        assert only(src, "mutable-default") == []


class TestPublicApi:
    GOOD = (
        "def detect(frame: object) -> list:\n"
        "    \"\"\"Run detection.\"\"\"\n"
        "    return []\n"
    )

    def test_fires_on_missing_docstring(self):
        src = "def detect(frame: object) -> list:\n    return []\n"
        assert only(src, "public-api", module=API_MODULE) == ["public-api"]

    def test_fires_on_missing_annotations(self):
        src = "def detect(frame) -> list:\n    \"\"\"Doc.\"\"\"\n    return []\n"
        assert only(src, "public-api", module=API_MODULE) == ["public-api"]

    def test_fires_on_missing_return_annotation(self):
        src = "def detect(frame: object):\n    \"\"\"Doc.\"\"\"\n    return []\n"
        assert only(src, "public-api", module=API_MODULE) == ["public-api"]

    def test_fires_on_undocumented_class_and_method(self):
        src = (
            "class Pipe:\n"
            "    def run(self, n):\n"
            "        return n\n"
        )
        found = only(src, "public-api", module=API_MODULE)
        assert len(found) == 4  # class doc, method doc, return ann, param ann

    def test_quiet_on_compliant_function(self):
        assert only(self.GOOD, "public-api", module=API_MODULE) == []

    def test_quiet_on_private_helpers(self):
        src = "def _helper(x):\n    return x\n"
        assert only(src, "public-api", module=API_MODULE) == []

    def test_quiet_outside_api_packages(self):
        src = "def detect(frame):\n    return []\n"
        assert only(src, "public-api", module="repro.imaging.fake") == []


class TestSuppressions:
    def test_line_skip_all(self):
        src = "import random  # reprolint: skip\n"
        assert ids(src) == []

    def test_line_skip_named_rule(self):
        src = "import random  # reprolint: skip=determinism-rng\n"
        assert only(src, "determinism-rng") == []

    def test_line_skip_other_rule_does_not_apply(self):
        src = "import random  # reprolint: skip=unit-suffix\n"
        assert only(src, "determinism-rng") == ["determinism-rng"]

    def test_skip_file(self):
        src = "# reprolint: skip-file\nimport random\nx = time.time()\n"
        assert ids(src) == []

    def test_skip_file_named_rules_only(self):
        src = "# reprolint: skip-file=determinism-rng\nimport random\nimport time\nx = time.time()\n"
        assert only(src, "determinism-rng") == []
        assert only(src, "determinism-clock") == ["determinism-clock"]

    def test_skip_file_ignored_deep_in_the_file(self):
        src = "\n" * 20 + "# reprolint: skip-file\nimport random\n"
        assert only(src, "determinism-rng") == ["determinism-rng"]

    def test_late_skip_file_is_reported_not_silently_ignored(self):
        src = "\n" * 20 + "# reprolint: skip-file\nimport random\n"
        assert only(src, "suppression-hygiene") == ["suppression-hygiene"]

    def test_unknown_rule_in_skip_warns(self):
        src = "x = 1  # reprolint: skip=determinsm-clock\n"
        found = analyze_source(src, module=SIM_MODULE)
        assert [v.rule_id for v in found] == ["suppression-hygiene"]
        assert "determinsm-clock" in found[0].message

    def test_known_rule_in_skip_is_quiet(self):
        src = "import random  # reprolint: skip=determinism-rng\n"
        assert only(src, "suppression-hygiene") == []

    def test_pragma_inside_string_literal_is_inert(self):
        # Pragma-shaped text in a docstring neither suppresses the line
        # nor counts as a (possibly bogus) suppression comment.
        src = (
            'DOC = """\n'
            "    # reprolint: skip=no-such-rule\n"
            '"""\n'
            "import random  # the string above must not suppress this\n"
        )
        assert only(src, "determinism-rng") == ["determinism-rng"]
        assert only(src, "suppression-hygiene") == []


class TestFramework:
    def test_syntax_error_reported_not_raised(self):
        found = analyze_source("def broken(:\n", module=SIM_MODULE)
        assert [v.rule_id for v in found] == ["syntax-error"]

    def test_violations_sorted_by_location(self):
        src = "import random\nimport time\nx = time.time()\ny = random.random()\n"
        found = analyze_source(src, module=SIM_MODULE)
        assert [v.line for v in found] == sorted(v.line for v in found)

    def test_select_filter(self):
        from dataclasses import replace

        from repro.analysis import DEFAULT_CONFIG

        src = "import random\nx = time.time()\n"
        cfg = replace(DEFAULT_CONFIG, select=("determinism-clock",))
        found = analyze_source(src, module=SIM_MODULE, config=cfg)
        assert {v.rule_id for v in found} == {"determinism-clock"}

    def test_ignore_filter(self):
        from dataclasses import replace

        from repro.analysis import DEFAULT_CONFIG

        src = "import random\nx = time.time()\n"
        cfg = replace(DEFAULT_CONFIG, ignore=("determinism-rng",))
        found = analyze_source(src, module=SIM_MODULE, config=cfg)
        assert "determinism-rng" not in {v.rule_id for v in found}


class TestBenchRegistry:
    SUITE = "repro.perf.suites.fake"

    def test_fires_on_unregistered_public_function(self):
        src = "def resize_bench(ctx):\n    return lambda: None\n"
        assert only(src, "bench-registry", module=self.SUITE) == ["bench-registry"]

    def test_quiet_on_registered_unit_suffixed_bench(self):
        src = (
            "from repro.perf.registry import bench\n"
            "@bench('resize_ms', group='imaging')\n"
            "def resize(ctx):\n    return lambda: None\n"
        )
        assert only(src, "bench-registry", module=self.SUITE) == []

    def test_quiet_on_private_helpers(self):
        src = "def _frame(ctx, h, w):\n    return ctx.rng.random((h, w))\n"
        assert only(src, "bench-registry", module=self.SUITE) == []

    def test_fires_on_name_without_unit_suffix(self):
        src = (
            "from repro.perf.registry import bench\n"
            "@bench('resize_fast', group='imaging')\n"
            "def resize(ctx):\n    return lambda: None\n"
        )
        assert only(src, "bench-registry", module=self.SUITE) == ["bench-registry"]

    def test_fires_on_wall_clock_read(self):
        src = (
            "import time\n"
            "from repro.perf.registry import bench\n"
            "@bench('resize_ms', group='imaging')\n"
            "def resize(ctx):\n"
            "    t0 = time.perf_counter()\n"
            "    return lambda: t0\n"
        )
        assert only(src, "bench-registry", module=self.SUITE) == ["bench-registry"]

    def test_quiet_outside_suite_packages(self):
        src = "def resize_bench(ctx):\n    return lambda: None\n"
        assert only(src, "bench-registry", module="repro.perf.runner") == []
        assert only(src, "bench-registry", module=NON_SIM_MODULE) == []


class TestMonitorEventVocabulary:
    def test_fires_on_unknown_kind(self):
        src = "monitor.emit_event('monitor.bogus', 1.0)\n"
        assert only(src, "monitor-event-vocabulary") == ["monitor-event-vocabulary"]

    def test_quiet_on_declared_kinds(self):
        src = (
            "monitor.emit_event('monitor.trigger', 1.0, trigger='fault')\n"
            "monitor.emit_event('monitor.incident', 2.0)\n"
            "monitor.emit_event('slo.violation', 3.0, slo='frame-deadline')\n"
            "monitor.emit_event('health.transition', 4.0)\n"
        )
        assert only(src, "monitor-event-vocabulary") == []

    def test_fires_on_non_literal_kind(self):
        src = "monitor.emit_event(kind_var, 1.0)\n"
        assert only(src, "monitor-event-vocabulary") == ["monitor-event-vocabulary"]

    def test_kind_keyword_is_checked_too(self):
        assert only("m.emit_event(kind='slo.violation', time_s=0.0)\n",
                    "monitor-event-vocabulary") == []
        assert only("m.emit_event(kind='slo.nope', time_s=0.0)\n",
                    "monitor-event-vocabulary") == ["monitor-event-vocabulary"]

    def test_applies_outside_sim_domains(self):
        src = "monitor.emit_event('monitor.bogus', 1.0)\n"
        assert only(src, "monitor-event-vocabulary", module=NON_SIM_MODULE) == [
            "monitor-event-vocabulary"
        ]


class TestBatchedHotPath:
    PIPELINE = "repro.pipelines.fake"

    def test_fires_on_per_window_loop(self):
        src = (
            "def scan(model, windows):\n"
            "    out = []\n"
            "    for w in windows:\n"
            "        out.append(model.decision_values(w))\n"
            "    return out\n"
        )
        assert only(src, "batched-hot-path", module=self.PIPELINE) == ["batched-hot-path"]

    def test_fires_on_predict_in_while_loop(self):
        src = (
            "def scan(dbn, flat):\n"
            "    i = 0\n"
            "    while i < 10:\n"
            "        dbn.predict(flat[i])\n"
            "        i += 1\n"
        )
        assert only(src, "batched-hot-path", module=self.PIPELINE) == ["batched-hot-path"]

    def test_fires_on_listcomp(self):
        src = "def scan(model, ws):\n    return [model.predict_proba(w) for w in ws]\n"
        assert only(src, "batched-hot-path", module=self.PIPELINE) == ["batched-hot-path"]

    def test_quiet_in_reference_branch(self):
        src = (
            "def _scan_plane_reference(model, windows):\n"
            "    return [float(model.decision_values(w)) for w in windows]\n"
        )
        assert only(src, "batched-hot-path", module=self.PIPELINE) == []

    def test_quiet_on_batch_entry_points(self):
        src = (
            "def scan(model, chunks):\n"
            "    for chunk in chunks:\n"
            "        model.predict_batch(chunk)\n"
            "        model.decision_batch(chunk)\n"
        )
        assert only(src, "batched-hot-path", module=self.PIPELINE) == []

    def test_quiet_on_argless_predict(self):
        # A kinematic track.predict() is not a classifier scorer.
        src = "def step(tracks):\n    return [t.predict() for t in tracks]\n"
        assert only(src, "batched-hot-path", module=self.PIPELINE) == []

    def test_quiet_outside_loops(self):
        src = "def classify(model, crop):\n    return model.decision_values(crop)\n"
        assert only(src, "batched-hot-path", module=self.PIPELINE) == []

    def test_quiet_outside_hot_path_packages(self):
        src = (
            "def scan(model, windows):\n"
            "    return [model.decision_values(w) for w in windows]\n"
        )
        assert only(src, "batched-hot-path", module="repro.experiments.fake") == []

    def test_loop_in_caller_does_not_taint_helper(self):
        src = (
            "def score_one(model, w):\n"
            "    return model.decision_values(w)\n"
        )
        assert only(src, "batched-hot-path", module=self.PIPELINE) == []


class TestFleetEventVocabulary:
    def test_fires_on_unknown_kind(self):
        src = "scheduler.fleet_event('fleet.party')\n"
        assert only(src, "fleet-event-vocabulary") == ["fleet-event-vocabulary"]

    def test_quiet_on_declared_kinds(self):
        src = (
            "scheduler.fleet_event('fleet.run.start', drives=4)\n"
            "scheduler.fleet_event('fleet.submit', index=0)\n"
            "scheduler.fleet_event('fleet.worker.crash', worker=1)\n"
            "scheduler.fleet_event('fleet.rollup.write')\n"
        )
        assert only(src, "fleet-event-vocabulary") == []

    def test_fires_on_non_literal_kind(self):
        src = "scheduler.fleet_event(kind_var)\n"
        assert only(src, "fleet-event-vocabulary") == ["fleet-event-vocabulary"]

    def test_kind_keyword_is_checked_too(self):
        assert only("s.fleet_event(kind='fleet.reject')\n", "fleet-event-vocabulary") == []
        assert only("s.fleet_event(kind='fleet.nope')\n", "fleet-event-vocabulary") == [
            "fleet-event-vocabulary"
        ]

    def test_applies_outside_sim_domains(self):
        # The fleet package itself is outside the sim fence; the
        # vocabulary contract still holds everywhere.
        src = "scheduler.fleet_event('fleet.party')\n"
        assert only(src, "fleet-event-vocabulary", module=NON_SIM_MODULE) == [
            "fleet-event-vocabulary"
        ]
