"""Tests for repro.ml.rbm: CD-k training and inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.rbm import Rbm, RbmConfig


def _stripe_data(n: int, seed: int = 0) -> np.ndarray:
    """Binary 4x4 windows that are either left-half or right-half lit."""
    rng = np.random.default_rng(seed)
    data = np.zeros((n, 16))
    for i in range(n):
        img = np.zeros((4, 4))
        if rng.random() < 0.5:
            img[:, :2] = 1.0
        else:
            img[:, 2:] = 1.0
        flip = rng.random((4, 4)) < 0.05
        img[flip] = 1.0 - img[flip]
        data[i] = img.ravel()
    return data


class TestConstruction:
    def test_paper_dimensions(self):
        rbm = Rbm(81, 20)
        assert rbm.weights.shape == (81, 20)
        assert rbm.visible_bias.shape == (81,)
        assert rbm.hidden_bias.shape == (20,)

    def test_rejects_zero_units(self):
        with pytest.raises(ModelError):
            Rbm(0, 5)

    def test_rejects_bad_config(self):
        with pytest.raises(ModelError):
            RbmConfig(momentum=1.0)
        with pytest.raises(ModelError):
            RbmConfig(cd_k=0)


class TestInference:
    def test_probabilities_in_unit_interval(self):
        rbm = Rbm(16, 6)
        data = _stripe_data(10)
        h = rbm.hidden_probabilities(data)
        v = rbm.visible_probabilities(h)
        assert h.min() >= 0 and h.max() <= 1
        assert v.min() >= 0 and v.max() <= 1

    def test_sample_is_binary(self):
        rbm = Rbm(16, 6)
        s = rbm.sample_hidden(_stripe_data(5))
        assert set(np.unique(s)).issubset({0.0, 1.0})

    def test_rejects_wrong_width(self):
        rbm = Rbm(16, 6)
        with pytest.raises(ModelError):
            rbm.hidden_probabilities(np.zeros((2, 9)))


class TestTraining:
    def test_reconstruction_error_decreases(self):
        data = _stripe_data(200, seed=1)
        rbm = Rbm(16, 8, RbmConfig(epochs=15, learning_rate=0.2, seed=2))
        errors = rbm.fit(data)
        assert errors[-1] < errors[0]

    def test_free_energy_favours_training_data(self):
        data = _stripe_data(200, seed=3)
        rbm = Rbm(16, 8, RbmConfig(epochs=25, learning_rate=0.2, seed=4))
        rbm.fit(data)
        rng = np.random.default_rng(5)
        noise = (rng.random((50, 16)) < 0.5).astype(float)
        fe_data = rbm.free_energy(data[:50]).mean()
        fe_noise = rbm.free_energy(noise).mean()
        assert fe_data < fe_noise

    def test_reconstruction_roundtrip_close_after_training(self):
        data = _stripe_data(200, seed=6)
        rbm = Rbm(16, 8, RbmConfig(epochs=25, learning_rate=0.2, seed=7))
        rbm.fit(data)
        recon = rbm.reconstruct(data[:20])
        err = np.mean((recon - data[:20]) ** 2)
        assert err < 0.1

    def test_rejects_out_of_range_data(self):
        rbm = Rbm(4, 2)
        with pytest.raises(ModelError):
            rbm.fit(np.full((3, 4), 2.0))
