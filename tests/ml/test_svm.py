"""Tests for repro.ml.svm: the dual coordinate descent LibLINEAR solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.ml.svm import LinearSvm, SvmConfig, train_svm


def _gaussian_blobs(n: int, dim: int, gap: float, seed: int):
    rng = np.random.default_rng(seed)
    pos = rng.normal(gap / 2.0, 1.0, size=(n, dim))
    neg = rng.normal(-gap / 2.0, 1.0, size=(n, dim))
    x = np.vstack([pos, neg])
    y = np.concatenate([np.ones(n), -np.ones(n)]).astype(np.int64)
    return x, y


class TestConfig:
    def test_rejects_bad_c(self):
        with pytest.raises(ModelError):
            SvmConfig(c=0.0)

    def test_rejects_bad_loss(self):
        with pytest.raises(ModelError):
            SvmConfig(loss="hinge2")

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ModelError):
            SvmConfig(tolerance=-1.0)


class TestTraining:
    def test_separates_wide_blobs(self):
        x, y = _gaussian_blobs(100, 5, gap=6.0, seed=0)
        model = train_svm(x, y)
        assert (model.predict(x) == y).mean() > 0.99

    def test_l1_loss_also_separates(self):
        x, y = _gaussian_blobs(80, 4, gap=6.0, seed=1)
        model = LinearSvm(SvmConfig(loss="l1")).train(x, y)
        assert (model.predict(x) == y).mean() > 0.99

    def test_bias_learned_for_offset_data(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0.0, 1.0, size=(200, 1)) + 5.0
        y = np.where(x[:, 0] > 5.0, 1, -1)
        model = train_svm(x, y, c=10.0)
        assert (model.predict(x) == y).mean() > 0.95
        assert abs(model.bias) > 0.1

    def test_perfect_margin_on_separable_points(self):
        x = np.array([[2.0], [3.0], [-2.0], [-3.0]])
        y = np.array([1, 1, -1, -1])
        model = train_svm(x, y, c=10.0)
        margins = y * model.decision_values(x)
        assert np.all(margins > 0.9)  # hinge satisfied near/above 1

    def test_meta_records_solver_stats(self):
        x, y = _gaussian_blobs(30, 3, gap=4.0, seed=3)
        model = train_svm(x, y, name="day")
        assert model.meta["name"] == "day"
        assert model.meta["epochs"] >= 1
        assert 0 < model.meta["n_support"] <= 60

    def test_deterministic_given_seed(self):
        x, y = _gaussian_blobs(50, 4, gap=3.0, seed=4)
        m1 = LinearSvm(SvmConfig(seed=9)).train(x, y)
        m2 = LinearSvm(SvmConfig(seed=9)).train(x, y)
        assert np.allclose(m1.weights, m2.weights)
        assert m1.bias == pytest.approx(m2.bias)

    def test_regularization_shrinks_weights(self):
        x, y = _gaussian_blobs(60, 4, gap=3.0, seed=5)
        strong = LinearSvm(SvmConfig(c=0.01)).train(x, y)
        weak = LinearSvm(SvmConfig(c=10.0)).train(x, y)
        assert np.linalg.norm(strong.weights) < np.linalg.norm(weak.weights)

    def test_rejects_single_class(self):
        with pytest.raises(ModelError):
            train_svm(np.zeros((4, 2)), np.ones(4))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_kkt_dual_feasibility(self, seed):
        """On convergence, margin violations imply bounded alphas: every
        training point with margin > 1 must contribute ~zero weight, which
        we verify indirectly — removing comfortable points leaves the model
        essentially unchanged."""
        x, y = _gaussian_blobs(40, 3, gap=5.0, seed=seed)
        model = LinearSvm(SvmConfig(c=1.0, tolerance=1e-4, max_iter=3000)).train(x, y)
        margins = y * model.decision_values(x)
        keep = margins <= 1.0 + 1e-3
        if keep.sum() >= 2 and len(set(y[keep])) == 2:
            refit = LinearSvm(SvmConfig(c=1.0, tolerance=1e-4, max_iter=3000)).train(
                x[keep], y[keep]
            )
            cos = np.dot(model.weights, refit.weights) / (
                np.linalg.norm(model.weights) * np.linalg.norm(refit.weights)
            )
            assert cos > 0.98
