"""Tests for repro.ml.scaler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, NotTrainedError
from repro.ml.scaler import MinMaxScaler, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        out = StandardScaler().fit_transform(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_passes_through(self):
        x = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        out = StandardScaler().fit_transform(x)
        assert np.allclose(out[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_rejects_width_mismatch(self):
        s = StandardScaler().fit(np.zeros((3, 2)))
        with pytest.raises(ModelError):
            s.transform(np.zeros((3, 3)))

    def test_single_row_transform(self):
        s = StandardScaler().fit(np.array([[0.0, 10.0], [2.0, 20.0]]))
        out = s.transform(np.array([1.0, 15.0]))
        assert out.shape == (1, 2)
        assert np.allclose(out, 0.0)


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 5, size=(100, 3))
        out = MinMaxScaler().fit_transform(x)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_extremes_hit_bounds(self):
        x = np.array([[0.0], [10.0]])
        out = MinMaxScaler().fit_transform(x)
        assert out.tolist() == [[0.0], [1.0]]

    def test_out_of_range_clipped(self):
        s = MinMaxScaler().fit(np.array([[0.0], [1.0]]))
        out = s.transform(np.array([[2.0], [-1.0]]))
        assert out.tolist() == [[1.0], [0.0]]

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            MinMaxScaler().transform(np.zeros((1, 1)))
