"""Tests for repro.ml.model_io: linear-model JSON and DBN npz round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.dbn import DbnConfig, DeepBeliefNetwork
from repro.ml.linear import LinearModel
from repro.ml.logistic import SoftmaxConfig
from repro.ml.model_io import load_dbn, load_linear_model, save_dbn, save_linear_model
from repro.ml.rbm import RbmConfig


class TestLinearIo:
    def test_roundtrip(self, tmp_path):
        model = LinearModel(
            weights=np.linspace(-1, 1, 17),
            bias=0.37,
            meta={"name": "day", "c": 1.0},
        )
        path = tmp_path / "day.json"
        save_linear_model(model, path)
        loaded = load_linear_model(path)
        assert np.allclose(loaded.weights, model.weights)
        assert loaded.bias == pytest.approx(model.bias)
        assert loaded.meta["name"] == "day"

    def test_custom_labels_preserved(self, tmp_path):
        model = LinearModel(weights=np.ones(3), bias=0.0, label_positive=5, label_negative=2)
        path = tmp_path / "m.json"
        save_linear_model(model, path)
        loaded = load_linear_model(path)
        assert loaded.label_positive == 5 and loaded.label_negative == 2

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ModelError):
            load_linear_model(path)

    def test_rejects_corrupt_payload(self, tmp_path):
        model = LinearModel(weights=np.ones(4), bias=0.0)
        path = tmp_path / "m.json"
        save_linear_model(model, path)
        text = path.read_text().replace('"shape": [4]', '"shape": [5]')
        path.write_text(text)
        with pytest.raises(ModelError):
            load_linear_model(path)


class TestDbnIo:
    def _small_trained_dbn(self):
        rng = np.random.default_rng(0)
        x = (rng.random((60, 16)) < 0.4).astype(float)
        y = rng.integers(0, 3, 60)
        dbn = DeepBeliefNetwork(
            DbnConfig(
                layers=(16, 6, 4),
                n_classes=3,
                rbm=RbmConfig(epochs=2),
                head=SoftmaxConfig(epochs=10),
                finetune_epochs=2,
            )
        )
        dbn.fit(x, y)
        return dbn, x

    def test_roundtrip_predictions_identical(self, tmp_path):
        dbn, x = self._small_trained_dbn()
        path = tmp_path / "dbn.npz"
        save_dbn(dbn, path)
        loaded = load_dbn(path)
        assert np.array_equal(loaded.predict(x), dbn.predict(x))
        assert np.allclose(loaded.predict_proba(x), dbn.predict_proba(x))

    def test_architecture_restored(self, tmp_path):
        dbn, _ = self._small_trained_dbn()
        path = tmp_path / "dbn.npz"
        save_dbn(dbn, path)
        loaded = load_dbn(path)
        assert loaded.config.layers == (16, 6, 4)
        assert loaded.config.n_classes == 3
