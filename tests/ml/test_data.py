"""Tests for repro.ml.data: splits, shuffles, balancing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.data import balance_classes, shuffle_together, train_test_split


class TestSplit:
    def test_partition_sizes(self):
        x = np.arange(100).reshape(100, 1).astype(float)
        y = np.array([1] * 50 + [-1] * 50)
        xtr, ytr, xte, yte = train_test_split(x, y, test_fraction=0.2)
        assert len(ytr) + len(yte) == 100
        assert len(yte) == 20

    def test_stratified(self):
        x = np.zeros((30, 1))
        y = np.array([1] * 20 + [-1] * 10)
        _, ytr, _, yte = train_test_split(x, y, test_fraction=0.3)
        assert (yte == 1).sum() == 6
        assert (yte == -1).sum() == 3

    def test_no_overlap(self):
        x = np.arange(40).reshape(40, 1).astype(float)
        y = np.array([1, -1] * 20)
        xtr, _, xte, _ = train_test_split(x, y, test_fraction=0.25, seed=3)
        assert set(xtr.ravel()).isdisjoint(set(xte.ravel()))

    def test_small_class_keeps_train_sample(self):
        x = np.zeros((5, 1))
        y = np.array([1, 1, 1, -1, -1])
        _, ytr, _, _ = train_test_split(x, y, test_fraction=0.5)
        assert (ytr == -1).sum() >= 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ModelError):
            train_test_split(np.zeros((4, 1)), np.array([1, 1, -1, -1]), test_fraction=1.0)

    def test_rejects_misaligned(self):
        with pytest.raises(ModelError):
            train_test_split(np.zeros((4, 1)), np.array([1, -1]))


class TestShuffle:
    def test_alignment_preserved(self):
        x = np.arange(20).reshape(20, 1).astype(float)
        y = np.arange(20)
        xs, ys = shuffle_together(x, y, seed=1)
        assert np.array_equal(xs.ravel().astype(int), ys)

    def test_is_permutation(self):
        x = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        xs, _ = shuffle_together(x, y, seed=2)
        assert sorted(xs.ravel().tolist()) == list(range(10))


class TestBalance:
    def test_downsamples_majority(self):
        x = np.zeros((30, 2))
        y = np.array([1] * 25 + [-1] * 5)
        _, yb = balance_classes(x, y)
        assert (yb == 1).sum() == 5
        assert (yb == -1).sum() == 5

    def test_already_balanced_unchanged_size(self):
        x = np.zeros((10, 1))
        y = np.array([1, -1] * 5)
        xb, yb = balance_classes(x, y)
        assert len(yb) == 10
