"""Tests for repro.ml.logistic: softmax layer, sigmoid, one-hot."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, NotTrainedError
from repro.ml.logistic import SoftmaxConfig, SoftmaxLayer, one_hot, sigmoid, softmax


class TestPrimitives:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.normal(0, 10, size=(5, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_sigmoid_symmetry(self):
        xs = np.linspace(-5, 5, 11)
        assert np.allclose(sigmoid(xs) + sigmoid(-xs), 1.0)

    def test_sigmoid_extremes(self):
        assert sigmoid(np.array([-800.0]))[0] == pytest.approx(0.0, abs=1e-12)
        assert sigmoid(np.array([800.0]))[0] == pytest.approx(1.0, abs=1e-12)

    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        assert out.tolist() == [[1, 0, 0], [0, 0, 1], [0, 1, 0]]

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            one_hot(np.array([3]), 3)


class TestSoftmaxLayer:
    def test_learns_separable_classes(self):
        rng = np.random.default_rng(1)
        centers = np.array([[3.0, 0.0], [-3.0, 0.0], [0.0, 3.0]])
        x = np.vstack([rng.normal(c, 0.3, size=(40, 2)) for c in centers])
        y = np.repeat(np.arange(3), 40)
        layer = SoftmaxLayer(2, 3, SoftmaxConfig(epochs=300))
        losses = layer.fit(x, y)
        assert losses[-1] < losses[0]
        assert (layer.predict(x) == y).mean() > 0.95

    def test_predict_before_fit_raises(self):
        layer = SoftmaxLayer(2, 3)
        with pytest.raises(NotTrainedError):
            layer.predict(np.zeros((1, 2)))

    def test_proba_shape_and_simplex(self):
        rng = np.random.default_rng(2)
        x = rng.random((20, 4))
        y = rng.integers(0, 2, 20)
        layer = SoftmaxLayer(4, 2, SoftmaxConfig(epochs=10))
        layer.fit(x, y)
        probs = layer.predict_proba(x)
        assert probs.shape == (20, 2)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_rejects_wrong_width(self):
        layer = SoftmaxLayer(4, 2, SoftmaxConfig(epochs=1))
        layer.fit(np.zeros((4, 4)), np.array([0, 1, 0, 1]))
        with pytest.raises(ModelError):
            layer.predict(np.zeros((2, 3)))

    def test_rejects_bad_config(self):
        with pytest.raises(ModelError):
            SoftmaxConfig(learning_rate=0.0)
        with pytest.raises(ModelError):
            SoftmaxLayer(0, 2)
