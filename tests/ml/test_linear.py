"""Tests for repro.ml.linear: LinearModel and validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, NotTrainedError
from repro.ml.linear import LinearModel, require_trained, validate_training_set


class TestLinearModel:
    def test_decision_values_single(self):
        m = LinearModel(weights=np.array([1.0, -2.0]), bias=0.5)
        assert float(m.decision_values(np.array([2.0, 1.0]))) == pytest.approx(0.5)

    def test_decision_values_batch(self):
        m = LinearModel(weights=np.array([1.0, 0.0]), bias=0.0)
        vals = m.decision_values(np.array([[1.0, 9.0], [-2.0, 3.0]]))
        assert vals.tolist() == [1.0, -2.0]

    def test_predict_labels(self):
        m = LinearModel(weights=np.array([1.0]), bias=0.0)
        assert m.predict(np.array([[2.0], [-2.0]])).tolist() == [1, -1]

    def test_custom_labels(self):
        m = LinearModel(weights=np.array([1.0]), bias=0.0, label_positive=7, label_negative=3)
        assert m.predict(np.array([[1.0], [-1.0]])).tolist() == [7, 3]

    def test_rejects_empty_weights(self):
        with pytest.raises(ModelError):
            LinearModel(weights=np.array([]), bias=0.0)

    def test_rejects_dimension_mismatch(self):
        m = LinearModel(weights=np.array([1.0, 2.0]), bias=0.0)
        with pytest.raises(ModelError):
            m.decision_values(np.array([1.0, 2.0, 3.0]))

    def test_divergence_identical_zero(self):
        m = LinearModel(weights=np.array([1.0, 2.0]), bias=0.0)
        assert m.model_divergence(m) == pytest.approx(0.0, abs=1e-7)

    def test_divergence_opposite_one(self):
        a = LinearModel(weights=np.array([1.0, 0.0]), bias=0.0)
        b = LinearModel(weights=np.array([-1.0, 0.0]), bias=0.0)
        assert a.model_divergence(b) == pytest.approx(1.0)

    def test_divergence_orthogonal_half(self):
        a = LinearModel(weights=np.array([1.0, 0.0]), bias=0.0)
        b = LinearModel(weights=np.array([0.0, 1.0]), bias=0.0)
        assert a.model_divergence(b) == pytest.approx(0.5)

    def test_divergence_rejects_zero_model(self):
        a = LinearModel(weights=np.array([1.0]), bias=0.0)
        b = LinearModel(weights=np.array([1e-300]), bias=0.0)
        b.weights = np.array([0.0])
        with pytest.raises(ModelError):
            a.model_divergence(b)


class TestHelpers:
    def test_require_trained_passes_model(self):
        m = LinearModel(weights=np.array([1.0]), bias=0.0)
        assert require_trained(m, "x") is m

    def test_require_trained_raises_on_none(self):
        with pytest.raises(NotTrainedError):
            require_trained(None, "detector")

    def test_validate_training_set_ok(self):
        x, y = validate_training_set(np.zeros((4, 2)), np.array([1, -1, 1, -1]))
        assert x.shape == (4, 2)

    def test_validate_rejects_single_class(self):
        with pytest.raises(ModelError):
            validate_training_set(np.zeros((3, 2)), np.array([1, 1, 1]))

    def test_validate_rejects_bad_labels(self):
        with pytest.raises(ModelError):
            validate_training_set(np.zeros((2, 2)), np.array([0, 1]))

    def test_validate_rejects_misaligned(self):
        with pytest.raises(ModelError):
            validate_training_set(np.zeros((3, 2)), np.array([1, -1]))
