"""Tests for repro.ml.dbn: the 81-20-8-4 taillight classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, NotTrainedError
from repro.ml.dbn import PAPER_DBN_CLASSES, PAPER_DBN_LAYERS, DbnConfig, DeepBeliefNetwork
from repro.ml.logistic import SoftmaxConfig
from repro.ml.rbm import RbmConfig


def _fast_config(**kwargs) -> DbnConfig:
    return DbnConfig(
        rbm=RbmConfig(epochs=3, seed=0),
        head=SoftmaxConfig(epochs=60),
        finetune_epochs=20,
        **kwargs,
    )


class TestArchitecture:
    def test_paper_architecture_constants(self):
        assert PAPER_DBN_LAYERS == (81, 20, 8)
        assert PAPER_DBN_CLASSES == 4

    def test_default_builds_paper_stack(self):
        dbn = DeepBeliefNetwork()
        assert len(dbn.rbms) == 2
        assert dbn.rbms[0].weights.shape == (81, 20)
        assert dbn.rbms[1].weights.shape == (20, 8)
        assert dbn.head.weights.shape == (8, 4)

    def test_rejects_too_few_layers(self):
        with pytest.raises(ModelError):
            DbnConfig(layers=(81,))

    def test_rejects_single_class(self):
        with pytest.raises(ModelError):
            DbnConfig(n_classes=1)


class TestTraining:
    def test_learns_taillight_windows(self):
        from repro.datasets.synthetic import make_taillight_windows

        # Default training budget and the corpus size the dark pipeline
        # trains with; the fast config underfits 4 classes.
        x, y = make_taillight_windows(n_per_class=250, seed=1)
        dbn = DeepBeliefNetwork()
        report = dbn.fit(x, y)
        assert dbn.score(x, y) > 0.8
        assert len(report["rbm_errors"]) == 2
        assert report["finetune_losses"][-1] <= report["finetune_losses"][0]

    def test_transform_shape(self):
        dbn = DeepBeliefNetwork(_fast_config())
        out = dbn.transform(np.zeros((5, 81)))
        assert out.shape == (5, 8)

    def test_transform_rejects_wrong_width(self):
        dbn = DeepBeliefNetwork()
        with pytest.raises(ModelError):
            dbn.transform(np.zeros((2, 80)))

    def test_predict_before_fit_raises(self):
        dbn = DeepBeliefNetwork()
        with pytest.raises(NotTrainedError):
            dbn.predict(np.zeros((1, 81)))

    def test_fit_rejects_misaligned_labels(self):
        dbn = DeepBeliefNetwork(_fast_config())
        with pytest.raises(ModelError):
            dbn.fit(np.zeros((4, 81)), np.zeros(3, dtype=int))

    def test_proba_simplex(self):
        from repro.datasets.synthetic import make_taillight_windows

        x, y = make_taillight_windows(n_per_class=40, seed=2)
        dbn = DeepBeliefNetwork(_fast_config())
        dbn.fit(x, y)
        probs = dbn.predict_proba(x[:10])
        assert probs.shape == (10, 4)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_deterministic_given_seed(self):
        from repro.datasets.synthetic import make_taillight_windows

        x, y = make_taillight_windows(n_per_class=30, seed=3)
        a = DeepBeliefNetwork(_fast_config())
        b = DeepBeliefNetwork(_fast_config())
        a.fit(x, y)
        b.fit(x, y)
        assert np.array_equal(a.predict(x), b.predict(x))

    def test_pretraining_without_labels(self):
        rng = np.random.default_rng(4)
        data = (rng.random((60, 81)) < 0.3).astype(float)
        dbn = DeepBeliefNetwork(_fast_config())
        traces = dbn.pretrain(data)
        assert len(traces) == 2
        assert all(len(t) == 3 for t in traces)
