"""Tests for repro.zynq.interrupts."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.zynq.events import Simulator
from repro.zynq.interrupts import InterruptController


class TestInterrupts:
    def test_delivery_after_latency(self, simulator):
        irq = InterruptController(simulator, latency_s=1e-6)
        seen = []
        irq.connect("dma.done", lambda name: seen.append((name, simulator.now)))
        irq.raise_irq("dma.done")
        simulator.run()
        assert seen == [("dma.done", 1e-6)]

    def test_count_accumulates(self, simulator):
        irq = InterruptController(simulator)
        irq.register("line")
        irq.raise_irq("line")
        simulator.run()
        irq.raise_irq("line")
        simulator.run()
        assert irq.count("line") == 2

    def test_pending_until_delivered(self, simulator):
        irq = InterruptController(simulator, latency_s=1.0)
        irq.raise_irq("x")
        assert irq.pending_lines() == ["x"]
        simulator.run()
        assert irq.pending_lines() == []

    def test_latched_line_coalesces_double_raise(self, simulator):
        # Two raises before delivery latch into one delivery.
        irq = InterruptController(simulator, latency_s=1.0)
        seen = []
        irq.connect("x", lambda name: seen.append(simulator.now))
        irq.raise_irq("x")
        irq.raise_irq("x")
        simulator.run()
        assert len(seen) == 1

    def test_multiple_handlers(self, simulator):
        irq = InterruptController(simulator)
        seen = []
        irq.connect("x", lambda name: seen.append("a"))
        irq.connect("x", lambda name: seen.append("b"))
        irq.raise_irq("x")
        simulator.run()
        assert seen == ["a", "b"]

    def test_rejects_negative_latency(self, simulator):
        with pytest.raises(SimulationError):
            InterruptController(simulator, latency_s=-1.0)

    def test_register_idempotent(self, simulator):
        irq = InterruptController(simulator)
        line1 = irq.register("x")
        line2 = irq.register("x")
        assert line1 is line2
