"""Tests for repro.zynq.firmware: the PS driver state machine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.zynq.firmware import DetectionFirmware
from repro.zynq.soc import ZynqSoC


@pytest.fixture()
def fw_soc():
    soc = ZynqSoC()
    return soc, DetectionFirmware(soc)


class TestFramePath:
    def test_single_frame_completes_via_isr(self, fw_soc):
        soc, fw = fw_soc
        assert fw.queue_frame("pedestrian")
        soc.sim.run()
        stats = fw.stats["pedestrian"]
        assert stats.frames_queued == 1
        assert stats.frames_started == 1
        assert stats.frames_completed == 1

    def test_queue_drains_in_order(self, fw_soc):
        soc, fw = fw_soc
        for _ in range(3):
            assert fw.queue_frame("vehicle")
        soc.sim.run()
        assert fw.stats["vehicle"].frames_completed == 3

    def test_queue_overflow_rejected(self, fw_soc):
        soc, fw = fw_soc
        results = [fw.queue_frame("pedestrian") for _ in range(6)]
        # depth 3 + 1 issued immediately; at least one rejection.
        assert not all(results)
        assert fw.stats["pedestrian"].frames_rejected >= 1

    def test_rejects_bad_queue_depth(self):
        with pytest.raises(SimulationError):
            DetectionFirmware(ZynqSoC(), queue_depth=0)

    def test_dma_error_recovery(self, fw_soc):
        soc, fw = fw_soc
        soc.ped_in_dma.inject_error()
        fw.queue_frame("pedestrian")
        fw.queue_frame("pedestrian")
        soc.sim.run()
        stats = fw.stats["pedestrian"]
        assert stats.dma_errors == 1
        # The second frame still completes after the ISR resets the engine.
        assert stats.frames_completed >= 1


class TestReconfigPath:
    def test_reconfiguration_completes(self, fw_soc):
        soc, fw = fw_soc
        fw.request_reconfiguration("dark")
        soc.sim.run()
        assert fw.stats["vehicle"].reconfigs_completed == 1
        assert soc.vehicle.configuration == "dark"

    def test_second_request_defers_not_faults(self, fw_soc):
        soc, fw = fw_soc
        fw.request_reconfiguration("dark")
        fw.request_reconfiguration("day_dusk")  # arrives mid-PR
        soc.sim.run()
        stats = fw.stats["vehicle"]
        assert stats.reconfigs_requested == 2
        assert stats.reconfigs_deferred == 1
        assert stats.reconfigs_completed == 2
        assert soc.vehicle.configuration == "day_dusk"

    def test_vehicle_frames_resume_after_reconfig(self, fw_soc):
        soc, fw = fw_soc
        fw.request_reconfiguration("dark")
        # Frames queued during the PR window; the partition drops what it
        # must and the stream resumes afterwards.
        for i in range(3):
            soc.sim.schedule(0.002 + i * 0.02, lambda: fw.queue_frame("vehicle"))
        soc.sim.run()
        stats = fw.stats["vehicle"]
        assert stats.frames_completed >= 1
        assert soc.vehicle.configuration == "dark"

    def test_pedestrian_unaffected_by_reconfig(self, fw_soc):
        soc, fw = fw_soc
        fw.request_reconfiguration("dark")
        soc.sim.schedule(0.005, lambda: fw.queue_frame("pedestrian"))
        soc.sim.run()
        assert fw.stats["pedestrian"].frames_completed == 1
        assert fw.stats["pedestrian"].frames_rejected == 0
