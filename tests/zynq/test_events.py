"""Tests for repro.zynq.events: the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.zynq.events import Simulator, Trace


class TestScheduling:
    def test_events_fire_in_time_order(self, simulator):
        order = []
        simulator.schedule(2.0, lambda: order.append("b"))
        simulator.schedule(1.0, lambda: order.append("a"))
        simulator.schedule(3.0, lambda: order.append("c"))
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self, simulator):
        order = []
        simulator.schedule(1.0, lambda: order.append("first"))
        simulator.schedule(1.0, lambda: order.append("second"))
        simulator.run()
        assert order == ["first", "second"]

    def test_now_advances(self, simulator):
        times = []
        simulator.schedule(0.5, lambda: times.append(simulator.now))
        simulator.schedule(1.5, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [0.5, 1.5]

    def test_nested_scheduling(self, simulator):
        seen = []

        def outer():
            seen.append(simulator.now)
            simulator.schedule(1.0, lambda: seen.append(simulator.now))

        simulator.schedule(1.0, outer)
        simulator.run()
        assert seen == [1.0, 2.0]

    def test_rejects_negative_delay(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(-0.1, lambda: None)

    def test_cancel(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        simulator.run()
        assert fired == []
        assert handle.cancelled

    def test_run_until_stops_at_time(self, simulator):
        seen = []
        simulator.schedule(1.0, lambda: seen.append(1))
        simulator.schedule(5.0, lambda: seen.append(5))
        simulator.run_until(2.0)
        assert seen == [1]
        assert simulator.now == 2.0
        simulator.run()
        assert seen == [1, 5]

    def test_run_until_rejects_backwards(self, simulator):
        simulator.run_until(3.0)
        with pytest.raises(SimulationError):
            simulator.run_until(1.0)

    def test_runaway_guard(self, simulator):
        def rearm():
            simulator.schedule(0.001, rearm)

        simulator.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            simulator.run(max_events=1000)

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    def test_arbitrary_delays_processed_in_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestTrace:
    def test_log_and_filter(self):
        trace = Trace()
        trace.log(0.0, "dma", "start")
        trace.log(1.0, "icap", "busy")
        trace.log(2.0, "dma", "done")
        assert len(trace) == 3
        assert [r.message for r in trace.from_source("dma")] == ["start", "done"]

    def test_unbounded_by_default(self):
        trace = Trace()
        for i in range(1000):
            trace.log(float(i), "src", f"m{i}")
        assert len(trace) == 1000
        assert trace.dropped == 0
        assert trace.logged == 1000

    def test_ring_buffer_keeps_newest_records(self):
        trace = Trace(max_records=3)
        for i in range(7):
            trace.log(float(i), "src", f"m{i}")
        assert len(trace) == 3
        assert [r.message for r in trace.records] == ["m4", "m5", "m6"]
        assert trace.dropped == 4
        assert trace.logged == 7

    def test_max_records_must_be_positive(self):
        with pytest.raises(SimulationError):
            Trace(max_records=0)

    def test_emit_logs_human_record_without_tracer(self):
        trace = Trace()
        trace.emit(1.0, "pr", "pr.done", "reconfigure done", bitstream="dark")
        assert [r.message for r in trace.records] == ["reconfigure done"]

    def test_emit_forwards_typed_event_to_tracer(self):
        from repro.telemetry.spans import Tracer

        tracer = Tracer()
        trace = Trace(tracer=tracer)
        trace.emit(2.0, "pr", "pr.done", "reconfigure done", bitstream="dark")
        (span,) = tracer.finished_spans("pr.done")
        assert span.start_s == 2.0
        assert span.attrs == {"source": "pr", "bitstream": "dark"}
