"""Tests for repro.zynq.soc: the Fig. 6 system."""

from __future__ import annotations

import pytest

from repro.errors import ReconfigurationError
from repro.zynq.pr import PaperPrController, ZycapController
from repro.zynq.soc import FRAME_BYTES, ZynqSoC


class TestFrameFlow:
    def test_both_detectors_process(self, soc):
        assert soc.submit_frame("pedestrian")
        assert soc.submit_frame("vehicle")
        soc.sim.run()
        assert soc.pedestrian.frames_processed == 1
        assert soc.vehicle.frames_processed == 1

    def test_dma_interrupts_per_frame(self, soc):
        soc.submit_frame("pedestrian")
        soc.sim.run()
        assert soc.interrupts.count(soc.ped_in_dma.irq_line) == 1
        assert soc.interrupts.count(soc.ped_out_dma.irq_line) == 1

    def test_frame_bytes_flow_over_hp0(self, soc):
        soc.submit_frame("pedestrian")
        soc.sim.run()
        assert soc.hp0.bytes_moved >= FRAME_BYTES

    def test_back_to_back_frames_at_50fps_not_dropped(self, soc):
        period = 1.0 / 50.0
        results = []
        for i in range(5):
            soc.sim.schedule(i * period, lambda: results.append(soc.submit_frame("vehicle")))
        soc.sim.run()
        assert all(results)
        assert soc.vehicle.frames_dropped == 0

    def test_unknown_detector_rejected(self, soc):
        with pytest.raises(Exception):
            soc.submit_frame("bicycle")


class TestReconfiguration:
    def test_vehicle_down_during_pr_pedestrian_up(self, soc):
        soc.reconfigure_vehicle("dark")
        # Mid-reconfiguration: vehicle frames dropped, pedestrian fine.
        outcomes = {}

        def probe():
            outcomes["vehicle"] = soc.submit_frame("vehicle")
            outcomes["pedestrian"] = soc.submit_frame("pedestrian")

        soc.sim.schedule(0.005, probe)
        soc.sim.run()
        assert outcomes == {"vehicle": False, "pedestrian": True}
        assert soc.vehicle.frames_dropped == 1
        assert soc.pedestrian.frames_dropped == 0

    def test_configuration_updated_after_pr(self, soc):
        assert soc.vehicle.configuration == "day_dusk"
        soc.reconfigure_vehicle("dark")
        soc.sim.run()
        assert soc.vehicle.configuration == "dark"
        assert soc.vehicle.available

    def test_double_reconfigure_rejected(self, soc):
        soc.reconfigure_vehicle("dark")
        with pytest.raises(ReconfigurationError):
            soc.reconfigure_vehicle("day_dusk")

    def test_model_swap_blocked_during_pr(self, soc):
        soc.reconfigure_vehicle("dark")
        with pytest.raises(ReconfigurationError):
            soc.swap_vehicle_model("dusk")

    def test_model_swap_is_instant(self, soc):
        t0 = soc.sim.now
        soc.swap_vehicle_model("dusk")
        assert soc.sim.now == t0
        assert soc.vehicle.available

    def test_reconfig_report_in_stats(self, soc):
        soc.reconfigure_vehicle("dark")
        soc.sim.run()
        stats = soc.stats()
        assert len(stats["reconfigurations"]) == 1
        assert stats["reconfigurations"][0]["throughput_mb_s"] == pytest.approx(390.0, rel=0.02)


class TestContention:
    def test_zycap_reconfig_delays_pedestrian_frames(self):
        def frame_latency(cls) -> float:
            soc = ZynqSoC(controller_cls=cls)
            finish = []
            soc.reconfigure_vehicle("dark")
            soc.sim.schedule(
                0.001,
                lambda: soc.submit_frame("pedestrian", on_result=lambda: finish.append(soc.sim.now)),
            )
            soc.sim.run()
            return finish[0] - 0.001

        paper = frame_latency(PaperPrController)
        zycap = frame_latency(ZycapController)
        assert zycap > paper + 0.005  # ZyCAP blocks HP0 for most of the PR
