"""Tests for repro.zynq.bitstream."""

from __future__ import annotations

import pytest

from repro.errors import BitstreamError
from repro.zynq.bitstream import (
    PAPER_PARTIAL_BITSTREAM_BYTES,
    BitstreamRepository,
    PartialBitstream,
    paper_bitstreams,
)


class TestBitstream:
    def test_paper_size(self):
        assert PAPER_PARTIAL_BITSTREAM_BYTES == 8_000_000

    def test_words(self):
        bs = PartialBitstream(name="x", size_bytes=1024)
        assert bs.words == 256

    def test_rejects_unaligned_size(self):
        with pytest.raises(BitstreamError):
            PartialBitstream(name="x", size_bytes=1001)

    def test_rejects_zero_size(self):
        with pytest.raises(BitstreamError):
            PartialBitstream(name="x", size_bytes=0)

    def test_integrity_check(self):
        bs = PartialBitstream(name="dark")
        assert bs.verify()
        bs.corrupt()
        assert not bs.verify()

    def test_corrupt_twice_restores(self):
        bs = PartialBitstream(name="dark")
        bs.corrupt()
        bs.corrupt()
        assert bs.verify()


class TestRepository:
    def test_add_get(self):
        repo = BitstreamRepository()
        bs = PartialBitstream(name="dark")
        repo.add(bs)
        assert repo.get("dark") is bs
        assert "dark" in repo

    def test_duplicate_rejected(self):
        repo = BitstreamRepository()
        repo.add(PartialBitstream(name="dark"))
        with pytest.raises(BitstreamError):
            repo.add(PartialBitstream(name="dark"))

    def test_missing_raises_with_inventory(self):
        repo = BitstreamRepository()
        repo.add(PartialBitstream(name="dark"))
        with pytest.raises(BitstreamError, match="dark"):
            repo.get("day_dusk")

    def test_paper_repository(self):
        repo = paper_bitstreams()
        assert repo.names() == ["dark", "day_dusk"]
        assert repo.get("dark").size_bytes == PAPER_PARTIAL_BITSTREAM_BYTES
