"""Tests for repro.zynq.dma: engine states, interrupts, error injection."""

from __future__ import annotations

import pytest

from repro.errors import DmaError
from repro.zynq.bus import HP_PORT, BusLink
from repro.zynq.dma import DmaDescriptor, DmaEngine, DmaState
from repro.zynq.events import Simulator, Trace
from repro.zynq.interrupts import InterruptController


@pytest.fixture()
def dma_setup():
    sim = Simulator()
    irq = InterruptController(sim)
    link = BusLink(sim, HP_PORT)
    trace = Trace()
    engine = DmaEngine("dma0", sim, link, irq, trace)
    return sim, irq, engine


class TestDescriptor:
    def test_rejects_zero_bytes(self):
        with pytest.raises(DmaError):
            DmaDescriptor(0)


class TestTransfer:
    def test_completion_fires_callback_and_irq(self, dma_setup):
        sim, irq, engine = dma_setup
        done = []
        engine.start(DmaDescriptor(4096, label="frame"), on_done=lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        assert irq.count(engine.irq_line) == 1
        assert engine.state is DmaState.IDLE
        assert engine.bytes_transferred == 4096

    def test_busy_engine_rejects_second_program(self, dma_setup):
        sim, _, engine = dma_setup
        engine.start(DmaDescriptor(4096))
        with pytest.raises(DmaError):
            engine.start(DmaDescriptor(4096))

    def test_sequential_transfers(self, dma_setup):
        sim, irq, engine = dma_setup
        engine.start(DmaDescriptor(1024), on_done=lambda: engine.start(DmaDescriptor(2048)))
        sim.run()
        assert engine.transfers_completed == 2
        assert engine.bytes_transferred == 3072
        assert irq.count(engine.irq_line) == 2

    def test_trace_records(self, dma_setup):
        sim, _, engine = dma_setup
        engine.start(DmaDescriptor(512, label="x"))
        sim.run()
        messages = [r.message for r in engine.trace.from_source("dma0")]
        assert any("start x" in m for m in messages)
        assert any("done x" in m for m in messages)


class TestErrors:
    def test_injected_error_raises_error_irq(self, dma_setup):
        sim, irq, engine = dma_setup
        engine.inject_error()
        completed = []
        engine.start(DmaDescriptor(4096), on_done=lambda: completed.append(1))
        sim.run()
        assert completed == []
        assert engine.state is DmaState.ERROR
        assert irq.count(engine.error_line) == 1
        assert irq.count(engine.irq_line) == 0

    def test_error_state_blocks_until_reset(self, dma_setup):
        sim, _, engine = dma_setup
        engine.inject_error()
        engine.start(DmaDescriptor(4096))
        sim.run()
        with pytest.raises(DmaError):
            engine.start(DmaDescriptor(4096))
        engine.reset()
        done = []
        engine.start(DmaDescriptor(4096), on_done=lambda: done.append(1))
        sim.run()
        assert done == [1]

    def test_error_is_one_shot(self, dma_setup):
        sim, _, engine = dma_setup
        engine.inject_error()
        engine.start(DmaDescriptor(64))
        sim.run()
        engine.reset()
        engine.start(DmaDescriptor(64))
        sim.run()
        assert engine.state is DmaState.IDLE
