"""Tests for repro.zynq.bus: link timing, calibration, contention."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BusError
from repro.zynq.bus import (
    GP_PORT_LITE,
    HP_PORT,
    ICAP_PORT,
    PL_DDR_PORT,
    PS_CENTRAL_INTERCONNECT,
    BusLink,
    LinkSpec,
    Path,
)
from repro.zynq.events import Simulator


class TestCalibration:
    """Effective bandwidths must match Section IV-A of the paper."""

    def test_pcap_path(self):
        assert PS_CENTRAL_INTERCONNECT.effective_bandwidth() / 1e6 == pytest.approx(145.0, abs=2.0)

    def test_hwicap_path(self):
        assert GP_PORT_LITE.effective_bandwidth() / 1e6 == pytest.approx(19.0, abs=0.5)

    def test_zycap_path(self):
        assert HP_PORT.effective_bandwidth() / 1e6 == pytest.approx(382.0, abs=2.0)

    def test_paper_path(self):
        assert PL_DDR_PORT.effective_bandwidth() / 1e6 == pytest.approx(390.0, abs=2.0)

    def test_icap_ceiling_400(self):
        assert ICAP_PORT.peak_bandwidth / 1e6 == pytest.approx(400.0)

    def test_ranking(self):
        assert (
            PL_DDR_PORT.effective_bandwidth()
            > HP_PORT.effective_bandwidth()
            > PS_CENTRAL_INTERCONNECT.effective_bandwidth()
            > GP_PORT_LITE.effective_bandwidth()
        )


class TestLinkSpec:
    def test_transfer_time_zero_bytes(self):
        assert ICAP_PORT.transfer_time(0) == 0.0

    def test_transfer_time_linear_in_bytes(self):
        t1 = HP_PORT.transfer_time(1_000_000)
        t2 = HP_PORT.transfer_time(2_000_000)
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_overhead_hurts_short_bursts(self):
        long_burst = HP_PORT.transfer_time(1_000_000, burst_beats=256)
        short_burst = HP_PORT.transfer_time(1_000_000, burst_beats=4)
        assert short_burst > long_burst

    def test_rejects_negative_bytes(self):
        with pytest.raises(BusError):
            HP_PORT.transfer_time(-1)

    def test_rejects_invalid_spec(self):
        with pytest.raises(BusError):
            LinkSpec("bad", clock_hz=0.0)

    @settings(max_examples=30)
    @given(st.integers(min_value=4, max_value=10**7))
    def test_effective_bandwidth_below_peak(self, n_bytes):
        t = HP_PORT.transfer_time(n_bytes)
        assert n_bytes / t <= HP_PORT.peak_bandwidth + 1e-6


class TestBusLink:
    def test_single_transfer_completes(self, simulator):
        link = BusLink(simulator, HP_PORT)
        done = []
        link.request(4000, on_done=lambda: done.append(simulator.now))
        simulator.run()
        assert len(done) == 1
        assert done[0] == pytest.approx(HP_PORT.transfer_time(4000))

    def test_fifo_serialisation(self, simulator):
        link = BusLink(simulator, HP_PORT)
        done = []
        link.request(4000, on_done=lambda: done.append(("a", simulator.now)))
        link.request(4000, on_done=lambda: done.append(("b", simulator.now)))
        simulator.run()
        assert done[0][0] == "a"
        assert done[1][1] == pytest.approx(2 * done[0][1])

    def test_contention_delays_second_master(self, simulator):
        # A long transfer queued first delays a short one — the HP-port
        # contention story behind the paper's PR-controller placement.
        link = BusLink(simulator, HP_PORT)
        times = {}
        link.request(8_000_000, on_done=lambda: times.setdefault("bitstream", simulator.now))
        link.request(4_000, on_done=lambda: times.setdefault("frame", simulator.now))
        simulator.run()
        assert times["frame"] > times["bitstream"]

    def test_statistics(self, simulator):
        link = BusLink(simulator, HP_PORT)
        link.request(1024, on_done=lambda: None)
        link.request(2048, on_done=lambda: None)
        simulator.run()
        assert link.bytes_moved == 3072
        assert link.jobs_completed == 2
        assert link.busy_time > 0


class TestPath:
    def test_bottleneck_selection(self):
        path = Path("pcap", [PS_CENTRAL_INTERCONNECT, ICAP_PORT])
        assert path.bottleneck().name == "ps-central-interconnect"

    def test_transfer_time_dominated_by_bottleneck(self):
        path = Path("pcap", [PS_CENTRAL_INTERCONNECT, ICAP_PORT])
        t_path = path.transfer_time(8_000_000)
        t_slow = PS_CENTRAL_INTERCONNECT.transfer_time(8_000_000)
        assert t_path == pytest.approx(t_slow, rel=0.01)

    def test_empty_path_rejected(self):
        with pytest.raises(BusError):
            Path("x", [])
