"""Tests for repro.zynq.pr: the four PR controllers."""

from __future__ import annotations

import pytest

from repro.errors import ReconfigurationError
from repro.zynq.bitstream import BitstreamRepository, PartialBitstream, paper_bitstreams
from repro.zynq.events import Simulator, Trace
from repro.zynq.interrupts import InterruptController
from repro.zynq.pr import (
    ALL_CONTROLLERS,
    THEORETICAL_MAX_MB_S,
    HwIcapController,
    PaperPrController,
    PcapController,
    PrState,
    ZycapController,
)

PAPER_NUMBERS = {
    "pcap": 145.0,
    "hwicap": 19.0,
    "zycap": 382.0,
    "paper-pr": 390.0,
}


def _controller(cls, repo=None):
    sim = Simulator()
    irq = InterruptController(sim)
    return sim, cls(sim, irq, repo or paper_bitstreams(), Trace())


class TestThroughput:
    @pytest.mark.parametrize("cls", ALL_CONTROLLERS)
    def test_matches_paper_within_5pct(self, cls):
        sim, ctrl = _controller(cls)
        report = ctrl.reconfigure("dark")
        sim.run()
        expected = PAPER_NUMBERS[cls.name]
        assert report.throughput_mb_s == pytest.approx(expected, rel=0.05)

    def test_paper_controller_fastest(self):
        speeds = {}
        for cls in ALL_CONTROLLERS:
            sim, ctrl = _controller(cls)
            ctrl.reconfigure("dark")
            sim.run()
            speeds[cls.name] = ctrl.reports[-1].throughput_mb_s
        assert speeds["paper-pr"] == max(speeds.values())
        assert speeds["paper-pr"] / speeds["pcap"] >= 2.6

    def test_all_below_theoretical_max(self):
        for cls in ALL_CONTROLLERS:
            sim, ctrl = _controller(cls)
            ctrl.reconfigure("dark")
            sim.run()
            assert ctrl.reports[-1].throughput_mb_s <= THEORETICAL_MAX_MB_S

    def test_paper_reconfig_time_about_20ms(self):
        sim, ctrl = _controller(PaperPrController)
        report = ctrl.reconfigure("dark")
        sim.run()
        assert report.duration_s * 1e3 == pytest.approx(20.5, abs=0.5)


class TestSemantics:
    def test_completion_interrupt_and_state(self):
        sim, ctrl = _controller(PaperPrController)
        assert ctrl.state is PrState.IDLE
        ctrl.reconfigure("day_dusk")
        assert ctrl.state is PrState.RECONFIGURING
        sim.run()
        assert ctrl.state is PrState.IDLE
        assert ctrl.active_configuration == "day_dusk"
        assert ctrl.interrupts.count(ctrl.irq_line) == 1

    def test_reconfigure_during_reconfigure_rejected(self):
        sim, ctrl = _controller(PaperPrController)
        ctrl.reconfigure("dark")
        with pytest.raises(ReconfigurationError):
            ctrl.reconfigure("day_dusk")

    def test_missing_bitstream_rejected(self):
        sim, ctrl = _controller(PaperPrController)
        with pytest.raises(Exception):
            ctrl.reconfigure("nonexistent")

    def test_corrupt_bitstream_rejected_before_icap(self):
        repo = BitstreamRepository()
        bs = PartialBitstream(name="dark")
        bs.corrupt()
        repo.add(bs)
        sim, ctrl = _controller(PaperPrController, repo)
        with pytest.raises(ReconfigurationError, match="integrity"):
            ctrl.reconfigure("dark")
        assert ctrl.state is PrState.IDLE
        assert ctrl.reports[-1].ok is False

    def test_on_done_receives_report(self):
        sim, ctrl = _controller(ZycapController)
        received = []
        ctrl.reconfigure("dark", on_done=received.append)
        sim.run()
        assert len(received) == 1
        assert received[0].ok

    def test_only_zycap_occupies_hp_port(self):
        occupancy = {}
        for cls in ALL_CONTROLLERS:
            _, ctrl = _controller(cls)
            occupancy[cls.name] = ctrl.occupies_hp_port()
        assert occupancy == {
            "pcap": False,
            "hwicap": False,
            "zycap": True,
            "paper-pr": False,
        }

    def test_back_to_back_reconfigurations(self):
        sim, ctrl = _controller(PaperPrController)
        ctrl.reconfigure("dark", on_done=lambda r: ctrl.reconfigure("day_dusk"))
        sim.run()
        assert len(ctrl.reports) == 2
        assert ctrl.active_configuration == "day_dusk"
