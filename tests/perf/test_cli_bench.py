"""``python -m repro bench``: exit codes, snapshots, the regression gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.perf.baseline import load_snapshot, write_snapshot
from repro.perf.cli import main as bench_main

pytestmark = pytest.mark.perf

FILTER = "integral"  # one cheap benchmark keeps every CLI run fast


@pytest.fixture
def baseline(tmp_path):
    """A real smoke-run snapshot of the filtered suite."""
    path = tmp_path / "BENCH_base.json"
    assert bench_main(
        ["--smoke", "--filter", FILTER, "--label", "base", "--out", str(path)]
    ) == 0
    return path


class TestBenchRuns:
    def test_list_prints_catalog(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "integral_image_ms" in out
        assert "run_drive_macro_ms" in out
        assert "[drive/macro]" in out

    def test_smoke_run_reports_stats_without_snapshot(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert bench_main(["--smoke", "--filter", FILTER]) == 0
        out = capsys.readouterr().out
        assert "integral_image_ms" in out
        assert "median ms" in out
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_out_writes_loadable_snapshot(self, baseline):
        doc = load_snapshot(str(baseline))
        assert doc["label"] == "base"
        assert "integral_image_ms" in doc["benchmarks"]
        entry = doc["benchmarks"]["integral_image_ms"]
        assert entry["stats"]["n"] >= 1
        assert entry["notes"]["workload_digest"]

    def test_no_matching_benchmarks_is_usage_error(self, capsys):
        assert bench_main(["--smoke", "--filter", "zzz-no-such-bench"]) == 2
        assert "no benchmarks match" in capsys.readouterr().err

    def test_negative_threshold_is_usage_error(self, capsys):
        assert bench_main(["--smoke", "--threshold", "-1"]) == 2
        assert "--threshold" in capsys.readouterr().err

    def test_repro_cli_delegates_bench(self, capsys):
        assert repro_main(["bench", "--list"]) == 0
        assert "integral_image_ms" in capsys.readouterr().out


class TestRegressionGate:
    # Smoke runs take only 3 repeats of a ~0.1 ms kernel, so run-to-run
    # scheduler jitter can exceed the default 10% gate; self-compare tests
    # use a 200% threshold to assert the wiring, not the machine's mood.
    LOOSE = ("--threshold", "2.0")

    def test_self_compare_passes(self, baseline, capsys):
        code = bench_main(
            ["--smoke", "--filter", FILTER, "--compare", str(baseline), *self.LOOSE]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vs baseline 'base'" in out
        assert "FAILED" not in out

    def test_doctored_faster_baseline_fails_gate(self, baseline, tmp_path, capsys):
        # Pretend the baseline machine was 100x faster: every current
        # measurement becomes a significant slowdown.
        doc = load_snapshot(str(baseline))
        for entry in doc["benchmarks"].values():
            entry["stats"]["median"] /= 100.0
            entry["stats"]["mad"] /= 100.0
            entry["stats"]["min"] /= 100.0
            entry["stats"]["max"] /= 100.0
            entry["stats"]["mean"] /= 100.0
        doctored = tmp_path / "BENCH_doctored.json"
        write_snapshot(str(doctored), doc)
        code = bench_main(["--smoke", "--filter", FILTER, "--compare", str(doctored)])
        assert code == 1
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "FAILED (significant slowdowns found)" in out

    def test_doctored_slower_baseline_improves(self, baseline, tmp_path, capsys):
        doc = load_snapshot(str(baseline))
        for entry in doc["benchmarks"].values():
            entry["stats"]["median"] *= 100.0
        doctored = tmp_path / "BENCH_slower.json"
        write_snapshot(str(doctored), doc)
        code = bench_main(["--smoke", "--filter", FILTER, "--compare", str(doctored)])
        assert code == 0
        assert "improved" in capsys.readouterr().out

    def test_missing_benchmark_noted_but_passing(self, baseline, capsys):
        code = bench_main(
            ["--smoke", "--filter", "morphology", "--compare", str(baseline),
             *self.LOOSE]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "integral_image_ms: missing" in out
        assert "morphology_closing_ms: new" in out

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        code = bench_main(
            ["--smoke", "--filter", FILTER, "--compare", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_json_report_format(self, baseline, capsys):
        code = bench_main(
            ["--smoke", "--filter", FILTER, "--compare", str(baseline),
             "--format", "json", *self.LOOSE]
        )
        assert code == 0
        out = capsys.readouterr().out
        start = out.index('{\n')
        doc = json.loads(out[start:])
        assert doc["tool"] == "repro-bench-compare"
        assert doc["has_regressions"] is False
