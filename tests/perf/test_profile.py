"""Span-profiler rollups over hand-built and recorded traces."""

from __future__ import annotations

import pytest

from repro.perf.profile import profile_spans, profile_tracer
from repro.telemetry.spans import Span, Tracer

pytestmark = pytest.mark.perf


def _span(name, span_id, parent_id, wall_start, wall_end, sim_start=0.0, sim_end=0.0):
    return Span(
        name=name,
        span_id=span_id,
        parent_id=parent_id,
        start_s=sim_start,
        end_s=sim_end,
        wall_start_s=wall_start,
        wall_end_s=wall_end,
    )


def _tree():
    """drive(100 ms) -> frame(30 ms), frame(40 ms) -> hog(10 ms)."""
    return [
        _span("drive", 0, None, 0.000, 0.100, sim_start=0.0, sim_end=1.0),
        _span("frame", 1, 0, 0.000, 0.030),
        _span("frame", 2, 0, 0.030, 0.070),
        _span("hog", 3, 2, 0.040, 0.050),
    ]


class TestRollups:
    def test_self_vs_child_attribution(self):
        profile = profile_spans(_tree())
        drive = profile.rollups["drive"]
        frame = profile.rollups["frame"]
        hog = profile.rollups["hog"]
        # drive: 100 ms total, 70 ms inside the two frames.
        assert drive.count == 1
        assert drive.total_wall_ms == pytest.approx(100.0)
        assert drive.self_wall_ms == pytest.approx(30.0)
        # frames: 30 + 40 total; the second loses 10 ms to hog.
        assert frame.count == 2
        assert frame.total_wall_ms == pytest.approx(70.0)
        assert frame.self_wall_ms == pytest.approx(60.0)
        # leaf: self == total.
        assert hog.self_wall_ms == pytest.approx(hog.total_wall_ms) == pytest.approx(10.0)

    def test_sim_clock_rolled_up_independently(self):
        profile = profile_spans(_tree())
        drive = profile.rollups["drive"]
        assert drive.total_sim_ms == pytest.approx(1000.0)
        # Child spans carry zero sim time here, so self == total.
        assert drive.self_sim_ms == pytest.approx(1000.0)

    def test_counts_and_max(self):
        profile = profile_spans(_tree())
        assert profile.n_spans == 4
        assert profile.n_roots == 1
        assert profile.rollups["frame"].max_wall_ms == pytest.approx(40.0)

    def test_hot_spans_ranked_by_self_time(self):
        profile = profile_spans(_tree())
        assert [r.name for r in profile.hot_spans(3)] == ["frame", "drive", "hog"]
        assert [r.name for r in profile.hot_spans(1)] == ["frame"]

    def test_unfinished_spans_skipped(self):
        spans = _tree() + [Span(name="open", span_id=9, parent_id=0, wall_start_s=0.09)]
        profile = profile_spans(spans)
        assert "open" not in profile.rollups
        assert profile.n_spans == 4

    def test_self_time_clamped_when_children_overlap(self):
        # Children report more wall time than the parent (possible with
        # callback-driven spans); self time must clamp at zero, not go
        # negative.
        spans = [
            _span("parent", 0, None, 0.0, 0.010),
            _span("kid", 1, 0, 0.0, 0.008),
            _span("kid", 2, 0, 0.0, 0.008),
        ]
        profile = profile_spans(spans)
        assert profile.rollups["parent"].self_wall_ms == 0.0


class TestDroppedSpans:
    def test_missing_parent_promotes_to_root(self):
        orphan = _span("frame", 5, 99, 0.0, 0.020)
        profile = profile_spans([orphan], spans_dropped=3)
        assert profile.n_roots == 1
        assert profile.spans_dropped == 3
        # Time still fully attributed to its own name.
        assert profile.rollups["frame"].self_wall_ms == pytest.approx(20.0)

    def test_ring_buffered_tracer_profiles_cleanly(self):
        tracer = Tracer(wall_clock=iter(float(i) for i in range(1000)).__next__, max_spans=4)
        with tracer.span("drive"):
            for _ in range(10):
                with tracer.span("frame"):
                    pass
        profile = profile_tracer(tracer)
        # 11 finished spans, ring keeps 4; the drops are surfaced.
        assert profile.spans_dropped == 7
        assert profile.n_spans == 4
        # The root survived (it finished last), so surviving frames still
        # attach to it.
        assert profile.n_roots == 1
        assert profile.rollups["frame"].count == 3

    def test_ring_buffer_evicting_the_parent_promotes_children(self):
        tracer = Tracer(wall_clock=iter(float(i) for i in range(1000)).__next__, max_spans=2)
        root = tracer.begin("drive")
        tracer.end(root)  # finished first; first to be evicted
        for _ in range(4):
            tracer.end(tracer.begin("frame", parent=root))
        profile = profile_tracer(tracer)
        assert profile.spans_dropped == 3
        assert "drive" not in profile.rollups
        # Survivors reference an evicted parent -> treated as roots.
        assert profile.n_roots == 2
        assert profile.rollups["frame"].count == 2


class TestExports:
    def test_collapsed_stacks_weights_and_paths(self):
        lines = profile_spans(_tree()).collapsed_stacks().splitlines()
        # Weights are self-time wall microseconds per unique path.
        assert "drive 30000" in lines
        assert "drive;frame 60000" in lines
        assert "drive;frame;hog 10000" in lines
        assert len(lines) == 3

    def test_collapsed_stacks_zero_weight_kept(self):
        profile = profile_spans([_span("instant", 0, None, 0.5, 0.5)])
        assert profile.collapsed_stacks() == "instant 1"

    def test_frame_percentiles(self):
        table = profile_spans(_tree()).frame_percentiles(name="frame", qs=(50.0,))
        assert table == {"p50": pytest.approx(35.0)}
        assert profile_spans(_tree()).frame_percentiles(name="absent") == {}

    def test_render_top_lists_hot_spans(self):
        text = profile_spans(_tree()).render_top(2)
        assert "hot spans" in text
        assert "frame" in text and "drive" in text
        assert "hog" not in text.split("\n", 2)[2]  # cut off by top-2

    def test_to_dict_shape(self):
        doc = profile_spans(_tree(), spans_dropped=1).to_dict()
        assert doc["n_spans"] == 4
        assert doc["spans_dropped"] == 1
        assert [r["name"] for r in doc["rollups"]] == ["frame", "drive", "hog"]
