"""Robust-statistics helpers: percentiles, MAD, outliers, significance."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.perf.stats import (
    SampleStats,
    mad,
    median,
    percentile,
    reject_outliers,
    relative_change,
    robust_cv,
    significant_slowdown,
    summarize,
)

pytestmark = pytest.mark.perf


class TestPercentile:
    def test_linear_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == pytest.approx(2.5)
        assert percentile(samples, 25) == pytest.approx(1.75)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)


class TestRobustStats:
    def test_median_and_mad(self):
        samples = [1.0, 2.0, 3.0, 4.0, 100.0]
        assert median(samples) == 3.0
        assert mad(samples) == 1.0  # deviations 2,1,0,1,97 -> median 1

    def test_cv_zero_for_constant(self):
        assert robust_cv([5.0, 5.0, 5.0]) == 0.0

    def test_outlier_rejection_drops_spike(self):
        samples = [1.0, 1.01, 0.99, 1.02, 0.98, 50.0]
        kept, rejected = reject_outliers(samples)
        assert rejected == 1
        assert 50.0 not in kept

    def test_outlier_rejection_keeps_tight_sample(self):
        samples = [1.0, 1.01, 0.99]
        kept, rejected = reject_outliers(samples)
        assert kept == samples
        assert rejected == 0

    def test_summarize_reports_rejections(self):
        stats = summarize([1.0, 1.0, 1.01, 0.99, 1.02, 60.0])
        assert stats.rejected == 1
        assert stats.n == 5
        assert stats.median == pytest.approx(1.0)

    def test_round_trip(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert SampleStats.from_dict(stats.to_dict()) == stats


def _stats(median_value: float, mad_value: float) -> SampleStats:
    return SampleStats(
        n=10,
        median=median_value,
        mad=mad_value,
        cv=0.0,
        mean=median_value,
        min=median_value,
        max=median_value,
    )


class TestSignificance:
    def test_large_clean_slowdown_is_significant(self):
        assert significant_slowdown(_stats(10.0, 0.1), _stats(13.0, 0.1), 0.10)

    def test_below_threshold_not_significant(self):
        assert not significant_slowdown(_stats(10.0, 0.1), _stats(10.5, 0.1), 0.10)

    def test_noisy_gap_not_significant(self):
        # 30% slower but the MADs swamp the gap: not a confident verdict.
        assert not significant_slowdown(_stats(10.0, 2.0), _stats(13.0, 2.0), 0.10)

    def test_speedup_never_significant_slowdown(self):
        assert not significant_slowdown(_stats(10.0, 0.1), _stats(7.0, 0.1), 0.10)

    def test_relative_change_sign(self):
        assert relative_change(_stats(10.0, 0.0), _stats(12.0, 0.0)) == pytest.approx(0.2)
        assert relative_change(_stats(10.0, 0.0), _stats(8.0, 0.0)) == pytest.approx(-0.2)
