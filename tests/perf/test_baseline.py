"""BENCH_*.json snapshots: schema round trip and the compare gate."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.perf.baseline import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    build_snapshot,
    compare,
    load_snapshot,
    results_from_snapshot,
    write_snapshot,
)
from repro.perf.runner import BenchResult, RunnerConfig
from repro.perf.stats import SampleStats

pytestmark = pytest.mark.perf


def _result(name, median_ms, mad_ms=0.01, group="test", kind="micro"):
    return BenchResult(
        name=name,
        group=group,
        kind=kind,
        stats=SampleStats(
            n=5,
            median=median_ms,
            mad=mad_ms,
            cv=mad_ms / median_ms,
            mean=median_ms,
            min=median_ms - mad_ms,
            max=median_ms + mad_ms,
        ),
        samples_ms=[median_ms] * 5,
        notes={"workload_digest": "deadbeef"},
    )


class TestSnapshotRoundTrip:
    def test_write_then_load_preserves_results(self, tmp_path):
        path = tmp_path / "BENCH_base.json"
        results = [_result("a_ms", 1.0), _result("b_ms", 2.0)]
        doc = build_snapshot(
            results,
            label="base",
            runner=RunnerConfig(seed=3),
            span_rollups={"n_spans": 7},
        )
        write_snapshot(str(path), doc)
        loaded = load_snapshot(str(path))
        assert loaded["schema"] == SCHEMA_NAME
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["label"] == "base"
        assert loaded["runner"]["seed"] == 3
        assert loaded["span_rollups"] == {"n_spans": 7}
        assert set(loaded["machine"]) >= {"platform", "python", "numpy", "cpus"}
        rehydrated = results_from_snapshot(loaded)
        assert rehydrated == {"a_ms": results[0], "b_ms": results[1]}

    def test_written_file_is_stable_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_snapshot(str(path), build_snapshot([_result("a_ms", 1.0)], label="x"))
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["benchmarks"]["a_ms"]["stats"]["median"] == 1.0


class TestSnapshotValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_snapshot(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_snapshot(str(path))

    def test_wrong_schema_name(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ConfigurationError, match="not a repro-bench"):
            load_snapshot(str(path))

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps({"schema": SCHEMA_NAME, "schema_version": 99, "benchmarks": {}})
        )
        with pytest.raises(ConfigurationError, match="schema_version"):
            load_snapshot(str(path))

    def test_missing_benchmarks_table(self, tmp_path):
        path = tmp_path / "hollow.json"
        path.write_text(
            json.dumps({"schema": SCHEMA_NAME, "schema_version": SCHEMA_VERSION})
        )
        with pytest.raises(ConfigurationError, match="benchmarks table"):
            load_snapshot(str(path))


class TestCompare:
    def _baseline(self, *results):
        return build_snapshot(list(results), label="base")

    def test_identical_runs_unchanged(self):
        results = [_result("a_ms", 1.0), _result("b_ms", 2.0)]
        report = compare(self._baseline(*results), results)
        assert not report.has_regressions
        assert {e.status for e in report.entries} == {"unchanged"}

    def test_significant_slowdown_regresses(self):
        report = compare(
            self._baseline(_result("a_ms", 1.0)), [_result("a_ms", 1.5)]
        )
        assert report.has_regressions
        entry = report.entries[0]
        assert entry.status == "regressed"
        assert entry.rel_change == pytest.approx(0.5)

    def test_slowdown_within_noise_floor_passes(self):
        # 50% slower on paper, but the MADs are as large as the gap.
        report = compare(
            self._baseline(_result("a_ms", 1.0, mad_ms=0.4)),
            [_result("a_ms", 1.5, mad_ms=0.4)],
        )
        assert [e.status for e in report.entries] == ["unchanged"]

    def test_speedup_marked_improved_not_failing(self):
        report = compare(
            self._baseline(_result("a_ms", 2.0)), [_result("a_ms", 1.0)]
        )
        assert [e.status for e in report.entries] == ["improved"]
        assert not report.has_regressions

    def test_new_and_missing_benchmarks(self):
        report = compare(
            self._baseline(_result("gone_ms", 1.0)), [_result("fresh_ms", 1.0)]
        )
        statuses = {e.name: e.status for e in report.entries}
        assert statuses == {"gone_ms": "missing", "fresh_ms": "new"}
        assert not report.has_regressions

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError, match="threshold"):
            compare(self._baseline(), [], threshold_rel=-0.1)

    def test_text_report_reads_like_lint_output(self):
        report = compare(
            self._baseline(_result("slow_ms", 1.0), _result("same_ms", 1.0)),
            [_result("slow_ms", 2.0), _result("same_ms", 1.0)],
            current_label="pr",
        )
        text = report.render_text()
        assert "'pr' vs baseline 'base'" in text
        assert "slow_ms: regressed (1.000 -> 2.000 ms, +100.0%)" in text
        assert "same_ms" not in text  # unchanged entries stay quiet
        assert "1 regressed" in text
        assert text.splitlines()[-1].endswith("FAILED (significant slowdowns found)")

    def test_json_report_shape(self):
        report = compare(
            self._baseline(_result("a_ms", 1.0)), [_result("a_ms", 1.0)]
        )
        doc = json.loads(report.render_json())
        assert doc["tool"] == "repro-bench-compare"
        assert doc["has_regressions"] is False
        assert doc["counts"]["unchanged"] == 1
        assert doc["entries"][0]["name"] == "a_ms"
