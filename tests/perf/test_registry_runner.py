"""The @bench registry contract and the statistical runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf.registry import (
    BenchContext,
    BenchSpec,
    _REGISTRY,
    all_benches,
    bench,
    get_bench,
    make_context,
)
from repro.perf.runner import (
    SMOKE_CONFIG,
    RunnerConfig,
    run_bench,
    smoke_config,
)

pytestmark = pytest.mark.perf


def _spec(setup, name="fake_ms", kind="micro"):
    return BenchSpec(name=name, group="test", kind=kind, setup=setup)


def _ticking_clock(step_s=0.001):
    """Deterministic injectable wall clock: +step per call."""
    state = {"now": 0.0}

    def clock():
        state["now"] += step_s
        return state["now"]

    return clock


class TestRegistry:
    def test_name_without_unit_suffix_rejected(self):
        with pytest.raises(ConfigurationError, match="unit suffix"):
            bench("hog_descriptor", group="features")

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            bench("x_ms", group="g", kind="mega")

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError, match="group"):
            bench("x_ms", group="")

    def test_duplicate_name_rejected(self):
        name = "test_registry_dup_ms"
        try:
            bench(name, group="test")(lambda ctx: (lambda: None))
            with pytest.raises(ConfigurationError, match="duplicate"):
                bench(name, group="test")(lambda ctx: (lambda: None))
        finally:
            _REGISTRY.pop(name, None)

    def test_suites_register_at_least_ten_benches(self):
        benches = all_benches()
        assert len(benches) >= 10
        # Sorted by (group, name) and at least one end-to-end macro.
        keys = [(s.group, s.name) for s in benches]
        assert keys == sorted(keys)
        assert any(s.kind == "macro" for s in benches)

    def test_unknown_bench_lookup_fails(self):
        with pytest.raises(ConfigurationError, match="unknown bench"):
            get_bench("definitely_not_registered_ms")

    def test_digest_chains_and_is_shape_sensitive(self):
        a = np.arange(6, dtype=np.float64)
        ctx1 = BenchContext(name="x_ms", rng=np.random.default_rng(0))
        ctx2 = BenchContext(name="x_ms", rng=np.random.default_rng(0))
        assert ctx1.digest(a) == ctx2.digest(a)
        # Same bytes, different shape -> different fingerprint.
        ctx3 = BenchContext(name="x_ms", rng=np.random.default_rng(0))
        assert ctx3.digest(a.reshape(2, 3)) != ctx1.notes["workload_digest"]
        # Chaining folds subsequent arrays into the same note.
        before = ctx1.notes["workload_digest"]
        assert ctx1.digest(a) != before

    def test_make_context_is_seed_and_name_deterministic(self):
        r1 = make_context("x_ms", seed=7, smoke=False).rng.random(4)
        r2 = make_context("x_ms", seed=7, smoke=False).rng.random(4)
        r3 = make_context("x_ms", seed=8, smoke=False).rng.random(4)
        r4 = make_context("y_ms", seed=7, smoke=False).rng.random(4)
        assert np.array_equal(r1, r2)
        assert not np.array_equal(r1, r3)
        assert not np.array_equal(r1, r4)


class TestRunnerConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunnerConfig(warmup=-1)
        with pytest.raises(ConfigurationError):
            RunnerConfig(min_repeats=0)
        with pytest.raises(ConfigurationError):
            RunnerConfig(min_repeats=10, max_repeats=5)
        with pytest.raises(ConfigurationError):
            RunnerConfig(max_time_s=0.0)

    def test_smoke_config_keeps_seed(self):
        derived = smoke_config(RunnerConfig(seed=42, outlier_k=5.0))
        assert derived.smoke
        assert derived.seed == 42
        assert derived.outlier_k == 5.0
        assert derived.max_repeats == SMOKE_CONFIG.max_repeats
        assert smoke_config(None) is SMOKE_CONFIG


class TestRunner:
    def test_warmup_calls_are_untimed(self):
        calls = {"n": 0}

        def setup(ctx):
            def workload():
                calls["n"] += 1

            return workload

        cfg = RunnerConfig(warmup=3, min_repeats=4, max_repeats=4, max_time_s=10.0)
        result = run_bench(_spec(setup), cfg, wall_clock=_ticking_clock())
        assert calls["n"] == 3 + 4
        assert result.stats.n + result.stats.rejected == 4

    def test_injected_clock_gives_exact_samples(self):
        # Each timed repeat sees exactly two clock reads 1 ms apart.
        cfg = RunnerConfig(warmup=0, min_repeats=5, max_repeats=5, max_time_s=100.0)
        result = run_bench(
            _spec(lambda ctx: (lambda: None)), cfg, wall_clock=_ticking_clock(0.001)
        )
        assert result.samples_ms == pytest.approx([1.0] * 5)
        assert result.stats.median == pytest.approx(1.0)
        assert result.stats.mad == pytest.approx(0.0)

    def test_budget_stops_after_min_repeats(self):
        # A huge per-call cost blows the budget on the first sample, but the
        # runner still takes min_repeats before stopping.
        cfg = RunnerConfig(warmup=0, min_repeats=3, max_repeats=30, max_time_s=0.5)
        result = run_bench(
            _spec(lambda ctx: (lambda: None)), cfg, wall_clock=_ticking_clock(1.0)
        )
        assert len(result.samples_ms) == 3

    def test_non_callable_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="zero-arg workload"):
            run_bench(_spec(lambda ctx: 42), RunnerConfig(), wall_clock=_ticking_clock())

    def test_setup_notes_land_in_result(self):
        def setup(ctx):
            ctx.digest(ctx.rng.random(8))
            ctx.note("size", 8)
            return lambda: None

        result = run_bench(_spec(setup), SMOKE_CONFIG, wall_clock=_ticking_clock())
        assert result.notes["size"] == 8
        assert len(result.notes["workload_digest"]) == 8

    def test_result_round_trip(self):
        result = run_bench(
            _spec(lambda ctx: (lambda: None)), SMOKE_CONFIG, wall_clock=_ticking_clock()
        )
        clone = type(result).from_dict(result.to_dict())
        assert clone == result


class TestSuiteDeterminism:
    """Two back-to-back suite runs must build byte-identical workloads."""

    # Training a DBN / running a drive per bench twice is too slow for
    # tier 1; the cheap suites cover the derive_seed -> digest contract and
    # the macro drive is separately pinned by its trace-digest note.
    CHEAP = ("resize_bilinear_ms", "integral_image_ms", "hog_gradient_field_ms")

    @pytest.mark.parametrize("name", CHEAP)
    def test_same_seed_same_workload_digest(self, name):
        spec = get_bench(name)
        digests = []
        for _ in range(2):
            ctx = make_context(spec.name, seed=0, smoke=True)
            spec.setup(ctx)
            digests.append(ctx.notes["workload_digest"])
        assert digests[0] == digests[1]

    def test_different_seed_different_workload(self):
        spec = get_bench("resize_bilinear_ms")
        ctx_a = make_context(spec.name, seed=0, smoke=True)
        ctx_b = make_context(spec.name, seed=1, smoke=True)
        spec.setup(ctx_a)
        spec.setup(ctx_b)
        assert ctx_a.notes["workload_digest"] != ctx_b.notes["workload_digest"]
