"""Acceptance: post-hoc profiling cannot change what the drive reports."""

from __future__ import annotations

import pytest

from repro.adaptive.sensor import sunset_trace
from repro.core.system import AdaptiveDetectionSystem
from repro.perf import profile_tracer
from repro.telemetry import Telemetry

pytestmark = pytest.mark.perf

DURATION_S = 10.0


def _drive(telemetry=None):
    system = AdaptiveDetectionSystem(telemetry=telemetry)
    return system.run_drive(sunset_trace(duration_s=DURATION_S))


class TestProfilerNonPerturbation:
    def test_profiled_drive_summary_identical_to_unprofiled(self):
        baseline = _drive().summary()
        telemetry = Telemetry.recording()
        report = _drive(telemetry=telemetry)
        # Analyse the recording every way the profiler offers...
        profile = profile_tracer(telemetry.tracer)
        profile.hot_spans(10)
        profile.frame_percentiles()
        profile.collapsed_stacks()
        profile.render_top(5)
        profile.to_dict()
        # ... and the drive's report is still byte-identical.
        assert report.summary() == baseline
        assert repr(report.summary()) == repr(baseline)

    def test_profiler_reads_do_not_mutate_the_trace(self):
        telemetry = Telemetry.recording()
        _drive(telemetry=telemetry)
        spans_before = [s.to_dict() for s in telemetry.tracer.spans]
        profile = profile_tracer(telemetry.tracer)
        profile.collapsed_stacks()
        profile.render_top(10)
        assert [s.to_dict() for s in telemetry.tracer.spans] == spans_before
        # The profile actually saw the drive: frames rolled up with time.
        assert profile.rollups["drive.frame"].count > 0
        assert profile.n_spans == len(spans_before)
