"""Tests for repro.imaging.components: labelling and blob statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.components import blob_statistics, find_blobs, label_components


class TestLabeling:
    def test_empty_mask(self):
        labels, count = label_components(np.zeros((4, 4), dtype=bool))
        assert count == 0
        assert not labels.any()

    def test_single_region(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[1:3, 1:3] = True
        labels, count = label_components(mask)
        assert count == 1
        assert (labels > 0).sum() == 4

    def test_two_disjoint_regions(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0:2, 0:2] = True
        mask[4:6, 4:6] = True
        _, count = label_components(mask)
        assert count == 2

    def test_diagonal_joins_with_8_connectivity(self):
        mask = np.array([[1, 0], [0, 1]], dtype=bool)
        _, count8 = label_components(mask, connectivity=8)
        _, count4 = label_components(mask, connectivity=4)
        assert count8 == 1
        assert count4 == 2

    def test_rejects_bad_connectivity(self):
        with pytest.raises(ValueError):
            label_components(np.zeros((2, 2), dtype=bool), connectivity=6)

    def test_labels_are_contiguous(self):
        rng = np.random.default_rng(3)
        mask = rng.random((12, 12)) < 0.3
        labels, count = label_components(mask)
        present = set(np.unique(labels).tolist()) - {0}
        assert present == set(range(1, count + 1))

    def test_u_shape_single_region(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0:4, 0] = True
        mask[3, 0:4] = True
        mask[0:4, 3] = True
        _, count = label_components(mask)
        assert count == 1


class TestBlobStats:
    def test_bbox_and_centroid(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2:4, 3:6] = True
        blobs = find_blobs(mask)
        assert len(blobs) == 1
        b = blobs[0]
        assert b.area == 6
        assert (b.bbox.x, b.bbox.y, b.bbox.w, b.bbox.h) == (3, 2, 3, 2)
        assert b.centroid == (4.0, 2.5)

    def test_extent_full_block(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[1:4, 1:4] = True
        b = find_blobs(mask)[0]
        assert b.extent == pytest.approx(1.0)

    def test_min_area_filter(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0, 0] = True
        mask[3:5, 3:5] = True
        blobs = find_blobs(mask, min_area=2)
        assert len(blobs) == 1
        assert blobs[0].area == 4

    def test_blob_statistics_empty(self):
        labels = np.zeros((3, 3), dtype=np.int64)
        assert blob_statistics(labels, 0) == []

    def test_aspect(self):
        mask = np.zeros((6, 10), dtype=bool)
        mask[2, 1:9] = True
        b = find_blobs(mask)[0]
        assert b.aspect == pytest.approx(8.0)
