"""Tests for repro.imaging.geometry: Rect, IoU, NMS, matching."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.imaging.geometry import (
    Rect,
    iou_matrix,
    match_detections,
    merge_overlapping,
    non_max_suppression,
)


def rects(min_size: float = 0.5, max_coord: float = 100.0):
    """Hypothesis strategy for valid Rects."""
    coord = st.floats(min_value=-max_coord, max_value=max_coord, allow_nan=False)
    size = st.floats(min_value=min_size, max_value=max_coord, allow_nan=False)
    return st.builds(Rect, x=coord, y=coord, w=size, h=size)


class TestRectBasics:
    def test_rejects_non_positive_size(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 0, 5)
        with pytest.raises(GeometryError):
            Rect(0, 0, 5, -1)

    def test_edges_area_center(self):
        r = Rect(2, 3, 4, 6)
        assert r.x2 == 6 and r.y2 == 9
        assert r.area == 24
        assert r.center == (4.0, 6.0)
        assert r.aspect == pytest.approx(4 / 6)

    def test_translated_and_scaled(self):
        r = Rect(1, 2, 3, 4).translated(10, 20)
        assert (r.x, r.y) == (11, 22)
        s = Rect(1, 2, 3, 4).scaled(2.0)
        assert (s.x, s.y, s.w, s.h) == (2, 4, 6, 8)
        with pytest.raises(GeometryError):
            Rect(1, 2, 3, 4).scaled(0.0)

    def test_expanded_rejects_collapse(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 2, 2).expanded(-1.5)

    def test_clipped_inside_and_outside(self):
        r = Rect(-5, -5, 10, 10).clipped(20, 20)
        assert r == Rect(0, 0, 5, 5)
        assert Rect(30, 30, 5, 5).clipped(20, 20) is None

    def test_contains_point_half_open(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(0, 0)
        assert not r.contains_point(10, 5)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(1, 1, 5, 5))
        assert not outer.contains(Rect(5, 5, 10, 10))

    def test_as_int_rounds_and_keeps_positive(self):
        assert Rect(0.4, 0.6, 0.2, 0.2).as_int() == (0, 1, 1, 1)


class TestIntersectionUnion:
    def test_intersection_overlap(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 10, 10)
        inter = a.intersection(b)
        assert inter == Rect(5, 5, 5, 5)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 2, 2).intersection(Rect(10, 10, 2, 2)) is None

    def test_union_bounds_covers_both(self):
        u = Rect(0, 0, 2, 2).union_bounds(Rect(10, 10, 2, 2))
        assert u.contains(Rect(0, 0, 2, 2)) and u.contains(Rect(10, 10, 2, 2))

    def test_iou_identical_is_one(self):
        r = Rect(3, 4, 5, 6)
        assert r.iou(r) == pytest.approx(1.0)

    def test_iou_known_value(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 0, 10, 10)
        assert a.iou(b) == pytest.approx(50.0 / 150.0)

    def test_center_distance(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(3, 4, 2, 2)
        assert a.center_distance(b) == pytest.approx(5.0)


class TestIouProperties:
    @given(rects(), rects())
    def test_iou_symmetric(self, a, b):
        assert a.iou(b) == pytest.approx(b.iou(a))

    @given(rects(), rects())
    def test_iou_bounded(self, a, b):
        v = a.iou(b)
        assert 0.0 <= v <= 1.0 + 1e-12

    @given(rects())
    def test_iou_self_is_one(self, r):
        assert r.iou(r) == pytest.approx(1.0)

    @given(rects(), st.floats(min_value=0.1, max_value=10.0))
    def test_iou_scale_invariant(self, r, f):
        other = r.translated(r.w / 3.0, 0.0)
        assert r.iou(other) == pytest.approx(r.scaled(f).iou(other.scaled(f)), abs=1e-9)


class TestNms:
    def test_suppresses_overlapping(self):
        boxes = [Rect(0, 0, 10, 10), Rect(1, 1, 10, 10), Rect(50, 50, 10, 10)]
        keep = non_max_suppression(boxes, [0.9, 0.8, 0.7], iou_threshold=0.5)
        assert keep == [0, 2]

    def test_keeps_all_disjoint(self):
        boxes = [Rect(i * 20, 0, 10, 10) for i in range(4)]
        keep = non_max_suppression(boxes, [0.1, 0.4, 0.3, 0.2], iou_threshold=0.5)
        assert sorted(keep) == [0, 1, 2, 3]
        assert keep[0] == 1  # decreasing score order

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GeometryError):
            non_max_suppression([Rect(0, 0, 1, 1)], [0.5, 0.6])

    def test_rejects_bad_threshold(self):
        with pytest.raises(GeometryError):
            non_max_suppression([Rect(0, 0, 1, 1)], [0.5], iou_threshold=1.5)

    @given(st.lists(rects(max_coord=30.0), min_size=1, max_size=8))
    def test_nms_idempotent(self, boxes):
        scores = [float(i) for i in range(len(boxes))]
        keep = non_max_suppression(boxes, scores, iou_threshold=0.4)
        kept_boxes = [boxes[i] for i in keep]
        kept_scores = [scores[i] for i in keep]
        keep2 = non_max_suppression(kept_boxes, kept_scores, iou_threshold=0.4)
        assert keep2 == list(range(len(kept_boxes)))


class TestMergeAndMatch:
    def test_merge_overlapping_clusters(self):
        boxes = [Rect(0, 0, 10, 10), Rect(2, 2, 10, 10), Rect(40, 40, 5, 5)]
        merged = merge_overlapping(boxes, iou_threshold=0.3)
        assert len(merged) == 2

    def test_merge_empty(self):
        assert merge_overlapping([]) == []

    def test_match_detections_one_to_one(self):
        truths = [Rect(0, 0, 10, 10), Rect(30, 30, 10, 10)]
        dets = [Rect(1, 1, 10, 10), Rect(31, 29, 10, 10), Rect(60, 60, 5, 5)]
        matches, un_t, un_d = match_detections(truths, dets)
        assert len(matches) == 2
        assert un_t == []
        assert un_d == [2]

    def test_match_respects_iou_threshold(self):
        truths = [Rect(0, 0, 10, 10)]
        dets = [Rect(9, 9, 10, 10)]  # IoU ~ 0.005
        matches, un_t, un_d = match_detections(truths, dets, iou_threshold=0.5)
        assert matches == [] and un_t == [0] and un_d == [0]

    def test_iou_matrix_shape(self):
        a = [Rect(0, 0, 1, 1)] * 2
        b = [Rect(0, 0, 1, 1)] * 3
        m = iou_matrix(a, b)
        assert len(m) == 2 and len(m[0]) == 3
        assert m[0][0] == pytest.approx(1.0)
