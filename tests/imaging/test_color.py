"""Tests for repro.imaging.color: YCbCr conversion and channel splits."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ImageError
from repro.imaging.color import (
    gray_to_rgb,
    luminance,
    redness,
    rgb_to_ycbcr,
    split_channels,
    ycbcr_to_rgb,
)


def rgb_images(max_side: int = 8):
    shapes = st.tuples(
        st.integers(min_value=1, max_value=max_side),
        st.integers(min_value=1, max_value=max_side),
        st.just(3),
    )
    return hnp.arrays(
        dtype=np.float64,
        shape=shapes,
        elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )


class TestConversion:
    def test_black_maps_to_zero(self):
        black = np.zeros((2, 2, 3))
        ycc = rgb_to_ycbcr(black)
        assert np.allclose(ycc, 0.0)

    def test_white_has_full_luma_no_chroma(self):
        white = np.ones((2, 2, 3))
        ycc = rgb_to_ycbcr(white)
        assert np.allclose(ycc[..., 0], 1.0)
        assert np.allclose(ycc[..., 1:], 0.0, atol=1e-12)

    def test_pure_red_has_positive_cr(self):
        red = np.zeros((1, 1, 3))
        red[..., 0] = 1.0
        y, cb, cr = split_channels(red)
        assert y[0, 0] == pytest.approx(0.299)
        assert cr[0, 0] == pytest.approx(0.5)
        assert cb[0, 0] < 0

    def test_pure_blue_has_positive_cb(self):
        blue = np.zeros((1, 1, 3))
        blue[..., 2] = 1.0
        _, cb, cr = split_channels(blue)
        assert cb[0, 0] == pytest.approx(0.5)
        assert cr[0, 0] < 0

    def test_rejects_gray_input(self):
        with pytest.raises(ImageError):
            rgb_to_ycbcr(np.zeros((4, 4)))

    def test_rejects_bad_ycbcr_shape(self):
        with pytest.raises(ImageError):
            ycbcr_to_rgb(np.zeros((4, 4, 2)))

    @settings(max_examples=50)
    @given(rgb_images())
    def test_roundtrip(self, rgb):
        back = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
        assert np.allclose(back, rgb, atol=1e-9)

    @settings(max_examples=30)
    @given(rgb_images())
    def test_chroma_ranges(self, rgb):
        ycc = rgb_to_ycbcr(rgb)
        assert ycc[..., 0].min() >= -1e-12 and ycc[..., 0].max() <= 1 + 1e-12
        assert np.abs(ycc[..., 1:]).max() <= 0.5 + 1e-12


class TestHelpers:
    def test_luminance_matches_y(self):
        rng = np.random.default_rng(0)
        rgb = rng.random((5, 7, 3))
        assert np.allclose(luminance(rgb), rgb_to_ycbcr(rgb)[..., 0])

    def test_redness_ranks_red_over_white(self):
        red = np.zeros((1, 1, 3))
        red[..., 0] = 1.0
        white = np.ones((1, 1, 3))
        assert redness(red)[0, 0] > redness(white)[0, 0]

    def test_gray_to_rgb_replicates(self):
        gray = np.arange(6, dtype=float).reshape(2, 3) / 6.0
        rgb = gray_to_rgb(gray)
        assert rgb.shape == (2, 3, 3)
        for c in range(3):
            assert np.array_equal(rgb[..., c], gray)
