"""Tests for repro.imaging.image: validation, crop, paste, blending."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.geometry import Rect
from repro.imaging.image import (
    additive_light,
    blend,
    clip01,
    crop,
    ensure_binary,
    ensure_gray,
    ensure_rgb,
    paste,
)


class TestValidation:
    def test_ensure_gray_accepts_2d(self):
        out = ensure_gray(np.zeros((3, 4), dtype=np.float32))
        assert out.dtype == np.float64

    def test_ensure_gray_rejects_3d(self):
        with pytest.raises(ImageError):
            ensure_gray(np.zeros((3, 4, 3)))

    def test_ensure_gray_rejects_empty(self):
        with pytest.raises(ImageError):
            ensure_gray(np.zeros((0, 4)))

    def test_ensure_rgb_accepts_hw3(self):
        assert ensure_rgb(np.zeros((2, 2, 3))).shape == (2, 2, 3)

    def test_ensure_rgb_rejects_wrong_channels(self):
        with pytest.raises(ImageError):
            ensure_rgb(np.zeros((2, 2, 4)))

    def test_ensure_binary_accepts_bool_and_01(self):
        assert ensure_binary(np.array([[True, False]])).dtype == bool
        assert ensure_binary(np.array([[0, 1], [1, 0]])).dtype == bool

    def test_ensure_binary_rejects_other_values(self):
        with pytest.raises(ImageError):
            ensure_binary(np.array([[0.5, 1.0]]))

    def test_clip01(self):
        out = clip01(np.array([[-1.0, 0.5, 2.0]]))
        assert out.tolist() == [[0.0, 0.5, 1.0]]


class TestCrop:
    def test_crop_extracts_region(self):
        img = np.arange(25, dtype=float).reshape(5, 5)
        out = crop(img, Rect(1, 2, 2, 2))
        assert np.array_equal(out, img[2:4, 1:3])

    def test_crop_clips_to_image(self):
        img = np.ones((4, 4))
        out = crop(img, Rect(-2, -2, 4, 4))
        assert out.shape == (2, 2)

    def test_crop_outside_raises(self):
        with pytest.raises(ImageError):
            crop(np.ones((4, 4)), Rect(10, 10, 2, 2))


class TestPasteBlend:
    def test_paste_in_bounds(self):
        canvas = np.zeros((5, 5))
        paste(canvas, np.ones((2, 2)), 1, 1)
        assert canvas[1:3, 1:3].sum() == 4
        assert canvas.sum() == 4

    def test_paste_clips_at_border(self):
        canvas = np.zeros((5, 5))
        paste(canvas, np.ones((3, 3)), 4, 4)
        assert canvas.sum() == 1

    def test_paste_fully_outside_is_noop(self):
        canvas = np.zeros((5, 5))
        paste(canvas, np.ones((2, 2)), 10, 10)
        assert canvas.sum() == 0

    def test_paste_rejects_dim_mismatch(self):
        with pytest.raises(ImageError):
            paste(np.zeros((5, 5)), np.ones((2, 2, 3)), 0, 0)

    def test_blend_alpha(self):
        canvas = np.zeros((2, 2))
        blend(canvas, np.ones((2, 2)), 0, 0, alpha=0.25)
        assert np.allclose(canvas, 0.25)

    def test_blend_rejects_bad_alpha(self):
        with pytest.raises(ImageError):
            blend(np.zeros((2, 2)), np.ones((2, 2)), 0, 0, alpha=1.5)

    def test_additive_light_saturates(self):
        canvas = np.full((2, 2), 0.8)
        additive_light(canvas, np.full((2, 2), 0.5), 0, 0)
        assert np.allclose(canvas, 1.0)

    def test_additive_light_adds(self):
        canvas = np.full((2, 2), 0.2)
        additive_light(canvas, np.full((2, 2), 0.3), 0, 0)
        assert np.allclose(canvas, 0.5)
