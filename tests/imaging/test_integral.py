"""Tests for repro.imaging.integral: summed-area tables."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ImageError
from repro.imaging.geometry import Rect
from repro.imaging.integral import box_mean, box_sum, integral_image, occupancy


class TestIntegral:
    def test_shape_has_zero_border(self):
        ii = integral_image(np.ones((3, 4)))
        assert ii.shape == (4, 5)
        assert ii[0].sum() == 0 and ii[:, 0].sum() == 0

    def test_total_sum_in_corner(self):
        img = np.arange(12, dtype=float).reshape(3, 4)
        ii = integral_image(img)
        assert ii[-1, -1] == pytest.approx(img.sum())

    def test_box_sum_matches_slice(self):
        rng = np.random.default_rng(0)
        img = rng.random((8, 9))
        ii = integral_image(img)
        rect = Rect(2, 3, 4, 2)
        assert box_sum(ii, rect) == pytest.approx(img[3:5, 2:6].sum())

    def test_box_sum_rejects_out_of_bounds(self):
        ii = integral_image(np.ones((4, 4)))
        with pytest.raises(ImageError):
            box_sum(ii, Rect(2, 2, 4, 4))

    def test_box_mean(self):
        img = np.full((4, 4), 0.25)
        ii = integral_image(img)
        assert box_mean(ii, Rect(0, 0, 4, 4)) == pytest.approx(0.25)

    def test_occupancy_binary(self):
        mask = np.zeros((4, 4))
        mask[0:2, 0:2] = 1.0
        ii = integral_image(mask)
        assert occupancy(ii, Rect(0, 0, 4, 4)) == pytest.approx(0.25)

    @settings(max_examples=40)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(4, 9), st.integers(4, 9)),
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        st.data(),
    )
    def test_box_sum_equals_numpy_slice(self, img, data):
        h, w = img.shape
        x = data.draw(st.integers(0, w - 2))
        y = data.draw(st.integers(0, h - 2))
        bw = data.draw(st.integers(1, w - x))
        bh = data.draw(st.integers(1, h - y))
        ii = integral_image(img)
        expected = img[y : y + bh, x : x + bw].sum()
        assert box_sum(ii, Rect(x, y, bw, bh)) == pytest.approx(expected, abs=1e-9)
