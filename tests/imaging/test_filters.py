"""Tests for repro.imaging.filters: convolution, Gaussian, Sobel, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.filters import (
    SOBEL_X,
    SOBEL_Y,
    box_blur,
    central_gradient,
    convolve2d,
    convolve_separable,
    gaussian_blur,
    gaussian_kernel1d,
    pad_replicate,
    sobel,
)


class TestPad:
    def test_pad_replicates_edges(self):
        img = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = pad_replicate(img, 1, 1, 1, 1)
        assert out.shape == (4, 4)
        assert out[0, 0] == 1.0 and out[-1, -1] == 4.0

    def test_pad_rejects_negative(self):
        with pytest.raises(ImageError):
            pad_replicate(np.ones((2, 2)), -1, 0, 0, 0)


class TestConvolve:
    def test_identity_kernel(self):
        img = np.random.default_rng(0).random((6, 7))
        ident = np.zeros((3, 3))
        ident[1, 1] = 1.0
        assert np.allclose(convolve2d(img, ident), img)

    def test_shift_kernel_flips(self):
        # True convolution flips the kernel: a kernel with weight at (0, 0)
        # (top-left) pulls from the bottom-right neighbour.
        img = np.zeros((5, 5))
        img[2, 2] = 1.0
        k = np.zeros((3, 3))
        k[0, 0] = 1.0
        out = convolve2d(img, k)
        assert out[1, 1] == 1.0

    def test_output_shape_preserved(self):
        img = np.ones((4, 9))
        assert convolve2d(img, np.ones((3, 3)) / 9.0).shape == (4, 9)

    def test_rejects_even_kernel(self):
        with pytest.raises(ImageError):
            convolve2d(np.ones((4, 4)), np.ones((2, 2)))

    def test_constant_image_invariant_under_normalized_kernel(self):
        img = np.full((5, 5), 3.7)
        out = convolve2d(img, np.ones((3, 3)) / 9.0)
        assert np.allclose(out, 3.7)

    def test_separable_matches_full(self):
        rng = np.random.default_rng(1)
        img = rng.random((8, 8))
        ky = np.array([1.0, 2.0, 1.0])
        kx = np.array([1.0, 0.0, -1.0])
        full = convolve2d(img, np.outer(ky, kx))
        sep = convolve_separable(img, ky, kx)
        assert np.allclose(full, sep)


class TestGaussian:
    def test_kernel_normalised(self):
        taps = gaussian_kernel1d(1.5)
        assert taps.sum() == pytest.approx(1.0)
        assert taps[len(taps) // 2] == taps.max()

    def test_kernel_rejects_bad_sigma(self):
        with pytest.raises(ImageError):
            gaussian_kernel1d(0.0)

    def test_blur_preserves_mean_of_constant(self):
        img = np.full((6, 6), 0.4)
        assert np.allclose(gaussian_blur(img, 1.0), 0.4)

    def test_blur_reduces_variance(self):
        rng = np.random.default_rng(2)
        img = rng.random((20, 20))
        assert gaussian_blur(img, 1.0).var() < img.var()

    def test_box_blur_rejects_even_size(self):
        with pytest.raises(ImageError):
            box_blur(np.ones((4, 4)), 2)


class TestGradients:
    def test_sobel_on_vertical_edge(self):
        img = np.zeros((8, 8))
        img[:, 4:] = 1.0
        gx, gy = sobel(img)
        assert np.abs(gx).max() > 0
        assert np.allclose(gy, 0.0)

    def test_sobel_kernels_transpose(self):
        assert np.array_equal(SOBEL_Y, SOBEL_X.T)

    def test_central_gradient_linear_ramp(self):
        # f(x, y) = x has gx = 1 everywhere in the interior.
        img = np.tile(np.arange(8, dtype=float), (8, 1))
        gx, gy = central_gradient(img)
        assert np.allclose(gx[:, 1:-1], 1.0)
        assert np.allclose(gy, 0.0)

    def test_central_gradient_constant_is_zero(self):
        gx, gy = central_gradient(np.full((5, 5), 2.0))
        assert np.allclose(gx, 0.0) and np.allclose(gy, 0.0)
