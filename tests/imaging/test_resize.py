"""Tests for repro.imaging.resize: area/binary downsample, bilinear, pyramid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.resize import (
    downsample_area,
    downsample_binary,
    pyramid_scales,
    resize_bilinear,
    resize_nearest,
    resize_rgb_bilinear,
)


class TestDownsample:
    def test_area_average(self):
        img = np.array([[0.0, 1.0], [1.0, 0.0]])
        out = downsample_area(img, 2)
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(0.5)

    def test_area_factor_one_identity(self):
        img = np.random.default_rng(0).random((4, 6))
        assert np.allclose(downsample_area(img, 1), img)

    def test_area_rejects_misaligned(self):
        with pytest.raises(ImageError):
            downsample_area(np.ones((5, 6)), 2)

    def test_hdtv_to_processing_resolution(self):
        img = np.zeros((1080 // 4, 1920 // 4))  # shrunk proxy keeps ratio
        out = downsample_area(img, 3)
        assert out.shape == (90, 160)

    def test_binary_vote(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True  # 1/4 of its 2x2 tile
        out = downsample_binary(mask, 2, vote=0.25)
        assert out[0, 0]
        assert not out[1, 1]

    def test_binary_vote_threshold(self):
        mask = np.zeros((2, 2), dtype=bool)
        mask[0, 0] = True
        assert not downsample_binary(mask, 2, vote=0.5)[0, 0]

    def test_binary_rejects_bad_vote(self):
        with pytest.raises(ImageError):
            downsample_binary(np.zeros((2, 2), dtype=bool), 2, vote=0.0)


class TestResize:
    def test_nearest_identity(self):
        img = np.random.default_rng(1).random((3, 5))
        assert np.allclose(resize_nearest(img, 3, 5), img)

    def test_nearest_upsample_replicates(self):
        img = np.array([[1.0, 2.0]])
        out = resize_nearest(img, 1, 4)
        assert out.tolist() == [[1.0, 1.0, 2.0, 2.0]]

    def test_bilinear_identity(self):
        img = np.random.default_rng(2).random((4, 4))
        assert np.allclose(resize_bilinear(img, 4, 4), img)

    def test_bilinear_constant_preserved(self):
        img = np.full((4, 6), 0.3)
        out = resize_bilinear(img, 7, 11)
        assert np.allclose(out, 0.3)

    def test_bilinear_range_bounded(self):
        img = np.random.default_rng(3).random((6, 6))
        out = resize_bilinear(img, 13, 9)
        assert out.min() >= img.min() - 1e-12
        assert out.max() <= img.max() + 1e-12

    def test_bilinear_rejects_empty_target(self):
        with pytest.raises(ImageError):
            resize_bilinear(np.ones((4, 4)), 0, 4)

    def test_rgb_resize_per_channel(self):
        rgb = np.zeros((4, 4, 3))
        rgb[..., 1] = 1.0
        out = resize_rgb_bilinear(rgb, 2, 2)
        assert out.shape == (2, 2, 3)
        assert np.allclose(out[..., 1], 1.0)
        assert np.allclose(out[..., 0], 0.0)


class TestPyramid:
    def test_scales_descend_from_one(self):
        scales = pyramid_scales((64, 64), (256, 256), scale_step=2.0)
        assert scales[0] == 1.0
        assert all(a > b for a, b in zip(scales, scales[1:]))
        assert len(scales) == 3  # 1.0, 0.5, 0.25

    def test_window_larger_than_image(self):
        assert pyramid_scales((64, 64), (32, 32)) == []

    def test_rejects_step_below_one(self):
        with pytest.raises(ImageError):
            pyramid_scales((8, 8), (64, 64), scale_step=1.0)
