"""Tests for repro.imaging.draw: rasterisers and ASCII rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.draw import (
    ascii_render,
    ascii_render_with_boxes,
    draw_box,
    fill_disk,
    fill_rect,
    light_glow,
)
from repro.imaging.geometry import Rect


class TestFill:
    def test_fill_rect_gray(self):
        img = np.zeros((6, 6))
        fill_rect(img, Rect(1, 2, 3, 2), 1.0)
        assert img[2:4, 1:4].sum() == 6
        assert img.sum() == 6

    def test_fill_rect_rgb(self):
        img = np.zeros((4, 4, 3))
        fill_rect(img, Rect(0, 0, 2, 2), (1.0, 0.5, 0.0))
        assert img[0, 0].tolist() == [1.0, 0.5, 0.0]

    def test_fill_rect_clips(self):
        img = np.zeros((4, 4))
        fill_rect(img, Rect(3, 3, 5, 5), 1.0)
        assert img.sum() == 1

    def test_draw_box_outline_only(self):
        img = np.zeros((8, 8))
        draw_box(img, Rect(1, 1, 5, 5), 1.0)
        assert img[1, 1] == 1.0
        assert img[3, 3] == 0.0

    def test_draw_box_rejects_bad_thickness(self):
        with pytest.raises(ImageError):
            draw_box(np.zeros((4, 4)), Rect(0, 0, 2, 2), 1.0, thickness=0)

    def test_fill_disk(self):
        img = np.zeros((11, 11))
        fill_disk(img, 5, 5, 2.5, 1.0)
        assert img[5, 5] == 1.0
        assert img[0, 0] == 0.0
        assert 10 < img.sum() < 25  # roughly pi * r^2

    def test_fill_disk_rejects_bad_radius(self):
        with pytest.raises(ImageError):
            fill_disk(np.zeros((4, 4)), 2, 2, 0.0, 1.0)


class TestGlow:
    def test_peak_at_center(self):
        glow = light_glow(9, 9, 4, 4, 2.0, intensity=0.8)
        assert glow[4, 4] == pytest.approx(0.8)
        assert glow[0, 0] < glow[4, 4]

    def test_monotone_falloff(self):
        glow = light_glow(21, 21, 10, 10, 3.0)
        row = glow[10, 10:]
        assert all(a >= b for a, b in zip(row, row[1:]))

    def test_rejects_bad_radius(self):
        with pytest.raises(ImageError):
            light_glow(5, 5, 2, 2, -1.0)


class TestAscii:
    def test_render_shape_and_charset(self):
        img = np.random.default_rng(0).random((20, 40))
        art = ascii_render(img, width=30)
        lines = art.split("\n")
        assert all(len(line) == 30 for line in lines)

    def test_constant_image_renders_uniform(self):
        art = ascii_render(np.full((10, 10), 0.5), width=10)
        assert len(set(art.replace("\n", ""))) == 1

    def test_render_with_boxes_adds_bright_pixels(self):
        img = np.zeros((30, 30))
        plain = ascii_render(img, width=20)
        boxed = ascii_render_with_boxes(img, [Rect(5, 5, 15, 15)], width=20)
        assert plain != boxed
