"""Tests for repro.imaging.threshold: binary, Otsu, multilevel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ImageError
from repro.imaging.threshold import (
    band_threshold,
    binary_threshold,
    histogram,
    light_source_mask,
    multilevel_thresholds,
    otsu_threshold,
)


def gray_images(max_side: int = 10):
    shapes = st.tuples(
        st.integers(min_value=2, max_value=max_side),
        st.integers(min_value=2, max_value=max_side),
    )
    return hnp.arrays(
        dtype=np.float64,
        shape=shapes,
        elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )


class TestBinary:
    def test_above(self):
        img = np.array([[0.1, 0.9]])
        assert binary_threshold(img, 0.5).tolist() == [[False, True]]

    def test_below(self):
        img = np.array([[0.1, 0.9]])
        assert binary_threshold(img, 0.5, above=False).tolist() == [[True, False]]

    def test_strict_inequality(self):
        img = np.array([[0.5]])
        assert not binary_threshold(img, 0.5)[0, 0]

    @settings(max_examples=40)
    @given(gray_images(), st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_threshold(self, img, t1, t2):
        lo, hi = min(t1, t2), max(t1, t2)
        mask_lo = binary_threshold(img, lo)
        mask_hi = binary_threshold(img, hi)
        # Raising the threshold can only clear pixels.
        assert not np.any(mask_hi & ~mask_lo)

    def test_band(self):
        img = np.array([[0.1, 0.5, 0.9]])
        assert band_threshold(img, 0.4, 0.6).tolist() == [[False, True, False]]

    def test_band_rejects_empty(self):
        with pytest.raises(ImageError):
            band_threshold(np.ones((1, 1)), 0.6, 0.4)


class TestHistogramOtsu:
    def test_histogram_counts(self):
        img = np.array([[0.0, 0.0, 1.0]])
        counts = histogram(img, bins=2)
        assert counts.tolist() == [2, 1]

    def test_histogram_rejects_one_bin(self):
        with pytest.raises(ImageError):
            histogram(np.ones((2, 2)), bins=1)

    def test_otsu_separates_bimodal(self):
        rng = np.random.default_rng(0)
        img = np.concatenate([rng.normal(0.2, 0.02, 500), rng.normal(0.8, 0.02, 500)])
        img = np.clip(img, 0, 1).reshape(20, 50)
        t = otsu_threshold(img)
        assert 0.3 < t < 0.7

    def test_otsu_constant_returns_midpoint(self):
        assert otsu_threshold(np.full((4, 4), 0.5)) == pytest.approx(0.5, abs=0.51)

    @settings(max_examples=30)
    @given(gray_images())
    def test_otsu_within_range(self, img):
        t = otsu_threshold(img)
        assert 0.0 <= t <= 1.0


class TestMultilevel:
    def test_two_levels_on_trimodal(self):
        rng = np.random.default_rng(1)
        vals = np.concatenate(
            [rng.normal(0.15, 0.02, 300), rng.normal(0.5, 0.02, 300), rng.normal(0.85, 0.02, 300)]
        )
        img = np.clip(vals, 0, 1).reshape(30, 30)
        cuts = multilevel_thresholds(img, levels=2)
        assert len(cuts) == 2
        assert 0.2 < cuts[0] < 0.45
        assert 0.55 < cuts[1] < 0.8

    def test_sorted_output(self):
        rng = np.random.default_rng(2)
        cuts = multilevel_thresholds(rng.random((16, 16)), levels=3)
        assert cuts == sorted(cuts)

    def test_rejects_zero_levels(self):
        with pytest.raises(ImageError):
            multilevel_thresholds(np.ones((4, 4)), levels=0)


class TestLightSourceMask:
    def test_detects_bright_spot_on_dark(self):
        img = np.full((20, 20), 0.05)
        img[8:12, 8:12] = 0.95
        mask = light_source_mask(img)
        assert mask[9, 9]
        assert not mask[0, 0]
        assert mask.sum() == 16

    def test_explicit_threshold(self):
        img = np.array([[0.2, 0.8]])
        mask = light_source_mask(img, luma_threshold=0.5)
        assert mask.tolist() == [[False, True]]
