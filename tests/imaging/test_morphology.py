"""Tests for repro.imaging.morphology: erode/dilate/open/close + duality."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ImageError
from repro.imaging.morphology import (
    closing,
    cross_element,
    dilate,
    erode,
    opening,
    rect_element,
    remove_small_regions,
    square_element,
)


def masks(max_side: int = 10):
    shapes = st.tuples(
        st.integers(min_value=3, max_value=max_side),
        st.integers(min_value=3, max_value=max_side),
    )
    return hnp.arrays(dtype=bool, shape=shapes)


class TestElements:
    def test_square(self):
        assert square_element(3).shape == (3, 3)
        assert square_element(3).all()

    def test_rect_rejects_zero(self):
        with pytest.raises(ImageError):
            rect_element(0, 3)

    def test_cross_shape(self):
        c = cross_element(3)
        assert c.sum() == 5
        assert c[1, 1] and c[0, 1] and c[1, 0]

    def test_cross_rejects_even(self):
        with pytest.raises(ImageError):
            cross_element(4)


class TestDilateErode:
    def test_dilate_grows_point(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        out = dilate(mask, square_element(3))
        assert out.sum() == 9

    def test_erode_shrinks_block(self):
        mask = np.zeros((7, 7), dtype=bool)
        mask[2:5, 2:5] = True
        out = erode(mask, square_element(3))
        assert out.sum() == 1 and out[3, 3]

    def test_erode_kills_point(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        assert not erode(mask, square_element(3)).any()

    def test_border_is_background(self):
        mask = np.ones((4, 4), dtype=bool)
        out = erode(mask, square_element(3))
        assert not out[0].any() and out[1:3, 1:3].all()

    def test_rejects_empty_element(self):
        with pytest.raises(ImageError):
            dilate(np.ones((3, 3), dtype=bool), np.zeros((3, 3), dtype=bool))

    @settings(max_examples=40)
    @given(masks())
    def test_dilate_is_extensive(self, mask):
        out = dilate(mask, square_element(3))
        assert np.all(out[mask])

    @settings(max_examples=40)
    @given(masks())
    def test_erode_is_antiextensive(self, mask):
        out = erode(mask, square_element(3))
        assert not np.any(out & ~mask)

    @settings(max_examples=40)
    @given(masks())
    def test_duality_under_complement(self, mask):
        # erode(m) == ~dilate(~m) for a symmetric element — on an infinite
        # grid.  With zero-padded borders, compare on the interior only.
        el = square_element(3)
        left = erode(mask, el)
        right = ~dilate(~mask, el)
        assert np.array_equal(left[1:-1, 1:-1], right[1:-1, 1:-1])


class TestOpenClose:
    def test_closing_fills_hole(self):
        mask = np.zeros((7, 7), dtype=bool)
        mask[2:5, 2:5] = True
        mask[3, 3] = False  # small hole
        out = closing(mask, square_element(3))
        assert out[3, 3]

    def test_opening_removes_speck(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[1, 1] = True  # speck
        mask[4:8, 4:8] = True  # block
        out = opening(mask, square_element(3))
        assert not out[1, 1]
        assert out[5, 5]

    @settings(max_examples=40)
    @given(masks())
    def test_closing_is_extensive_in_interior(self, mask):
        # Zero-padded borders make closing non-extensive at the frame edge
        # (as in the streaming hardware); the property holds inside.
        out = closing(mask, square_element(3))
        interior = np.zeros_like(mask)
        interior[1:-1, 1:-1] = True
        assert np.all(out[mask & interior])

    @settings(max_examples=40)
    @given(masks())
    def test_opening_is_antiextensive(self, mask):
        out = opening(mask, square_element(3))
        assert not np.any(out & ~mask)

    @settings(max_examples=25)
    @given(masks())
    def test_closing_idempotent(self, mask):
        el = square_element(3)
        once = closing(mask, el)
        assert np.array_equal(closing(once, el), once)


class TestRemoveSmall:
    def test_removes_below_min_area(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[0, 0] = True  # area 1
        mask[5:8, 5:8] = True  # area 9
        out = remove_small_regions(mask, min_area=4)
        assert not out[0, 0]
        assert out[6, 6]

    def test_min_area_one_is_copy(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 1] = True
        out = remove_small_regions(mask, min_area=1)
        assert np.array_equal(out, mask)
        assert out is not mask
