"""Tests for repro.experiments.common: scaling and caching infrastructure."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import (
    ConditionCorpora,
    build_corpora,
    check_scale,
    corpora_and_models,
    detector_with,
    trained_dark_detector,
)


class TestScale:
    def test_accepts_valid(self):
        assert check_scale(0.5) == 0.5
        assert check_scale(1.0) == 1.0

    def test_rejects_zero_and_above_one(self):
        with pytest.raises(ConfigurationError):
            check_scale(0.0)
        with pytest.raises(ConfigurationError):
            check_scale(1.5)


class TestCorpora:
    def test_scaled_counts_proportional(self):
        small = build_corpora(scale=0.05, seed=3)
        assert small.day_test.n_positive == 10  # ceil(200 * 0.05)
        assert small.dusk_test.very_dark.sum() == 5  # ceil(100 * 0.05)

    def test_minimum_counts_enforced(self):
        tiny = build_corpora(scale=0.01, seed=3)
        assert tiny.day_test.n_negative >= 2
        assert tiny.day_train.n_positive >= 4

    def test_corpora_structure(self):
        corpora = build_corpora(scale=0.05, seed=4)
        assert isinstance(corpora, ConditionCorpora)
        assert corpora.day_train.condition.value == "day"
        assert corpora.dusk_train.condition.value == "dusk"
        # The training split deliberately under-covers the bright dusk end;
        # no very-dark samples in training either.
        assert corpora.dusk_train.very_dark.sum() == 0


class TestCaching:
    def test_models_cached_per_scale_seed(self):
        a = corpora_and_models(scale=0.05, seed=9)
        b = corpora_and_models(scale=0.05, seed=9)
        assert a[1]["day"] is b[1]["day"]

    def test_different_seed_retrains(self):
        a = corpora_and_models(scale=0.05, seed=9)
        c = corpora_and_models(scale=0.05, seed=10)
        assert a[1]["day"] is not c[1]["day"]

    def test_dark_detector_cached(self):
        assert trained_dark_detector() is trained_dark_detector()

    def test_detector_with_binds_model(self):
        _, models = corpora_and_models(scale=0.05, seed=9)
        detector = detector_with(models["dusk"])
        assert detector.model is models["dusk"]
