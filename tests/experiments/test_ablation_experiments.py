"""Tests for the ablation experiment runners (reduced sizes)."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_contention,
    run_dbn_ablation,
    run_floorplan_sweep,
    run_hysteresis_ablation,
    run_threshold_ablation,
)


class TestThresholdAblation:
    def test_chroma_wins(self):
        result = run_threshold_ablation(n_frames=12, seed=17)
        checks = result.shape_checks()
        assert checks["chroma_reduces_spurious"]
        assert checks["chroma_at_least_as_accurate"]

    def test_render(self):
        result = run_threshold_ablation(n_frames=6, seed=18)
        assert "luma only" in result.render()


class TestDbnAblation:
    def test_dbn_not_worse(self):
        result = run_dbn_ablation(n_frames=12, seed=19)
        checks = result.shape_checks()
        assert all(checks.values()), checks


class TestHysteresisAblation:
    def test_storm_suppressed(self):
        result = run_hysteresis_ablation(duration_s=60.0)
        checks = result.shape_checks()
        assert all(checks.values()), checks
        assert result.naive_switches > result.hysteretic_switches


class TestFloorplanSweep:
    def test_monotone_and_paper_point(self):
        result = run_floorplan_sweep()
        checks = result.shape_checks()
        assert all(checks.values()), checks

    def test_render_rows(self):
        result = run_floorplan_sweep(slacks=(1.0, 1.125))
        assert "RP area" in result.render()


class TestContention:
    def test_paper_controller_keeps_hp_free(self):
        result = run_contention()
        checks = result.shape_checks()
        assert all(checks.values()), checks
        assert result.zycap_delay_ms > 10.0
