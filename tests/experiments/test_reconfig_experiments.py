"""Tests for the reconfiguration experiments (RT / RL)."""

from __future__ import annotations

import pytest

from repro.experiments.reconfig import (
    PAPER_THROUGHPUT_MB_S,
    run_latency,
    run_throughput,
)


class TestThroughputExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_throughput()

    def test_all_controllers_measured(self, result):
        assert set(result.reports) == set(PAPER_THROUGHPUT_MB_S)

    def test_all_shape_checks_pass(self, result):
        checks = result.shape_checks()
        assert all(checks.values()), checks

    def test_values_match_paper(self, result):
        for name, expected in PAPER_THROUGHPUT_MB_S.items():
            assert result.throughput(name) == pytest.approx(expected, rel=0.05)

    def test_render_includes_theoretical_max(self, result):
        assert "theoretical" in result.render()


class TestLatencyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_latency(duration_s=60.0)

    def test_all_shape_checks_pass(self, result):
        checks = result.shape_checks()
        assert all(checks.values()), checks

    def test_render_reports_drops(self, result):
        text = result.render()
        assert "dropped" in text and "20" in text
