"""Tests for the figure experiments (F1-F7, FPS) at reduced scale."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    run_fig2_pipeline,
    run_fig4_pipeline,
    run_fig5_samples,
    run_fig6_system,
    run_fig7_pr_controller,
    run_fps,
    run_pedestrian_pipeline,
    run_training_flow,
)


class TestTrainingFlow:
    @pytest.fixture(scope="class")
    def result(self):
        return run_training_flow(scale=0.2)

    def test_three_models(self, result):
        assert set(result.model_meta) == {"day", "dusk", "combined"}

    def test_models_look_very_different(self, result):
        assert result.shape_checks()["models_look_very_different"]

    def test_render(self, result):
        assert "divergence" in result.render()


class TestPipelineTiming:
    @pytest.mark.parametrize(
        "runner", [run_fig2_pipeline, run_fig4_pipeline, run_pedestrian_pipeline]
    )
    def test_achieves_50fps(self, runner):
        result = runner()
        assert result.shape_checks()["achieves_50fps"]

    def test_fig4_has_dbn_stage(self):
        result = run_fig4_pipeline()
        assert any("DBN" in s["name"] for s in result.report["stages"])

    def test_render_shows_bottleneck(self):
        assert "bottleneck" in run_fig2_pipeline().render()


class TestFig5:
    def test_samples_render_and_detect(self):
        result = run_fig5_samples(n_frames=3, seed=3)
        assert result.n_frames == 3
        assert len(result.renders) == 3
        assert result.shape_checks()["detects_in_most_vehicle_frames"]


class TestFig6:
    def test_system_audit(self):
        result = run_fig6_system(n_frames=5)
        checks = result.shape_checks()
        assert all(checks.values()), checks
        assert result.stats["pedestrian"]["processed"] == 5


class TestFig7:
    def test_pr_trace(self):
        result = run_fig7_pr_controller()
        checks = result.shape_checks()
        assert all(checks.values()), checks
        assert any("reconfigure -> dark start" in e for e in result.events)


class TestFps:
    def test_headline_claim(self):
        result = run_fps(drive_duration_s=20.0)
        checks = result.shape_checks()
        assert all(checks.values()), checks
