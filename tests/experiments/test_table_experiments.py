"""Tests for the Table I / Table II experiment runners (reduced scale)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.experiments.table2 import PAPER_TABLE2, run_table2


@pytest.fixture(scope="module")
def table1():
    return run_table1(scale=0.2, seed=0)


class TestTable1:
    def test_all_cells_filled(self, table1):
        for model in ("day", "dusk", "combined"):
            for scenario in ("day", "dusk", "dusk-subset"):
                counts = table1.cells[model][scenario]
                assert counts.total > 0

    def test_paper_reference_is_verbatim(self):
        # Spot-check against the printed Table I.
        assert PAPER_TABLE1["day"]["day"] == (0.9600, 195, 21, 4, 5)
        assert PAPER_TABLE1["dusk"]["day"][0] == pytest.approx(0.2089)
        assert PAPER_TABLE1["combined"]["dusk-subset"][1:] == (805, 740, 12, 158)

    def test_core_shape_claims(self, table1):
        checks = table1.shape_checks()
        # The claims the paper's Section III-A text actually makes:
        assert checks["day_model_best_on_day"]
        assert checks["dusk_model_degrades_on_day"]
        assert checks["subset_improves_all_models"]

    def test_render_contains_rows(self, table1):
        text = table1.render()
        assert "day" in text and "combined" in text
        assert "%" in text

    def test_render_with_paper_side_by_side(self, table1):
        text = table1.render_with_paper()
        assert "paper" in text

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            run_table1(scale=0.0)


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self):
        return run_table2()

    def test_all_shape_checks_pass(self, table2):
        checks = table2.shape_checks()
        assert all(checks.values()), checks

    def test_matches_every_paper_cell_within_3pts(self, table2):
        measured = table2.utilization_rows()
        for row, cells in PAPER_TABLE2.items():
            for cls, expected in cells.items():
                assert measured[row][cls] == pytest.approx(expected, abs=0.03), (row, cls)

    def test_total_is_static_plus_partition(self, table2):
        total = table2.total
        assert total.lut == table2.static.lut + table2.partition.capacity.lut

    def test_render_mentions_device(self, table2):
        assert "XC7Z100" in table2.render()
