"""Tests for the adaptive-gain extension experiment (reduced size)."""

from __future__ import annotations

import pytest

from repro.experiments.adaptive_gain import run_adaptive_gain


@pytest.fixture(scope="module")
def result():
    return run_adaptive_gain(n_frames_per_condition=4, scale=0.2, seed=1)


class TestAdaptiveGain:
    def test_every_fixed_pipeline_fails_somewhere(self, result):
        assert result.shape_checks()["every_fixed_pipeline_fails_somewhere"]

    def test_adaptive_never_worst(self, result):
        assert result.shape_checks()["adaptive_never_worst"]

    def test_render_lists_all_pipelines(self, result):
        text = result.render()
        for name in ("adaptive", "fixed day model", "fixed dark pipeline"):
            assert name in text

    def test_counts_consistent(self, result):
        for score in result.scores:
            assert sum(score.total.values()) == result.n_frames
