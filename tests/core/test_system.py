"""Tests for repro.core.system: the end-to-end adaptive system."""

from __future__ import annotations

import pytest

from repro.adaptive.sensor import LightSensor, LuxTrace, sunset_trace, tunnel_trace, urban_evening_trace
from repro.core.system import AdaptiveDetectionSystem, SystemConfig
from repro.datasets.lighting import LightingCondition
from repro.errors import ConfigurationError


class TestConfig:
    def test_rejects_bad_fps(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(fps=0.0)

    def test_rejects_bad_sensor_period(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(sensor_period_s=0.0)


class TestSunsetDrive:
    @pytest.fixture(scope="class")
    def report(self):
        system = AdaptiveDetectionSystem()
        return system.run_drive(sunset_trace(duration_s=60.0))

    def test_frame_count(self, report):
        assert report.n_frames == 3000

    def test_one_model_swap_one_reconfig(self, report):
        # day -> dusk (model swap), dusk -> dark (PR).
        assert len(report.model_swaps) == 1
        assert len(report.reconfigurations) == 1

    def test_one_dropped_frame_per_reconfig(self, report):
        # The paper's claim: 20 ms PR = one missed frame at 50 fps.
        assert report.vehicle_dropped == 1
        assert report.drops_per_reconfiguration() == pytest.approx(1.0)

    def test_pedestrian_never_drops(self, report):
        assert report.pedestrian_dropped == 0

    def test_reconfig_time_near_20ms(self, report):
        assert report.reconfigurations[0].duration_s * 1e3 == pytest.approx(20.5, abs=0.5)

    def test_frames_annotated_with_condition(self, report):
        conditions = {f.condition for f in report.frames}
        assert conditions == {
            LightingCondition.DAY,
            LightingCondition.DUSK,
            LightingCondition.DARK,
        }

    def test_reconfiguring_flag_matches_drops(self, report):
        for frame in report.frames:
            if not frame.vehicle_accepted:
                assert frame.reconfiguring


class TestTunnelDrive:
    def test_tunnel_needs_no_reconfiguration(self):
        # "entering the tunnel is simply handled by the transition between
        # day and dusk" — two model swaps, zero PRs, zero drops.
        system = AdaptiveDetectionSystem()
        report = system.run_drive(tunnel_trace(duration_s=40.0))
        assert len(report.reconfigurations) == 0
        assert len(report.model_swaps) == 2
        assert report.vehicle_dropped == 0


class TestUrbanDrive:
    def test_multiple_reconfigurations(self):
        system = AdaptiveDetectionSystem()
        report = system.run_drive(urban_evening_trace(duration_s=120.0))
        assert len(report.reconfigurations) >= 2
        assert report.vehicle_dropped == len(report.reconfigurations)
        assert report.pedestrian_dropped == 0

    def test_summary_structure(self):
        system = AdaptiveDetectionSystem()
        report = system.run_drive(urban_evening_trace(duration_s=30.0))
        summary = report.summary()
        assert summary["frames"] == 1500
        assert "drops_per_reconfiguration" in summary


class TestEdgeCases:
    def test_rejects_zero_duration(self):
        system = AdaptiveDetectionSystem()
        with pytest.raises(ConfigurationError):
            system.run_drive(sunset_trace(10.0), duration_s=0.0)

    def test_constant_lux_no_changes(self):
        system = AdaptiveDetectionSystem()
        trace = LuxTrace(points=((0.0, 20000.0), (10.0, 20000.0)))
        report = system.run_drive(trace, duration_s=5.0)
        assert report.condition_changes == []
        assert report.vehicle_dropped == 0

    def test_noisy_sensor_near_boundary_no_storm(self):
        # Hysteresis + dwell keep PR count low even with a noisy sensor
        # hugging the dusk/dark boundary.
        system = AdaptiveDetectionSystem(
            SystemConfig(initial_condition=LightingCondition.DUSK)
        )
        trace = LuxTrace(points=((0.0, 5.2), (30.0, 4.8)))
        sensor = LightSensor(trace, noise_rel=0.1, seed=5)
        report = system.run_drive(trace, duration_s=30.0, sensor=sensor)
        assert len(report.reconfigurations) <= 2
