"""Tests for repro.core.functional: the algorithmic adaptive detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.functional import AdaptiveVehicleDetector, FunctionalConfig
from repro.datasets.lighting import (
    DARK_LIGHTING,
    DAY_LIGHTING,
    LightingCondition,
    lighting_for_condition,
)
from repro.datasets.scene import SceneConfig, render_scene
from repro.errors import ConfigurationError, PipelineError
from repro.pipelines.dark import DarkVehicleDetector


@pytest.fixture(scope="module")
def adaptive(condition_models, dark_detector):
    return AdaptiveVehicleDetector(condition_models, dark_detector)


def _frame(condition: LightingCondition, seed: int = 5):
    config = SceneConfig(
        height=120, width=210, n_vehicles=1, vehicle_fill=(0.1, 0.16), seed=seed
    )
    return render_scene(config, lighting_for_condition(condition))


class TestConstruction:
    def test_requires_day_and_dusk_models(self, condition_models, dark_detector):
        with pytest.raises(ConfigurationError):
            AdaptiveVehicleDetector({"day": condition_models["day"]}, dark_detector)

    def test_requires_trained_dark(self, condition_models):
        with pytest.raises(PipelineError):
            AdaptiveVehicleDetector(condition_models, DarkVehicleDetector())

    def test_rejects_negative_reconfig_window(self):
        with pytest.raises(ConfigurationError):
            FunctionalConfig(reconfiguration_s=-1.0)


class TestRouting:
    def test_day_routes_to_hog(self, adaptive):
        result = adaptive.process(0.0, 30000.0, _frame(LightingCondition.DAY).rgb)
        assert result.condition is LightingCondition.DAY
        assert "day-dusk" in result.active_pipeline

    def test_dark_routes_to_dbn_pipeline(self, condition_models, dark_detector):
        detector = AdaptiveVehicleDetector(
            condition_models, dark_detector, initial=LightingCondition.DUSK
        )
        # Darkness arrives; after the blind window the dark pipeline runs.
        detector.process(0.0, 1.0, _frame(LightingCondition.DARK).rgb)
        result = detector.process(1.0, 1.0, _frame(LightingCondition.DARK).rgb)
        assert result.condition is LightingCondition.DARK
        assert result.active_pipeline == "vehicle-dark"

    def test_pipeline_for_condition(self, adaptive, dark_detector):
        assert adaptive.pipeline_for(LightingCondition.DARK) is dark_detector
        assert adaptive.pipeline_for(LightingCondition.DAY).model.meta["name"] == "day"
        assert adaptive.pipeline_for(LightingCondition.DUSK).model.meta["name"] == "dusk"

    def test_configuration_mapping(self, adaptive):
        from repro.adaptive.policy import VehicleConfigurationId

        assert (
            adaptive.configuration_for(LightingCondition.DAY)
            is VehicleConfigurationId.DAY_DUSK
        )
        assert (
            adaptive.configuration_for(LightingCondition.DARK)
            is VehicleConfigurationId.DARK
        )


class TestSwitching:
    def test_dusk_to_dark_has_blind_window(self, condition_models, dark_detector):
        detector = AdaptiveVehicleDetector(
            condition_models,
            dark_detector,
            config=FunctionalConfig(reconfiguration_s=0.5),
            initial=LightingCondition.DUSK,
        )
        dark_rgb = _frame(LightingCondition.DARK).rgb
        first = detector.process(10.0, 1.0, dark_rgb)  # triggers PR
        assert first.reconfiguring
        assert first.detections == []
        later = detector.process(10.6, 1.0, dark_rgb)  # window elapsed
        assert not later.reconfiguring

    def test_day_dusk_swap_is_free(self, condition_models, dark_detector):
        detector = AdaptiveVehicleDetector(
            condition_models, dark_detector, initial=LightingCondition.DAY
        )
        dusk_rgb = _frame(LightingCondition.DUSK).rgb
        result = detector.process(5.0, 100.0, dusk_rgb)  # day -> dusk
        assert result.condition is LightingCondition.DUSK
        assert not result.reconfiguring

    def test_results_history_accumulates(self, condition_models, dark_detector):
        detector = AdaptiveVehicleDetector(condition_models, dark_detector)
        rgb = _frame(LightingCondition.DAY).rgb
        for i in range(3):
            detector.process(float(i), 30000.0, rgb)
        assert len(detector.results) == 3


class TestEndToEnd:
    def test_dark_frame_detected_by_routed_pipeline(self, condition_models, dark_detector):
        detector = AdaptiveVehicleDetector(
            condition_models, dark_detector, initial=LightingCondition.DARK
        )
        frame = render_scene(
            SceneConfig(height=180, width=330, n_vehicles=1, vehicle_fill=(0.1, 0.16), seed=9),
            DARK_LIGHTING,
        )
        result = detector.process(0.0, 1.0, frame.rgb)
        assert result.condition is LightingCondition.DARK
        assert result.detections
        assert any(d.rect.iou(frame.vehicle_boxes[0]) > 0.2 for d in result.detections)
