"""DriveSpec: plain-data drives, derived seeds, and frame-core digests."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.core.spec import (
    CHAOS_MODES,
    TRACE_FACTORIES,
    DriveSpec,
    derive_drive_seed,
    frame_core_bytes,
    frame_core_dict,
    frames_digest,
)
from repro.core.system import AdaptiveDetectionSystem, SystemConfig, run_drive_spec
from repro.datasets.lighting import LightingCondition
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_are_valid(self):
        spec = DriveSpec()
        assert spec.trace in TRACE_FACTORIES
        assert spec.chaos is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"trace": "motorway"},
            {"duration_s": 0.0},
            {"fps": -1.0},
            {"fault_scenario": "nope"},
            {"initial_condition": "noon"},
            {"sensor_noise_rel": -0.1},
            {"sensor_dropout": 1.0},
            {"chaos": "explode"},
        ],
    )
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DriveSpec(**kwargs)

    def test_chaos_modes_are_legal(self):
        for mode in CHAOS_MODES:
            assert DriveSpec(chaos=mode).chaos == mode


class TestWireFormat:
    def test_round_trip(self):
        spec = DriveSpec(name="d1", trace="tunnel", seed=42, fault_scenario="flaky_dma")
        assert DriveSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        data = DriveSpec().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ConfigurationError, match="warp_factor"):
            DriveSpec.from_dict(data)

    def test_picklable(self):
        spec = DriveSpec(name="d2", seed=7)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestSeeds:
    def test_sensor_seed_is_derived_not_the_root(self):
        spec = DriveSpec(seed=5)
        assert spec.sensor_seed != 5
        assert spec.sensor_seed == DriveSpec(trace="urban", seed=5).sensor_seed

    def test_drive_seeds_distinct_and_stable_under_growth(self):
        seeds_small = [derive_drive_seed(0, i) for i in range(8)]
        seeds_large = [derive_drive_seed(0, i) for i in range(16)]
        assert len(set(seeds_large)) == 16
        assert seeds_large[:8] == seeds_small  # adding drives never reseeds

    def test_fleet_seed_decorrelates(self):
        assert derive_drive_seed(0, 3) != derive_drive_seed(1, 3)


class TestFrameCores:
    def test_core_excludes_span_id(self):
        report = run_drive_spec(DriveSpec(duration_s=1.0))
        core = frame_core_dict(report.frames[0])
        assert "span_id" not in core
        assert core["index"] == 0

    def test_digest_is_order_sensitive(self):
        report = run_drive_spec(DriveSpec(duration_s=1.0))
        assert frames_digest(report.frames) != frames_digest(reversed(report.frames))

    def test_core_bytes_are_canonical(self):
        report = run_drive_spec(DriveSpec(duration_s=1.0))
        raw = frame_core_bytes(report.frames[0])
        assert raw == frame_core_bytes(report.frames[0])
        assert b'"index"' in raw


class TestRunDriveSpec:
    def test_spec_run_matches_hand_built_system(self):
        spec = DriveSpec(
            name="ref", trace="sunset", duration_s=2.0, seed=11, fault_scenario="flaky_dma"
        )
        via_spec = run_drive_spec(spec)

        system = AdaptiveDetectionSystem(
            config=SystemConfig(
                fps=spec.fps,
                initial_condition=LightingCondition(spec.initial_condition),
            ),
            fault_plan=spec.build_fault_plan(),
        )
        trace = spec.build_trace()
        sensor = spec.build_sensor(trace, system.fault_plan)
        by_hand = system.run_drive(trace, duration_s=spec.duration_s, sensor=sensor)

        assert frames_digest(via_spec.frames) == frames_digest(by_hand.frames)
        assert via_spec.summary() == by_hand.summary()

    def test_same_spec_twice_is_byte_identical(self):
        spec = DriveSpec(duration_s=2.0, seed=3, fault_scenario="sensor_blackout")
        first = run_drive_spec(spec)
        second = run_drive_spec(spec)
        assert frames_digest(first.frames) == frames_digest(second.frames)

    def test_observation_does_not_perturb_frames(self):
        # The fleet's non-perturbation pin: telemetry + monitor attached,
        # frame cores stay byte-identical to the bare drive.
        from repro.monitor import Monitor, MonitorConfig
        from repro.monitor.slo import SloBudgets
        from repro.telemetry import Telemetry

        spec = DriveSpec(duration_s=2.0, seed=9, fault_scenario="flaky_dma")
        bare = run_drive_spec(spec)
        telemetry = Telemetry.recording()
        monitor = Monitor(
            MonitorConfig(budgets=SloBudgets.for_fps(spec.fps), wall_clock_slos=False),
            telemetry=telemetry,
        )
        observed = run_drive_spec(spec, telemetry=telemetry, monitor=monitor)
        assert frames_digest(observed.frames) == frames_digest(bare.frames)

    def test_distinct_seeds_diverge(self):
        base = dict(trace="flicker", duration_s=2.0, sensor_noise_rel=0.2)
        a = run_drive_spec(DriveSpec(seed=1, **base))
        b = run_drive_spec(DriveSpec(seed=2, **base))
        assert frames_digest(a.frames) != frames_digest(b.frames)

    def test_specs_are_immutable(self):
        spec = DriveSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 1  # type: ignore[misc]
