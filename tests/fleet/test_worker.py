"""The drive-execution unit: outcomes, containment, determinism filters."""

from __future__ import annotations

import queue

import pytest

from repro.core.spec import DriveSpec
from repro.errors import FleetError
from repro.fleet.outcome import (
    WALL_METRIC_NAMES,
    WALL_OUTCOME_FIELDS,
    DriveOutcome,
    deterministic_metrics,
    deterministic_outcome_dict,
)
from repro.fleet.worker import TASK_POLL_TIMEOUT_S, execute_spec, worker_main

pytestmark = pytest.mark.fleet


@pytest.fixture(scope="module")
def ok_outcome() -> DriveOutcome:
    """One fully observed drive, shared by the read-only assertions."""
    return execute_spec(DriveSpec(name="unit", duration_s=2.0, seed=4))


class TestExecuteSpec:
    def test_status_and_digest(self, ok_outcome):
        assert ok_outcome.ok
        assert ok_outcome.status == "ok"
        assert len(ok_outcome.frames_digest) == 64  # sha256 hex

    def test_summary_covers_the_whole_drive(self, ok_outcome):
        assert ok_outcome.summary["frames"] == 100  # 2 s at 50 fps

    def test_verdict_and_latency_present_when_observed(self, ok_outcome):
        assert ok_outcome.verdict["state"] in ("ok", "degraded", "critical")
        assert ok_outcome.latency_ms["count"] == 100
        assert any(s["name"] == "drive_frames" for s in ok_outcome.metrics)
        assert ok_outcome.wall_s > 0

    def test_accepts_spec_dicts(self, ok_outcome):
        spec = DriveSpec(name="unit", duration_s=2.0, seed=4)
        again = execute_spec(spec.to_dict())
        assert again.frames_digest == ok_outcome.frames_digest

    def test_unmonitored_drive_has_no_verdict(self):
        outcome = execute_spec(
            DriveSpec(duration_s=1.0), monitored=False, record_latency=False
        )
        assert outcome.ok
        assert outcome.verdict == {}
        assert outcome.latency_ms is None
        assert outcome.metrics == []

    def test_observation_never_changes_the_digest(self):
        spec = DriveSpec(duration_s=2.0, seed=8, fault_scenario="flaky_dma")
        observed = execute_spec(spec)
        bare = execute_spec(spec, monitored=False, record_latency=False)
        assert observed.frames_digest == bare.frames_digest

    def test_drive_exceptions_become_failed_outcomes(self, monkeypatch):
        import repro.core.system as system

        def boom(*args, **kwargs):
            raise RuntimeError("detector fell over")

        monkeypatch.setattr(system, "run_drive_spec", boom)
        outcome = execute_spec(DriveSpec(duration_s=1.0))
        assert outcome.status == "failed"
        assert "detector fell over" in outcome.error

    def test_incident_bundles_are_harvested(self, tmp_path):
        outcome = execute_spec(
            DriveSpec(name="faulty", duration_s=4.0, fault_scenario="worst_case"),
            incidents_dir=tmp_path,
        )
        assert outcome.ok
        assert outcome.verdict["incidents"] == len(outcome.incidents)
        for path in outcome.incidents:
            assert str(tmp_path) in path


class TestChaosContainment:
    def test_contained_crash_becomes_a_crashed_outcome(self):
        outcome = execute_spec(DriveSpec(duration_s=1.0, chaos="crash"))
        assert outcome.status == "crashed"
        assert "chaos" in outcome.error
        assert outcome.frames_digest is None

    def test_contained_hang_becomes_a_timeout_outcome(self):
        outcome = execute_spec(DriveSpec(duration_s=1.0, chaos="hang"))
        assert outcome.status == "timeout"
        assert "chaos" in outcome.error


class _ScriptedQueue:
    """A queue that replays a script of items and ``queue.Empty`` markers."""

    def __init__(self, script):
        self.script = list(script)
        self.timeouts = []

    def get(self, timeout=None):
        self.timeouts.append(timeout)
        if not self.script:
            raise queue.Empty
        item = self.script.pop(0)
        if item is queue.Empty:
            raise queue.Empty
        return item


class _ListQueue:
    def __init__(self):
        self.items = []

    def put(self, item):
        self.items.append(item)


class TestWorkerLoop:
    """Pins the timed-poll contract: a worker never blocks forever on its
    task queue, so scheduler containment (or SIGTERM) always gets a turn."""

    def test_poll_timeout_is_bounded(self):
        assert 0 < TASK_POLL_TIMEOUT_S <= 5.0

    def test_empty_poll_retries_then_sentinel_exits(self):
        tasks = _ScriptedQueue([queue.Empty, queue.Empty, None])
        results = _ListQueue()
        worker_main(0, tasks, results, None, False, False)
        assert tasks.timeouts == [TASK_POLL_TIMEOUT_S] * 3
        assert results.items == []

    def test_task_after_empty_poll_is_still_executed(self):
        spec = DriveSpec(name="poll", duration_s=1.0, seed=3)
        tasks = _ScriptedQueue([queue.Empty, (7, spec.to_dict()), None])
        results = _ListQueue()
        worker_main(2, tasks, results, None, False, False)
        assert len(results.items) == 1
        index, outcome_dict = results.items[0]
        assert index == 7
        outcome = DriveOutcome.from_dict(outcome_dict)
        assert outcome.ok
        assert outcome.worker_id == 2


class TestOutcomeWire:
    def test_round_trip(self, ok_outcome):
        assert DriveOutcome.from_dict(ok_outcome.to_dict()).to_dict() == ok_outcome.to_dict()

    def test_unknown_fields_rejected(self, ok_outcome):
        data = ok_outcome.to_dict()
        data["surprise"] = 1
        with pytest.raises(FleetError, match="surprise"):
            DriveOutcome.from_dict(data)

    def test_unknown_status_rejected(self):
        with pytest.raises(FleetError, match="status"):
            DriveOutcome(spec={}, status="winning")

    def test_deterministic_dict_strips_wall_fields(self, ok_outcome):
        data = deterministic_outcome_dict(ok_outcome)
        for field in WALL_OUTCOME_FIELDS:
            assert field not in data
        names = {s["name"] for s in data["metrics"]}
        assert not names & WALL_METRIC_NAMES
        assert "drive_frames" in names

    def test_deterministic_metrics_filter(self):
        series = [{"name": "frame_wall_ms"}, {"name": "drive_frames"}]
        assert deterministic_metrics(series) == [{"name": "drive_frames"}]
