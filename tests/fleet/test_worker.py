"""The drive-execution unit: outcomes, containment, determinism filters."""

from __future__ import annotations

import pytest

from repro.core.spec import DriveSpec
from repro.errors import FleetError
from repro.fleet.outcome import (
    WALL_METRIC_NAMES,
    WALL_OUTCOME_FIELDS,
    DriveOutcome,
    deterministic_metrics,
    deterministic_outcome_dict,
)
from repro.fleet.worker import execute_spec

pytestmark = pytest.mark.fleet


@pytest.fixture(scope="module")
def ok_outcome() -> DriveOutcome:
    """One fully observed drive, shared by the read-only assertions."""
    return execute_spec(DriveSpec(name="unit", duration_s=2.0, seed=4))


class TestExecuteSpec:
    def test_status_and_digest(self, ok_outcome):
        assert ok_outcome.ok
        assert ok_outcome.status == "ok"
        assert len(ok_outcome.frames_digest) == 64  # sha256 hex

    def test_summary_covers_the_whole_drive(self, ok_outcome):
        assert ok_outcome.summary["frames"] == 100  # 2 s at 50 fps

    def test_verdict_and_latency_present_when_observed(self, ok_outcome):
        assert ok_outcome.verdict["state"] in ("ok", "degraded", "critical")
        assert ok_outcome.latency_ms["count"] == 100
        assert any(s["name"] == "drive_frames" for s in ok_outcome.metrics)
        assert ok_outcome.wall_s > 0

    def test_accepts_spec_dicts(self, ok_outcome):
        spec = DriveSpec(name="unit", duration_s=2.0, seed=4)
        again = execute_spec(spec.to_dict())
        assert again.frames_digest == ok_outcome.frames_digest

    def test_unmonitored_drive_has_no_verdict(self):
        outcome = execute_spec(
            DriveSpec(duration_s=1.0), monitored=False, record_latency=False
        )
        assert outcome.ok
        assert outcome.verdict == {}
        assert outcome.latency_ms is None
        assert outcome.metrics == []

    def test_observation_never_changes_the_digest(self):
        spec = DriveSpec(duration_s=2.0, seed=8, fault_scenario="flaky_dma")
        observed = execute_spec(spec)
        bare = execute_spec(spec, monitored=False, record_latency=False)
        assert observed.frames_digest == bare.frames_digest

    def test_drive_exceptions_become_failed_outcomes(self, monkeypatch):
        import repro.core.system as system

        def boom(*args, **kwargs):
            raise RuntimeError("detector fell over")

        monkeypatch.setattr(system, "run_drive_spec", boom)
        outcome = execute_spec(DriveSpec(duration_s=1.0))
        assert outcome.status == "failed"
        assert "detector fell over" in outcome.error

    def test_incident_bundles_are_harvested(self, tmp_path):
        outcome = execute_spec(
            DriveSpec(name="faulty", duration_s=4.0, fault_scenario="worst_case"),
            incidents_dir=tmp_path,
        )
        assert outcome.ok
        assert outcome.verdict["incidents"] == len(outcome.incidents)
        for path in outcome.incidents:
            assert str(tmp_path) in path


class TestChaosContainment:
    def test_contained_crash_becomes_a_crashed_outcome(self):
        outcome = execute_spec(DriveSpec(duration_s=1.0, chaos="crash"))
        assert outcome.status == "crashed"
        assert "chaos" in outcome.error
        assert outcome.frames_digest is None

    def test_contained_hang_becomes_a_timeout_outcome(self):
        outcome = execute_spec(DriveSpec(duration_s=1.0, chaos="hang"))
        assert outcome.status == "timeout"
        assert "chaos" in outcome.error


class TestOutcomeWire:
    def test_round_trip(self, ok_outcome):
        assert DriveOutcome.from_dict(ok_outcome.to_dict()).to_dict() == ok_outcome.to_dict()

    def test_unknown_fields_rejected(self, ok_outcome):
        data = ok_outcome.to_dict()
        data["surprise"] = 1
        with pytest.raises(FleetError, match="surprise"):
            DriveOutcome.from_dict(data)

    def test_unknown_status_rejected(self):
        with pytest.raises(FleetError, match="status"):
            DriveOutcome(spec={}, status="winning")

    def test_deterministic_dict_strips_wall_fields(self, ok_outcome):
        data = deterministic_outcome_dict(ok_outcome)
        for field in WALL_OUTCOME_FIELDS:
            assert field not in data
        names = {s["name"] for s in data["metrics"]}
        assert not names & WALL_METRIC_NAMES
        assert "drive_frames" in names

    def test_deterministic_metrics_filter(self):
        series = [{"name": "frame_wall_ms"}, {"name": "drive_frames"}]
        assert deterministic_metrics(series) == [{"name": "drive_frames"}]
