"""The status board: fold side-channel records into FleetStatus snapshots.

All tests drive the board with a simulated clock — the board never reads
a clock itself (arrival-time semantics), which is exactly what makes the
suspect/hung escalation deterministic under test.
"""

from __future__ import annotations

import pytest

from repro.errors import FleetError
from repro.fleet.outcome import DriveOutcome
from repro.fleet.status import (
    STATUS_SCHEMA,
    STATUS_SCHEMA_VERSION,
    WALL_STATUS_KEYS,
    WORKER_STATES,
    StatusBoard,
    render_status,
    status_metrics_snapshot,
    validate_status,
)
from repro.monitor.liveness import LivenessConfig
from repro.telemetry.openmetrics import parse_openmetrics, render_openmetrics

pytestmark = pytest.mark.fleet


def make_board(now_s: float = 100.0) -> StatusBoard:
    return StatusBoard(
        liveness=LivenessConfig(
            heartbeat_interval_s=0.1, suspect_after_s=0.5, hung_after_s=1.0
        ),
        rate_window_s=10.0,
        now_s=now_s,
    )


def heartbeat(worker_id: int, busy: bool = True, index: int = 0, frames: int = 0) -> dict:
    return {
        "kind": "fleet.worker.heartbeat",
        "worker_id": worker_id,
        "busy": busy,
        "index": index if busy else None,
        "name": f"drive-{index}" if busy else None,
        "frames": frames,
    }


def progress(worker_id: int, index: int, phase: str) -> dict:
    return {
        "kind": "fleet.drive.progress",
        "worker_id": worker_id,
        "index": index,
        "name": f"drive-{index}",
        "phase": phase,
        "status": "ok" if phase == "done" else None,
    }


def ok_outcome(name: str = "d") -> DriveOutcome:
    return DriveOutcome(
        spec={"name": name},
        status="ok",
        summary={"frames": 50},
        latency_ms={
            "kind": "histogram",
            "name": "frame_wall_ms",
            "labels": {},
            "bounds": [1.0, 5.0],
            "bucket_counts": [10, 30, 10],
            "count": 50,
            "sum": 120.0,
            "min": 0.4,
            "max": 9.0,
        },
    )


class TestWorkerLifecycle:
    def test_dispatch_starts_the_clock_before_any_beat(self):
        # A worker that wedges before its first beat must still age into
        # suspect/hung from the moment work was handed to it.
        board = make_board()
        board.ensure_worker(0, 100.0)
        board.mark_dispatch(0, index=3, name="d3", now_s=100.0)
        view = board.workers[0]
        assert view.state(100.2) == "running"
        assert view.state(100.7) == "suspect"
        assert view.state(101.5) == "hung"

    def test_idle_workers_are_never_suspect(self):
        board = make_board()
        board.ensure_worker(0, 100.0)
        assert board.workers[0].state(200.0) == "idle"

    def test_heartbeats_keep_a_running_worker_alive(self):
        board = make_board()
        board.mark_dispatch(0, index=0, name="d0", now_s=100.0)
        for tick in range(1, 20):
            board.ingest(heartbeat(0, frames=tick * 10), 100.0 + tick * 0.1)
        assert board.workers[0].state(101.9) == "running"
        assert board.workers[0].frames == 190
        assert board.workers[0].beats == 19

    def test_progress_done_returns_the_worker_to_idle(self):
        board = make_board()
        board.mark_dispatch(0, index=0, name="d0", now_s=100.0)
        board.ingest(progress(0, 0, "done"), 100.8)
        assert board.workers[0].state(100.8) == "idle"
        assert board.workers[0].drives_done == 1

    def test_respawn_resets_the_slot(self):
        board = make_board()
        board.mark_dispatch(0, index=0, name="d0", now_s=100.0)
        board.ensure_worker(0, 103.0, respawn=True)
        view = board.workers[0]
        assert view.respawns == 1
        assert not view.busy
        assert view.state(103.2) == "idle"


class TestSuspectEscalation:
    def test_take_new_suspects_is_one_shot_per_drive(self):
        board = make_board()
        board.mark_dispatch(0, index=0, name="d0", now_s=100.0)
        board.mark_dispatch(1, index=1, name="d1", now_s=100.0)
        board.ingest(heartbeat(1, index=1), 100.6)  # worker 1 is fine
        fresh = board.take_new_suspects(100.7)
        assert [v.worker_id for v in fresh] == [0]
        assert board.take_new_suspects(100.9) == []  # already flagged
        # a new drive on the slot re-arms the flag
        board.ingest(progress(0, 0, "done"), 100.9)
        board.mark_dispatch(0, index=2, name="d2", now_s=101.0)
        board.ingest(heartbeat(1, index=1), 101.7)  # keep worker 1 alive
        assert [v.worker_id for v in board.take_new_suspects(101.8)] == [0]

    def test_ingest_rejects_non_side_channel_kinds(self):
        board = make_board()
        with pytest.raises(FleetError, match="cannot ingest"):
            board.ingest({"kind": "fleet.run.start", "worker_id": 0}, 100.0)
        with pytest.raises(FleetError, match="vocabulary"):
            board.ingest({"kind": "fleet.party", "worker_id": 0}, 100.0)


class TestSnapshots:
    def test_snapshot_envelope_and_counts(self):
        board = make_board()
        board.mark_dispatch(0, index=0, name="d0", now_s=100.0)
        board.ensure_worker(1, 100.0)
        board.ingest(heartbeat(0, frames=10), 100.9)
        board.record_outcome(ok_outcome(), 101.0)
        snapshot = board.snapshot(
            101.0, backlog=3, capacity=64, submitted=10, rejected=1
        )
        validate_status(snapshot)
        assert snapshot["schema"] == STATUS_SCHEMA
        assert snapshot["schema_version"] == STATUS_SCHEMA_VERSION
        assert snapshot["queue"] == {
            "backlog": 3,
            "capacity": 64,
            "submitted": 10,
            "rejected": 1,
        }
        assert snapshot["drives"]["done"] == 1
        assert snapshot["drives"]["in_flight"] == 1
        assert snapshot["frames_total"] == 50
        assert snapshot["elapsed_s"] == 1.0
        assert set(snapshot["worker_states"]) == set(WORKER_STATES)
        assert snapshot["worker_states"]["running"] == 1
        assert snapshot["worker_states"]["idle"] == 1
        assert snapshot["latency_ms"]["count"] == 50

    def test_latency_histograms_merge_across_outcomes(self):
        board = make_board()
        board.record_outcome(ok_outcome("a"), 100.5)
        board.record_outcome(ok_outcome("b"), 100.9)
        snapshot = board.snapshot(101.0)
        assert snapshot["latency_ms"]["count"] == 100
        assert snapshot["latency_ms"]["bucket_counts"] == [20, 60, 20]

    def test_drives_per_s_uses_the_trailing_window(self):
        board = make_board()
        for k in range(5):
            board.record_outcome(ok_outcome(str(k)), 100.0 + k)
        # Run is 5 s old (younger than the window): clamp to run age.
        assert board.drives_per_s(105.0) == pytest.approx(1.0)
        # 20 s in, only completions younger than 10 s count — none are.
        assert board.drives_per_s(120.0) == 0.0

    def test_unknown_phase_is_rejected(self):
        board = make_board()
        with pytest.raises(FleetError, match="phase"):
            board.snapshot(100.0, phase="paused")
        with pytest.raises(FleetError, match="schema"):
            validate_status({"schema": "something/else"})

    def test_render_status_is_human_readable(self):
        board = make_board()
        board.mark_dispatch(0, index=4, name="drive-4", now_s=100.0)
        board.record_outcome(ok_outcome(), 100.3)
        text = render_status(board.snapshot(100.4, backlog=2, capacity=8))
        assert "fleet status" in text
        assert "phase=running" in text
        assert "2/8 backlog" in text
        assert "#4 drive-4" in text
        assert "1 running" in text


class TestMetricsExposition:
    def test_snapshot_exposes_as_openmetrics(self):
        board = make_board()
        board.mark_dispatch(0, index=0, name="d0", now_s=100.0)
        board.record_outcome(ok_outcome(), 100.5)
        snapshot = board.snapshot(101.0, backlog=2, capacity=8)
        series = status_metrics_snapshot(snapshot)
        text = render_openmetrics(series)
        assert text.endswith("# EOF\n")
        parsed = {s["name"]: s for s in parse_openmetrics(text)}
        assert parsed["fleet_queue_backlog"]["value"] == 2.0
        assert parsed["fleet_drives_in_flight"]["value"] == 1.0
        assert parsed["fleet_frames_total"]["value"] == 50.0
        assert parsed["fleet_frame_wall_ms"]["count"] == 50
        done = [
            s
            for s in parse_openmetrics(text)
            if s["name"] == "fleet_drives_done_total"
        ]
        counts = {d["labels"]["status"]: d["value"] for d in done}
        assert counts["ok"] == 1.0
        assert all(v == 0.0 for s, v in counts.items() if s != "ok")
        states = [
            s for s in parse_openmetrics(text) if s["name"] == "fleet_workers"
        ]
        assert {s["labels"]["state"] for s in states} == set(WORKER_STATES)

    def test_metrics_require_a_valid_snapshot(self):
        with pytest.raises(FleetError):
            status_metrics_snapshot({"schema": "nope"})


class TestWallSegregation:
    def test_wall_status_keys_cover_the_plane_fields(self):
        # The taint rule launders exactly these names; the snapshot's
        # wall-valued fields must all be declared.
        for key in ("elapsed_s", "drives_per_s", "heartbeat_age_s", "drive_age_s"):
            assert key in WALL_STATUS_KEYS

    def test_lint_config_launders_status_keys(self):
        from repro.analysis.config import LintConfig

        assert WALL_STATUS_KEYS <= LintConfig().wall_strip_keys
