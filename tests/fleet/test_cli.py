"""The ``python -m repro fleet`` surface: run, top, report, smoke."""

from __future__ import annotations

import json

import pytest

from repro.fleet.cli import main as fleet_main
from repro.fleet.rollup import load_rollup
from repro.fleet.status import validate_status

pytestmark = pytest.mark.fleet


class TestRun:
    def test_run_writes_a_valid_rollup(self, tmp_path, capsys):
        out = tmp_path / "FLEET_test.json"
        code = fleet_main(
            [
                "run",
                "--count", "4",
                "--workers", "2",
                "--duration", "1.0",
                "--seed", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        rollup = load_rollup(out)
        assert rollup["fleet"]["by_status"] == {"ok": 4}
        assert rollup["config"]["workers"] == 2
        stdout = capsys.readouterr().out
        assert "fleet rollup" in stdout
        assert str(out) in stdout

    def test_inline_run_and_report(self, tmp_path, capsys):
        out = tmp_path / "FLEET_inline.json"
        assert fleet_main(
            ["run", "--count", "2", "--workers", "0", "--duration", "1.0",
             "--out", str(out), "--no-monitor", "--no-latency"]
        ) == 0
        capsys.readouterr()
        assert fleet_main(["report", str(out)]) == 0
        assert "drives: 2" in capsys.readouterr().out


class TestRunLivePlane:
    def test_run_writes_status_metrics_and_trace_artefacts(self, tmp_path, capsys):
        out = tmp_path / "FLEET_live.json"
        status = tmp_path / "status.jsonl"
        metrics = tmp_path / "fleet.om"
        trace = tmp_path / "fleet-trace.json"
        code = fleet_main(
            [
                "run",
                "--count", "4",
                "--workers", "2",
                "--duration", "1.0",
                "--out", str(out),
                "--status-interval", "0.2",
                "--status-out", str(status),
                "--metrics-out", str(metrics),
                "--trace-out", str(trace),
            ]
        )
        assert code == 0
        snapshots = [json.loads(l) for l in status.read_text().splitlines() if l]
        assert snapshots and snapshots[-1]["phase"] == "done"
        for snapshot in snapshots:
            validate_status(snapshot)
        assert metrics.read_text().rstrip().endswith("# EOF")
        document = json.loads(trace.read_text())
        assert document["traceEvents"]
        rollup = load_rollup(out)
        assert rollup["events_by_kind"]["fleet.trace.stitch"] == 1

    def test_no_stream_disables_the_plane(self, tmp_path):
        out = tmp_path / "FLEET_quiet.json"
        assert fleet_main(
            ["run", "--count", "2", "--workers", "2", "--duration", "1.0",
             "--no-stream", "--out", str(out)]
        ) == 0
        rollup = load_rollup(out)
        assert "fleet.worker.heartbeat" not in rollup["events_by_kind"]
        assert "fleet.status.snapshot" not in rollup["events_by_kind"]


class TestTop:
    def test_top_once_prints_the_final_snapshot(self, capsys):
        code = fleet_main(
            ["top", "--once", "--count", "4", "--workers", "2", "--duration", "1.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet status" in out
        assert "phase=done" in out
        assert "4 done" in out

    def test_top_status_in_renders_an_existing_stream(self, tmp_path, capsys):
        status = tmp_path / "status.jsonl"
        assert fleet_main(
            ["top", "--once", "--count", "2", "--workers", "2",
             "--duration", "1.0", "--status-out", str(status)]
        ) == 0
        capsys.readouterr()
        assert fleet_main(["top", "--once", "--status-in", str(status)]) == 0
        out = capsys.readouterr().out
        assert "fleet status" in out
        assert "phase=done" in out

    def test_top_status_in_empty_stream_fails(self, tmp_path, capsys):
        empty = tmp_path / "status.jsonl"
        empty.write_text("")
        assert fleet_main(["top", "--once", "--status-in", str(empty)]) == 1
        assert "no snapshots" in capsys.readouterr().out

    def test_top_status_in_garbage_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "status.jsonl"
        bad.write_text("{not json\n")
        assert fleet_main(["top", "--once", "--status-in", str(bad)]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_top_needs_at_least_one_worker(self, capsys):
        assert fleet_main(["top", "--once", "--workers", "0"]) == 2
        assert "at least one worker" in capsys.readouterr().err


class TestReport:
    def test_missing_rollup_is_a_usage_error(self, tmp_path):
        assert fleet_main(["report", str(tmp_path / "FLEET_none.json")]) == 2


class TestSmoke:
    def test_smoke_passes_and_verifies_digests(self, capsys):
        assert fleet_main(["smoke"]) == 0
        out = capsys.readouterr().out
        assert "fleet smoke ok" in out
        assert "digests verified inline" in out


class TestUsage:
    def test_no_subcommand_is_a_usage_error(self):
        assert fleet_main([]) == 2

    def test_unknown_subcommand_is_a_usage_error(self):
        assert fleet_main(["launch"]) == 2
