"""The ``python -m repro fleet`` surface: run, report, smoke."""

from __future__ import annotations

import pytest

from repro.fleet.cli import main as fleet_main
from repro.fleet.rollup import load_rollup

pytestmark = pytest.mark.fleet


class TestRun:
    def test_run_writes_a_valid_rollup(self, tmp_path, capsys):
        out = tmp_path / "FLEET_test.json"
        code = fleet_main(
            [
                "run",
                "--count", "4",
                "--workers", "2",
                "--duration", "1.0",
                "--seed", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        rollup = load_rollup(out)
        assert rollup["fleet"]["by_status"] == {"ok": 4}
        assert rollup["config"]["workers"] == 2
        stdout = capsys.readouterr().out
        assert "fleet rollup" in stdout
        assert str(out) in stdout

    def test_inline_run_and_report(self, tmp_path, capsys):
        out = tmp_path / "FLEET_inline.json"
        assert fleet_main(
            ["run", "--count", "2", "--workers", "0", "--duration", "1.0",
             "--out", str(out), "--no-monitor", "--no-latency"]
        ) == 0
        capsys.readouterr()
        assert fleet_main(["report", str(out)]) == 0
        assert "drives: 2" in capsys.readouterr().out


class TestReport:
    def test_missing_rollup_is_a_usage_error(self, tmp_path):
        assert fleet_main(["report", str(tmp_path / "FLEET_none.json")]) == 2


class TestSmoke:
    def test_smoke_passes_and_verifies_digests(self, capsys):
        assert fleet_main(["smoke"]) == 0
        out = capsys.readouterr().out
        assert "fleet smoke ok" in out
        assert "digests verified inline" in out


class TestUsage:
    def test_no_subcommand_is_a_usage_error(self):
        assert fleet_main([]) == 2

    def test_unknown_subcommand_is_a_usage_error(self):
        assert fleet_main(["launch"]) == 2
