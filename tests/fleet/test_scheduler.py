"""The fleet scheduler: sharded determinism, containment, backpressure.

This file carries the subsystem's acceptance tests: a 64-drive sweep
sharded over 4 workers must be byte-identical (per-drive frame digests
and the whole deterministic rollup view) to the sequential in-process
reference run, and injected worker crashes/hangs must cost exactly one
outcome each while the run completes.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.spec import DriveSpec
from repro.errors import FleetError
from repro.fleet.rollup import deterministic_view, validate_rollup
from repro.fleet.scheduler import (
    JOIN_TIMEOUT_S,
    FleetConfig,
    FleetScheduler,
    _reap,
    run_fleet,
)
from repro.fleet.specs import sweep_specs

pytestmark = pytest.mark.fleet


def canonical(view: dict) -> str:
    return json.dumps(view, sort_keys=True)


class TestShardedDeterminism:
    def test_64_drives_over_4_workers_match_the_inline_reference(self):
        # The acceptance criterion of the subsystem: same specs, same
        # seeds, different executors -> byte-identical deterministic view.
        specs = sweep_specs(64, fleet_seed=2026, duration_s=1.0)
        sharded = run_fleet(specs, FleetConfig(workers=4))
        inline = run_fleet(specs, FleetConfig(workers=0))
        validate_rollup(sharded)
        validate_rollup(inline)
        assert sharded["fleet"]["by_status"] == {"ok": 64}

        sharded_digests = [o["frames_digest"] for o in sharded["outcomes"]]
        inline_digests = [o["frames_digest"] for o in inline["outcomes"]]
        assert sharded_digests == inline_digests

        assert canonical(deterministic_view(sharded)) == canonical(
            deterministic_view(inline)
        )

    def test_sharded_run_twice_is_identical(self):
        specs = sweep_specs(8, fleet_seed=5, duration_s=1.0)
        first = run_fleet(specs, FleetConfig(workers=2))
        second = run_fleet(specs, FleetConfig(workers=2))
        assert canonical(deterministic_view(first)) == canonical(
            deterministic_view(second)
        )

    def test_outcomes_come_back_in_submission_order(self):
        specs = sweep_specs(9, fleet_seed=1, duration_s=1.0)
        rollup = run_fleet(specs, FleetConfig(workers=3))
        assert [o["spec"]["name"] for o in rollup["outcomes"]] == [s.name for s in specs]


class TestContainment:
    def test_worker_crash_is_one_outcome_not_the_run(self):
        specs = list(sweep_specs(6, fleet_seed=4, duration_s=1.0))
        specs[2] = dataclasses.replace(specs[2], chaos="crash")
        scheduler = FleetScheduler(FleetConfig(workers=2))
        scheduler.submit_all(specs)
        outcomes = scheduler.run()
        assert [o.status for o in outcomes] == ["ok", "ok", "crashed", "ok", "ok", "ok"]
        assert "died" in outcomes[2].error
        assert scheduler.events_by_kind["fleet.worker.crash"] == 1
        # The dead worker was replaced: one spawn beyond the initial two.
        assert scheduler.events_by_kind["fleet.worker.spawn"] == 3

    def test_worker_hang_times_out_and_the_run_completes(self):
        specs = list(sweep_specs(4, fleet_seed=4, duration_s=1.0))
        specs[1] = dataclasses.replace(specs[1], chaos="hang")
        scheduler = FleetScheduler(FleetConfig(workers=2, drive_timeout_s=1.0))
        scheduler.submit_all(specs)
        outcomes = scheduler.run()
        statuses = [o.status for o in outcomes]
        assert statuses[1] == "timeout"
        assert statuses.count("ok") == 3
        assert scheduler.events_by_kind["fleet.worker.timeout"] == 1

    def test_inline_reference_contains_the_same_chaos(self):
        specs = [
            DriveSpec(name="a", duration_s=1.0),
            DriveSpec(name="b", duration_s=1.0, chaos="crash"),
            DriveSpec(name="c", duration_s=1.0, chaos="hang"),
        ]
        scheduler = FleetScheduler(FleetConfig(workers=0))
        scheduler.submit_all(specs)
        outcomes = scheduler.run()
        assert [o.status for o in outcomes] == ["ok", "crashed", "timeout"]


class TestAdmissionControl:
    def test_queue_capacity_rejects_with_reason(self):
        scheduler = FleetScheduler(FleetConfig(workers=0, queue_capacity=2))
        admissions = scheduler.submit_all(sweep_specs(4, duration_s=1.0))
        assert [a.accepted for a in admissions] == [True, True, False, False]
        assert "queue full" in admissions[2].reason
        assert admissions[0].index == 0 and admissions[1].index == 1
        assert [o.status for o in scheduler.rejected] == ["rejected", "rejected"]
        assert scheduler.events_by_kind["fleet.reject"] == 2

    def test_finished_scheduler_rejects_late_submissions(self):
        scheduler = FleetScheduler(FleetConfig(workers=0))
        scheduler.submit(DriveSpec(duration_s=1.0))
        scheduler.run()
        late = scheduler.submit(DriveSpec(name="late", duration_s=1.0))
        assert not late.accepted
        assert "run finished" in late.reason

    def test_rejections_reach_the_rollup(self):
        specs = sweep_specs(3, duration_s=1.0)
        rollup = run_fleet(specs, FleetConfig(workers=0, queue_capacity=2))
        assert rollup["fleet"]["drives"] == 2
        assert rollup["fleet"]["rejected"] == 1
        statuses = [o["status"] for o in rollup["outcomes"]]
        assert statuses == ["ok", "ok", "rejected"]


class _FakeProcess:
    """Records join/kill calls; ``alive_script`` answers is_alive() in order."""

    def __init__(self, alive_script):
        self.alive_script = list(alive_script)
        self.joins = []
        self.kills = 0

    def join(self, timeout=None):
        self.joins.append(timeout)

    def is_alive(self):
        return self.alive_script.pop(0)

    def kill(self):
        self.kills += 1


class TestReap:
    """Pins the bounded-join contract: reaping a worker can never hang the
    scheduler, even when the child ignores terminate()."""

    def test_join_timeout_is_bounded(self):
        assert 0 < JOIN_TIMEOUT_S <= 30.0

    def test_cooperative_exit_needs_no_kill(self):
        process = _FakeProcess(alive_script=[False])
        _reap(process)
        assert process.joins == [JOIN_TIMEOUT_S]
        assert process.kills == 0

    def test_stuck_process_is_killed(self):
        process = _FakeProcess(alive_script=[True])
        _reap(process)
        assert process.kills == 1
        assert process.joins == [JOIN_TIMEOUT_S, JOIN_TIMEOUT_S]


class TestEvents:
    def test_lifecycle_events_are_counted(self):
        scheduler = FleetScheduler(FleetConfig(workers=0))
        scheduler.submit_all(sweep_specs(2, duration_s=1.0))
        scheduler.run()
        counts = scheduler.events_by_kind
        assert counts["fleet.submit"] == 2
        assert counts["fleet.drive.start"] == 2
        assert counts["fleet.drive.done"] == 2
        assert counts["fleet.run.start"] == 1
        assert counts["fleet.run.done"] == 1

    def test_unknown_event_kind_is_rejected_at_runtime(self):
        scheduler = FleetScheduler(FleetConfig(workers=0))
        with pytest.raises(FleetError, match="vocabulary"):
            scheduler.fleet_event("fleet.party")


class TestFleetConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"queue_capacity": 0},
            {"drive_timeout_s": 0.0},
            {"poll_interval_s": 0.0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(FleetError):
            FleetConfig(**kwargs)
