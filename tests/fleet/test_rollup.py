"""Rollup folding, schema validation, artefact round trips, rendering."""

from __future__ import annotations

import pytest

from repro.errors import FleetError
from repro.fleet.outcome import DriveOutcome
from repro.fleet.rollup import (
    FLEET_SCHEMA,
    FLEET_SCHEMA_VERSION,
    WALL_ROLLUP_KEYS,
    build_rollup,
    deterministic_view,
    load_rollup,
    render_rollup,
    validate_rollup,
    write_rollup,
)

pytestmark = pytest.mark.fleet


def make_outcome(
    name: str,
    status: str = "ok",
    frames: int = 50,
    violations: int = 0,
    wall_ms: float = 10.0,
) -> DriveOutcome:
    if status != "ok":
        return DriveOutcome(spec={"name": name}, status=status, error="boom")
    return DriveOutcome(
        spec={"name": name},
        status="ok",
        frames_digest="0" * 64,
        summary={
            "frames": frames,
            "vehicle_dropped": 1,
            "frames_with_faults": 2,
            "frames_degraded": 0,
            "degradations": 0,
            "failed_reconfigurations": 0,
        },
        verdict={
            "state": "degraded" if violations else "ok",
            "violations": violations,
            "violations_by_slo": {"slo:detection-health": violations} if violations else {},
            "transitions": 0,
            "triggers": violations,
            "incidents": 0,
        },
        metrics=[
            {"kind": "counter", "name": "drive_frames", "labels": {}, "value": frames},
            {"kind": "counter", "name": "frame_deadline_misses_total", "labels": {}, "value": 1},
        ],
        latency_ms={
            "kind": "histogram",
            "name": "frame_wall_ms",
            "labels": {},
            "bounds": [1.0, 100.0],
            "bucket_counts": [0, frames, 0],
            "count": frames,
            "sum": wall_ms * frames,
            "min": wall_ms,
            "max": wall_ms,
        },
        wall_s=0.5,
        worker_id=0,
    )


@pytest.fixture()
def rollup() -> dict:
    return build_rollup(
        [
            make_outcome("a", violations=2),
            make_outcome("b"),
            make_outcome("c", status="crashed"),
        ],
        rejected=[DriveOutcome(spec={"name": "d"}, status="rejected", error="queue full")],
        events_by_kind={"fleet.submit": 3, "fleet.reject": 1},
        elapsed_s=2.0,
    )


class TestBuildRollup:
    def test_status_and_rejection_counts(self, rollup):
        assert rollup["schema"] == FLEET_SCHEMA
        assert rollup["schema_version"] == FLEET_SCHEMA_VERSION
        assert rollup["fleet"] == {
            "drives": 3,
            "ok": 2,
            "by_status": {"ok": 2, "crashed": 1},
            "rejected": 1,
        }
        assert len(rollup["outcomes"]) == 4

    def test_frame_totals_sum_over_ok_drives(self, rollup):
        assert rollup["frames"]["frames"] == 100
        assert rollup["frames"]["vehicle_dropped"] == 2
        assert rollup["frames"]["frames_with_faults"] == 4

    def test_health_aggregation(self, rollup):
        health = rollup["health"]
        assert health["monitored_drives"] == 2
        assert health["by_state"] == {"degraded": 1, "ok": 1}
        assert health["slo_violations"] == 2
        assert health["slo_violations_by_slo"] == {"slo:detection-health": 2}
        assert health["breach_rate"] == pytest.approx(0.5)

    def test_latency_histograms_merge(self, rollup):
        assert rollup["latency_ms"]["count"] == 100
        assert rollup["latency_ms"]["percentiles"]["p50"] == pytest.approx(10.0, abs=5.0)

    def test_metrics_merge_and_stay_deterministic(self, rollup):
        names = {s["name"] for s in rollup["metrics"]}
        assert names == {"drive_frames"}  # wall-derived series filtered out
        assert rollup["metrics"][0]["value"] == 100

    def test_wall_section(self, rollup):
        assert rollup["wall"]["elapsed_s"] == 2.0
        assert rollup["wall"]["drives_per_s"] == pytest.approx(1.5)

    def test_rejected_list_must_carry_rejected_statuses(self):
        with pytest.raises(FleetError, match="rejected"):
            build_rollup([], rejected=[make_outcome("x")])


class TestDeterministicView:
    def test_wall_and_scheduling_keys_are_stripped(self, rollup):
        view = deterministic_view(rollup)
        for key in WALL_ROLLUP_KEYS + ("config", "events_by_kind"):
            assert key not in view
        for outcome in view["outcomes"]:
            assert "wall_s" not in outcome
            assert "worker_id" not in outcome
            assert "latency_ms" not in outcome

    def test_deterministic_sections_survive(self, rollup):
        view = deterministic_view(rollup)
        assert view["fleet"] == rollup["fleet"]
        assert view["health"] == rollup["health"]
        assert view["frames"] == rollup["frames"]


class TestValidation:
    def test_good_rollup_validates(self, rollup):
        validate_rollup(rollup)

    def test_missing_keys_rejected(self, rollup):
        del rollup["health"]
        with pytest.raises(FleetError, match="missing"):
            validate_rollup(rollup)

    def test_wrong_schema_rejected(self, rollup):
        rollup["schema"] = "repro.fleet/other"
        with pytest.raises(FleetError, match="schema"):
            validate_rollup(rollup)

    def test_future_schema_version_rejected(self, rollup):
        rollup["schema_version"] = FLEET_SCHEMA_VERSION + 1
        with pytest.raises(FleetError, match="version"):
            validate_rollup(rollup)

    def test_unknown_status_rejected(self, rollup):
        rollup["fleet"]["by_status"]["winning"] = 1
        with pytest.raises(FleetError, match="status"):
            validate_rollup(rollup)

    def test_unknown_event_kind_rejected(self, rollup):
        rollup["events_by_kind"]["fleet.party"] = 1
        with pytest.raises(FleetError, match="event kind"):
            validate_rollup(rollup)


class TestArtefacts:
    def test_write_then_load_round_trips(self, rollup, tmp_path):
        path = write_rollup(rollup, tmp_path / "FLEET_test.json")
        assert load_rollup(path) == rollup

    def test_load_rejects_unreadable_files(self, tmp_path):
        missing = tmp_path / "FLEET_missing.json"
        with pytest.raises(FleetError, match="cannot load"):
            load_rollup(missing)
        bad = tmp_path / "FLEET_bad.json"
        bad.write_text("{not json")
        with pytest.raises(FleetError, match="cannot load"):
            load_rollup(bad)

    def test_render_mentions_the_headlines(self, rollup):
        text = render_rollup(rollup)
        assert "drives: 3" in text
        assert "rejected=1" in text
        assert "breach_rate=0.500" in text
        assert "p50=" in text
