"""Seeded sweep generation: round-robin traces, stable derived seeds."""

from __future__ import annotations

import pytest

from repro.core.spec import TRACE_FACTORIES, derive_drive_seed
from repro.errors import FleetError
from repro.fleet.specs import DEFAULT_SCENARIO_ROTATION, sweep_specs

pytestmark = pytest.mark.fleet


class TestSweepSpecs:
    def test_count_and_names(self):
        specs = sweep_specs(6, fleet_seed=1, duration_s=2.0)
        assert len(specs) == 6
        assert [s.name for s in specs] == [f"drive-{i:04d}" for i in range(6)]

    def test_traces_round_robin_over_all_factories(self):
        specs = sweep_specs(2 * len(TRACE_FACTORIES), duration_s=2.0)
        assert {s.trace for s in specs} == set(TRACE_FACTORIES)

    def test_seeds_are_derived_and_distinct(self):
        specs = sweep_specs(16, fleet_seed=3, duration_s=2.0)
        assert len({s.seed for s in specs}) == 16
        assert specs[5].seed == derive_drive_seed(3, 5)

    def test_growing_the_fleet_never_reseeds_existing_drives(self):
        small = sweep_specs(8, fleet_seed=3, duration_s=2.0)
        large = sweep_specs(12, fleet_seed=3, duration_s=2.0)
        assert large[:8] == small

    def test_scenario_rotation_includes_clean_and_faulted_drives(self):
        specs = sweep_specs(len(DEFAULT_SCENARIO_ROTATION), duration_s=2.0)
        scenarios = [s.fault_scenario for s in specs]
        assert None in scenarios
        assert "flaky_dma" in scenarios

    def test_explicit_traces_and_scenarios(self):
        specs = sweep_specs(
            4, duration_s=2.0, traces=("tunnel",), fault_scenarios=(None,)
        )
        assert all(s.trace == "tunnel" and s.fault_scenario is None for s in specs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"count": 0},
            {"count": 4, "duration_s": 0.0},
            {"count": 4, "traces": ()},
        ],
    )
    def test_bad_sweeps_rejected(self, kwargs):
        with pytest.raises(FleetError):
            sweep_specs(**kwargs)
