"""Cross-process trace stitching: one Chrome trace, stable lanes.

The stitched document merges per-drive span dumps (written by workers)
with the scheduler's own spans on one shared wall epoch.  The lane
contract pinned here: the scheduler is pid 1, worker ``w`` is pid
``w + 2`` keyed by worker *id* — so a crash-respawned slot keeps its
lane — and within a pid, tids are assigned in sorted track-name order.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import FleetError
from repro.fleet.scheduler import FleetConfig, FleetScheduler
from repro.fleet.specs import sweep_specs
from repro.fleet.trace import (
    SCHEDULER_PID,
    load_drive_dumps,
    stitch_fleet_trace,
    worker_pid,
)
from repro.telemetry import load_dump

pytestmark = pytest.mark.fleet


def run_sharded(tmp_path, specs, workers=2):
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    scheduler = FleetScheduler(
        FleetConfig(workers=workers, drive_timeout_s=30.0, trace_dir=str(trace_dir))
    )
    scheduler.submit_all(specs)
    outcomes = scheduler.run()
    return scheduler, trace_dir, outcomes


class TestWorkerPid:
    def test_lane_assignment_is_stable_and_keyed_by_worker_id(self):
        assert worker_pid(None) == SCHEDULER_PID
        assert worker_pid(0) == 2
        assert worker_pid(3) == 5

    def test_missing_trace_dir_is_an_error(self, tmp_path):
        with pytest.raises(FleetError, match="does not exist"):
            load_drive_dumps(tmp_path / "nope")


class TestStitching:
    def test_stitched_trace_merges_drives_and_scheduler_spans(self, tmp_path):
        specs = sweep_specs(4, fleet_seed=21, duration_s=1.0)
        scheduler, trace_dir, outcomes = run_sharded(tmp_path, specs)
        assert all(o.ok for o in outcomes)
        assert len(load_drive_dumps(trace_dir)) == 4

        out = tmp_path / "fleet-trace.json"
        n_events = stitch_fleet_trace(
            trace_dir, out, scheduler_telemetry=scheduler.telemetry
        )
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        assert n_events == len(events)

        spans = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        # Scheduler-side lifecycle spans sit next to worker drive spans.
        assert "fleet.run" in names
        assert "fleet.queue.wait" in names
        assert "fleet.worker.lifetime" in names
        assert "fleet.reap" in names
        assert any(name.startswith("drive.") for name in names)

        # One shared wall epoch: every timestamp is relative and sane.
        assert all(e["ts"] >= 0 for e in spans)
        assert min(e["ts"] for e in spans) == 0

        # Scheduler lane + one lane per worker id, correctly labelled.
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_names[SCHEDULER_PID] == "fleet scheduler"
        assert process_names[worker_pid(0)] == "worker 0"
        assert process_names[worker_pid(1)] == "worker 1"

        # tids are per-(pid, track) and every lane is named exactly once.
        thread_names = [
            (e["pid"], e["tid"])
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(thread_names) == len(set(thread_names))
        assert all(tid >= 1 for _, tid in thread_names)

        # The document reloads like any Chrome export.
        dump = load_dump(str(out))
        assert dump.meta["source"] == "fleet-trace"
        assert dump.meta["drives"] == 4
        assert len(dump.spans) == len(spans)

    def test_lanes_survive_worker_respawn(self, tmp_path):
        # A chaos crash kills worker processes; the slot respawns under
        # the same worker id, so the stitched trace keeps one pid lane
        # per slot — generations stack inside it instead of minting a
        # fresh process per respawn.
        specs = list(sweep_specs(5, fleet_seed=22, duration_s=1.0))
        specs[1] = dataclasses.replace(specs[1], chaos="crash")
        scheduler, trace_dir, outcomes = run_sharded(tmp_path, specs)
        assert [o.status for o in outcomes].count("crashed") == 1
        assert scheduler.events_by_kind["fleet.worker.spawn"] == 3  # 2 + respawn

        out = tmp_path / "fleet-trace.json"
        stitch_fleet_trace(trace_dir, out, scheduler_telemetry=scheduler.telemetry)
        events = json.loads(out.read_text())["traceEvents"]

        lifetimes = [
            e for e in events if e["ph"] == "X" and e["name"] == "fleet.worker.lifetime"
        ]
        assert len(lifetimes) == 3
        by_worker: dict[int, set[int]] = {}
        generations: dict[int, set[int]] = {}
        for e in lifetimes:
            wid = int(e["args"]["worker"])
            by_worker.setdefault(wid, set()).add(e["pid"])
            generations.setdefault(wid, set()).add(int(e["args"]["generation"]))
        # Both generations of the crashed slot share one pid lane.
        assert all(len(pids) == 1 for pids in by_worker.values())
        assert {wid: pids.pop() for wid, pids in by_worker.items()} == {
            0: worker_pid(0),
            1: worker_pid(1),
        }
        assert sorted(g for gens in generations.values() for g in gens) == [1, 1, 2]

        # Same-named tracks map to the same tid on both sides of the
        # respawn: drive spans from generation 1 and 2 share lanes.
        tid_of = {}
        for e in events:
            if e["ph"] != "X":
                continue
            key = (e["pid"], e["name"])
            tid_of.setdefault(key, set()).add(e["tid"])
        for key, tids in tid_of.items():
            assert len(tids) == 1, f"track {key} rendered on multiple tids {tids}"

    def test_empty_trace_dir_stitches_to_an_empty_document(self, tmp_path):
        empty = tmp_path / "traces"
        empty.mkdir()
        out = tmp_path / "fleet-trace.json"
        assert stitch_fleet_trace(empty, out) == 0
        assert json.loads(out.read_text())["traceEvents"] == []
