"""The live plane's acceptance tests: non-perturbation and hang verdicts.

Two contracts are pinned here.  First, the observability plane is a pure
side channel: a 64-drive sharded sweep produces a byte-identical
deterministic rollup view with streaming on, streaming off, and inline —
heartbeats, snapshots, and expositions change *when* things are
observed, never *what* the drives compute.  Second, heartbeat liveness
splits the old catch-all timeout: a chaos ``hang`` (beats stop) is
reported ``hung``, a chaos ``slow`` (beats keep flowing) ``deadline``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.fleet.outcome import HANG_VERDICTS
from repro.fleet.rollup import deterministic_view, validate_rollup
from repro.fleet.scheduler import FleetConfig, FleetScheduler, run_fleet
from repro.fleet.specs import sweep_specs
from repro.fleet.status import validate_status

pytestmark = pytest.mark.fleet


def canonical(view: dict) -> str:
    return json.dumps(view, sort_keys=True)


#: Tight liveness for chaos tests: beats every 50 ms, suspect after
#: 300 ms of silence, hung after 600 ms, drive deadline at 2 s — so a
#: silent worker is judged hung well before its deadline fires.
def chaos_config(**overrides) -> FleetConfig:
    defaults = dict(
        workers=2,
        drive_timeout_s=2.0,
        heartbeat_interval_s=0.05,
        suspect_after_s=0.3,
        hung_after_s=0.6,
        status_interval_s=0.2,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestNonPerturbation:
    def test_64_drives_streaming_on_off_inline_byte_identical(self, tmp_path):
        # The acceptance criterion of this PR: the plane must not perturb
        # the computation.  Same specs, three executions — live plane on
        # (with status + exposition outputs), plane off, and the inline
        # sequential reference — one deterministic view.
        specs = sweep_specs(64, fleet_seed=2027, duration_s=1.0)
        status_path = tmp_path / "status.jsonl"
        metrics_path = tmp_path / "fleet.om"
        on = run_fleet(
            specs,
            FleetConfig(workers=4, streaming=True, status_interval_s=0.2),
            status_out=status_path,
            metrics_out=metrics_path,
        )
        off = run_fleet(specs, FleetConfig(workers=4, streaming=False))
        inline = run_fleet(specs, FleetConfig(workers=0))
        for rollup in (on, off, inline):
            validate_rollup(rollup)
            assert rollup["fleet"]["by_status"] == {"ok": 64}
        assert (
            canonical(deterministic_view(on))
            == canonical(deterministic_view(off))
            == canonical(deterministic_view(inline))
        )
        # ... and the plane genuinely ran while producing that identity:
        snapshots = [
            json.loads(line) for line in status_path.read_text().splitlines() if line
        ]
        assert snapshots, "streaming run published no status snapshots"
        for snapshot in snapshots:
            validate_status(snapshot)
        assert snapshots[-1]["phase"] == "done"
        assert snapshots[-1]["drives"]["done"] == 64
        assert metrics_path.read_text().rstrip().endswith("# EOF")
        assert on["events_by_kind"]["fleet.worker.heartbeat"] > 0
        assert on["events_by_kind"]["fleet.drive.progress"] == 2 * 64
        # The off/inline runs carry no side-channel event kinds at all.
        assert "fleet.worker.heartbeat" not in off["events_by_kind"]
        assert "fleet.worker.heartbeat" not in inline["events_by_kind"]


class TestHangVerdicts:
    def test_chaos_hang_is_judged_hung(self):
        # A hung worker wedges its emitter: beats stop, the liveness age
        # crosses hung_after_s, and the timeout outcome says so.
        specs = list(sweep_specs(4, fleet_seed=9, duration_s=1.0))
        specs[1] = dataclasses.replace(specs[1], chaos="hang")
        scheduler = FleetScheduler(chaos_config())
        scheduler.submit_all(specs)
        outcomes = scheduler.run()
        assert outcomes[1].status == "timeout"
        assert outcomes[1].hang_verdict == "hung"
        assert outcomes[1].last_heartbeat_age_s is not None
        assert outcomes[1].last_heartbeat_age_s >= 0.6
        assert [o.status for o in outcomes].count("ok") == 3
        # The suspect early warning fired before the deadline did.
        assert scheduler.events_by_kind.get("fleet.worker.suspect", 0) >= 1
        suspects = [
            e for e in scheduler.events if e["kind"] == "fleet.worker.suspect"
        ]
        assert suspects[0]["index"] == 1
        assert suspects[0]["heartbeat_age_s"] >= 0.3
        timeout_events = [
            e for e in scheduler.events if e["kind"] == "fleet.worker.timeout"
        ]
        assert timeout_events[0]["hang_verdict"] == "hung"

    def test_chaos_slow_is_judged_deadline(self):
        # A slow worker keeps beating: same deadline, different verdict.
        specs = list(sweep_specs(4, fleet_seed=9, duration_s=1.0))
        specs[2] = dataclasses.replace(specs[2], chaos="slow")
        scheduler = FleetScheduler(chaos_config())
        scheduler.submit_all(specs)
        outcomes = scheduler.run()
        assert outcomes[2].status == "timeout"
        assert outcomes[2].hang_verdict == "deadline"
        assert outcomes[2].last_heartbeat_age_s is not None
        assert outcomes[2].last_heartbeat_age_s < 0.6
        assert [o.status for o in outcomes].count("ok") == 3

    def test_verdicts_reach_the_rollup_wall_section(self):
        specs = list(sweep_specs(5, fleet_seed=9, duration_s=1.0))
        specs[1] = dataclasses.replace(specs[1], chaos="hang")
        specs[3] = dataclasses.replace(specs[3], chaos="slow")
        rollup = run_fleet(specs, chaos_config())
        validate_rollup(rollup)
        assert rollup["wall"]["timeouts_by_verdict"] == {"hung": 1, "deadline": 1}
        # ... and the verdict fields are wall territory: stripped from the
        # deterministic view's outcomes.
        for outcome in deterministic_view(rollup)["outcomes"]:
            assert "hang_verdict" not in outcome
            assert "last_heartbeat_age_s" not in outcome

    def test_streaming_off_timeouts_have_no_verdict(self):
        specs = list(sweep_specs(3, fleet_seed=9, duration_s=1.0))
        specs[1] = dataclasses.replace(specs[1], chaos="hang")
        rollup = run_fleet(specs, chaos_config(streaming=False))
        assert rollup["wall"]["timeouts_by_verdict"] == {"unknown": 1}
        (timeout,) = [o for o in rollup["outcomes"] if o["status"] == "timeout"]
        assert timeout["hang_verdict"] is None
        assert timeout["last_heartbeat_age_s"] is None

    def test_hang_verdict_vocabulary_is_validated(self):
        from repro.errors import FleetError
        from repro.fleet.outcome import DriveOutcome

        assert set(HANG_VERDICTS) == {"hung", "deadline"}
        with pytest.raises(FleetError, match="hang_verdict"):
            DriveOutcome(spec={"name": "x"}, status="timeout", hang_verdict="wedged")


class TestStatusListeners:
    def test_listeners_see_running_then_done_phases(self):
        specs = sweep_specs(6, fleet_seed=3, duration_s=1.0)
        seen: list[dict] = []
        scheduler = FleetScheduler(
            FleetConfig(workers=2, status_interval_s=0.1)
        )
        scheduler.status_listeners.append(seen.append)
        scheduler.submit_all(specs)
        scheduler.run()
        assert seen, "no snapshots published"
        assert seen[-1]["phase"] == "done"
        assert seen[-1]["drives"]["done"] == 6
        assert scheduler.last_status is seen[-1]
        # Snapshot cadence events were counted, not appended per beat.
        assert scheduler.events_by_kind["fleet.status.snapshot"] == len(seen)
        assert all(
            e["kind"] != "fleet.worker.heartbeat" for e in scheduler.events
        )
