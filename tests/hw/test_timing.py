"""Tests for repro.hw.timing: video timing and the pipeline model."""

from __future__ import annotations

import pytest

from repro.errors import HardwareError
from repro.hw.timing import (
    HDTV_TIMING,
    PAPER_CLOCK_HZ,
    PipelineStage,
    StreamingPipeline,
    VideoTiming,
)


class TestVideoTiming:
    def test_hdtv_raster(self):
        assert HDTV_TIMING.active_pixels == 1920 * 1080
        assert HDTV_TIMING.total_pixels == 2200 * 1125

    def test_fps_at_paper_clock(self):
        # The headline claim: 125 MHz streaming = ~50 fps HDTV.
        fps = HDTV_TIMING.fps_at(PAPER_CLOCK_HZ)
        assert fps == pytest.approx(50.5, abs=0.1)

    def test_fps_scales_with_ii(self):
        assert HDTV_TIMING.fps_at(PAPER_CLOCK_HZ, 2.0) == pytest.approx(
            HDTV_TIMING.fps_at(PAPER_CLOCK_HZ) / 2.0
        )

    def test_rejects_bad_geometry(self):
        with pytest.raises(HardwareError):
            VideoTiming(width=0)
        with pytest.raises(HardwareError):
            HDTV_TIMING.fps_at(0.0)


class TestPipelineStage:
    def test_rejects_bad_ii(self):
        with pytest.raises(HardwareError):
            PipelineStage("x", initiation_interval_cycles=0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(HardwareError):
            PipelineStage("x", latency_cycles=-1)


class TestStreamingPipeline:
    def _pipe(self) -> StreamingPipeline:
        pipe = StreamingPipeline("test", HDTV_TIMING, PAPER_CLOCK_HZ)
        pipe.add_stage(PipelineStage("a", 1.0, latency_cycles=1000))
        pipe.add_stage(PipelineStage("b", 1.0, latency_cycles=2000))
        return pipe

    def test_ii1_pipeline_hits_raster_rate(self):
        assert self._pipe().fps == pytest.approx(50.5, abs=0.1)

    def test_slow_stage_becomes_bottleneck(self):
        pipe = self._pipe()
        pipe.add_stage(PipelineStage("slow", 2.0))
        assert pipe.bottleneck.name == "slow"
        assert pipe.fps == pytest.approx(25.25, abs=0.1)

    def test_decimated_stage_not_bottleneck(self):
        pipe = self._pipe()
        pipe.add_stage(
            PipelineStage("dbn", 1.0, work_items_per_frame=100_000)
        )
        assert pipe.bottleneck.name in ("a", "b")

    def test_latency_adds_once_per_frame(self):
        pipe = self._pipe()
        assert pipe.frame_latency_cycles == pipe.cycles_per_frame + 3000

    def test_empty_pipeline_rejected(self):
        pipe = StreamingPipeline("empty", HDTV_TIMING)
        with pytest.raises(HardwareError):
            _ = pipe.bottleneck

    def test_report_structure(self):
        report = self._pipe().report()
        assert report["name"] == "test"
        assert len(report["stages"]) == 2
        assert report["fps"] > 0
