"""Tests for repro.hw.resources: vectors, device, estimators."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ResourceError
from repro.hw.resources import (
    Device,
    ResourceVector,
    ZYNQ_7Z100,
    adder_tree,
    axi_dma_core,
    axi_interconnect,
    bram_for_bits,
    divider,
    fifo,
    line_buffer,
    mac_array,
)


def vectors():
    n = st.integers(min_value=0, max_value=10**6)
    return st.builds(ResourceVector, lut=n, ff=n, bram=st.integers(0, 1000), dsp=st.integers(0, 2000))


class TestVector:
    def test_rejects_negative(self):
        with pytest.raises(ResourceError):
            ResourceVector(lut=-1)

    @given(vectors(), vectors())
    def test_addition_componentwise(self, a, b):
        s = a + b
        assert s.lut == a.lut + b.lut
        assert s.dsp == a.dsp + b.dsp

    @given(vectors(), vectors(), vectors())
    def test_addition_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(vectors())
    def test_scaling_monotone(self, v):
        assert v.fits_in(v.scaled(1.5))

    def test_scaled_ceils(self):
        v = ResourceVector(lut=3).scaled(1.1)
        assert v.lut == 4

    @given(vectors(), vectors())
    def test_max_with_dominates_both(self, a, b):
        m = a.max_with(b)
        assert a.fits_in(m) and b.fits_in(m)

    def test_fits_in(self):
        small = ResourceVector(lut=10, ff=10, bram=1, dsp=1)
        big = ResourceVector(lut=20, ff=20, bram=2, dsp=2)
        assert small.fits_in(big)
        assert not big.fits_in(small)


class TestDevice:
    def test_paper_available_row(self):
        # Table II "Available Resources".
        avail = ZYNQ_7Z100.available
        assert (avail.lut, avail.ff, avail.bram, avail.dsp) == (277400, 554800, 755, 2020)

    def test_utilization_fractions(self):
        u = ZYNQ_7Z100.utilization(ResourceVector(lut=27740, ff=0, bram=0, dsp=202))
        assert u["LUT"] == pytest.approx(0.1)
        assert u["DSP48"] == pytest.approx(0.1)


class TestEstimators:
    def test_bram_for_bits(self):
        assert bram_for_bits(0) == 0
        assert bram_for_bits(36 * 1024) == 1
        assert bram_for_bits(36 * 1024 + 1) == 2

    def test_line_buffer_bram_scales_with_rows(self):
        small = line_buffer(1, 1920, 8)
        big = line_buffer(9, 1920, 8)
        assert big.bram > small.bram

    def test_line_buffer_rejects_bad_geometry(self):
        with pytest.raises(ResourceError):
            line_buffer(1, 0, 8)

    def test_mac_array_dsp_mapping(self):
        assert mac_array(10, use_dsp=True).dsp == 10
        assert mac_array(10, use_dsp=False).dsp == 0
        assert mac_array(10, use_dsp=False).lut > mac_array(10, use_dsp=True).lut

    def test_adder_tree_grows_with_inputs(self):
        assert adder_tree(81, 16).lut > adder_tree(9, 16).lut

    def test_divider_uses_dsp(self):
        assert divider().dsp >= 1

    def test_fifo_bram(self):
        assert fifo(36 * 1024).bram == 1

    def test_interconnect_grows_with_masters(self):
        assert axi_interconnect(4).lut > axi_interconnect(1).lut

    def test_interconnect_rejects_zero_masters(self):
        with pytest.raises(ResourceError):
            axi_interconnect(0)

    def test_dma_core_is_plausible(self):
        dma = axi_dma_core()
        assert 500 < dma.lut < 10_000
        assert dma.bram >= 1
