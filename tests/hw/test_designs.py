"""Tests for repro.hw.designs: the three Table-II designs and pipelines."""

from __future__ import annotations

import pytest

from repro.hw.designs import (
    dark_design,
    dark_pipeline,
    day_dusk_design,
    day_dusk_pipeline,
    hog_svm_design,
    pedestrian_design,
    pedestrian_pipeline,
    static_design,
)
from repro.hw.resources import ZYNQ_7Z100


class TestDesigns:
    def test_dark_is_largest_configuration(self):
        # "the dark configuration consumes more resources on the FPGA fabric"
        dd = day_dusk_design().total
        dk = dark_design().total
        assert dk.lut > dd.lut
        assert dk.dsp > dd.dsp

    def test_all_fit_device(self):
        for design in (day_dusk_design(), dark_design(), static_design()):
            assert design.total.fits_in(ZYNQ_7Z100.available), design.name

    def test_utilization_near_paper(self):
        targets = {
            "day-dusk": (day_dusk_design(), {"LUT": 0.19, "FF": 0.09, "BRAM": 0.11, "DSP48": 0.01}),
            "dark": (dark_design(), {"LUT": 0.40, "FF": 0.23, "BRAM": 0.19, "DSP48": 0.29}),
            "static": (static_design(), {"LUT": 0.21, "FF": 0.10, "BRAM": 0.12, "DSP48": 0.01}),
        }
        for name, (design, paper) in targets.items():
            measured = ZYNQ_7Z100.utilization(design.total)
            for cls, expected in paper.items():
                assert measured[cls] == pytest.approx(expected, abs=0.03), (name, cls)

    def test_block_accounting_sums(self):
        design = dark_design()
        total = design.total
        assert total.lut == sum(rv.lut for _, rv in design.blocks)
        assert total.dsp == sum(rv.dsp for _, rv in design.blocks)

    def test_dbn_engines_drive_dsp(self):
        one = dark_design(dbn_engines=1).total
        three = dark_design(dbn_engines=3).total
        assert three.dsp > 2 * one.dsp

    def test_two_models_in_bram(self):
        # "different versions of the trained model ... stored in two block RAM"
        dual = hog_svm_design(n_models=2).total
        single = hog_svm_design(n_models=1).total
        assert dual.bram >= single.bram

    def test_pedestrian_smaller_than_vehicle(self):
        assert pedestrian_design().total.lut < day_dusk_design().total.lut

    def test_static_includes_infrastructure(self):
        blocks = dict(static_design().blocks)
        assert "PR controller + ICAP manager" in blocks
        assert "AXI DMA cores x5" in blocks
        assert "PL DDR3 controller" in blocks


class TestPipelines:
    @pytest.mark.parametrize(
        "factory", [day_dusk_pipeline, dark_pipeline, pedestrian_pipeline]
    )
    def test_all_achieve_50fps(self, factory):
        assert factory().fps >= 50.0

    def test_dark_dbn_stage_fits_budget(self):
        pipe = dark_pipeline()
        dbn_stage = next(s for s in pipe.stages if "DBN" in s.name)
        assert pipe.stage_cycles_per_frame(dbn_stage) < pipe.timing.total_pixels

    def test_latency_under_two_frames(self):
        for pipe in (day_dusk_pipeline(), dark_pipeline(), pedestrian_pipeline()):
            assert pipe.frame_latency_s < 2.0 / 50.0
