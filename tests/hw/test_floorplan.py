"""Tests for repro.hw.floorplan: RP sizing."""

from __future__ import annotations

import pytest

from repro.errors import ResourceError
from repro.hw.designs import dark_design, day_dusk_design
from repro.hw.floorplan import (
    PAPER_SLACK,
    Partition,
    plan_partition,
    plan_vehicle_partition,
    region_capacity,
)
from repro.hw.resources import ResourceVector, ZYNQ_7Z100


class TestRegionCapacity:
    def test_full_fabric(self):
        cap = region_capacity(ZYNQ_7Z100, 1.0)
        assert cap.lut == ZYNQ_7Z100.available.lut

    def test_packing_derates_columns(self):
        cap = region_capacity(ZYNQ_7Z100, 0.5)
        assert cap.lut == ZYNQ_7Z100.available.lut // 2
        assert cap.dsp < ZYNQ_7Z100.available.dsp // 2 + 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ResourceError):
            region_capacity(ZYNQ_7Z100, 0.0)


class TestPlanPartition:
    def test_paper_partition_is_45_percent(self):
        # Table II: RP at 45 % LUT / 45 % FF / 40 % BRAM / 40 % DSP.
        rp = plan_vehicle_partition([day_dusk_design().total, dark_design().total])
        assert rp.area_fraction == pytest.approx(0.45)
        u = ZYNQ_7Z100.utilization(rp.capacity)
        assert u["LUT"] == pytest.approx(0.45, abs=0.005)
        assert u["BRAM"] == pytest.approx(0.40, abs=0.01)

    def test_partition_holds_both_configurations(self):
        rp = plan_vehicle_partition([day_dusk_design().total, dark_design().total])
        assert rp.fits(day_dusk_design().total)
        assert rp.fits(dark_design().total)

    def test_slack_grows_area(self):
        req = dark_design().total
        small = plan_partition(req, slack=1.0)
        big = plan_partition(req, slack=1.6)
        assert big.area_fraction > small.area_fraction

    def test_rejects_sub_unity_slack(self):
        with pytest.raises(ResourceError):
            plan_partition(ResourceVector(lut=10), slack=0.9)

    def test_rejects_oversized_requirement(self):
        huge = ResourceVector(lut=ZYNQ_7Z100.available.lut)
        with pytest.raises(ResourceError):
            plan_partition(huge, slack=1.5)

    def test_rejects_empty_configuration_list(self):
        with pytest.raises(ResourceError):
            plan_vehicle_partition([])

    def test_paper_slack_value(self):
        # The text says "about 1.2 times"; Table II realises 45/40 = 1.125
        # over the binding LUT requirement.
        assert PAPER_SLACK == pytest.approx(1.125)

    def test_partition_capacity_meets_slacked_requirement(self):
        req = dark_design().total
        rp = plan_partition(req, slack=1.125)
        assert req.scaled(1.125).fits_in(rp.capacity)
