"""Tests for repro.features.windows: sliding windows and pyramids."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.windows import pyramid, slide, slide_pyramid


class TestSlide:
    def test_count_and_shapes(self):
        img = np.zeros((20, 30))
        wins = list(slide(img, (10, 10), (5, 5)))
        assert len(wins) == 3 * 5
        assert all(w.patch.shape == (10, 10) for w in wins)

    def test_patch_content(self):
        img = np.arange(16, dtype=float).reshape(4, 4)
        wins = list(slide(img, (2, 2), (2, 2)))
        assert np.array_equal(wins[0].patch, img[0:2, 0:2])
        assert np.array_equal(wins[-1].patch, img[2:4, 2:4])

    def test_rect_in_frame_maps_scale(self):
        img = np.zeros((10, 10))
        wins = list(slide(img, (4, 4), (4, 4), scale=0.5))
        r = wins[0].rect_in_frame()
        assert (r.w, r.h) == (8.0, 8.0)

    def test_rejects_bad_stride(self):
        with pytest.raises(FeatureError):
            list(slide(np.zeros((8, 8)), (4, 4), (0, 1)))

    def test_window_larger_than_image_yields_nothing(self):
        assert list(slide(np.zeros((4, 4)), (8, 8), (1, 1))) == []


class TestPyramid:
    def test_first_level_native(self):
        img = np.random.default_rng(0).random((32, 32))
        levels = list(pyramid(img, (8, 8), scale_step=2.0))
        assert levels[0][0] == 1.0
        assert np.array_equal(levels[0][1], img)

    def test_levels_shrink(self):
        img = np.zeros((64, 64))
        levels = list(pyramid(img, (8, 8), scale_step=2.0))
        sizes = [lvl.shape[0] for _, lvl in levels]
        assert sizes == sorted(sizes, reverse=True)

    def test_max_levels(self):
        img = np.zeros((64, 64))
        levels = list(pyramid(img, (8, 8), scale_step=2.0, max_levels=2))
        assert len(levels) == 2

    def test_slide_pyramid_multiscale_count(self):
        img = np.zeros((16, 16))
        wins = list(slide_pyramid(img, (8, 8), (8, 8), scale_step=2.0))
        # level 1.0: 2x2 windows; level 0.5 (8x8 image): 1 window
        assert len(wins) == 5
        scales = {w.scale for w in wins}
        assert scales == {1.0, 0.5}
