"""Tests for repro.features.hog: config, histograms, normalisation, dense."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FeatureError
from repro.features.hog import (
    DenseHogLayout,
    HogConfig,
    HogDescriptor,
    cell_histograms,
    normalize_block,
    normalize_blocks,
)


class TestHogConfig:
    def test_default_shapes(self):
        cfg = HogConfig()
        assert cfg.cells_shape == (8, 8)
        assert cfg.blocks_shape == (7, 7)
        assert cfg.block_length == 36
        assert cfg.feature_length == 7 * 7 * 36

    def test_pedestrian_window(self):
        cfg = HogConfig(window=(64, 32))
        assert cfg.cells_shape == (8, 4)
        assert cfg.blocks_shape == (7, 3)
        assert cfg.feature_length == 7 * 3 * 36

    def test_rejects_misaligned_window(self):
        with pytest.raises(FeatureError):
            HogConfig(window=(60, 64))

    def test_rejects_block_larger_than_window(self):
        with pytest.raises(FeatureError):
            HogConfig(window=(16, 16), cell_size=8, block_size=3)

    def test_rejects_bad_bins(self):
        with pytest.raises(FeatureError):
            HogConfig(n_bins=1)


class TestCellHistograms:
    def test_shape(self):
        cfg = HogConfig()
        hist = cell_histograms(np.random.default_rng(0).random((64, 64)), cfg)
        assert hist.shape == (8, 8, 9)

    def test_rejects_wrong_size(self):
        cfg = HogConfig()
        with pytest.raises(FeatureError):
            cell_histograms(np.zeros((32, 32)), cfg)

    def test_total_mass_equals_gradient_mass(self):
        from repro.features.gradients import gradient_field

        cfg = HogConfig()
        img = np.random.default_rng(1).random((64, 64))
        hist = cell_histograms(img, cfg)
        field = gradient_field(img)
        assert hist.sum() == pytest.approx(field.magnitude.sum())

    def test_constant_image_empty_histograms(self):
        hist = cell_histograms(np.full((64, 64), 0.3), HogConfig())
        assert np.allclose(hist, 0.0)


class TestNormalize:
    def test_unit_norm_output(self):
        rng = np.random.default_rng(2)
        vec = normalize_block(rng.random(36))
        assert np.linalg.norm(vec) == pytest.approx(1.0, abs=1e-3)

    def test_clipping_applied(self):
        block = np.zeros(36)
        block[0] = 100.0
        vec = normalize_block(block, clip=0.2)
        assert vec.max() <= 0.2 / 0.2 + 1e-9  # renormalised after clip
        # a one-hot block clips then renormalises to exactly 1 at that slot
        assert vec[0] == pytest.approx(1.0, abs=1e-3)

    def test_zero_block_stays_finite(self):
        vec = normalize_block(np.zeros(36))
        assert np.all(np.isfinite(vec))

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_scale_invariance(self, seed):
        rng = np.random.default_rng(seed)
        block = rng.random(36) + 0.01
        a = normalize_block(block)
        b = normalize_block(block * 7.3)
        assert np.allclose(a, b, atol=1e-4)

    def test_blocks_shape(self):
        cfg = HogConfig()
        cells = np.random.default_rng(3).random((8, 8, 9))
        blocks = normalize_blocks(cells, cfg)
        assert blocks.shape == (7, 7, 36)

    def test_blocks_rejects_wrong_bins(self):
        with pytest.raises(FeatureError):
            normalize_blocks(np.zeros((8, 8, 5)), HogConfig())


class TestDescriptor:
    def test_feature_length(self):
        hog = HogDescriptor()
        feat = hog.extract(np.random.default_rng(4).random((64, 64)))
        assert feat.shape == (hog.feature_length,)

    def test_deterministic(self):
        hog = HogDescriptor()
        img = np.random.default_rng(5).random((64, 64))
        assert np.array_equal(hog.extract(img), hog.extract(img))

    def test_brightness_shift_invariance(self):
        # Gradients ignore constant offsets entirely.
        hog = HogDescriptor()
        img = np.random.default_rng(6).random((64, 64)) * 0.5
        shifted = img + 0.3
        assert np.allclose(hog.extract(img), hog.extract(shifted), atol=1e-9)

    def test_contrast_scale_near_invariance(self):
        hog = HogDescriptor()
        img = np.random.default_rng(7).random((64, 64))
        a = hog.extract(img)
        b = hog.extract(img * 0.5)
        assert np.allclose(a, b, atol=1e-3)

    def test_batch_matches_loop_exactly(self):
        # The batched dense path must be bitwise equal to the per-window
        # reference stack — exact, not approx (the equivalence suite's
        # byte-identity claim starts here).
        hog = HogDescriptor()
        rng = np.random.default_rng(8)
        windows = rng.random((5, 64, 64))
        batch = hog.extract_batch(windows)
        reference = np.stack([hog.extract(w) for w in windows])
        assert batch.tobytes() == reference.tobytes()

    def test_batch_pedestrian_window_exact(self):
        hog = HogDescriptor(HogConfig(window=(64, 32)))
        rng = np.random.default_rng(18)
        windows = rng.random((4, 64, 32))
        batch = hog.extract_batch(windows)
        reference = np.stack([hog.extract(w) for w in windows])
        assert batch.tobytes() == reference.tobytes()

    def test_batch_empty_stack(self):
        hog = HogDescriptor()
        out = hog.extract_batch(np.zeros((0, 64, 64)))
        assert out.shape == (0, hog.feature_length)

    def test_batch_rejects_2d(self):
        with pytest.raises(FeatureError):
            HogDescriptor().extract_batch(np.zeros((64, 64)))

    def test_batch_rejects_wrong_window(self):
        with pytest.raises(FeatureError):
            HogDescriptor().extract_batch(np.zeros((2, 32, 32)))


class TestDense:
    def test_dense_window_matches_direct_extraction(self):
        hog = HogDescriptor()
        rng = np.random.default_rng(9)
        frame = rng.random((96, 128))
        blocks, layout = hog.extract_dense(frame)
        # Window at block origin (0, 0) covers pixels [0:64, 0:64]; its
        # cell histograms match the per-window path, though border-pixel
        # gradients differ (dense sees neighbours).  Compare interior-safe
        # windows via detection scores instead: both paths produce the same
        # feature for the same content away from borders.
        feat_dense = layout.window_feature(blocks, 0, 0)
        assert feat_dense.shape == (hog.feature_length,)

    def test_dense_positions_cover_frame(self):
        hog = HogDescriptor()
        frame = np.zeros((96, 128))
        blocks, layout = hog.extract_dense(frame)
        positions = layout.window_positions(1)
        # frame blocks: rows (96/8 - 1) = 11, cols 15; window blocks 7x7
        assert blocks.shape[:2] == (11, 15)
        assert len(positions) == (11 - 7 + 1) * (15 - 7 + 1)

    def test_dense_rejects_small_frame(self):
        with pytest.raises(FeatureError):
            HogDescriptor().extract_dense(np.zeros((32, 32)))

    def test_window_rect_geometry(self):
        layout = DenseHogLayout(HogConfig(), 11, 15)
        rect = layout.window_rect(2, 3)
        assert (rect.x, rect.y, rect.w, rect.h) == (24.0, 16.0, 64.0, 64.0)

    def test_window_feature_out_of_range(self):
        hog = HogDescriptor()
        blocks, layout = hog.extract_dense(np.zeros((96, 128)))
        with pytest.raises(FeatureError):
            layout.window_feature(blocks, 10, 10)

    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_feature_matrix_matches_per_window_slices(self, stride):
        hog = HogDescriptor()
        rng = np.random.default_rng(21)
        blocks, layout = hog.extract_dense(rng.random((96, 128)))
        matrix = layout.window_feature_matrix(blocks, cell_stride=stride)
        positions = layout.window_positions(stride)
        assert matrix.shape == (len(positions), hog.feature_length)
        for i, (r, c) in enumerate(positions):
            assert matrix[i].tobytes() == layout.window_feature(blocks, r, c).tobytes()

    def test_index_grid_matches_positions(self):
        layout = DenseHogLayout(HogConfig(), 11, 15)
        for stride in (1, 2, 4):
            grid = layout.window_index_grid(stride)
            assert [tuple(row) for row in grid] == layout.window_positions(stride)

    def test_feature_matrix_reuses_out_buffer(self):
        hog = HogDescriptor()
        blocks, layout = hog.extract_dense(np.random.default_rng(22).random((96, 128)))
        n = len(layout.window_positions(2))
        buf = np.empty((n, hog.feature_length))
        result = layout.window_feature_matrix(blocks, cell_stride=2, out=buf)
        assert result is buf

    def test_feature_matrix_rejects_bad_out_buffer(self):
        hog = HogDescriptor()
        blocks, layout = hog.extract_dense(np.zeros((96, 128)))
        with pytest.raises(FeatureError):
            layout.window_feature_matrix(blocks, out=np.empty((1, 1)))

    def test_feature_matrix_rejects_mismatched_blocks(self):
        layout = DenseHogLayout(HogConfig(), 11, 15)
        with pytest.raises(FeatureError):
            layout.window_feature_matrix(np.zeros((3, 3, 36)))
