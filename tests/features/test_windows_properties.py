"""Property tests for repro.features.windows: sliding and pyramid geometry.

Hypothesis sweeps arbitrary image sizes, window shapes, and strides to pin
the geometric contracts the batched scan relies on: windows stay in bounds,
counts match the closed form, pyramids shrink monotonically, and the dense
HOG layout's window grid agrees with ``slide`` over the cell grid.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FeatureError
from repro.features.hog import HogConfig, HogDescriptor
from repro.features.windows import pyramid, slide, slide_pyramid

sizes = st.integers(min_value=8, max_value=64)
strides = st.integers(min_value=1, max_value=9)


def expected_count(length: int, window: int, step: int) -> int:
    if length < window:
        return 0
    return (length - window) // step + 1


class TestSlide:
    @given(h=sizes, w=sizes, win_h=sizes, win_w=sizes, sy=strides, sx=strides)
    @settings(max_examples=60, deadline=None)
    def test_windows_in_bounds_and_counted(self, h, w, win_h, win_w, sy, sx):
        image = np.zeros((h, w))
        windows = list(slide(image, (win_h, win_w), (sy, sx)))
        assert len(windows) == expected_count(h, win_h, sy) * expected_count(w, win_w, sx)
        for win in windows:
            assert win.patch.shape == (win_h, win_w)
            assert 0 <= win.rect.x and win.rect.x + win.rect.w <= w
            assert 0 <= win.rect.y and win.rect.y + win.rect.h <= h

    @given(h=sizes, w=sizes, sy=strides, sx=strides)
    @settings(max_examples=40, deadline=None)
    def test_origins_strictly_increase_row_major(self, h, w, sy, sx):
        image = np.zeros((h, w))
        origins = [(win.rect.y, win.rect.x) for win in slide(image, (8, 8), (sy, sx))]
        assert origins == sorted(origins)
        assert len(set(origins)) == len(origins)

    @given(sy=strides, sx=strides)
    @settings(max_examples=20, deadline=None)
    def test_patches_are_views_of_source(self, sy, sx):
        image = np.arange(24 * 32, dtype=np.float64).reshape(24, 32)
        for win in slide(image, (8, 8), (sy, sx)):
            y, x = int(win.rect.y), int(win.rect.x)
            assert np.array_equal(win.patch, image[y : y + 8, x : x + 8])

    def test_rejects_nonpositive_stride(self):
        with pytest.raises(FeatureError):
            list(slide(np.zeros((16, 16)), (8, 8), (0, 1)))


class TestPyramid:
    @given(
        h=st.integers(min_value=32, max_value=128),
        w=st.integers(min_value=32, max_value=128),
        step_milli=st.integers(min_value=1050, max_value=2000),
    )
    @settings(max_examples=40, deadline=None)
    def test_scales_decrease_and_levels_cover_window(self, h, w, step_milli):
        window = (32, 32)
        levels = list(pyramid(np.zeros((h, w)), window, scale_step=step_milli / 1000.0))
        scales = [factor for factor, _level in levels]
        assert scales[0] == 1.0
        assert all(a > b for a, b in zip(scales, scales[1:]))
        for factor, level in levels:
            assert level.shape[0] >= window[0] and level.shape[1] >= window[1]
            assert level.shape[0] <= h and level.shape[1] <= w

    @given(max_levels=st.integers(min_value=1, max_value=6))
    @settings(max_examples=12, deadline=None)
    def test_max_levels_truncates(self, max_levels):
        levels = list(pyramid(np.zeros((128, 128)), (32, 32), max_levels=max_levels))
        assert 1 <= len(levels) <= max_levels

    @given(
        h=st.integers(min_value=32, max_value=96),
        w=st.integers(min_value=32, max_value=96),
        sy=strides,
        sx=strides,
    )
    @settings(max_examples=30, deadline=None)
    def test_slide_pyramid_is_concatenation_of_levels(self, h, w, sy, sx):
        image = np.random.default_rng(0).random((h, w))
        window, stride = (32, 32), (sy, sx)
        combined = list(slide_pyramid(image, window, stride))
        per_level = [
            win
            for factor, level in pyramid(image, window)
            for win in slide(level, window, stride, scale=factor)
        ]
        assert len(combined) == len(per_level)
        for a, b in zip(combined, per_level):
            assert a.rect == b.rect and a.scale == b.scale
            assert np.array_equal(a.patch, b.patch)


class TestDenseLayoutAgreesWithSlide:
    @given(
        h=st.integers(min_value=64, max_value=160),
        w=st.integers(min_value=64, max_value=160),
        stride=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_window_grid_matches_slide_geometry(self, h, w, stride):
        # The dense layout walks the *cell* grid; slide walks pixels.  With
        # the pixel stride set to cell_size * block_stride * grid stride the
        # two enumerate exactly the same window rectangles in the same
        # order — only over the frame region cropped to whole cells, which
        # is all extract_dense ever sees.
        hog = HogDescriptor(HogConfig(window=(64, 64)))
        cfg = hog.config
        _blocks, layout = hog.extract_dense(np.zeros((h, w)))
        rects = [
            layout.window_rect(r, c) for r, c in layout.window_positions(stride)
        ]
        cs = cfg.cell_size
        cropped = np.zeros(((h // cs) * cs, (w // cs) * cs))
        px = cs * cfg.block_stride * stride
        slid = [win.rect for win in slide(cropped, cfg.window, (px, px))]
        assert rects == slid

    @given(stride=st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_index_grid_matches_positions_list(self, stride):
        hog = HogDescriptor()
        _blocks, layout = hog.extract_dense(np.zeros((128, 160)))
        grid = layout.window_index_grid(stride)
        assert [tuple(row) for row in grid] == layout.window_positions(stride)
