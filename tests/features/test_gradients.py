"""Tests for repro.features.gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.gradients import gradient_field, orientation_bins


class TestGradientField:
    def test_constant_image_zero_magnitude(self):
        field = gradient_field(np.full((8, 8), 0.5))
        assert np.allclose(field.magnitude, 0.0)

    def test_vertical_edge_orientation(self):
        img = np.zeros((8, 8))
        img[:, 4:] = 1.0
        field = gradient_field(img)
        col = 4
        strong = field.magnitude[:, col] > 0.1
        # Horizontal gradient -> orientation ~ 0 (mod pi).
        angles = field.orientation[:, col][strong]
        assert np.all((angles < 0.1) | (angles > np.pi - 0.1))

    def test_horizontal_edge_orientation(self):
        img = np.zeros((8, 8))
        img[4:, :] = 1.0
        field = gradient_field(img)
        strong = field.magnitude > 0.1
        angles = field.orientation[strong]
        assert np.all(np.abs(angles - np.pi / 2) < 0.1)

    def test_orientation_range(self):
        rng = np.random.default_rng(0)
        field = gradient_field(rng.random((16, 16)))
        assert field.orientation.min() >= 0.0
        assert field.orientation.max() < np.pi

    def test_magnitude_nonnegative(self):
        rng = np.random.default_rng(1)
        field = gradient_field(rng.random((10, 10)))
        assert field.magnitude.min() >= 0.0

    def test_shape_property(self):
        field = gradient_field(np.zeros((5, 9)))
        assert field.shape == (5, 9)


class TestOrientationBins:
    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(2)
        field = gradient_field(rng.random((12, 12)))
        _, w_lo, w_hi = orientation_bins(field, 9)
        assert np.allclose(w_lo + w_hi, 1.0)

    def test_bins_in_range(self):
        rng = np.random.default_rng(3)
        field = gradient_field(rng.random((12, 12)))
        bin_lo, _, _ = orientation_bins(field, 9)
        assert bin_lo.min() >= 0 and bin_lo.max() < 9

    def test_bin_center_gets_full_weight(self):
        from repro.features.gradients import GradientField

        n_bins = 9
        bin_width = np.pi / n_bins
        angle = (3 + 0.5) * bin_width  # center of bin 3
        field = GradientField(
            magnitude=np.ones((1, 1)), orientation=np.full((1, 1), angle)
        )
        bin_lo, w_lo, w_hi = orientation_bins(field, n_bins)
        assert bin_lo[0, 0] == 3
        assert w_lo[0, 0] == pytest.approx(1.0)
        assert w_hi[0, 0] == pytest.approx(0.0)

    def test_rejects_single_bin(self):
        field = gradient_field(np.zeros((4, 4)))
        with pytest.raises(FeatureError):
            orientation_bins(field, 1)
