"""FlightRecorder: ring bounds, pre/post-roll windows, cooldown, caps."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.monitor import FlightRecorder, FrameSnapshot, TriggerEvent

pytestmark = pytest.mark.monitor


def snap(i: int) -> FrameSnapshot:
    return FrameSnapshot(record={"index": i, "time_s": i * 0.02})


def trig(i: int, kind: str = "fault") -> TriggerEvent:
    return TriggerEvent(kind=kind, time_s=i * 0.02, frame_index=i, detail=f"t{i}")


class TestRing:
    def test_ring_is_bounded_by_capacity(self):
        recorder = FlightRecorder(capacity=8, pre_roll=4, post_roll=2)
        for i in range(20):
            recorder.push(snap(i))
        assert len(recorder.ring) == 8
        assert recorder.frames_seen == 20
        assert [s.index for s in recorder.ring] == list(range(12, 20))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"pre_roll": -1},
            {"post_roll": -1},
            {"capacity": 4, "pre_roll": 8},
            {"cooldown_frames": -1},
            {"max_incidents": 0},
        ],
    )
    def test_geometry_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FlightRecorder(**kwargs)


class TestWindows:
    def test_pre_and_post_roll_around_the_trigger(self):
        windows = []
        recorder = FlightRecorder(
            capacity=64, pre_roll=4, post_roll=3, on_incident=windows.append
        )
        for i in range(10):
            recorder.push(snap(i))
        assert recorder.trigger(trig(10))
        assert recorder.capturing
        for i in range(10, 14):
            recorder.push(snap(i))
        assert not recorder.capturing
        assert len(windows) == 1
        window = windows[0]
        assert [s.index for s in window.snapshots] == [6, 7, 8, 9, 10, 11, 12]
        assert window.start_index == 6 and window.end_index == 12
        assert window.trigger_index == 10

    def test_pre_roll_is_lifted_at_trigger_time(self):
        recorder = FlightRecorder(capacity=4, pre_roll=4, post_roll=8)
        for i in range(6):
            recorder.push(snap(i))
        recorder.trigger(trig(6))
        # Later pushes cannot evict the lifted pre-roll from the window.
        for i in range(6, 14):
            recorder.push(snap(i))
        window = recorder.incidents[0]
        assert [s.index for s in window.snapshots][:4] == [2, 3, 4, 5]

    def test_trigger_during_open_window_folds(self):
        recorder = FlightRecorder(capacity=16, pre_roll=2, post_roll=4)
        recorder.push(snap(0))
        assert recorder.trigger(trig(1))
        assert recorder.trigger(trig(2, kind="reconfig-failure"))
        for i in range(1, 5):
            recorder.push(snap(i))
        assert len(recorder.incidents) == 1
        assert [t.kind for t in recorder.incidents[0].triggers] == [
            "fault",
            "reconfig-failure",
        ]

    def test_cooldown_suppresses_a_storm(self):
        recorder = FlightRecorder(capacity=16, pre_roll=1, post_roll=1, cooldown_frames=10)
        recorder.push(snap(0))
        assert recorder.trigger(trig(0))
        recorder.push(snap(1))  # closes the window, arms the cooldown
        assert not recorder.trigger(trig(2))
        assert recorder.triggers_suppressed == 1
        for i in range(2, 12):
            recorder.push(snap(i))
        assert recorder.trigger(trig(12))

    def test_max_incidents_cap(self):
        recorder = FlightRecorder(
            capacity=16, pre_roll=0, post_roll=0, cooldown_frames=0, max_incidents=2
        )
        for i in range(4):
            recorder.push(snap(i))
            recorder.trigger(trig(i))
        assert len(recorder.incidents) == 2
        assert recorder.triggers_suppressed == 2

    def test_flush_truncates_post_roll(self):
        recorder = FlightRecorder(capacity=16, pre_roll=2, post_roll=100)
        for i in range(4):
            recorder.push(snap(i))
        recorder.trigger(trig(4))
        recorder.push(snap(4))
        window = recorder.flush()
        assert window is not None
        assert [s.index for s in window.snapshots] == [2, 3, 4]
        assert recorder.flush() is None

    def test_zero_post_roll_closes_immediately(self):
        recorder = FlightRecorder(capacity=8, pre_roll=2, post_roll=0)
        for i in range(3):
            recorder.push(snap(i))
        recorder.trigger(trig(3))
        assert not recorder.capturing
        assert len(recorder.incidents) == 1
        assert [s.index for s in recorder.incidents[0].snapshots] == [1, 2]
