"""Monitor session wiring: events, triggers, metrics, and the null default."""

from __future__ import annotations

import pytest

from repro.adaptive.sensor import LightSensor, sunset_trace
from repro.core.system import AdaptiveDetectionSystem
from repro.errors import MonitoringError
from repro.faults.scenarios import get_scenario
from repro.monitor import (
    MONITOR_EVENT_KINDS,
    NULL_MONITOR,
    Monitor,
    MonitorConfig,
    NullMonitor,
)
from repro.telemetry import Telemetry

pytestmark = pytest.mark.monitor

DURATION_S = 12.0


def run_monitored(monitor: Monitor, scenario: str | None = "flaky_dma", **system_kw):
    trace = sunset_trace(duration_s=DURATION_S)
    plan = get_scenario(scenario, DURATION_S) if scenario else None
    system = AdaptiveDetectionSystem(fault_plan=plan, monitor=monitor, **system_kw)
    sensor = LightSensor(trace, noise_rel=0.03, seed=7, faults=plan)
    return system.run_drive(trace, duration_s=DURATION_S, sensor=sensor)


class TestNullMonitor:
    def test_null_monitor_is_disabled_and_inert(self):
        assert NULL_MONITOR.enabled is False
        assert isinstance(NULL_MONITOR, NullMonitor)
        NULL_MONITOR.observe_frame(None, "day_dusk")
        NULL_MONITOR.emit_event("anything-goes", 0.0)  # reprolint: skip=monitor-event-vocabulary
        NULL_MONITOR.finish_drive()
        assert NULL_MONITOR.summary() == {}

    def test_unmonitored_system_uses_the_shared_null(self):
        system = AdaptiveDetectionSystem()
        assert system.monitor is NULL_MONITOR
        assert system.report.monitor is None


class TestEvents:
    def test_emit_event_rejects_unknown_kinds(self):
        monitor = Monitor()
        with pytest.raises(MonitoringError, match="vocabulary"):
            monitor.emit_event("monitor.bogus", 0.0)  # reprolint: skip=monitor-event-vocabulary

    def test_every_declared_kind_is_accepted(self):
        monitor = Monitor()
        for kind in MONITOR_EVENT_KINDS:
            monitor.emit_event(kind, 0.0)  # reprolint: skip=monitor-event-vocabulary
        assert {e["kind"] for e in monitor.events} == set(MONITOR_EVENT_KINDS)

    def test_observe_frame_requires_begin_drive(self):
        with pytest.raises(MonitoringError, match="begin_drive"):
            Monitor().observe_frame(None, "day_dusk")

    def test_double_begin_drive_is_rejected(self):
        monitor = Monitor()
        run_monitored(monitor, scenario=None)
        # finish_drive() detached cleanly; a second drive is fine...
        run_monitored(monitor, scenario=None)
        # ...but attaching while attached is not.
        system = AdaptiveDetectionSystem(monitor=monitor)
        trace = sunset_trace(duration_s=1.0)
        sensor = LightSensor(trace, noise_rel=0.03, seed=1)
        monitor.begin_drive(system, trace, sensor, 1.0, 50)
        with pytest.raises(MonitoringError, match="already attached"):
            monitor.begin_drive(system, trace, sensor, 1.0, 50)


class TestTriggers:
    def test_faults_trigger_incidents(self):
        monitor = Monitor()
        run_monitored(monitor)
        assert monitor.triggers, "flaky_dma should fire at least one trigger"
        assert all(t.kind == "fault" for t in monitor.triggers)
        assert monitor.recorder.incidents
        summary = monitor.summary()
        assert summary["incidents"] == len(monitor.recorder.incidents)
        assert summary["bundles"] == []  # in-memory monitor writes nothing

    def test_trigger_on_fault_can_be_disabled(self):
        monitor = Monitor(MonitorConfig(trigger_on_fault=False))
        run_monitored(monitor)
        assert monitor.triggers == []
        assert monitor.recorder.incidents == []

    def test_listeners_detach_after_the_drive(self):
        monitor = Monitor()
        trace = sunset_trace(duration_s=DURATION_S)
        plan = get_scenario("flaky_dma", DURATION_S)
        system = AdaptiveDetectionSystem(fault_plan=plan, monitor=monitor)
        system.run_drive(trace, duration_s=DURATION_S)
        assert plan.listeners == []
        assert system.soc.trace.listeners == []


class TestDriveLoopMetrics:
    def test_frame_deadline_misses_counted_with_slow_wall_clock(self):
        # Every injected wall tick is 50 ms, so every 20 ms frame misses.
        wall = {"now": 0.0}

        def wall_clock() -> float:
            wall["now"] += 0.05
            return wall["now"]

        telemetry = Telemetry.recording(wall_clock=wall_clock)
        monitor = Monitor(telemetry=telemetry)
        report = run_monitored(monitor, scenario=None, telemetry=telemetry)
        n_frames = len(report.frames)
        assert telemetry.counter("frame_deadline_misses_total").value == n_frames
        assert telemetry.histogram("frame_wall_ms").count == n_frames
        # The health monitor saw the same overruns.
        assert monitor.health.summary()["violations_by_slo"]["frame-deadline"] == n_frames

    def test_fast_wall_clock_misses_nothing(self):
        telemetry = Telemetry.recording(wall_clock=lambda: 0.0)
        system = AdaptiveDetectionSystem(telemetry=telemetry)
        trace = sunset_trace(duration_s=2.0)
        system.run_drive(trace, duration_s=2.0)
        assert telemetry.counter("frame_deadline_misses_total").value == 0
        assert telemetry.histogram("frame_wall_ms").count == len(system.report.frames)

    def test_monitor_rides_the_drives_telemetry_session(self):
        telemetry = Telemetry.recording(wall_clock=lambda: 0.0)
        monitor = Monitor()
        run_monitored(monitor, telemetry=telemetry)
        assert monitor.telemetry is telemetry
        assert telemetry.counter("monitor_triggers_total", kind="fault").value > 0
