"""Monitoring must not perturb the drive: observed == unobserved, byte for byte."""

from __future__ import annotations

import dataclasses

import pytest

from repro.adaptive.sensor import LightSensor, sunset_trace
from repro.core.system import AdaptiveDetectionSystem, DriveReport
from repro.faults.scenarios import get_scenario
from repro.monitor import Monitor

pytestmark = pytest.mark.monitor

DURATION_S = 20.0


def run_drive(monitor: Monitor | None, scenario: str | None) -> DriveReport:
    trace = sunset_trace(duration_s=DURATION_S)
    plan = get_scenario(scenario, DURATION_S) if scenario else None
    system = AdaptiveDetectionSystem(fault_plan=plan, monitor=monitor)
    sensor = LightSensor(trace, noise_rel=0.03, seed=11, faults=plan)
    return system.run_drive(trace, duration_s=DURATION_S, sensor=sensor)


def frame_bytes(report: DriveReport) -> bytes:
    return repr([dataclasses.astuple(f) for f in report.frames]).encode()


@pytest.mark.parametrize("scenario", [None, "worst_case"])
def test_monitored_drive_is_byte_identical(scenario):
    plain = run_drive(None, scenario)
    monitored = run_drive(Monitor(), scenario)
    assert frame_bytes(plain) == frame_bytes(monitored)
    assert plain.summary() == monitored.summary()
    assert [d.label() for d in plain.degradations] == [
        d.label() for d in monitored.degradations
    ]


def test_report_carries_the_monitor_only_when_enabled():
    plain = run_drive(None, None)
    assert plain.monitor is None
    monitor = Monitor()
    monitored = run_drive(monitor, None)
    assert monitored.monitor is monitor


def test_monitored_replay_of_a_monitored_drive_matches_itself():
    # Monitoring twice with identical inputs is also deterministic.
    first = run_drive(Monitor(), "worst_case")
    second = run_drive(Monitor(), "worst_case")
    assert frame_bytes(first) == frame_bytes(second)
    assert first.monitor is not None and second.monitor is not None
    assert [t.to_dict() for t in first.monitor.triggers] == [
        t.to_dict() for t in second.monitor.triggers
    ]
