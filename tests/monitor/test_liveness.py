"""Heartbeat liveness: the pure alive/suspect/hung state machine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.monitor.liveness import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_HUNG_AFTER_S,
    DEFAULT_SUSPECT_AFTER_S,
    LIVENESS_STATES,
    LivenessConfig,
    WorkerLiveness,
)

pytestmark = pytest.mark.monitor


def config() -> LivenessConfig:
    return LivenessConfig(
        heartbeat_interval_s=0.1, suspect_after_s=0.5, hung_after_s=1.0
    )


class TestLivenessConfig:
    def test_defaults_are_ordered(self):
        assert (
            DEFAULT_HEARTBEAT_INTERVAL_S
            < DEFAULT_SUSPECT_AFTER_S
            < DEFAULT_HUNG_AFTER_S
        )
        LivenessConfig()  # defaults must validate

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_interval_s": 0.0},
            {"heartbeat_interval_s": -1.0},
            # suspect threshold must leave headroom above the beat cadence
            {"heartbeat_interval_s": 0.5, "suspect_after_s": 0.5},
            # hung must escalate beyond suspect
            {"suspect_after_s": 2.0, "hung_after_s": 2.0},
            {"suspect_after_s": 2.0, "hung_after_s": 1.0},
        ],
    )
    def test_bad_thresholds_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LivenessConfig(**kwargs)

    def test_to_dict_round_trips(self):
        cfg = config()
        assert LivenessConfig(**cfg.to_dict()) == cfg


class TestWorkerLiveness:
    def test_states_escalate_with_silence(self):
        live = WorkerLiveness(config(), now_s=100.0)
        assert live.state(100.0) == "alive"
        assert live.state(100.4) == "alive"
        assert live.state(100.5) == "suspect"
        assert live.state(100.99) == "suspect"
        assert live.state(101.0) == "hung"
        assert set(LIVENESS_STATES) == {"alive", "suspect", "hung"}

    def test_a_beat_resets_the_escalation(self):
        live = WorkerLiveness(config(), now_s=100.0)
        assert live.state(100.7) == "suspect"
        live.observe(100.7)
        assert live.state(100.7) == "alive"
        assert live.age_s(100.7) == 0.0

    def test_time_never_runs_backwards(self):
        live = WorkerLiveness(config(), now_s=100.0)
        live.observe(105.0)
        live.observe(101.0)  # stale arrival must not rewind the clock
        assert live.age_s(105.0) == 0.0
        assert live.age_s(104.0) == 0.0  # age is clamped non-negative

    def test_reset_rewinds_deliberately(self):
        live = WorkerLiveness(config(), now_s=100.0)
        live.observe(105.0)
        live.reset(102.0)  # new drive dispatched at 102
        assert live.age_s(103.0) == 1.0
