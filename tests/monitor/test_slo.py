"""HealthMonitor: paper-budget SLO evaluation and hysteretic recovery."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.monitor import (
    PAPER_FRAME_BUDGET_MS,
    PAPER_ICAP_MBS,
    PAPER_RECONFIG_MS,
    HealthMonitor,
    HealthState,
    SloBudgets,
)

pytestmark = pytest.mark.monitor


class TestSloBudgets:
    def test_defaults_derive_from_paper_numbers(self):
        budgets = SloBudgets()
        assert budgets.frame_budget_ms == PAPER_FRAME_BUDGET_MS == 20.0
        assert budgets.reconfig_budget_ms == PAPER_RECONFIG_MS == 20.0
        assert budgets.icap_floor_mbs == pytest.approx(PAPER_ICAP_MBS * 0.9)

    def test_reconfig_limit_adds_margin(self):
        assert SloBudgets().reconfig_limit_ms == pytest.approx(25.0)
        assert SloBudgets(reconfig_margin_rel=0.0).reconfig_limit_ms == pytest.approx(20.0)

    def test_for_fps_derives_frame_budget(self):
        assert SloBudgets.for_fps(50.0).frame_budget_ms == pytest.approx(20.0)
        assert SloBudgets.for_fps(25.0).frame_budget_ms == pytest.approx(40.0)
        with pytest.raises(ConfigurationError):
            SloBudgets.for_fps(0.0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"frame_budget_ms": 0.0},
            {"reconfig_budget_ms": -1.0},
            {"reconfig_margin_rel": -0.1},
            {"icap_floor_mbs": 0.0},
            {"flap_max_changes": 0},
            {"anomaly_window": 1},
            {"anomaly_mad_k": 0.0},
            {"recovery_frames": 0},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ConfigurationError):
            SloBudgets(**overrides)

    def test_to_dict_round_trips(self):
        budgets = SloBudgets(recovery_frames=7, flap_max_changes=2)
        assert SloBudgets(**budgets.to_dict()) == budgets


class TestEvaluators:
    def test_frame_over_budget_is_degraded(self):
        hm = HealthMonitor()
        found, _ = hm.observe_frame(0, 0.0, wall_ms=2 * PAPER_FRAME_BUDGET_MS)
        assert [v.slo for v in found] == ["frame-deadline"]
        assert found[0].severity is HealthState.DEGRADED

    def test_reconfig_overrun_and_icap_floor(self):
        hm = HealthMonitor()
        found = hm.observe_reconfig(
            duration_ms=30.0, throughput_mbs=200.0, ok=True, time_s=1.0
        )
        assert sorted(v.slo for v in found) == ["icap-throughput", "reconfig-overrun"]
        assert all(v.severity is HealthState.DEGRADED for v in found)

    def test_paper_reconfig_passes_clean(self):
        hm = HealthMonitor()
        found = hm.observe_reconfig(
            duration_ms=PAPER_RECONFIG_MS, throughput_mbs=PAPER_ICAP_MBS, ok=True, time_s=1.0
        )
        assert found == []

    def test_failed_reconfig_is_critical(self):
        hm = HealthMonitor()
        found = hm.observe_reconfig(
            duration_ms=5.0, throughput_mbs=0.0, ok=False, time_s=1.0, detail="watchdog"
        )
        assert found[0].slo == "reconfig-failed"
        assert found[0].severity is HealthState.CRITICAL

    def test_condition_flapping(self):
        hm = HealthMonitor(SloBudgets(flap_window_s=10.0, flap_max_changes=2))
        assert hm.observe_condition_change(0.0) == []
        assert hm.observe_condition_change(1.0) == []
        found = hm.observe_condition_change(2.0)
        assert [v.slo for v in found] == ["condition-flapping"]
        # Changes outside the trailing window age out.
        assert hm.observe_condition_change(50.0) == []

    def test_reconfig_abandoned_degradation_is_critical(self):
        hm = HealthMonitor()
        found = hm.observe_degradation("reconfig-abandoned", 1.0, "gave up on dark")
        assert found[0].severity is HealthState.CRITICAL
        found = hm.observe_degradation("dma-reset", 2.0)
        assert found[0].severity is HealthState.DEGRADED

    def test_detections_anomaly_via_mad(self):
        budgets = SloBudgets(anomaly_min_samples=16, anomaly_mad_k=5.0)
        hm = HealthMonitor(budgets)
        for i in range(20):
            found, _ = hm.observe_frame(i, i * 0.02, detections=3.0)
            assert not any(v.slo == "detections-anomaly" for v in found)
        found, _ = hm.observe_frame(20, 0.4, detections=50.0)
        assert any(v.slo == "detections-anomaly" for v in found)


class TestHealthFolding:
    def test_ok_degraded_critical_and_stepped_recovery(self):
        """The acceptance walk: OK -> DEGRADED -> CRITICAL -> DEGRADED -> OK."""
        hm = HealthMonitor(SloBudgets(recovery_frames=5))
        assert hm.state is HealthState.OK

        # A frame over the paper's 20 ms budget degrades the system.
        _, transition = hm.observe_frame(0, 0.0, wall_ms=25.0)
        assert transition is not None
        assert (transition.previous, transition.new) == (HealthState.OK, HealthState.DEGRADED)

        # A failed reconfiguration folded into the next frame is CRITICAL.
        hm.observe_reconfig(duration_ms=30.0, throughput_mbs=0.0, ok=False, time_s=0.02)
        _, transition = hm.observe_frame(1, 0.02)
        assert transition is not None and transition.new is HealthState.CRITICAL
        assert hm.state is HealthState.CRITICAL

        # Recovery is hysteretic: one severity level per clean streak.
        transitions = []
        for i in range(2, 12):
            _, transition = hm.observe_frame(i, i * 0.02)
            if transition is not None:
                transitions.append(transition)
        assert [t.new for t in transitions] == [HealthState.DEGRADED, HealthState.OK]
        assert hm.state is HealthState.OK
        assert all("recovered" in t.reason for t in transitions)

    def test_violation_during_recovery_resets_the_streak(self):
        hm = HealthMonitor(SloBudgets(recovery_frames=5))
        hm.observe_frame(0, 0.0, wall_ms=25.0)
        for i in range(1, 4):
            hm.observe_frame(i, i * 0.02)
        hm.observe_frame(4, 0.08, wall_ms=25.0)  # streak broken at 3
        for i in range(5, 9):
            _, transition = hm.observe_frame(i, i * 0.02)
            assert transition is None
        _, transition = hm.observe_frame(9, 0.18)
        assert transition is not None and transition.new is HealthState.OK

    def test_worse_violations_never_lower_the_state(self):
        hm = HealthMonitor()
        hm.observe_reconfig(duration_ms=5.0, throughput_mbs=0.0, ok=False, time_s=0.0)
        hm.observe_frame(0, 0.0)
        assert hm.state is HealthState.CRITICAL
        # A mere DEGRADED violation afterwards does not pull CRITICAL down.
        _, transition = hm.observe_frame(1, 0.02, wall_ms=25.0)
        assert transition is None
        assert hm.state is HealthState.CRITICAL

    def test_summary_counts_by_slo(self):
        hm = HealthMonitor()
        hm.observe_frame(0, 0.0, wall_ms=25.0)
        hm.observe_frame(1, 0.02, wall_ms=25.0)
        summary = hm.summary()
        assert summary["state"] == "degraded"
        assert summary["violations_by_slo"] == {"frame-deadline": 2}
        assert summary["frames_observed"] == 2
        assert summary["transitions"] == 1
