"""Incident bundles: schema-versioned round trips and validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.monitor import (
    BUNDLE_SCHEMA_VERSION,
    FrameSnapshot,
    TriggerEvent,
    is_bundle,
    list_bundles,
    load_bundle,
    write_bundle,
)

pytestmark = pytest.mark.monitor


def make_snapshot(i: int) -> FrameSnapshot:
    return FrameSnapshot(
        record={"index": i, "time_s": i * 0.02, "lux": 100.0 - i},
        wall_ms=0.5,
        health="degraded",
        violations=(f"slo:frame-deadline#{i}",),
        zynq_events=({"time_s": i * 0.02, "source": "dma", "kind": "dma.error"},),
        metric_deltas={"drive_frames": 1.0},
    )


@pytest.fixture()
def bundle_dir(tmp_path):
    return write_bundle(
        tmp_path / "incident-000-fault",
        {"incident_id": "incident-000-fault", "drive": {"duration_s": 1.0}},
        [make_snapshot(i) for i in (5, 3, 4)],  # deliberately unsorted
        [TriggerEvent(kind="fault", time_s=0.08, frame_index=4, detail="dma-error")],
        violations=[{"time_s": 0.08, "slo": "frame-deadline", "severity": "degraded"}],
        transitions=[{"time_s": 0.08, "previous": "ok", "new": "degraded"}],
        spans=[{"name": "drive.frame", "span_id": 1, "start_s": 0.06, "end_s": 0.08}],
        metrics=[{"kind": "counter", "name": "drive_frames", "labels": {}, "value": 3.0}],
    )


class TestRoundTrip:
    def test_write_then_load_preserves_everything(self, bundle_dir):
        bundle = load_bundle(bundle_dir)
        assert bundle.incident_id == "incident-000-fault"
        assert bundle.manifest["schema_version"] == BUNDLE_SCHEMA_VERSION
        assert [s.index for s in bundle.frames] == [3, 4, 5]  # sorted on load
        assert bundle.frames[0].metric_deltas == {"drive_frames": 1.0}
        assert bundle.frames[0].zynq_events[0]["kind"] == "dma.error"
        assert [t.detail for t in bundle.triggers] == ["dma-error"]
        assert bundle.violations[0]["slo"] == "frame-deadline"
        assert bundle.transitions[0]["new"] == "degraded"
        assert bundle.spans[0]["name"] == "drive.frame"
        assert bundle.metrics[0]["value"] == 3.0

    def test_window_bounds_stamped_from_snapshots(self, bundle_dir):
        bundle = load_bundle(bundle_dir)
        # write_bundle stamps the window from the snapshot list as given.
        assert bundle.manifest["window"]["start_index"] == 5
        assert bundle.manifest["window"]["end_index"] == 4
        assert bundle.summary()["triggers"] == 1

    def test_loading_the_manifest_path_works_too(self, bundle_dir):
        bundle = load_bundle(bundle_dir / "manifest.json")
        assert bundle.incident_id == "incident-000-fault"


class TestValidation:
    def test_wrong_schema_version_is_rejected(self, bundle_dir):
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        manifest["schema_version"] = BUNDLE_SCHEMA_VERSION + 1
        (bundle_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="schema version"):
            load_bundle(bundle_dir)

    def test_unknown_record_type_is_rejected(self, bundle_dir):
        with open(bundle_dir / "records.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"type": "mystery"}\n')
        with pytest.raises(ConfigurationError, match="unknown record type"):
            load_bundle(bundle_dir)

    def test_non_bundle_directory_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not an incident bundle"):
            load_bundle(tmp_path)

    def test_corrupt_jsonl_is_rejected(self, bundle_dir):
        with open(bundle_dir / "records.jsonl", "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        with pytest.raises(ConfigurationError, match="JSONL"):
            load_bundle(bundle_dir)


class TestDiscovery:
    def test_is_bundle_and_list_bundles(self, bundle_dir, tmp_path):
        assert is_bundle(bundle_dir)
        assert is_bundle(bundle_dir / "manifest.json")
        assert not is_bundle(tmp_path)
        (tmp_path / "not-a-bundle").mkdir()
        assert list_bundles(tmp_path) == [bundle_dir]
        assert list_bundles(tmp_path / "missing") == []
