"""End-to-end incident determinism: record, bundle, replay, byte-verify."""

from __future__ import annotations

import pytest

from repro.adaptive.sensor import LightSensor, sunset_trace
from repro.core.system import AdaptiveDetectionSystem
from repro.faults.scenarios import SCENARIOS, get_scenario
from repro.monitor import Monitor, list_bundles, load_bundle
from repro.monitor.analyzer import render_report, root_cause_hints
from repro.monitor.replay import replay_bundle

pytestmark = pytest.mark.monitor

DURATION_S = 30.0


def record_scenario(tmp_path, name: str) -> Monitor:
    trace = sunset_trace(duration_s=DURATION_S)
    plan = get_scenario(name, DURATION_S)
    monitor = Monitor.recording(tmp_path)
    system = AdaptiveDetectionSystem(fault_plan=plan, monitor=monitor)
    sensor = LightSensor(trace, noise_rel=0.03, seed=23, faults=plan)
    system.run_drive(trace, duration_s=DURATION_S, sensor=sensor)
    return monitor


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_scenario_produces_a_replayable_bundle(tmp_path, name):
    monitor = record_scenario(tmp_path, name)
    bundles = list_bundles(tmp_path)
    assert bundles, f"scenario {name!r} produced no incident bundle"
    assert monitor.bundles == bundles
    # Replaying the first bundle re-runs the whole drive from the manifest
    # and must byte-verify every frame core in the window.
    result = replay_bundle(bundles[0])
    assert result.ok, f"{name}: {result.detail}"
    assert result.frames_compared > 0
    assert result.mismatched_indices == []


def test_worst_case_replays_every_bundle_and_names_the_fault(tmp_path):
    record_scenario(tmp_path, "worst_case")
    bundles = list_bundles(tmp_path)
    assert bundles
    for path in bundles:
        result = replay_bundle(path)
        assert result.ok, f"{path.name}: {result.detail}"
    # The acceptance criterion: the post-mortem names the injected fault.
    bundle = load_bundle(bundles[0])
    hints = root_cause_hints(bundle)
    assert hints
    top = hints[0]
    assert top.kind == "fault"
    assert "dma-error" in top.text
    report = render_report(bundle)
    assert "root-cause hints" in report
    assert "dma-error" in report


def test_tampered_bundle_fails_replay(tmp_path):
    record_scenario(tmp_path, "flaky_dma")
    bundle_dir = list_bundles(tmp_path)[0]
    records = bundle_dir / "records.jsonl"
    text = records.read_text(encoding="utf-8")
    assert '"lux"' in text
    records.write_text(text.replace('"lux"', '"xul"', 1), encoding="utf-8")
    result = replay_bundle(bundle_dir)
    assert not result.ok
    assert result.mismatched_indices


def test_bundle_manifest_carries_replay_provenance(tmp_path):
    record_scenario(tmp_path, "flaky_dma")
    bundle = load_bundle(list_bundles(tmp_path)[0])
    manifest = bundle.manifest
    assert manifest["schema_version"] == 1
    drive = manifest["drive"]
    assert drive["sensor"]["seed"] == 23
    assert drive["fault_plan"]["name"] == "flaky_dma"
    assert drive["system"]["pr_controller"] == "paper-pr"
    assert drive["trace_points"], "lux trace knots must be recorded"
    assert manifest["budgets"]["frame_budget_ms"] == 20.0
