"""The ``python -m repro incident`` surface: smoke, list, report, replay."""

from __future__ import annotations

import pytest

from repro.monitor.cli import main as incident_main

pytestmark = pytest.mark.monitor


@pytest.fixture(scope="module")
def smoke_dir(tmp_path_factory):
    """One recorded smoke run shared by every CLI test in this module."""
    out = tmp_path_factory.mktemp("incident-cli")
    code = incident_main(
        ["smoke", "--dir", str(out), "--duration", "30", "--scenario", "flaky_dma"]
    )
    assert code == 0
    return out


class TestSmoke:
    def test_smoke_reports_and_replays(self, smoke_dir, capsys):
        code = incident_main(["list", str(smoke_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "incident-000-fault" in out
        assert "trigger:fault" in out

    def test_smoke_failure_when_scenario_is_quiet(self, tmp_path, capsys):
        # One second of daylight never reconfigures, so the corrupted dark
        # bitstream is never touched and no incident can fire.
        code = incident_main(
            ["smoke", "--dir", str(tmp_path), "--duration", "1",
             "--scenario", "corrupt_bitstream"]
        )
        assert code == 1
        assert "no incident bundle" in capsys.readouterr().out


class TestInspection:
    def test_show_renders_a_timeline(self, smoke_dir, capsys):
        assert incident_main(["show", str(smoke_dir)]) == 0
        out = capsys.readouterr().out
        assert "trigger" in out and "frame" in out

    def test_report_names_the_injected_fault(self, smoke_dir, capsys):
        bundle = sorted(p for p in smoke_dir.iterdir() if p.is_dir())[0]
        assert incident_main(["report", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "root-cause hints" in out
        assert "dma-error" in out

    def test_replay_verifies_every_bundle(self, smoke_dir, capsys):
        assert incident_main(["replay", str(smoke_dir)]) == 0
        out = capsys.readouterr().out
        assert "OK " in out and "FAIL" not in out

    def test_replay_fails_on_a_tampered_bundle(self, smoke_dir, tmp_path, capsys):
        import shutil

        bundle = sorted(p for p in smoke_dir.iterdir() if p.is_dir())[0]
        copy = tmp_path / bundle.name
        shutil.copytree(bundle, copy)
        records = copy / "records.jsonl"
        text = records.read_text(encoding="utf-8")
        records.write_text(text.replace('"lux"', '"xul"', 1), encoding="utf-8")
        assert incident_main(["replay", str(copy)]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestUsage:
    def test_missing_action_is_a_usage_error(self, capsys):
        assert incident_main([]) == 2
        capsys.readouterr()

    def test_missing_bundle_is_an_error(self, tmp_path, capsys):
        assert incident_main(["report", str(tmp_path)]) == 2
        assert "no incident bundle" in capsys.readouterr().err

    def test_top_level_cli_delegates(self, smoke_dir, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["incident", "list", str(smoke_dir)]) == 0
        assert "incident-000-fault" in capsys.readouterr().out
