"""Differential tests: batched HOG feature paths vs per-window references.

Every batched stage of the descriptor — gradient stack, histogram scatter,
block normalisation, dense gather — is compared byte for byte against the
single-window code it replaces, across window shapes and HOG layouts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.features.gradients import gradient_field, gradient_field_batch
from repro.features.hog import (
    HogConfig,
    HogDescriptor,
    cell_histograms,
    cell_histograms_batch,
    normalize_block,
    normalize_block_rows,
)

pytestmark = pytest.mark.equivalence

CONFIGS = [
    HogConfig(window=(64, 64)),
    HogConfig(window=(64, 32)),
    HogConfig(window=(48, 48), cell_size=6, n_bins=7),
    HogConfig(window=(64, 64), block_size=3, block_stride=2),
]


class TestGradients:
    @pytest.mark.parametrize("shape", [(9, 9), (17, 33), (64, 64)])
    def test_batch_planes_match_single(self, shape):
        rng = np.random.default_rng(1)
        stack = rng.random((6, *shape))
        batch = gradient_field_batch(stack)
        for i in range(6):
            single = gradient_field(stack[i])
            assert batch.magnitude[i].tobytes() == single.magnitude.tobytes()
            assert batch.orientation[i].tobytes() == single.orientation.tobytes()


class TestHistograms:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"{c.window}-c{c.cell_size}")
    def test_batch_matches_per_window(self, config):
        rng = np.random.default_rng(2)
        stack = rng.random((5, *config.window))
        batch = cell_histograms_batch(stack, config.cell_size, config.n_bins)
        for i in range(5):
            single = cell_histograms(stack[i], config)
            assert batch[i].tobytes() == single.tobytes()


class TestNormalization:
    @given(
        n=st.integers(min_value=1, max_value=12),
        length=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=60, deadline=None)
    def test_rows_match_single_block(self, n, length, seed):
        rows = np.random.default_rng(seed).random((n, length)) * 10.0
        batch = normalize_block_rows(rows)
        for i in range(n):
            assert batch[i].tobytes() == normalize_block(rows[i]).tobytes()

    def test_zero_rows_match(self):
        rows = np.zeros((3, 36))
        batch = normalize_block_rows(rows)
        assert batch[0].tobytes() == normalize_block(rows[0]).tobytes()


class TestDescriptor:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"{c.window}-c{c.cell_size}")
    def test_extract_batch_matches_extract(self, config):
        hog = HogDescriptor(config)
        rng = np.random.default_rng(3)
        stack = rng.random((4, *config.window))
        batch = hog.extract_batch(stack)
        reference = np.stack([hog.extract(w) for w in stack])
        assert batch.tobytes() == reference.tobytes()


class TestDenseGather:
    @pytest.mark.parametrize("stride", [1, 2, 3])
    @pytest.mark.parametrize("frame", [(96, 128), (80, 200), (64, 64)])
    def test_matrix_rows_match_slices(self, frame, stride):
        hog = HogDescriptor()
        rng = np.random.default_rng(4)
        blocks, layout = hog.extract_dense(rng.random(frame))
        matrix = layout.window_feature_matrix(blocks, cell_stride=stride)
        positions = layout.window_positions(stride)
        assert matrix.shape[0] == len(positions)
        for i, (r, c) in enumerate(positions):
            assert matrix[i].tobytes() == layout.window_feature(blocks, r, c).tobytes()

    @given(
        h=st.integers(min_value=64, max_value=150),
        w=st.integers(min_value=64, max_value=150),
        stride=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=25, deadline=None)
    def test_matrix_matches_slices_arbitrary_frames(self, h, w, stride, seed):
        hog = HogDescriptor()
        blocks, layout = hog.extract_dense(np.random.default_rng(seed).random((h, w)))
        matrix = layout.window_feature_matrix(blocks, cell_stride=stride)
        for i, (r, c) in enumerate(layout.window_positions(stride)):
            assert matrix[i].tobytes() == layout.window_feature(blocks, r, c).tobytes()
