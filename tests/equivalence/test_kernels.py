"""Batch-size invariance of the scoring kernels — the root of byte identity.

OpenBLAS dispatches matrix products to different micro-kernels by batch
size (an M=1 product is special-cased to a dot), so ``A @ w`` is NOT
bitwise stable across batch sizes.  Every inference scorer therefore routes
through the fixed-order einsum kernels in :mod:`repro.ml.kernels`; these
properties pin the invariance the rest of the suite builds on: a row scored
alone equals the same row scored inside any batch, bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.ml.dbn import DbnConfig, DeepBeliefNetwork
from repro.ml.kernels import affine_matrix, affine_rows, ensure_rows, square_norm_rows
from repro.ml.linear import LinearModel

pytestmark = pytest.mark.equivalence

dims = st.integers(min_value=1, max_value=40)
batches = st.integers(min_value=1, max_value=17)


def _matrix(rows: int, cols: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(rows, cols))


class TestKernelInvariance:
    @given(n=batches, d=dims, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_affine_rows_row_invariant(self, n, d, seed):
        x = _matrix(n, d, seed)
        w = np.random.default_rng(seed + 1).normal(size=d)
        full = affine_rows(x, w, 0.25)
        for i in range(n):
            alone = affine_rows(x[i : i + 1], w, 0.25)
            assert full[i].tobytes() == alone[0].tobytes()

    @given(n=batches, d=dims, h=dims, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_affine_matrix_row_invariant(self, n, d, h, seed):
        x = _matrix(n, d, seed)
        w = np.random.default_rng(seed + 1).normal(size=(d, h))
        b = np.random.default_rng(seed + 2).normal(size=h)
        full = affine_matrix(x, w, b)
        for i in range(n):
            alone = affine_matrix(x[i : i + 1], w, b)
            assert full[i].tobytes() == alone[0].tobytes()

    @given(n=batches, d=dims, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_square_norm_rows_row_invariant(self, n, d, seed):
        x = _matrix(n, d, seed)
        full = square_norm_rows(x)
        for i in range(n):
            assert full[i].tobytes() == square_norm_rows(x[i : i + 1])[0].tobytes()

    @given(n=batches, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_affine_rows_sublist_invariant(self, n, seed):
        # Any contiguous or strided sub-batch scores identically too —
        # chunked scans (the dark pipeline's dbn_batch) rely on this.
        x = _matrix(n, 16, seed)
        w = np.random.default_rng(seed + 1).normal(size=16)
        full = affine_rows(x, w, -0.5)
        half = affine_rows(x[::2], w, -0.5)
        assert full[::2].tobytes() == half.tobytes()


class TestModelInvariance:
    @given(n=batches, d=dims, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_linear_model_single_equals_batch_row(self, n, d, seed):
        rng = np.random.default_rng(seed)
        model = LinearModel(weights=rng.normal(size=d), bias=float(rng.normal()))
        x = rng.normal(size=(n, d))
        batch = model.decision_batch(x)
        for i in range(n):
            alone = float(model.decision_values(x[i]))
            assert np.float64(alone).tobytes() == batch[i].tobytes()

    def test_dbn_single_equals_batch_row(self, trained_tiny_dbn):
        dbn, windows = trained_tiny_dbn
        batch = dbn.decision_batch(windows)
        for i in range(windows.shape[0]):
            alone = dbn.decision_batch(windows[i : i + 1])
            assert batch[i].tobytes() == alone[0].tobytes()

    def test_dbn_predict_batch_matches_predict(self, trained_tiny_dbn):
        dbn, windows = trained_tiny_dbn
        assert np.array_equal(dbn.predict_batch(windows), dbn.predict(windows))

    def test_dbn_predict_batch_chunk_invariant(self, trained_tiny_dbn):
        dbn, windows = trained_tiny_dbn
        full = dbn.predict_batch(windows)
        chunked = np.concatenate(
            [dbn.predict_batch(windows[i : i + 3]) for i in range(0, windows.shape[0], 3)]
        )
        assert np.array_equal(full, chunked)


class TestValidation:
    def test_ensure_rows_rejects_1d(self):
        with pytest.raises(ModelError):
            ensure_rows(np.zeros(4), 4)

    def test_ensure_rows_rejects_width_mismatch(self):
        with pytest.raises(ModelError):
            ensure_rows(np.zeros((2, 3)), 4)

    def test_dbn_decision_batch_rejects_1d(self, trained_tiny_dbn):
        dbn, windows = trained_tiny_dbn
        with pytest.raises(ModelError):
            dbn.decision_batch(windows[0])


@pytest.fixture(scope="module")
def trained_tiny_dbn():
    """A small trained DBN plus a window batch to score."""
    rng = np.random.default_rng(6)
    windows = (rng.random((40, 81)) < 0.3).astype(np.float64)
    labels = rng.integers(0, 4, size=40)
    config = DbnConfig(layers=(81, 12, 6), finetune_epochs=20)
    config.rbm.epochs = 3
    config.head.epochs = 30
    dbn = DeepBeliefNetwork(config)
    dbn.fit(windows, labels)
    score_batch = (rng.random((13, 81)) < 0.3).astype(np.float64)
    return dbn, score_batch
