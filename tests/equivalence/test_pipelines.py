"""Differential tests: batched pipeline scans vs per-window references.

For every sliding-window pipeline (day/dusk HOG+SVM, pedestrian HOG+SVM,
dark DBN) the batched hot path and the per-window reference path are run on
the same frames — rendered scenes across lighting conditions and seeds plus
randomised planes — and their detections, scores, and class grids are
asserted byte-identical, not merely close.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.lighting import LightingCondition, lighting_for_condition
from repro.datasets.scene import SceneConfig, render_scene
from repro.features.hog import HogConfig
from repro.ml.linear import LinearModel
from repro.pipelines.dark import DarkConfig, DarkVehicleDetector
from repro.pipelines.day_dusk import DayDuskConfig, HogSvmVehicleDetector
from repro.pipelines.pedestrian import PedestrianConfig, PedestrianDetector

pytestmark = pytest.mark.equivalence


def assert_detections_identical(batched, reference):
    """Detections must match in count, geometry, payload, and score bits."""
    assert len(batched) == len(reference)
    for a, b in zip(batched, reference):
        assert a.rect == b.rect
        assert a.kind == b.kind
        assert a.extra == b.extra
        assert np.float64(a.score).tobytes() == np.float64(b.score).tobytes()


def scene_frame(condition: LightingCondition, seed: int):
    config = SceneConfig(
        height=120, width=210, n_vehicles=2, n_oncoming=1, vehicle_fill=(0.1, 0.2), seed=seed
    )
    return render_scene(config, lighting_for_condition(condition)).rgb


def detector_pair(model, threshold: float = 0.0):
    config = DayDuskConfig(decision_threshold=threshold)
    return (
        HogSvmVehicleDetector(replace(config, batched=True), model),
        HogSvmVehicleDetector(replace(config, batched=False), model),
    )


class TestDayDusk:
    @pytest.mark.parametrize("condition", [LightingCondition.DAY, LightingCondition.DUSK])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_detect_identical_on_scenes(self, condition_models, condition, seed):
        model = condition_models[condition.value]
        batched, reference = detector_pair(model, threshold=-0.25)
        frame = scene_frame(condition, seed)
        assert_detections_identical(batched.detect(frame), reference.detect(frame))

    @pytest.mark.parametrize("seed", [1, 9])
    def test_multiscale_identical(self, condition_models, seed):
        batched, reference = detector_pair(condition_models["day"], threshold=-0.25)
        frame = scene_frame(LightingCondition.DAY, seed)
        assert_detections_identical(
            batched.detect_multiscale(frame, max_levels=3),
            reference.detect_multiscale(frame, max_levels=3),
        )

    def test_scan_scores_bitwise(self, condition_models):
        # Below the detection API: the raw scan must agree score by score
        # even for windows no detection survives from.
        from repro.imaging.color import luminance

        batched, reference = detector_pair(condition_models["dusk"], threshold=-np.inf)
        plane = luminance(scene_frame(LightingCondition.DUSK, 3))
        rects_b, scores_b = batched._scan_plane(plane)
        rects_r, scores_r = reference._scan_plane(plane)
        assert rects_b == rects_r
        assert np.asarray(scores_b).tobytes() == np.asarray(scores_r).tobytes()

    @given(
        h=st.integers(min_value=64, max_value=120),
        w=st.integers(min_value=64, max_value=120),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=10, deadline=None)
    def test_detect_identical_on_arbitrary_frames(self, h, w, seed):
        rng = np.random.default_rng(seed)
        dim = HogConfig(window=(64, 64)).feature_length
        model = LinearModel(weights=rng.normal(size=dim), bias=0.0)
        batched, reference = detector_pair(model, threshold=-0.5)
        frame = rng.random((h, w, 3))
        assert_detections_identical(batched.detect(frame), reference.detect(frame))

    def test_scratch_buffers_stable_across_frames(self, condition_models):
        # Repeated frames reuse the pooled buffers; results must not drift.
        batched, reference = detector_pair(condition_models["day"], threshold=-0.25)
        for seed in (0, 1, 0):
            frame = scene_frame(LightingCondition.DAY, seed)
            assert_detections_identical(batched.detect(frame), reference.detect(frame))


class TestPedestrian:
    @pytest.fixture(scope="class")
    def pedestrian_pair(self):
        rng = np.random.default_rng(5)
        dim = HogConfig(window=(64, 32)).feature_length
        model = LinearModel(weights=rng.normal(size=dim), bias=0.05)
        config = PedestrianConfig(decision_threshold=-0.3)
        return (
            PedestrianDetector(replace(config, batched=True), model),
            PedestrianDetector(replace(config, batched=False), model),
        )

    @pytest.mark.parametrize("seed", [2, 11, 23])
    def test_detect_identical(self, pedestrian_pair, seed):
        batched, reference = pedestrian_pair
        frame = np.random.default_rng(seed).random((96, 160, 3))
        assert_detections_identical(batched.detect(frame), reference.detect(frame))

    def test_detect_identical_on_scene(self, pedestrian_pair):
        batched, reference = pedestrian_pair
        frame = scene_frame(LightingCondition.DAY, 4)
        assert_detections_identical(batched.detect(frame), reference.detect(frame))


class TestDark:
    @pytest.fixture(scope="class")
    def dark_pair(self, dark_detector):
        reference = DarkVehicleDetector(
            replace(dark_detector.config, batched=False),
            dbn=dark_detector.dbn,
            matcher=dark_detector.matcher,
        )
        return dark_detector, reference

    def test_dbn_grid_identical_on_scene(self, dark_pair, dark_frame):
        batched, reference = dark_pair
        mask = batched.preprocess(dark_frame.rgb)
        grid_b = batched.dbn_grid(mask)
        grid_r = reference.dbn_grid(mask)
        assert grid_b.shape == grid_r.shape
        assert np.array_equal(grid_b, grid_r)

    @pytest.mark.parametrize("seed", [0, 13])
    def test_dbn_grid_identical_on_random_masks(self, dark_pair, seed):
        batched, reference = dark_pair
        mask = np.random.default_rng(seed).random((40, 70)) < 0.12
        assert np.array_equal(batched.dbn_grid(mask), reference.dbn_grid(mask))

    def test_dbn_grid_chunk_size_irrelevant(self, dark_detector, dark_frame):
        # The chunked hot path must not depend on dbn_batch, only on bytes.
        mask = dark_detector.preprocess(dark_frame.rgb)
        small = DarkVehicleDetector(
            replace(dark_detector.config, dbn_batch=7),
            dbn=dark_detector.dbn,
            matcher=dark_detector.matcher,
        )
        assert np.array_equal(dark_detector.dbn_grid(mask), small.dbn_grid(mask))

    @pytest.mark.parametrize("seed", [99, 101])
    def test_detect_identical_on_scenes(self, dark_pair, seed):
        batched, reference = dark_pair
        frame = scene_frame(LightingCondition.DARK, seed)
        assert_detections_identical(batched.detect(frame), reference.detect(frame))

    def test_trace_class_grids_identical(self, dark_pair, dark_frame):
        from repro.pipelines.dark import DarkStageTrace

        batched, reference = dark_pair
        trace_b, trace_r = DarkStageTrace(), DarkStageTrace()
        batched.detect(dark_frame.rgb, trace=trace_b)
        reference.detect(dark_frame.rgb, trace=trace_r)
        assert np.array_equal(trace_b.class_grid, trace_r.class_grid)
        assert trace_b.pairs == trace_r.pairs


class TestConfigDefaults:
    def test_batched_is_default_everywhere(self):
        assert DayDuskConfig().batched is True
        assert PedestrianConfig().batched is True
        assert DarkConfig().batched is True
