"""Differential tests: the full adaptive detector, batched vs reference.

A seeded drive crosses day -> dusk -> dark; two AdaptiveVehicleDetector
instances share the same trained models but opposite ``batched`` flags.
Every FrameResult — condition, active pipeline, reconfiguration state, and
each detection down to its score bits — must be identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.functional import AdaptiveVehicleDetector, FunctionalConfig
from repro.datasets.lighting import LightingCondition, lighting_for_condition
from repro.datasets.scene import SceneConfig, render_scene

from tests.equivalence.test_pipelines import assert_detections_identical

pytestmark = pytest.mark.equivalence

# (time_s, lux, lighting) samples walking the controller through all three
# conditions, including the dusk<->dark partial-reconfiguration windows.
DRIVE = [
    (0.0, 30000.0, LightingCondition.DAY),
    (1.0, 30000.0, LightingCondition.DAY),
    (2.0, 400.0, LightingCondition.DUSK),
    (5.0, 400.0, LightingCondition.DUSK),
    (8.0, 1.0, LightingCondition.DARK),
    (11.0, 1.0, LightingCondition.DARK),
    (14.0, 1.0, LightingCondition.DARK),
    (17.0, 400.0, LightingCondition.DUSK),
    (20.0, 30000.0, LightingCondition.DAY),
]


def drive_frames(seed: int):
    frames = []
    for i, (time_s, lux, condition) in enumerate(DRIVE):
        config = SceneConfig(
            height=120,
            width=210,
            n_vehicles=2,
            n_oncoming=1,
            vehicle_fill=(0.1, 0.2),
            seed=seed * 100 + i,
        )
        frames.append((time_s, lux, render_scene(config, lighting_for_condition(condition)).rgb))
    return frames


def make_detector(condition_models, dark_detector, batched: bool) -> AdaptiveVehicleDetector:
    return AdaptiveVehicleDetector(
        condition_models,
        dark_detector,
        config=FunctionalConfig(batched=batched),
    )


def assert_frame_results_identical(a, b):
    assert a.time_s == b.time_s
    assert a.condition is b.condition
    assert a.active_pipeline == b.active_pipeline
    assert a.reconfiguring == b.reconfiguring
    assert a.degraded == b.degraded
    assert_detections_identical(a.detections, b.detections)


class TestAdaptiveDrive:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_frame_records_identical_across_conditions(
        self, condition_models, dark_detector, seed
    ):
        batched = make_detector(condition_models, dark_detector, batched=True)
        reference = make_detector(condition_models, dark_detector, batched=False)
        for time_s, lux, frame in drive_frames(seed):
            result_b = batched.process(time_s, lux, frame)
            result_r = reference.process(time_s, lux, frame)
            assert_frame_results_identical(result_b, result_r)
        assert len(batched.results) == len(reference.results) == len(DRIVE)

    def test_batched_flag_reaches_all_pipelines(self, condition_models, dark_detector):
        reference = make_detector(condition_models, dark_detector, batched=False)
        for detector in reference._hog.values():
            assert detector.config.batched is False
        assert reference._dark.config.batched is False
        assert reference._dark.dbn is dark_detector.dbn  # same trained stages
        batched = make_detector(condition_models, dark_detector, batched=True)
        assert batched._dark is dark_detector  # default flag: no reshelling

    def test_multiscale_drive_identical(self, condition_models, dark_detector):
        config_b = FunctionalConfig(batched=True, multiscale=True)
        config_r = FunctionalConfig(batched=False, multiscale=True)
        batched = AdaptiveVehicleDetector(condition_models, dark_detector, config=config_b)
        reference = AdaptiveVehicleDetector(condition_models, dark_detector, config=config_r)
        for time_s, lux, frame in drive_frames(3)[:4]:  # day + dusk levels
            assert_frame_results_identical(
                batched.process(time_s, lux, frame), reference.process(time_s, lux, frame)
            )
