"""Tests for the exception hierarchy and error-path behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro import errors


class TestHierarchy:
    def test_every_library_error_is_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_hardware_branch(self):
        for cls in (
            errors.ResourceError,
            errors.SimulationError,
            errors.BusError,
            errors.DmaError,
            errors.BitstreamError,
            errors.ReconfigurationError,
        ):
            assert issubclass(cls, errors.HardwareError)

    def test_not_trained_is_model_error(self):
        assert issubclass(errors.NotTrainedError, errors.ModelError)

    def test_catching_base_class_at_api_boundary(self):
        from repro.imaging.geometry import Rect

        with pytest.raises(errors.ReproError):
            Rect(0, 0, -1, 1)


class TestErrorMessagesCarryContext:
    def test_image_error_names_shape(self):
        from repro.imaging.image import ensure_gray

        with pytest.raises(errors.ImageError, match=r"\(2, 2, 3\)"):
            ensure_gray(np.zeros((2, 2, 3)))

    def test_model_error_names_dimensions(self):
        from repro.ml.linear import LinearModel

        model = LinearModel(weights=np.ones(4), bias=0.0)
        with pytest.raises(errors.ModelError, match="4"):
            model.decision_values(np.ones(5))

    def test_bitstream_error_lists_inventory(self):
        from repro.zynq.bitstream import BitstreamRepository, PartialBitstream

        repo = BitstreamRepository()
        repo.add(PartialBitstream(name="dark"))
        with pytest.raises(errors.BitstreamError, match="loaded.*dark"):
            repo.get("missing")

    def test_feature_error_names_window(self):
        from repro.features.hog import HogConfig

        with pytest.raises(errors.FeatureError, match="60"):
            HogConfig(window=(60, 64))

    def test_dataset_error_names_bounds(self):
        from repro.datasets.scene import SceneConfig

        with pytest.raises(errors.DatasetError, match="horizon"):
            SceneConfig(horizon=0.9)


class TestErrorStatesAreRecoverable:
    def test_dma_reset_clears_error(self):
        from repro.zynq.bus import HP_PORT, BusLink
        from repro.zynq.dma import DmaDescriptor, DmaEngine, DmaState
        from repro.zynq.events import Simulator
        from repro.zynq.interrupts import InterruptController

        sim = Simulator()
        engine = DmaEngine("d", sim, BusLink(sim, HP_PORT), InterruptController(sim))
        engine.inject_error()
        engine.start(DmaDescriptor(64))
        sim.run()
        assert engine.state is DmaState.ERROR
        engine.reset()
        assert engine.state is DmaState.IDLE

    def test_pr_controller_usable_after_corrupt_bitstream(self):
        from repro.zynq.bitstream import BitstreamRepository, PartialBitstream
        from repro.zynq.events import Simulator
        from repro.zynq.interrupts import InterruptController
        from repro.zynq.pr import PaperPrController, PrState

        repo = BitstreamRepository()
        bad = PartialBitstream(name="dark")
        bad.corrupt()
        repo.add(bad)
        repo.add(PartialBitstream(name="day_dusk"))
        sim = Simulator()
        ctrl = PaperPrController(sim, InterruptController(sim), repo)
        with pytest.raises(errors.ReconfigurationError):
            ctrl.reconfigure("dark")
        assert ctrl.state is PrState.IDLE
        report = ctrl.reconfigure("day_dusk")
        sim.run()
        assert report.ok
