"""Tests for repro.pipelines.tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.imaging.geometry import Rect
from repro.pipelines.base import Detection
from repro.pipelines.tracking import (
    Track,
    TrackerConfig,
    TrackingPipeline,
    VehicleTracker,
    evaluate_tracking,
)


def _det(x: float, y: float, w: float = 20, h: float = 16, score: float = 1.0) -> Detection:
    return Detection(rect=Rect(x, y, w, h), score=score)


class TestConfig:
    def test_rejects_bad_gate(self):
        with pytest.raises(PipelineError):
            TrackerConfig(iou_gate=1.5)

    def test_rejects_bad_lifecycle(self):
        with pytest.raises(PipelineError):
            TrackerConfig(min_hits=0)


class TestLifecycle:
    def test_track_confirms_after_min_hits(self):
        tracker = VehicleTracker(TrackerConfig(min_hits=2))
        assert tracker.update([_det(10, 10)]) == []  # tentative
        reported = tracker.update([_det(11, 10)])
        assert len(reported) == 1
        assert reported[0].confirmed

    def test_stable_identity_across_motion(self):
        tracker = VehicleTracker(TrackerConfig(min_hits=1))
        ids = []
        for i in range(6):
            reported = tracker.update([_det(10 + 3 * i, 10)])
            ids.append(reported[0].track_id)
        assert len(set(ids)) == 1

    def test_coasting_through_dropout(self):
        tracker = VehicleTracker(TrackerConfig(min_hits=1, max_misses=2))
        tracker.update([_det(10, 10)])
        tracker.update([_det(13, 10)])
        coasted = tracker.update([])  # detector dropout
        assert len(coasted) == 1
        assert coasted[0].misses == 1
        # The prediction kept moving with the estimated velocity.
        assert coasted[0].rect.x > 13

    def test_track_dies_after_max_misses(self):
        tracker = VehicleTracker(TrackerConfig(min_hits=1, max_misses=1))
        tracker.update([_det(10, 10)])
        tracker.update([])
        assert len(tracker.update([])) == 0
        assert tracker.tracks == []

    def test_reacquisition_after_dropout(self):
        tracker = VehicleTracker(TrackerConfig(min_hits=1, max_misses=3))
        first = tracker.update([_det(10, 10)])[0].track_id
        tracker.update([])
        again = tracker.update([_det(12, 10)])
        assert again[0].track_id == first

    def test_two_targets_no_identity_swap(self):
        tracker = VehicleTracker(TrackerConfig(min_hits=1))
        a0, b0 = _det(10, 10), _det(100, 10)
        ids0 = {t.rect.x: t.track_id for t in tracker.update([a0, b0])}
        a1, b1 = _det(14, 10), _det(96, 10)
        reported = tracker.update([a1, b1])
        for t in reported:
            if t.rect.x < 50:
                assert t.track_id == ids0[10.0]
            else:
                assert t.track_id == ids0[100.0]

    def test_no_coasting_when_disabled(self):
        tracker = VehicleTracker(TrackerConfig(min_hits=1, coast_confirmed=False))
        tracker.update([_det(10, 10)])
        assert tracker.update([]) == []

    def test_reset(self):
        tracker = VehicleTracker(TrackerConfig(min_hits=1))
        tracker.update([_det(10, 10)])
        tracker.reset()
        assert tracker.tracks == []
        assert tracker.frames_processed == 0


class _ScriptedDetector:
    """Deterministic detector: returns a scripted detection list per call."""

    name = "scripted"

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def detect(self, frame):
        out = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        return out

    def classify_crop(self, crop):
        return False, 0.0


class TestTrackingPipeline:
    def test_detections_carry_track_ids(self):
        detector = _ScriptedDetector([[_det(10, 10)], [_det(12, 10)]])
        pipeline = TrackingPipeline(detector, TrackerConfig(min_hits=1))
        frame = np.zeros((8, 8, 3))
        first = pipeline.detect(frame)
        second = pipeline.detect(frame)
        assert first[0].extra["track_id"] == second[0].extra["track_id"]

    def test_coasting_flag(self):
        detector = _ScriptedDetector([[_det(10, 10)], [_det(12, 10)], []])
        pipeline = TrackingPipeline(detector, TrackerConfig(min_hits=1))
        frame = np.zeros((8, 8, 3))
        pipeline.detect(frame)
        pipeline.detect(frame)
        coasting = pipeline.detect(frame)
        assert coasting[0].extra["coasting"]


class TestSequenceEvaluation:
    def test_tracking_recovers_synthetic_dropouts(self):
        """A scripted flaky detector: tracking fills single-frame gaps."""
        from repro.datasets.lighting import DAY_LIGHTING
        from repro.datasets.scene import SceneConfig
        from repro.datasets.sequences import SequenceConfig, render_sequence

        frames = render_sequence(
            SequenceConfig(
                scene=SceneConfig(height=96, width=160, n_vehicles=1, seed=4),
                n_frames=8,
            ),
            DAY_LIGHTING,
        )

        class Flaky:
            name = "flaky"

            def __init__(self):
                self.calls = 0

            def detect(self, frame_rgb):
                self.calls += 1
                if self.calls % 3 == 0:
                    return []  # dropout every third frame
                obj = frames[self.calls - 1].vehicles[0]
                return [Detection(rect=obj.rect, score=1.0)]

            def classify_crop(self, crop):
                return False, 0.0

        plain = evaluate_tracking(Flaky(), frames)
        tracked = evaluate_tracking(TrackingPipeline(Flaky(), TrackerConfig(min_hits=1)), frames)
        assert tracked.recall > plain.recall
        assert tracked.id_switches == 0
