"""Tests for repro.pipelines.pedestrian: the static partition's detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import make_pedestrian_frames
from repro.errors import NotTrainedError, PipelineError
from repro.pipelines.evaluation import evaluate_frames
from repro.pipelines.pedestrian import PedestrianConfig, PedestrianDetector


@pytest.fixture(scope="module")
def trained_pedestrian():
    detector = PedestrianDetector()
    frames = make_pedestrian_frames(n_frames=8, height=180, width=320, seed=41)
    detector.train_from_frames(frames, seed=42)
    return detector


class TestTraining:
    def test_window_is_upright(self):
        cfg = PedestrianConfig()
        h, w = cfg.hog.window
        assert h > w

    def test_train_produces_model(self, trained_pedestrian):
        assert trained_pedestrian.model is not None
        assert trained_pedestrian.model.meta["name"] == "pedestrian"

    def test_train_requires_pedestrians(self):
        from repro.datasets.synthetic import make_iroads_like

        detector = PedestrianDetector()
        no_peds = make_iroads_like(n_frames=2, height=120, width=240, seed=43)
        with pytest.raises(PipelineError):
            detector.train_from_frames(no_peds)


class TestInference:
    def test_untrained_raises(self):
        with pytest.raises(NotTrainedError):
            PedestrianDetector().classify_crop(np.zeros((64, 32, 3)))

    def test_classify_separates_crops(self, trained_pedestrian):
        from repro.datasets.samples import extract_window_samples

        frames = make_pedestrian_frames(n_frames=4, height=180, width=320, seed=44)
        rng = np.random.default_rng(45)
        correct = total = 0
        for frame in frames.frames:
            pos, neg = extract_window_samples(frame, (64, 32), 3, rng, kind="pedestrian")
            for p in pos:
                correct += trained_pedestrian.classify_crop(p)[0]
                total += 1
            for n in neg:
                correct += not trained_pedestrian.classify_crop(n)[0]
                total += 1
        assert correct / total > 0.75

    def test_detect_runs_on_frames(self, trained_pedestrian):
        frames = make_pedestrian_frames(n_frames=3, height=180, width=320, seed=46)
        result = evaluate_frames(trained_pedestrian, frames.frames, kind="pedestrian", iou_threshold=0.2)
        assert result.frames_total == 3
        # The detector must at least fire somewhere near pedestrians.
        assert result.detected + result.spurious >= 0

    def test_detect_rejects_small_frame(self, trained_pedestrian):
        with pytest.raises(PipelineError):
            trained_pedestrian.detect(np.zeros((32, 16, 3)))

    def test_detections_are_pedestrian_kind(self, trained_pedestrian):
        frames = make_pedestrian_frames(n_frames=1, height=180, width=320, seed=47)
        for det in trained_pedestrian.detect(frames.frames[0].rgb):
            assert det.kind == "pedestrian"
