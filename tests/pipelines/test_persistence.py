"""Tests for repro.pipelines.persistence: detector bundles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.scaler import StandardScaler
from repro.pipelines.dark import DarkVehicleDetector
from repro.pipelines.persistence import (
    load_detector_bundle,
    load_scaler,
    save_detector_bundle,
    save_scaler,
)


class TestScalerIo:
    def test_roundtrip(self, tmp_path):
        scaler = StandardScaler().fit(np.random.default_rng(0).normal(3, 2, size=(50, 4)))
        path = tmp_path / "scaler.npz"
        save_scaler(scaler, path)
        loaded = load_scaler(path)
        x = np.random.default_rng(1).random((5, 4))
        assert np.allclose(loaded.transform(x), scaler.transform(x))

    def test_rejects_unfitted(self, tmp_path):
        with pytest.raises(ModelError):
            save_scaler(StandardScaler(), tmp_path / "s.npz")


class TestBundle:
    def test_roundtrip_inference_identical(self, tmp_path, condition_models, dark_detector, dark_frame):
        root = save_detector_bundle(tmp_path / "bundle", condition_models, dark_detector)
        models, dark = load_detector_bundle(root)
        assert set(models) == set(condition_models)
        # Linear models: identical decisions.
        rng = np.random.default_rng(2)
        feats = rng.random((4, condition_models["day"].n_features))
        for name in models:
            assert np.allclose(
                models[name].decision_values(feats),
                condition_models[name].decision_values(feats),
            )
        # Dark pipeline: identical detections on a real frame.
        original = dark_detector.detect(dark_frame.rgb)
        restored = dark.detect(dark_frame.rgb)
        assert len(original) == len(restored)
        for a, b in zip(original, restored):
            assert a.rect.iou(b.rect) > 0.99
            assert a.score == pytest.approx(b.score)

    def test_config_preserved(self, tmp_path, condition_models, dark_detector):
        root = save_detector_bundle(tmp_path / "b2", condition_models, dark_detector)
        _, dark = load_detector_bundle(root)
        assert dark.config == dark_detector.config

    def test_rejects_untrained_dark(self, tmp_path, condition_models):
        with pytest.raises(ModelError):
            save_detector_bundle(tmp_path / "b3", condition_models, DarkVehicleDetector())

    def test_rejects_non_bundle_directory(self, tmp_path):
        with pytest.raises(ModelError):
            load_detector_bundle(tmp_path)

    def test_rejects_foreign_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "something-else"}')
        with pytest.raises(ModelError):
            load_detector_bundle(tmp_path)
