"""Tests for repro.pipelines.day_dusk: HOG+SVM vehicle detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.lighting import DAY_LIGHTING
from repro.datasets.scene import SceneConfig, render_scene
from repro.errors import NotTrainedError, PipelineError
from repro.pipelines.day_dusk import DayDuskConfig, HogSvmVehicleDetector
from repro.pipelines.evaluation import evaluate_crop_classifier


class TestTraining:
    def test_models_have_names(self, condition_models):
        assert condition_models["day"].meta["name"] == "day"
        assert condition_models["dusk"].meta["name"] == "dusk"
        assert condition_models["combined"].meta["name"] == "combined"

    def test_day_model_separates_day_corpus(self, condition_corpora, condition_models):
        detector = HogSvmVehicleDetector().with_model(condition_models["day"])
        counts = evaluate_crop_classifier(detector, condition_corpora.day_test)
        assert counts.accuracy > 0.9

    def test_condition_gap(self, condition_corpora, condition_models):
        """The paper's core premise: models do not transfer across
        conditions — each model is best in its own regime."""
        day_det = HogSvmVehicleDetector().with_model(condition_models["day"])
        dusk_det = HogSvmVehicleDetector().with_model(condition_models["dusk"])
        day_on_day = evaluate_crop_classifier(day_det, condition_corpora.day_test).accuracy
        dusk_on_day = evaluate_crop_classifier(dusk_det, condition_corpora.day_test).accuracy
        assert day_on_day > dusk_on_day + 0.1
        day_on_dusk = evaluate_crop_classifier(day_det, condition_corpora.dusk_test).accuracy
        dusk_on_dusk = evaluate_crop_classifier(dusk_det, condition_corpora.dusk_test).accuracy
        assert dusk_on_dusk > day_on_dusk + 0.1


class TestInference:
    def test_classify_before_train_raises(self):
        detector = HogSvmVehicleDetector()
        with pytest.raises(NotTrainedError):
            detector.classify_crop(np.zeros((64, 64, 3)))

    def test_classify_resizes_foreign_crop(self, condition_models):
        detector = HogSvmVehicleDetector().with_model(condition_models["day"])
        verdict, score = detector.classify_crop(np.random.default_rng(0).random((48, 48, 3)))
        assert isinstance(verdict, bool)
        assert np.isfinite(score)

    def test_detect_rejects_small_frame(self, condition_models):
        detector = HogSvmVehicleDetector().with_model(condition_models["day"])
        with pytest.raises(PipelineError):
            detector.detect(np.zeros((32, 32, 3)))

    def test_detect_finds_vehicle_in_day_scene(self, condition_models):
        detector = HogSvmVehicleDetector().with_model(condition_models["combined"])
        config = SceneConfig(
            height=128, width=192, n_vehicles=1, vehicle_fill=(0.25, 0.3), seed=21
        )
        frame = render_scene(config, DAY_LIGHTING)
        detections = detector.detect(frame.rgb)
        # The dense single-scale scan at least proposes something near the
        # truth when the vehicle matches the window scale.
        assert isinstance(detections, list)
        for det in detections:
            assert det.kind == "vehicle"
            assert det.rect.x2 <= 192 and det.rect.y2 <= 128

    def test_with_model_shares_config(self, condition_models):
        config = DayDuskConfig(decision_threshold=0.5)
        base = HogSvmVehicleDetector(config)
        other = base.with_model(condition_models["day"])
        assert other.config is config
        assert other.model is condition_models["day"]

    def test_decision_threshold_monotone(self, condition_corpora, condition_models):
        """Raising the threshold can only trade TPs for TNs."""
        loose = HogSvmVehicleDetector(DayDuskConfig(decision_threshold=-1.0)).with_model(
            condition_models["day"]
        )
        strict = HogSvmVehicleDetector(DayDuskConfig(decision_threshold=1.0)).with_model(
            condition_models["day"]
        )
        ds = condition_corpora.day_test
        c_loose = evaluate_crop_classifier(loose, ds)
        c_strict = evaluate_crop_classifier(strict, ds)
        assert c_strict.tp <= c_loose.tp
        assert c_strict.tn >= c_loose.tn


class TestMultiscale:
    def test_multiscale_finds_near_vehicle(self, condition_models):
        from repro.datasets.lighting import DAY_LIGHTING
        from repro.datasets.scene import SceneConfig, render_scene

        detector = HogSvmVehicleDetector().with_model(condition_models["day"])
        frame = render_scene(
            SceneConfig(height=240, width=360, n_vehicles=1, vehicle_fill=(0.33, 0.38), seed=77),
            DAY_LIGHTING,
        )
        truth = frame.vehicle_boxes[0]
        multi = detector.detect_multiscale(frame.rgb)
        assert any(d.rect.iou(truth) > 0.4 for d in multi)
        # The single-scale 64x64 window cannot cover the ~130 px vehicle.
        single = detector.detect(frame.rgb)
        assert all(d.rect.w == 64 for d in single)

    def test_multiscale_boxes_within_frame(self, condition_models):
        from repro.datasets.lighting import DAY_LIGHTING
        from repro.datasets.scene import SceneConfig, render_scene

        detector = HogSvmVehicleDetector().with_model(condition_models["day"])
        frame = render_scene(
            SceneConfig(height=160, width=240, n_vehicles=1, seed=5), DAY_LIGHTING
        )
        for det in detector.detect_multiscale(frame.rgb, max_levels=3):
            assert det.rect.x >= -1 and det.rect.y >= -1
            assert det.rect.x2 <= 241 and det.rect.y2 <= 161

    def test_max_levels_one_equals_single_scale(self, condition_models):
        from repro.datasets.lighting import DAY_LIGHTING
        from repro.datasets.scene import SceneConfig, render_scene

        detector = HogSvmVehicleDetector().with_model(condition_models["day"])
        frame = render_scene(
            SceneConfig(height=128, width=192, n_vehicles=1, seed=6), DAY_LIGHTING
        )
        single = detector.detect(frame.rgb)
        multi1 = detector.detect_multiscale(frame.rgb, max_levels=1)
        assert len(single) == len(multi1)
        for a, b in zip(single, multi1):
            assert a.rect.iou(b.rect) > 0.99
