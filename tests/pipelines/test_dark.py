"""Tests for repro.pipelines.dark: the Fig. 3/4 pipeline stage by stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.lighting import DARK_LIGHTING, sample_dark_lighting
from repro.datasets.scene import render_vehicle_crop
from repro.errors import PipelineError
from repro.pipelines.dark import (
    DBN_STRIDE,
    DBN_WINDOW,
    DarkConfig,
    DarkStageTrace,
    DarkVehicleDetector,
)


class TestConstants:
    def test_paper_window_and_stride(self):
        # "sliding it over a window of 9x9 with the stride of 2"
        assert DBN_WINDOW == 9
        assert DBN_STRIDE == 2


class TestUntrained:
    def test_detect_raises(self):
        with pytest.raises(PipelineError):
            DarkVehicleDetector().detect(np.zeros((90, 120, 3)))

    def test_dbn_grid_raises(self):
        with pytest.raises(PipelineError):
            DarkVehicleDetector().dbn_grid(np.zeros((30, 30)))


class TestPreprocess:
    def test_mask_shape_downsampled(self, dark_detector, dark_frame):
        mask = dark_detector.preprocess(dark_frame.rgb)
        h, w = dark_frame.rgb.shape[:2]
        assert mask.shape == (h // 3, w // 3)

    def test_trace_captures_stages(self, dark_detector, dark_frame):
        trace = DarkStageTrace()
        dark_detector.preprocess(dark_frame.rgb, trace=trace)
        assert trace.luma_mask is not None
        assert trace.chroma_mask is not None
        assert trace.merged_mask is not None
        assert trace.processed_mask is not None

    def test_chroma_mask_restricts_luma(self, dark_detector, dark_frame):
        trace = DarkStageTrace()
        dark_detector.preprocess(dark_frame.rgb, trace=trace)
        assert trace.merged_mask.sum() <= trace.luma_mask.sum()

    def test_luma_only_config(self, dark_detector, dark_frame):
        luma_only = DarkVehicleDetector(
            config=DarkConfig(use_chroma=False),
            dbn=dark_detector.dbn,
            matcher=dark_detector.matcher,
        )
        trace = DarkStageTrace()
        luma_only.preprocess(dark_frame.rgb, trace=trace)
        assert trace.chroma_mask is None
        assert np.array_equal(trace.merged_mask, trace.luma_mask)

    def test_taillights_survive_preprocess(self, dark_detector, dark_frame):
        mask = dark_detector.preprocess(dark_frame.rgb)
        factor = dark_detector._effective_factor(*dark_frame.rgb.shape[:2])
        for vehicle in dark_frame.vehicles:
            for (tx, ty) in vehicle.taillights:
                x, y = int(tx // factor), int(ty // factor)
                region = mask[max(0, y - 3) : y + 4, max(0, x - 3) : x + 4]
                assert region.any()

    def test_effective_factor_fallback(self, dark_detector):
        # 100x100 is not divisible by 3; falls back to 2.
        assert dark_detector._effective_factor(100, 100) == 2
        assert dark_detector._effective_factor(90, 120) == 3
        assert dark_detector._effective_factor(91, 121) == 1


class TestDbnGrid:
    def test_grid_geometry(self, dark_detector):
        mask = np.zeros((45, 63), dtype=bool)
        grid = dark_detector.dbn_grid(mask)
        assert grid.shape == ((45 - 9) // 2 + 1, (63 - 9) // 2 + 1)

    def test_empty_mask_all_background(self, dark_detector):
        grid = dark_detector.dbn_grid(np.zeros((31, 31), dtype=bool))
        assert not grid.any()

    def test_small_mask_empty_grid(self, dark_detector):
        grid = dark_detector.dbn_grid(np.zeros((5, 5), dtype=bool))
        assert grid.size == 0

    def test_taillight_blob_detected(self, dark_detector):
        mask = np.zeros((31, 31), dtype=bool)
        ys, xs = np.mgrid[0:31, 0:31]
        mask[(ys - 15) ** 2 + (xs - 15) ** 2 <= 4] = True  # radius-2 blob
        grid = dark_detector.dbn_grid(mask)
        assert (grid > 0).any()


class TestCandidates:
    def test_extract_from_empty_grid(self, dark_detector):
        assert dark_detector.extract_candidates(np.zeros((10, 10), dtype=np.int64)) == []

    def test_extract_centers_in_pixels(self, dark_detector):
        grid = np.zeros((20, 20), dtype=np.int64)
        grid[5:7, 5:7] = 2
        cands = dark_detector.extract_candidates(grid)
        assert len(cands) == 1
        cx, cy = cands[0].center
        # grid (5.5, 5.5) -> pixels 5.5*2 + 4.5 = 15.5
        assert cx == pytest.approx(15.5)
        assert cy == pytest.approx(15.5)
        assert cands[0].size_class == 2

    def test_min_blob_filter(self, dark_detector):
        grid = np.zeros((20, 20), dtype=np.int64)
        grid[3, 3] = 1  # single hit window < min_blob_windows=2
        assert dark_detector.extract_candidates(grid) == []

    def test_max_candidates_cap(self, dark_detector):
        grid = np.zeros((40, 60), dtype=np.int64)
        for i in range(30):
            r, c = (i % 6) * 6, (i // 6) * 8
            grid[r : r + 2, c : c + 2] = 1
        cands = dark_detector.extract_candidates(grid)
        assert len(cands) <= dark_detector.config.max_candidates


class TestEndToEnd:
    def test_detects_vehicle_in_dark_frame(self, dark_detector, dark_frame):
        detections = dark_detector.detect(dark_frame.rgb)
        assert detections, "expected at least one detection in the dark frame"
        truths = dark_frame.vehicle_boxes
        assert any(d.rect.iou(t) > 0.2 for d in detections for t in truths)

    def test_detection_has_taillight_extra(self, dark_detector, dark_frame):
        detections = dark_detector.detect(dark_frame.rgb)
        for det in detections:
            lights = det.extra["taillights"]
            assert len(lights) == 2

    def test_classify_crop_positive(self, dark_detector):
        rng = np.random.default_rng(31)
        hits = 0
        for _ in range(6):
            crop = render_vehicle_crop(
                sample_dark_lighting(rng), rng, 64, fill_range=(0.5, 0.8)
            )
            hits += dark_detector.classify_crop(crop)[0]
        assert hits >= 4

    def test_classify_crop_negative_on_black(self, dark_detector):
        verdict, score = dark_detector.classify_crop(np.zeros((64, 64, 3)))
        assert not verdict and score == 0.0

    def test_trace_populated(self, dark_detector, dark_frame):
        trace = DarkStageTrace()
        dark_detector.detect(dark_frame.rgb, trace=trace)
        assert trace.class_grid is not None
        assert isinstance(trace.candidates, list)
