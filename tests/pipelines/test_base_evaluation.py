"""Tests for repro.pipelines.base and repro.pipelines.evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.imaging.geometry import Rect
from repro.pipelines.base import Detection, DetectionPipeline
from repro.pipelines.evaluation import (
    ConfusionCounts,
    confusion_from_predictions,
    evaluate_crop_classifier,
    evaluate_detections,
)


class TestDetection:
    def test_fields(self):
        d = Detection(rect=Rect(0, 0, 10, 10), score=0.8, kind="vehicle")
        assert d.kind == "vehicle"
        assert d.extra == {}

    def test_protocol_runtime_check(self):
        class Dummy:
            name = "dummy"

            def detect(self, frame):
                return []

            def classify_crop(self, crop):
                return False, 0.0

        assert isinstance(Dummy(), DetectionPipeline)


class TestConfusionCounts:
    def test_accuracy_formula(self):
        # Paper Equation (1) on the paper's own day-model/day-test row.
        c = ConfusionCounts(tp=195, tn=21, fp=4, fn=5)
        assert c.accuracy == pytest.approx(0.96)

    def test_empty_raises(self):
        with pytest.raises(PipelineError):
            _ = ConfusionCounts().accuracy

    def test_precision_recall_f1(self):
        c = ConfusionCounts(tp=8, tn=0, fp=2, fn=2)
        assert c.precision == pytest.approx(0.8)
        assert c.recall == pytest.approx(0.8)
        assert c.f1 == pytest.approx(0.8)

    def test_zero_division_guards(self):
        c = ConfusionCounts(tp=0, tn=5, fp=0, fn=0)
        assert c.precision == 0.0 and c.recall == 0.0 and c.f1 == 0.0

    def test_addition(self):
        a = ConfusionCounts(1, 2, 3, 4)
        b = ConfusionCounts(10, 20, 30, 40)
        s = a + b
        assert (s.tp, s.tn, s.fp, s.fn) == (11, 22, 33, 44)

    def test_as_row(self):
        row = ConfusionCounts(tp=1, tn=1, fp=0, fn=0).as_row()
        assert row["accuracy"] == 1.0 and row["TP"] == 1


class TestConfusionFromPredictions:
    def test_counts(self):
        y = np.array([1, 1, -1, -1])
        p = np.array([1, -1, -1, 1])
        c = confusion_from_predictions(y, p)
        assert (c.tp, c.fn, c.tn, c.fp) == (1, 1, 1, 1)

    def test_rejects_misaligned(self):
        with pytest.raises(PipelineError):
            confusion_from_predictions(np.array([1]), np.array([1, -1]))


class _ConstantPipeline:
    name = "const"

    def __init__(self, answer: bool):
        self.answer = answer

    def classify_crop(self, crop):
        return self.answer, 1.0 if self.answer else -1.0

    def detect(self, frame):
        return []


class TestEvaluators:
    def test_crop_evaluator_always_yes(self):
        from repro.datasets.lighting import LightingCondition
        from repro.datasets.samples import ClassificationDataset

        ds = ClassificationDataset(
            name="t",
            condition=LightingCondition.DAY,
            images=np.zeros((4, 8, 8, 3)),
            labels=np.array([1, 1, -1, -1]),
        )
        c = evaluate_crop_classifier(_ConstantPipeline(True), ds)
        assert (c.tp, c.fp, c.tn, c.fn) == (2, 2, 0, 0)

    def test_evaluate_detections_counts(self):
        truths = [Rect(0, 0, 10, 10)]
        dets = [
            Detection(rect=Rect(1, 1, 10, 10), score=1.0),
            Detection(rect=Rect(50, 50, 10, 10), score=0.5),
        ]
        matched, missed, spurious = evaluate_detections(truths, dets)
        assert (matched, missed, spurious) == (1, 0, 1)
