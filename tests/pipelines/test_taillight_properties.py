"""Property-based tests for taillight pair geometry (hypothesis)."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.imaging.geometry import Rect
from repro.pipelines.taillight import (
    CLASS_RADIUS_PX,
    PAIR_SEPARATION_RATIO,
    TaillightCandidate,
    pair_features,
    pair_gate,
    vehicle_box_from_pair,
)


def candidates():
    coord = st.floats(min_value=0.0, max_value=320.0, allow_nan=False)
    return st.builds(
        lambda x, y, cls, area: TaillightCandidate(
            center=(x, y),
            size_class=cls,
            area=area,
            bbox=Rect(x - 2, y - 2, 4, 4),
        ),
        x=coord,
        y=coord,
        cls=st.integers(min_value=1, max_value=3),
        area=st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
    )


class TestPairFeatureProperties:
    @settings(max_examples=60)
    @given(candidates(), candidates())
    def test_order_invariance(self, a, b):
        assert np.allclose(pair_features(a, b), pair_features(b, a), atol=1e-9)

    @settings(max_examples=60)
    @given(candidates(), candidates())
    def test_gate_symmetric(self, a, b):
        assert pair_gate(a, b) == pair_gate(b, a)

    @settings(max_examples=60)
    @given(candidates(), candidates())
    def test_features_finite(self, a, b):
        feats = pair_features(a, b)
        assert np.all(np.isfinite(feats))

    @settings(max_examples=60)
    @given(candidates(), candidates(), st.floats(min_value=-200, max_value=200), st.floats(min_value=-200, max_value=200))
    def test_translation_invariance(self, a, b, dx, dy):
        from dataclasses import replace

        a2 = TaillightCandidate(
            center=(a.center[0] + dx, a.center[1] + dy),
            size_class=a.size_class,
            area=a.area,
            bbox=a.bbox,
        )
        b2 = TaillightCandidate(
            center=(b.center[0] + dx, b.center[1] + dy),
            size_class=b.size_class,
            area=b.area,
            bbox=b.bbox,
        )
        assert np.allclose(pair_features(a, b), pair_features(a2, b2), atol=1e-9)
        assert pair_gate(a, b) == pair_gate(a2, b2)

    @settings(max_examples=40)
    @given(
        st.integers(min_value=1, max_value=3),
        st.floats(min_value=0.0, max_value=300.0),
        st.floats(min_value=10.0, max_value=250.0),
    )
    def test_canonical_pairs_pass_gate(self, cls, y, x):
        """Perfectly aligned pairs at mid-band separation always gate in."""
        radius = CLASS_RADIUS_PX[cls]
        sep = radius * sum(PAIR_SEPARATION_RATIO) / 2.0
        a = TaillightCandidate(center=(x, y), size_class=cls, area=radius**2 * 3, bbox=Rect(x, y, 2, 2))
        b = TaillightCandidate(center=(x + sep, y), size_class=cls, area=radius**2 * 3, bbox=Rect(x + sep, y, 2, 2))
        assert pair_gate(a, b)


class TestVehicleBoxProperties:
    @settings(max_examples=60)
    @given(
        st.floats(min_value=0.0, max_value=300.0),
        st.floats(min_value=10.0, max_value=200.0),
        st.floats(min_value=4.0, max_value=80.0),
    )
    def test_box_contains_both_lights(self, x, y, sep):
        a = TaillightCandidate(center=(x, y), size_class=2, area=5, bbox=Rect(x, y, 2, 2))
        b = TaillightCandidate(center=(x + sep, y), size_class=2, area=5, bbox=Rect(x + sep, y, 2, 2))
        box = vehicle_box_from_pair(a, b)
        assert box.contains_point(x, y)
        assert box.contains_point(x + sep - 1e-9, y)

    @settings(max_examples=60)
    @given(
        st.floats(min_value=0.0, max_value=300.0),
        st.floats(min_value=10.0, max_value=200.0),
        st.floats(min_value=4.0, max_value=80.0),
    )
    def test_box_aspect_constant(self, x, y, sep):
        a = TaillightCandidate(center=(x, y), size_class=2, area=5, bbox=Rect(x, y, 2, 2))
        b = TaillightCandidate(center=(x + sep, y), size_class=2, area=5, bbox=Rect(x + sep, y, 2, 2))
        box = vehicle_box_from_pair(a, b)
        assert box.aspect == pytest_approx(1.0 / 0.77)


def pytest_approx(value: float):
    import pytest

    return pytest.approx(value, rel=1e-6)
