"""Tests for repro.pipelines.taillight: candidates, pairing, boxes."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.imaging.geometry import Rect
from repro.pipelines.taillight import (
    CLASS_RADIUS_PX,
    PAIR_FEATURE_LENGTH,
    PAIR_SEPARATION_RATIO,
    TaillightCandidate,
    TaillightPairMatcher,
    make_pair_training_set,
    pair_features,
    pair_gate,
    vehicle_box_from_pair,
)


def _cand(x: float, y: float, cls: int = 2, area: float = 5.0) -> TaillightCandidate:
    return TaillightCandidate(
        center=(x, y), size_class=cls, area=area, bbox=Rect(x - 2, y - 2, 4, 4)
    )


class TestFeatures:
    def test_length(self):
        f = pair_features(_cand(10, 10), _cand(30, 10))
        assert f.shape == (PAIR_FEATURE_LENGTH,)

    def test_order_invariant(self):
        a, b = _cand(10, 12, 1, 3.0), _cand(38, 10, 3, 9.0)
        assert np.allclose(pair_features(a, b), pair_features(b, a))

    def test_aligned_pair_low_tilt(self):
        f = pair_features(_cand(10, 10), _cand(30, 10))
        assert f[1] == pytest.approx(0.0)  # alignment
        assert f[5] == pytest.approx(0.0)  # tilt

    def test_separation_normalised_by_radius(self):
        small = pair_features(_cand(10, 10, 1), _cand(20, 10, 1))
        large = pair_features(_cand(10, 10, 3), _cand(20, 10, 3))
        assert small[0] > large[0]

    def test_invalid_class_raises(self):
        bad = TaillightCandidate(center=(0, 0), size_class=5, area=1.0, bbox=Rect(0, 0, 1, 1))
        with pytest.raises(PipelineError):
            _ = bad.radius


class TestGate:
    def test_accepts_plausible_pair(self):
        r = CLASS_RADIUS_PX[2]
        sep = r * sum(PAIR_SEPARATION_RATIO) / 2.0
        assert pair_gate(_cand(10, 10), _cand(10 + sep, 10.5))

    def test_rejects_vertical_stack(self):
        assert not pair_gate(_cand(10, 10), _cand(10, 40))

    def test_rejects_huge_separation(self):
        r = CLASS_RADIUS_PX[2]
        sep = r * PAIR_SEPARATION_RATIO[1] * 3.0
        assert not pair_gate(_cand(10, 10), _cand(10 + sep, 10))

    def test_rejects_coincident(self):
        assert not pair_gate(_cand(10, 10), _cand(10, 10))


class TestTrainingSet:
    def test_balanced_labels(self):
        x, y = make_pair_training_set(n_per_class=50, seed=1)
        assert x.shape == (100, PAIR_FEATURE_LENGTH)
        assert (y == 1).sum() == 50 and (y == -1).sum() == 50

    def test_rejects_empty(self):
        with pytest.raises(PipelineError):
            make_pair_training_set(n_per_class=0)


class TestMatcher:
    @pytest.fixture(scope="class")
    def matcher(self):
        m = TaillightPairMatcher()
        m.train(seed=2)
        return m

    def test_training_accuracy(self, matcher):
        x, y = make_pair_training_set(n_per_class=200, seed=3)
        scaled = matcher.scaler.transform(x)
        assert (matcher.model.predict(scaled) == y).mean() > 0.85

    def test_match_score_gated(self, matcher):
        assert matcher.match_score(_cand(10, 10), _cand(10, 60)) == -math.inf

    def test_untrained_raises(self):
        with pytest.raises(PipelineError):
            TaillightPairMatcher().match_score(_cand(0, 0), _cand(10, 0))

    def test_match_pairs_one_to_one(self, matcher):
        r = CLASS_RADIUS_PX[2]
        sep = r * 8.0
        cands = [
            _cand(10, 10),
            _cand(10 + sep, 10),
            _cand(10 + sep / 2.0, 10.5),  # an interloper between the lamps
        ]
        pairs = matcher.match_pairs(cands)
        used = [i for p in pairs for i in p[:2]]
        assert len(used) == len(set(used))

    def test_real_geometry_pair_matches(self, matcher):
        r = CLASS_RADIUS_PX[3]
        sep = r * 9.0
        pairs = matcher.match_pairs([_cand(50, 40, 3, 10), _cand(50 + sep, 40.4, 3, 9)])
        assert len(pairs) == 1


class TestVehicleBox:
    def test_box_spans_lights(self):
        box = vehicle_box_from_pair(_cand(20, 30), _cand(50, 30))
        assert box.x < 20 and box.x2 > 50
        assert box.contains_point(35, 30)

    def test_box_wider_than_separation(self):
        box = vehicle_box_from_pair(_cand(20, 30), _cand(50, 30))
        assert box.w == pytest.approx(30 / 0.69)

    def test_rejects_coincident_lights(self):
        with pytest.raises(PipelineError):
            vehicle_box_from_pair(_cand(10, 10), _cand(10, 40))
