"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail; this shim lets ``pip install -e .`` fall back to
``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
