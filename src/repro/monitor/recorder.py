"""The flight recorder: a bounded ring of frame snapshots + trigger windows.

Aviation semantics: the recorder continuously overwrites a small ring of
per-frame snapshots; when a *trigger* fires (a fault, a failed
reconfiguration, a CRITICAL health transition), the ring's newest
``pre_roll`` snapshots are frozen, the next ``post_roll`` frames are
captured live, and the whole window becomes one :class:`IncidentWindow` —
the moments *around* the failure, not just the failure itself.

Triggers that land while a window is still capturing post-roll fold into
the open incident rather than opening a second one; after an incident
closes, ``cooldown_frames`` frames must pass before a new trigger arms the
recorder again (a fault storm produces a handful of bundles, not one per
firing).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError


@dataclass
class FrameSnapshot:
    """Everything the recorder keeps about one frame.

    ``record`` is the *deterministic* core — the frame's audit-trail fields
    as produced by the drive loop — and is the part an ``incident replay``
    byte-verifies.  The remaining fields are observability context (host
    wall time, health, recent typed events, metric deltas) that a replay on
    different hardware is not expected to reproduce.
    """

    record: dict[str, Any]
    wall_ms: float | None = None
    health: str = "ok"
    violations: tuple[str, ...] = ()
    zynq_events: tuple[dict, ...] = ()
    metric_deltas: dict[str, float] = field(default_factory=dict)

    @property
    def index(self) -> int:
        return int(self.record["index"])

    @property
    def time_s(self) -> float:
        return float(self.record["time_s"])

    def to_dict(self) -> dict:
        return {
            "record": dict(self.record),
            "wall_ms": self.wall_ms,
            "health": self.health,
            "violations": list(self.violations),
            "zynq_events": [dict(e) for e in self.zynq_events],
            "metric_deltas": dict(self.metric_deltas),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FrameSnapshot":
        return cls(
            record=dict(data["record"]),
            wall_ms=data.get("wall_ms"),
            health=data.get("health", "ok"),
            violations=tuple(data.get("violations", ())),
            zynq_events=tuple(dict(e) for e in data.get("zynq_events", ())),
            metric_deltas=dict(data.get("metric_deltas", {})),
        )


@dataclass(frozen=True)
class TriggerEvent:
    """Why the recorder froze a window."""

    kind: str          # "fault", "reconfig-failure", "health-critical", ...
    time_s: float
    frame_index: int
    detail: str = ""

    def label(self) -> str:
        base = f"trigger:{self.kind}"
        return f"{base}({self.detail})" if self.detail else base

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "time_s": self.time_s,
            "frame_index": self.frame_index,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TriggerEvent":
        return cls(
            kind=data["kind"],
            time_s=data["time_s"],
            frame_index=data["frame_index"],
            detail=data.get("detail", ""),
        )


@dataclass
class IncidentWindow:
    """One frozen pre/post-roll window plus the triggers that caused it."""

    snapshots: list[FrameSnapshot]
    triggers: list[TriggerEvent]

    @property
    def start_index(self) -> int:
        return self.snapshots[0].index

    @property
    def end_index(self) -> int:
        return self.snapshots[-1].index

    @property
    def trigger_index(self) -> int:
        return self.triggers[0].frame_index


class FlightRecorder:
    """Bounded ring buffer of :class:`FrameSnapshot` with trigger freezing.

    Args:
        capacity: Ring size (must hold at least the pre-roll).
        pre_roll: Frames *before* the trigger kept in a window.
        post_roll: Frames *after* the trigger captured before freezing.
        cooldown_frames: Frames after an incident closes during which new
            triggers are ignored (counted, not recorded).
        max_incidents: Hard cap on windows per recorder lifetime.
        on_incident: Callback receiving each finished window.
    """

    def __init__(
        self,
        capacity: int = 512,
        pre_roll: int = 32,
        post_roll: int = 16,
        cooldown_frames: int = 64,
        max_incidents: int = 16,
        on_incident: Callable[[IncidentWindow], None] | None = None,
    ):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if pre_roll < 0 or post_roll < 0:
            raise ConfigurationError("pre_roll and post_roll must be >= 0")
        if pre_roll > capacity:
            raise ConfigurationError(
                f"pre_roll ({pre_roll}) cannot exceed capacity ({capacity})"
            )
        if cooldown_frames < 0:
            raise ConfigurationError("cooldown_frames must be >= 0")
        if max_incidents < 1:
            raise ConfigurationError("max_incidents must be >= 1")
        self.capacity = capacity
        self.pre_roll = pre_roll
        self.post_roll = post_roll
        self.cooldown_frames = cooldown_frames
        self.max_incidents = max_incidents
        self.on_incident = on_incident
        self.ring: deque[FrameSnapshot] = deque(maxlen=capacity)
        self.frames_seen = 0
        self.incidents: list[IncidentWindow] = []
        self.triggers_suppressed = 0
        self._open: IncidentWindow | None = None
        self._post_remaining = 0
        self._cooldown_remaining = 0

    @property
    def capturing(self) -> bool:
        """True while an incident window is collecting post-roll frames."""
        return self._open is not None

    def push(self, snapshot: FrameSnapshot) -> IncidentWindow | None:
        """Record one frame; returns a window when one just closed."""
        self.ring.append(snapshot)
        self.frames_seen += 1
        if self._cooldown_remaining > 0:
            self._cooldown_remaining -= 1
        if self._open is not None:
            self._open.snapshots.append(snapshot)
            self._post_remaining -= 1
            if self._post_remaining <= 0:
                return self._close()
        return None

    def trigger(self, event: TriggerEvent) -> bool:
        """Arm (or extend) an incident window; True when accepted.

        The trigger is attributed to the most recent pushed frame; the
        pre-roll is lifted from the ring at trigger time so later pushes
        cannot evict it.
        """
        if self._open is not None:
            # Fold into the open incident: one window, many causes.
            self._open.triggers.append(event)
            return True
        if self._cooldown_remaining > 0 or len(self.incidents) >= self.max_incidents:
            self.triggers_suppressed += 1
            return False
        pre = list(self.ring)[-self.pre_roll:] if self.pre_roll else []
        self._open = IncidentWindow(snapshots=pre, triggers=[event])
        self._post_remaining = self.post_roll
        if self.post_roll == 0:
            self._close()
        return True

    def flush(self) -> IncidentWindow | None:
        """Close a still-capturing window (end of drive truncates post-roll)."""
        if self._open is None:
            return None
        return self._close()

    def _close(self) -> IncidentWindow:
        window = self._open
        assert window is not None
        self._open = None
        self._post_remaining = 0
        self._cooldown_remaining = self.cooldown_frames
        self.incidents.append(window)
        if self.on_incident is not None:
            self.on_incident(window)
        return window
