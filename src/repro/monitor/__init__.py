"""Runtime monitoring: flight recorder, SLO health, incident bundles.

The monitor watches a running drive against the paper's operational budgets
(20 ms frame, ~20 ms reconfiguration, 390 MB/s ICAP) and, when something
goes wrong, freezes a pre/post-roll window of frame snapshots into a
schema-versioned *incident bundle* that ``python -m repro incident replay``
can re-run and byte-verify.  See MONITOR.md for the full story.

``repro.monitor.replay`` is deliberately *not* re-exported here: it imports
:mod:`repro.core.system`, which itself imports this package's session
module — importing it at package level would create a cycle.  Import it
directly where needed.
"""

from repro.monitor.bundle import (
    BUNDLE_SCHEMA_VERSION,
    IncidentBundle,
    is_bundle,
    list_bundles,
    load_bundle,
    write_bundle,
)
from repro.monitor.events import MONITOR_EVENT_KINDS
from repro.monitor.liveness import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_HUNG_AFTER_S,
    DEFAULT_SUSPECT_AFTER_S,
    LIVENESS_STATES,
    LivenessConfig,
    WorkerLiveness,
)
from repro.monitor.recorder import (
    FlightRecorder,
    FrameSnapshot,
    IncidentWindow,
    TriggerEvent,
)
from repro.monitor.session import (
    NULL_MONITOR,
    DEFAULT_ZYNQ_EVENT_KINDS,
    Monitor,
    MonitorConfig,
    NullMonitor,
    canonical_frame_bytes,
    frame_record_dict,
)
from repro.monitor.slo import (
    PAPER_FRAME_BUDGET_MS,
    PAPER_ICAP_MBS,
    PAPER_RECONFIG_MS,
    HealthMonitor,
    HealthState,
    HealthTransition,
    SloBudgets,
    SloViolation,
)

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "DEFAULT_HEARTBEAT_INTERVAL_S",
    "DEFAULT_HUNG_AFTER_S",
    "DEFAULT_SUSPECT_AFTER_S",
    "DEFAULT_ZYNQ_EVENT_KINDS",
    "LIVENESS_STATES",
    "LivenessConfig",
    "MONITOR_EVENT_KINDS",
    "NULL_MONITOR",
    "PAPER_FRAME_BUDGET_MS",
    "PAPER_ICAP_MBS",
    "PAPER_RECONFIG_MS",
    "FlightRecorder",
    "FrameSnapshot",
    "HealthMonitor",
    "HealthState",
    "HealthTransition",
    "IncidentBundle",
    "IncidentWindow",
    "Monitor",
    "MonitorConfig",
    "NullMonitor",
    "SloBudgets",
    "SloViolation",
    "TriggerEvent",
    "WorkerLiveness",
    "canonical_frame_bytes",
    "frame_record_dict",
    "is_bundle",
    "list_bundles",
    "load_bundle",
    "write_bundle",
]
