"""Heartbeat-driven liveness: is a worker alive, suspect, or hung?

A worker that is *slow* still heartbeats; a worker that is *hung* went
silent mid-drive.  The fleet scheduler's wall deadline alone cannot tell
the two apart — both simply fail to return an outcome in time.  This
module is the pure state machine that can: feed it heartbeat arrival
times (scheduler-side clock, never the sender's) and ask for the state
at any instant.

The thresholds escalate: a worker is ``alive`` while its last beat is
younger than ``suspect_after_s``, ``suspect`` once it crosses that line,
and ``hung`` past ``hung_after_s``.  The scheduler surfaces the suspect
transition as a ``fleet.worker.suspect`` event (early warning) and uses
the hung/not-hung answer at deadline time as the timeout's
``hang_verdict``.

Everything here is wall-clock territory by design — liveness is a
property of the *execution*, not the simulation — so none of these
values may reach a deterministic sink; the fleet layer keeps them behind
the ``WALL_*`` segregation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

LIVENESS_STATES = ("alive", "suspect", "hung")

DEFAULT_HEARTBEAT_INTERVAL_S = 0.2
DEFAULT_SUSPECT_AFTER_S = 1.0
DEFAULT_HUNG_AFTER_S = 3.0


@dataclass(frozen=True)
class LivenessConfig:
    """Thresholds for the heartbeat state machine.

    ``heartbeat_interval_s`` is the *expected* cadence (what the workers
    are asked to emit); the two ``*_after_s`` thresholds are judged
    against heartbeat age and must leave headroom above the interval, or
    a perfectly healthy worker would flap into ``suspect`` between two
    on-time beats.
    """

    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S
    suspect_after_s: float = DEFAULT_SUSPECT_AFTER_S
    hung_after_s: float = DEFAULT_HUNG_AFTER_S

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError(
                f"heartbeat_interval_s must be positive, got {self.heartbeat_interval_s}"
            )
        if self.suspect_after_s <= self.heartbeat_interval_s:
            raise ConfigurationError(
                f"suspect_after_s ({self.suspect_after_s}) must exceed "
                f"heartbeat_interval_s ({self.heartbeat_interval_s})"
            )
        if self.hung_after_s <= self.suspect_after_s:
            raise ConfigurationError(
                f"hung_after_s ({self.hung_after_s}) must exceed "
                f"suspect_after_s ({self.suspect_after_s})"
            )

    def to_dict(self) -> dict:
        return {
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "suspect_after_s": self.suspect_after_s,
            "hung_after_s": self.hung_after_s,
        }


class WorkerLiveness:
    """Liveness for one worker, judged purely from observation times.

    The caller supplies every timestamp (no clock is read here), which
    keeps the machine deterministic under test and pins the semantics to
    *arrival* time on the observer's clock — a worker cannot vouch for
    its own liveness with a stale self-reported timestamp.
    """

    def __init__(self, config: LivenessConfig, now_s: float = 0.0):
        self.config = config
        self._last_beat_s = now_s

    def observe(self, now_s: float) -> None:
        """Record a heartbeat arrival; time never runs backwards."""
        self._last_beat_s = max(self._last_beat_s, now_s)

    def reset(self, now_s: float) -> None:
        """Restart the clock (dispatch of new work, worker respawn)."""
        self._last_beat_s = now_s

    def age_s(self, now_s: float) -> float:
        """Seconds since the last observed beat (never negative)."""
        return max(0.0, now_s - self._last_beat_s)

    def state(self, now_s: float) -> str:
        age_s = self.age_s(now_s)
        if age_s >= self.config.hung_after_s:
            return "hung"
        if age_s >= self.config.suspect_after_s:
            return "suspect"
        return "alive"
