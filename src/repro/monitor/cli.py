"""``python -m repro incident`` — inspect, analyze, and replay bundles.

Sub-actions::

    incident list [DIR]           # one line per bundle under DIR
    incident show BUNDLE          # interleaved timeline
    incident report BUNDLE        # digest + root-cause hints
    incident replay BUNDLE        # re-run the drive, byte-verify the window
    incident smoke [--dir DIR]    # induce one incident end-to-end + replay it

Exit codes follow the lint/bench convention: 0 = success, 1 = failure
(replay mismatch, smoke produced no incident), 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.errors import ReproError
from repro.monitor.analyzer import render_list, render_report, render_timeline
from repro.monitor.bundle import IncidentBundle, is_bundle, list_bundles, load_bundle


def _resolve_bundles(path: str) -> list[IncidentBundle]:
    """A path names one bundle, or a directory of bundles."""
    p = Path(path)
    if is_bundle(p):
        return [load_bundle(p)]
    return [load_bundle(b) for b in list_bundles(p)]


def _latest_bundle(path: str) -> IncidentBundle:
    bundles = _resolve_bundles(path)
    if not bundles:
        raise ReproError(f"no incident bundle at {path!r}")
    return bundles[-1]


def _cmd_list(args: argparse.Namespace) -> int:
    print(render_list(_resolve_bundles(args.path)))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(render_timeline(_latest_bundle(args.bundle)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(render_report(_latest_bundle(args.bundle)))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.monitor.replay import replay_bundle

    failures = 0
    bundles = _resolve_bundles(args.bundle)
    if not bundles:
        raise ReproError(f"no incident bundle at {args.bundle!r}")
    for bundle in bundles:
        result = replay_bundle(bundle)
        verdict = "OK " if result.ok else "FAIL"
        print(f"{verdict} {bundle.incident_id}: {result.detail}")
        if not result.ok:
            failures += 1
    return 1 if failures else 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Induce one incident end-to-end: drive worst_case, bundle, replay."""
    from repro.adaptive.sensor import sunset_trace
    from repro.core.system import AdaptiveDetectionSystem
    from repro.faults.scenarios import get_scenario
    from repro.monitor.replay import replay_bundle
    from repro.monitor.session import Monitor

    out_dir = args.dir or tempfile.mkdtemp(prefix="repro-incident-smoke-")
    duration_s = args.duration
    plan = get_scenario(args.scenario, duration_s)
    monitor = Monitor.recording(out_dir)
    system = AdaptiveDetectionSystem(fault_plan=plan, monitor=monitor)
    system.run_drive(sunset_trace(duration_s), duration_s=duration_s)
    digest = monitor.summary()
    print(
        f"smoke drive: {digest['frames_monitored']} frames, "
        f"{digest['triggers']} triggers, {digest['incidents']} incidents, "
        f"health={digest['health']['state']}"
    )
    if not monitor.bundles:
        print(f"FAIL no incident bundle produced by scenario {args.scenario!r}")
        return 1
    failures = 0
    for path in monitor.bundles:
        result = replay_bundle(path)
        verdict = "OK " if result.ok else "FAIL"
        print(f"{verdict} replay {result.bundle.incident_id}: {result.detail}")
        if not result.ok:
            failures += 1
    print(f"bundles under {out_dir}")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro incident",
        description="Inspect, analyze, and replay monitor incident bundles.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    p_list = sub.add_parser("list", help="list bundles under a directory")
    p_list.add_argument("path", nargs="?", default=".", help="bundle directory")
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser("show", help="render a bundle's timeline")
    p_show.add_argument("bundle", help="bundle path (or directory: newest wins)")
    p_show.set_defaults(func=_cmd_show)

    p_report = sub.add_parser("report", help="digest + root-cause hints")
    p_report.add_argument("bundle", help="bundle path (or directory: newest wins)")
    p_report.set_defaults(func=_cmd_report)

    p_replay = sub.add_parser("replay", help="re-run the drive and byte-verify")
    p_replay.add_argument("bundle", help="bundle path (or directory: all replayed)")
    p_replay.set_defaults(func=_cmd_replay)

    p_smoke = sub.add_parser("smoke", help="induce one incident end-to-end")
    p_smoke.add_argument("--dir", default=None, help="bundle output directory")
    p_smoke.add_argument("--duration", type=float, default=30.0, help="drive seconds")
    p_smoke.add_argument(
        "--scenario", default="worst_case", help="canned fault scenario to induce"
    )
    p_smoke.set_defaults(func=_cmd_smoke)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
