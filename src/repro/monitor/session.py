"""The monitor session: wiring between a drive and the observability stack.

:class:`Monitor` is the one object the drive loop talks to.  It owns a
:class:`~repro.monitor.slo.HealthMonitor` (SLO evaluation), a
:class:`~repro.monitor.recorder.FlightRecorder` (pre/post-roll incident
windows), and the provenance needed to write replayable incident bundles.

Like telemetry's ``NULL_TELEMETRY``, the default is :data:`NULL_MONITOR` —
a shared no-op whose ``enabled`` flag lets the drive loop skip monitoring
entirely with one attribute check, so an unmonitored drive is byte-identical
to one built before the monitor existed.

The monitor is a *pure consumer* of the simulation: it never schedules
events, never mutates SoC state, and never touches an RNG.  Incident
triggers are restricted to sim-deterministic causes by default (fault
firings, failed reconfigurations, CRITICAL health transitions), so a
recorded window replays byte-identically from the bundle manifest;
wall-clock deadline triggers exist but are opt-in precisely because a
replay on different hardware cannot reproduce them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro import __version__
from repro.errors import MonitoringError
from repro.monitor.bundle import write_bundle
from repro.monitor.events import MONITOR_EVENT_KINDS
from repro.monitor.recorder import (
    FlightRecorder,
    FrameSnapshot,
    IncidentWindow,
    TriggerEvent,
)
from repro.monitor.slo import HealthMonitor, HealthState, SloBudgets
from repro.telemetry.session import NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:
    from repro.adaptive.controller import ConditionChange
    from repro.adaptive.sensor import LightSensor, LuxTrace
    from repro.core.system import AdaptiveDetectionSystem, FrameRecord
    from repro.faults.plan import DegradationEvent, FaultEvent
    from repro.zynq.pr import ReconfigReport

#: Typed zynq events worth keeping per-frame context for.  The per-frame
#: ``dma.start``/``dma.done`` flood is deliberately excluded: at 50 fps it
#: would dominate every snapshot without saying anything a fault would not.
DEFAULT_ZYNQ_EVENT_KINDS: frozenset[str] = frozenset(
    {
        "dma.error",
        "dma.stall",
        "pr.start",
        "pr.done",
        "pr.stall",
        "pr.timeout",
        "soc.degrade",
        "frame.dropped",
        "partition.down",
        "partition.up",
        "model.swap",
    }
)


def frame_record_dict(
    record: "FrameRecord", expected_configuration: str, soc: Any
) -> dict:
    """The deterministic core of one frame snapshot.

    Built from the drive's :class:`~repro.core.system.FrameRecord` (minus
    the telemetry-only ``span_id``), the configuration the lighting
    condition *calls for*, and the SoC's cumulative counters.  Live
    monitoring and ``incident replay`` build this dict the same way, so a
    byte comparison of the two is apples-to-apples.
    """
    return {
        "index": record.index,
        "time_s": record.time_s,
        "condition": record.condition.value,
        "lux": record.lux,
        "vehicle_accepted": record.vehicle_accepted,
        "pedestrian_accepted": record.pedestrian_accepted,
        "vehicle_configuration": record.vehicle_configuration,
        "expected_configuration": expected_configuration,
        "reconfiguring": record.reconfiguring,
        "faults": list(record.faults),
        "degraded": record.degraded,
        "soc": soc.observability_snapshot(),
    }


def canonical_frame_bytes(record_dict: dict) -> bytes:
    """Canonical byte encoding of one frame core (the replay comparator)."""
    return json.dumps(record_dict, sort_keys=True).encode("utf-8")


@dataclass(frozen=True)
class MonitorConfig:
    """Knobs for one monitor session.

    Attributes:
        out_dir: Directory receiving incident bundles; ``None`` keeps
            incident windows in memory only (what replay uses).
        budgets: SLO budgets driving the health evaluation.
        capacity / pre_roll / post_roll / cooldown_frames / max_incidents:
            Flight-recorder geometry (see
            :class:`~repro.monitor.recorder.FlightRecorder`).
        trigger_on_fault: Freeze a window on every fault-plan firing.
        trigger_on_reconfig_failure: Freeze on a failed reconfiguration.
        trigger_on_critical: Freeze when health transitions to CRITICAL.
        trigger_on_deadline: Freeze on a frame-deadline overrun.  Off by
            default: wall-clock triggers are host-dependent, and windows
            they open would not reproduce under ``incident replay``.
        trigger_on_quality: Freeze when a quality SLO fires
            (``quality-degraded`` windows).  Quality records come from the
            seeded ground-truth model — sim-deterministic — so these
            windows replay byte-identically: a quality collapse is as
            recordable as a fault firing.
        wall_clock_slos: Feed measured frame wall times into the SLO
            evaluators.  On by default (the PR-5 behaviour).  The fleet
            turns it off so per-drive health verdicts depend only on the
            simulation — frame wall times are still recorded in snapshots
            and latency histograms, they just cannot flip the health
            state, which keeps fleet rollups run-to-run deterministic.
        quality_slos: Feed scored quality records into the SLO
            evaluators.  On by default for single-drive monitoring.  The
            fleet turns it off for the symmetric reason it disables
            ``wall_clock_slos``: fleet verdicts stay quality-blind, so a
            quality-scored fleet folds the same OK/DEGRADED/CRITICAL
            verdicts as an unscored one (the non-perturbation contract).
        zynq_event_kinds: Typed trace events copied into frame snapshots.
        include_spans: Copy overlapping telemetry spans into bundles.
    """

    out_dir: str | None = None
    budgets: SloBudgets = field(default_factory=SloBudgets)
    capacity: int = 512
    pre_roll: int = 32
    post_roll: int = 16
    cooldown_frames: int = 64
    max_incidents: int = 16
    trigger_on_fault: bool = True
    trigger_on_reconfig_failure: bool = True
    trigger_on_critical: bool = True
    trigger_on_deadline: bool = False
    trigger_on_quality: bool = True
    wall_clock_slos: bool = True
    quality_slos: bool = True
    zynq_event_kinds: frozenset[str] = DEFAULT_ZYNQ_EVENT_KINDS
    include_spans: bool = True

    def recorder_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "pre_roll": self.pre_roll,
            "post_roll": self.post_roll,
            "cooldown_frames": self.cooldown_frames,
            "max_incidents": self.max_incidents,
        }

    def triggers_dict(self) -> dict:
        return {
            "on_fault": self.trigger_on_fault,
            "on_reconfig_failure": self.trigger_on_reconfig_failure,
            "on_critical": self.trigger_on_critical,
            "on_deadline": self.trigger_on_deadline,
            "on_quality": self.trigger_on_quality,
        }


class NullMonitor:
    """The zero-cost default: a shared no-op with ``enabled = False``.

    The drive loop guards every monitor call behind one attribute check,
    exactly like ``NULL_TELEMETRY`` — an unmonitored drive allocates
    nothing and behaves byte-identically to the pre-monitor code.
    """

    enabled = False

    def begin_drive(self, system, trace, sensor, duration_s, n_frames) -> None:
        pass

    def observe_frame(self, record, expected_configuration, wall_ms=None, quality=None) -> None:
        pass

    def on_reconfig(self, report) -> None:
        pass

    def on_condition_change(self, change) -> None:
        pass

    def on_degradation(self, event) -> None:
        pass

    def emit_event(self, kind: str, time_s: float, **attrs: Any) -> None:
        pass

    def finish_drive(self) -> None:
        pass

    def summary(self) -> dict:
        return {}


#: Module-level no-op monitor shared by every unmonitored drive.
NULL_MONITOR = NullMonitor()


class Monitor:
    """One monitoring session over one (or more, sequentially) drives."""

    enabled = True

    def __init__(
        self,
        config: MonitorConfig | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.config = config or MonitorConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.health = HealthMonitor(self.config.budgets)
        self.recorder = FlightRecorder(
            capacity=self.config.capacity,
            pre_roll=self.config.pre_roll,
            post_roll=self.config.post_roll,
            cooldown_frames=self.config.cooldown_frames,
            max_incidents=self.config.max_incidents,
            on_incident=self._on_window,
        )
        #: Accepted trigger events, in firing order.
        self.triggers: list[TriggerEvent] = []
        #: Monitor-level typed events (also mirrored into telemetry).
        self.events: list[dict] = []
        #: Paths of bundles written this session (empty when out_dir=None).
        self.bundles: list[Path] = []
        self._provenance: dict = {}
        self._system: "AdaptiveDetectionSystem | None" = None
        self._fault_listener = None
        self._trace_listener = None
        self._frames = 0
        self._recent_events: list[dict] = []
        self._metric_last: dict[str, float] = {}

    @classmethod
    def recording(
        cls,
        out_dir: str | Path,
        telemetry: Telemetry | None = None,
        **overrides: Any,
    ) -> "Monitor":
        """A monitor writing incident bundles under ``out_dir``."""
        return cls(MonitorConfig(out_dir=str(out_dir), **overrides), telemetry=telemetry)

    # Drive lifecycle ---------------------------------------------------------

    def begin_drive(
        self,
        system: "AdaptiveDetectionSystem",
        trace: "LuxTrace",
        sensor: "LightSensor",
        duration_s: float,
        n_frames: int,
    ) -> None:
        """Attach to a drive: capture replay provenance, hook event sources."""
        if self._system is not None:
            raise MonitoringError(
                "monitor is already attached to a drive; call finish_drive() first"
            )
        self._system = system
        # Ride the drive's telemetry session unless we were given our own.
        if not self.telemetry.enabled and system.telemetry.enabled:
            self.telemetry = system.telemetry
        plan = system.fault_plan
        if plan is not None:

            def on_fault(event: "FaultEvent") -> None:
                if self.config.trigger_on_fault:
                    self._trigger("fault", event.time_s, event.label())

            plan.listeners.append(on_fault)
            self._fault_listener = on_fault

        def on_trace_event(time_s: float, source: str, kind: str, attrs: dict) -> None:
            if kind in self.config.zynq_event_kinds:
                self._recent_events.append(
                    {"time_s": time_s, "source": source, "kind": kind, **_jsonable(attrs)}
                )

        system.soc.trace.listeners.append(on_trace_event)
        self._trace_listener = on_trace_event
        self._provenance = self._build_provenance(system, trace, sensor, duration_s, n_frames)

    def _build_provenance(
        self,
        system: "AdaptiveDetectionSystem",
        trace: "LuxTrace",
        sensor: "LightSensor",
        duration_s: float,
        n_frames: int,
    ) -> dict:
        config = system.config
        controller = config.controller
        degradation = config.degradation
        plan = system.fault_plan
        plan_dict = None
        if plan is not None:
            plan_dict = {
                "name": plan.name,
                "specs": [
                    {
                        "site": spec.site.value,
                        "target": spec.target,
                        "start_s": spec.start_s,
                        "end_s": None if math.isinf(spec.end_s) else spec.end_s,
                        "magnitude": spec.magnitude,
                        "max_firings": spec.max_firings,
                    }
                    for spec in plan.specs
                ],
            }
        return {
            "repro_version": __version__,
            "budgets": self.config.budgets.to_dict(),
            "recorder": self.config.recorder_dict(),
            "triggers_policy": self.config.triggers_dict(),
            "wall_clock_slos": self.config.wall_clock_slos,
            "quality_slos": self.config.quality_slos,
            # Everything needed to reattach an identical quality observer
            # on replay (None when the drive ran unscored).
            "quality": (
                system.quality.provenance() if system.quality.enabled else None
            ),
            "telemetry_enabled": self.telemetry.enabled,
            "drive": {
                "duration_s": duration_s,
                "n_frames": n_frames,
                "trace_points": [[float(t), float(lux)] for t, lux in trace.points],
                "sensor": {
                    "noise_rel": sensor.noise_rel,
                    "dropout_probability": sensor.dropout_probability,
                    "seed": sensor.seed,
                },
                "fault_plan": plan_dict,
                "system": {
                    "fps": config.fps,
                    "sensor_period_s": config.sensor_period_s,
                    "initial_condition": config.initial_condition.value,
                    "pr_controller": config.controller_cls.name,
                    "controller": {
                        "day_dusk_lux": controller.day_dusk_lux,
                        "dusk_dark_lux": controller.dusk_dark_lux,
                        "hysteresis": controller.hysteresis,
                        "min_dwell_s": controller.min_dwell_s,
                        "confirm_samples": controller.confirm_samples,
                    },
                    "degradation": {
                        "max_reconfig_retries": degradation.max_reconfig_retries,
                        "backoff_initial_s": degradation.backoff_initial_s,
                        "backoff_factor": degradation.backoff_factor,
                        "backoff_max_s": degradation.backoff_max_s,
                        "pr_timeout_s": degradation.pr_timeout_s,
                        "repair_bitstreams": degradation.repair_bitstreams,
                    },
                },
            },
        }

    def finish_drive(self) -> None:
        """Detach from the drive; a still-capturing window is flushed."""
        self.recorder.flush()
        system = self._system
        if system is not None:
            if self._fault_listener is not None and system.fault_plan is not None:
                try:
                    system.fault_plan.listeners.remove(self._fault_listener)
                except ValueError:
                    pass
            if self._trace_listener is not None:
                try:
                    system.soc.trace.listeners.remove(self._trace_listener)
                except ValueError:
                    pass
        self._fault_listener = None
        self._trace_listener = None
        self._system = None
        self._recent_events = []
        if self.telemetry.enabled:
            self.telemetry.gauge("health_state").set(self.health.state.severity)
            self.telemetry.gauge("monitor_incidents").set(len(self.recorder.incidents))

    # Observations ------------------------------------------------------------

    def observe_frame(
        self,
        record: "FrameRecord",
        expected_configuration: str,
        wall_ms: float | None = None,
        detections: float | None = None,
        quality=None,
    ) -> None:
        """Fold one finished frame into health + recorder state.

        ``quality`` is the frame's scored quality record (``None`` on
        unscored frames or with the quality plane off); it only reaches
        the SLO evaluators when :attr:`MonitorConfig.quality_slos` is on.
        """
        if self._system is None:
            raise MonitoringError("observe_frame() before begin_drive()")
        index, time_s = record.index, record.time_s
        violations, transition = self.health.observe_frame(
            index,
            time_s,
            wall_ms=wall_ms if self.config.wall_clock_slos else None,
            degraded=record.degraded,
            detections=detections,
            quality=quality if self.config.quality_slos else None,
        )
        for violation in violations:
            self.emit_event(
                "slo.violation",
                time_s=violation.time_s,
                slo=violation.slo,
                severity=violation.severity.value,
                detail=violation.detail,
                frame_index=violation.frame_index,
            )
            if self.telemetry.enabled:
                self.telemetry.counter("slo_violations_total", slo=violation.slo).inc()
        if transition is not None:
            self.emit_event(
                "health.transition",
                time_s=transition.time_s,
                previous=transition.previous.value,
                new=transition.new.value,
                reason=transition.reason,
            )
            if self.telemetry.enabled:
                self.telemetry.gauge("health_state").set(transition.new.severity)
                self.telemetry.counter(
                    "health_transitions_total", to=transition.new.value
                ).inc()
            if (
                self.config.trigger_on_critical
                and transition.new is HealthState.CRITICAL
            ):
                self._trigger("health-critical", time_s, transition.reason)
        if self.config.trigger_on_deadline:
            for violation in violations:
                if violation.slo == "frame-deadline":
                    self._trigger("frame-deadline", time_s, violation.detail)
                    break
        if self.config.trigger_on_quality:
            for violation in violations:
                if violation.slo.startswith("quality-"):
                    self._trigger(
                        "quality-degraded",
                        time_s,
                        f"{violation.slo}: {violation.detail}",
                    )
                    break
        snapshot = FrameSnapshot(
            record=frame_record_dict(record, expected_configuration, self._system.soc),
            wall_ms=wall_ms,
            health=self.health.state.value,
            violations=tuple(v.label() for v in violations),
            zynq_events=tuple(self._recent_events),
            metric_deltas=self._metric_deltas(),
        )
        self._recent_events = []
        self.recorder.push(snapshot)
        self._frames += 1

    def on_reconfig(self, report: "ReconfigReport") -> None:
        """One finished reconfiguration attempt (from the drive's callback)."""
        self.health.observe_reconfig(
            duration_ms=report.duration_s * 1e3,
            throughput_mbs=report.throughput_mb_s,
            ok=report.ok,
            time_s=report.end_s,
            detail=report.error or report.bitstream,
        )
        if not report.ok and self.config.trigger_on_reconfig_failure:
            self._trigger(
                "reconfig-failure",
                report.end_s,
                f"{report.bitstream}: {report.error or 'failed'}",
            )

    def on_condition_change(self, change: "ConditionChange") -> None:
        self.health.observe_condition_change(change.time_s)

    def on_degradation(self, event: "DegradationEvent") -> None:
        self.health.observe_degradation(event.kind, event.time_s, event.detail)

    # Events and triggers ------------------------------------------------------

    def emit_event(self, kind: str, time_s: float, **attrs: Any) -> None:
        """One typed monitor event; ``kind`` must be in the declared vocabulary.

        Mirrors ``Trace.emit``: runtime validation here, static validation by
        the ``monitor-event-vocabulary`` lint rule.
        """
        if kind not in MONITOR_EVENT_KINDS:
            raise MonitoringError(
                f"monitor event kind {kind!r} is not in the declared vocabulary; "
                "add it to repro.monitor.events.MONITOR_EVENT_KINDS first"
            )
        self.events.append({"kind": kind, "time_s": time_s, **attrs})
        if self.telemetry.enabled:
            self.telemetry.event(kind, time_s=time_s, **attrs)

    def _trigger(self, kind: str, time_s: float, detail: str) -> None:
        event = TriggerEvent(
            kind=kind, time_s=time_s, frame_index=self._frames, detail=detail
        )
        if not self.recorder.trigger(event):
            return
        self.triggers.append(event)
        self.emit_event(
            "monitor.trigger",
            time_s=time_s,
            trigger=kind,
            frame_index=event.frame_index,
            detail=detail,
        )
        if self.telemetry.enabled:
            self.telemetry.counter("monitor_triggers_total", kind=kind).inc()

    # Incident writing ---------------------------------------------------------

    def _on_window(self, window: IncidentWindow) -> None:
        trigger = window.triggers[0]
        end_time = window.snapshots[-1].time_s if window.snapshots else trigger.time_s
        self.emit_event(
            "monitor.incident",
            time_s=end_time,
            trigger=trigger.kind,
            frames=len(window.snapshots),
            triggers=len(window.triggers),
        )
        if self.telemetry.enabled:
            self.telemetry.counter("monitor_incidents_total").inc()
        if self.config.out_dir is None:
            return
        self.bundles.append(self._write_bundle(window))

    def _write_bundle(self, window: IncidentWindow) -> Path:
        ordinal = len(self.recorder.incidents) - 1
        trigger = window.triggers[0]
        incident_id = f"incident-{ordinal:03d}-{trigger.kind}"
        manifest = dict(self._provenance)
        manifest["incident_id"] = incident_id
        manifest["trigger"] = trigger.to_dict()
        start, end = window.start_index, window.end_index
        violations = [
            v.to_dict()
            for v in self.health.violations
            if v.frame_index is not None and start <= v.frame_index <= end
        ]
        transitions = [
            t.to_dict()
            for t in self.health.transitions
            if t.frame_index is not None and start <= t.frame_index <= end
        ]
        spans: list[dict] = []
        if self.config.include_spans and self.telemetry.enabled and window.snapshots:
            t0 = window.snapshots[0].time_s
            t1 = window.snapshots[-1].time_s
            for span in self.telemetry.tracer.spans:
                if span.end_s is not None and span.end_s < t0:
                    continue
                if span.start_s > t1:
                    continue
                spans.append(span.to_dict())
        metrics = self.telemetry.metrics.snapshot() if self.telemetry.enabled else []
        return write_bundle(
            Path(self.config.out_dir) / incident_id,
            manifest,
            window.snapshots,
            window.triggers,
            violations=violations,
            transitions=transitions,
            spans=spans,
            metrics=metrics,
        )

    # Reporting ----------------------------------------------------------------

    def _metric_deltas(self) -> dict[str, float]:
        """Per-frame deltas of every counter series (empty without telemetry)."""
        if not self.telemetry.enabled:
            return {}
        deltas: dict[str, float] = {}
        for series in self.telemetry.metrics.series():
            if series.kind != "counter":
                continue
            key = series.name
            if series.labels:
                labels = ",".join(f"{k}={v}" for k, v in sorted(series.labels.items()))
                key = f"{series.name}{{{labels}}}"
            last = self._metric_last.get(key, 0.0)
            if series.value != last:
                deltas[key] = series.value - last
            self._metric_last[key] = series.value
        return deltas

    def summary(self) -> dict:
        """Point-in-time digest of the whole monitoring session."""
        return {
            "health": self.health.summary(),
            "frames_monitored": self._frames,
            "triggers": len(self.triggers),
            "triggers_suppressed": self.recorder.triggers_suppressed,
            "incidents": len(self.recorder.incidents),
            "bundles": [str(p) for p in self.bundles],
        }

    def verdict(self) -> dict:
        """The compact per-drive verdict a fleet outcome carries.

        A flattened subset of :meth:`summary`: the folded health state,
        violation counts by SLO, and the trigger/incident tallies — plain
        scalars that merge cheaply into fleet rollups.  With
        ``wall_clock_slos=False`` every field is sim-deterministic.
        """
        health = self.health.summary()
        return {
            "state": health["state"],
            "violations": health["violations"],
            "violations_by_slo": health["violations_by_slo"],
            "transitions": health["transitions"],
            "triggers": len(self.triggers),
            "incidents": len(self.recorder.incidents),
        }


def _jsonable(attrs: dict) -> dict:
    """Coerce trace-event attributes to JSON-safe primitives."""
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out
