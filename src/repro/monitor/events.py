"""The declared vocabulary of monitor trigger/health events.

Mirrors :data:`repro.zynq.events.EVENT_KINDS`: every typed event the
runtime monitor emits (through :meth:`Monitor.emit_event`) must use a kind
from this set, so timeline renderers, the incident analyzer, and the
acceptance tests can rely on the names being exhaustive.  The
``monitor-event-vocabulary`` lint rule enforces the same contract
statically.
"""

from __future__ import annotations

#: Legal ``Monitor.emit_event`` kinds.
MONITOR_EVENT_KINDS: frozenset[str] = frozenset(
    {
        # A trigger fired: something worth freezing the flight recorder for.
        "monitor.trigger",
        # An incident bundle was written to disk.
        "monitor.incident",
        # The folded health state changed level (OK/DEGRADED/CRITICAL).
        "health.transition",
        # One SLO evaluator found a budget violation on this frame.
        "slo.violation",
    }
)
