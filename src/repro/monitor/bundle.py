"""Schema-versioned incident bundles: one directory per incident.

A bundle is the replayable record of one incident window::

    incident-000-fault/
        manifest.json    # schema version, provenance, replay inputs
        records.jsonl    # frame / trigger / violation / transition /
                         # span / metric records, one JSON object per line

The manifest carries everything :func:`repro.monitor.replay.replay_bundle`
needs to re-run the drive deterministically — the lux-trace knots, the
sensor parameters and seed, the full fault-plan specs, and the system
configuration — plus the version stamps (bundle schema, package version,
best-effort git revision) that make an old bundle auditable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.monitor.recorder import FrameSnapshot, TriggerEvent

#: Bump on any incompatible change to manifest/records shapes.
BUNDLE_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"


def git_revision(start: Path | None = None) -> str | None:
    """Best-effort repository revision without spawning a subprocess.

    Walks up from ``start`` looking for ``.git/HEAD`` and resolves one
    level of symbolic ref.  Returns ``None`` outside a git checkout (e.g.
    an installed package) — provenance is best-effort, never an error.
    """
    current = (start or Path(__file__)).resolve()
    for parent in [current, *current.parents]:
        head = parent / ".git" / "HEAD"
        try:
            if not head.is_file():
                continue
            content = head.read_text(encoding="utf-8").strip()
        except OSError:
            return None
        if content.startswith("ref:"):
            ref = parent / ".git" / content.split(None, 1)[1]
            try:
                return ref.read_text(encoding="utf-8").strip() or None
            except OSError:
                return None
        return content or None
    return None


@dataclass
class IncidentBundle:
    """One reloaded incident bundle."""

    path: Path
    manifest: dict[str, Any]
    frames: list[FrameSnapshot] = field(default_factory=list)
    triggers: list[TriggerEvent] = field(default_factory=list)
    violations: list[dict] = field(default_factory=list)
    transitions: list[dict] = field(default_factory=list)
    spans: list[dict] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)

    @property
    def incident_id(self) -> str:
        return str(self.manifest.get("incident_id", self.path.name))

    @property
    def window(self) -> tuple[int, int]:
        window = self.manifest.get("window", {})
        return int(window.get("start_index", 0)), int(window.get("end_index", 0))

    def frame_records(self) -> list[dict]:
        """The deterministic frame cores, in window order."""
        return [dict(snapshot.record) for snapshot in self.frames]

    def summary(self) -> dict:
        start, end = self.window
        trigger = self.triggers[0].to_dict() if self.triggers else {}
        return {
            "incident_id": self.incident_id,
            "path": str(self.path),
            "schema_version": self.manifest.get("schema_version"),
            "window": {"start_index": start, "end_index": end, "frames": len(self.frames)},
            "triggers": len(self.triggers),
            "first_trigger": trigger,
            "violations": len(self.violations),
            "transitions": len(self.transitions),
        }


def is_bundle(path: str | Path) -> bool:
    """True when ``path`` is (or directly names) an incident bundle."""
    p = Path(path)
    if p.is_dir():
        return (p / MANIFEST_NAME).is_file() and (p / RECORDS_NAME).is_file()
    return p.name == MANIFEST_NAME and p.is_file()


def write_bundle(
    directory: str | Path,
    manifest: dict[str, Any],
    snapshots: list[FrameSnapshot],
    triggers: list[TriggerEvent],
    violations: list[dict] | None = None,
    transitions: list[dict] | None = None,
    spans: list[dict] | None = None,
    metrics: list[dict] | None = None,
) -> Path:
    """Write one bundle directory; returns its path.

    The manifest is completed with the schema version, window bounds, and
    provenance stamps; callers supply the replay inputs.
    """
    bundle_dir = Path(directory)
    bundle_dir.mkdir(parents=True, exist_ok=True)
    full_manifest = dict(manifest)
    full_manifest.setdefault("schema_version", BUNDLE_SCHEMA_VERSION)
    full_manifest.setdefault("git_revision", git_revision())
    if snapshots:
        full_manifest.setdefault(
            "window",
            {
                "start_index": snapshots[0].index,
                "end_index": snapshots[-1].index,
                "start_s": snapshots[0].time_s,
                "end_s": snapshots[-1].time_s,
            },
        )
    with open(bundle_dir / MANIFEST_NAME, "w", encoding="utf-8") as fh:
        json.dump(full_manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(bundle_dir / RECORDS_NAME, "w", encoding="utf-8") as fh:
        for trigger in triggers:
            fh.write(json.dumps({"type": "trigger", **trigger.to_dict()}) + "\n")
        for snapshot in snapshots:
            fh.write(json.dumps({"type": "frame", **snapshot.to_dict()}) + "\n")
        for violation in violations or ():
            fh.write(json.dumps({"type": "violation", **violation}) + "\n")
        for transition in transitions or ():
            fh.write(json.dumps({"type": "transition", **transition}) + "\n")
        for span in spans or ():
            fh.write(json.dumps({"type": "span", **span}) + "\n")
        for series in metrics or ():
            fh.write(json.dumps({"type": "metric", **series}) + "\n")
    return bundle_dir


def load_bundle(path: str | Path) -> IncidentBundle:
    """Reload one bundle directory (or its manifest path)."""
    p = Path(path)
    if p.name == MANIFEST_NAME:
        p = p.parent
    manifest_path = p / MANIFEST_NAME
    records_path = p / RECORDS_NAME
    if not manifest_path.is_file() or not records_path.is_file():
        raise ConfigurationError(
            f"{p} is not an incident bundle (needs {MANIFEST_NAME} + {RECORDS_NAME})"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{manifest_path}: not valid JSON ({exc})") from exc
    schema = manifest.get("schema_version")
    if schema != BUNDLE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{manifest_path}: unsupported bundle schema version {schema!r} "
            f"(this build reads version {BUNDLE_SCHEMA_VERSION})"
        )
    bundle = IncidentBundle(path=p, manifest=manifest)
    for lineno, line in enumerate(
        records_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{records_path}:{lineno}: not valid JSONL ({exc})"
            ) from exc
        kind = record.pop("type", None)
        if kind == "frame":
            bundle.frames.append(FrameSnapshot.from_dict(record))
        elif kind == "trigger":
            bundle.triggers.append(TriggerEvent.from_dict(record))
        elif kind == "violation":
            bundle.violations.append(record)
        elif kind == "transition":
            bundle.transitions.append(record)
        elif kind == "span":
            bundle.spans.append(record)
        elif kind == "metric":
            bundle.metrics.append(record)
        else:
            raise ConfigurationError(
                f"{records_path}:{lineno}: unknown record type {kind!r}"
            )
    bundle.frames.sort(key=lambda s: s.index)
    return bundle


def list_bundles(directory: str | Path) -> list[Path]:
    """Bundle directories directly under ``directory``, sorted by name."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(p for p in root.iterdir() if p.is_dir() and is_bundle(p))
