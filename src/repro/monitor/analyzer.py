"""Post-mortem analysis of incident bundles.

Three renderers over a reloaded :class:`~repro.monitor.bundle.IncidentBundle`:

* :func:`render_timeline` — every frame, typed zynq event, SLO violation,
  health transition, and trigger interleaved in time order;
* :func:`root_cause_hints` — scored candidate causes (injected faults,
  degradation actions, PR/DMA events, reconfigurations in flight, lighting
  switches) ranked by how close they landed to the trigger;
* :func:`render_report` — the human-facing digest the
  ``python -m repro incident report`` command prints.

The analyzer is deliberately heuristic: it *ranks evidence already in the
bundle*, it does not re-run anything.  Re-running is ``incident replay``'s
job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.monitor.bundle import IncidentBundle

#: Lookback horizon: evidence older than this before the trigger scores ~0.
HINT_LOOKBACK_S = 5.0

#: Zynq event kinds that are themselves plausible causes, with base weights.
_CAUSAL_EVENT_WEIGHTS = {
    "pr.timeout": 0.95,
    "dma.error": 0.9,
    "pr.stall": 0.85,
    "dma.stall": 0.8,
    "soc.degrade": 0.6,
    "partition.down": 0.4,
    "frame.dropped": 0.2,
}


@dataclass(frozen=True)
class Hint:
    """One scored root-cause candidate."""

    score: float
    kind: str      # "fault", "degradation", "zynq-event", "reconfig", ...
    text: str

    def label(self) -> str:
        return f"[{self.score:.2f}] {self.kind}: {self.text}"


def _proximity(dt_s: float) -> float:
    """1.0 at the trigger, decaying to ~0 at the lookback horizon."""
    if dt_s < 0:  # evidence *after* the trigger: aftermath, heavily discounted
        return 0.25 / (1.0 + abs(dt_s))
    if dt_s > HINT_LOOKBACK_S:
        return 0.05
    return 1.0 / (1.0 + dt_s)


def root_cause_hints(bundle: IncidentBundle, limit: int = 8) -> list[Hint]:
    """Scored root-cause candidates, best first."""
    if not bundle.triggers:
        return []
    trigger = bundle.triggers[0]
    t0 = trigger.time_s
    scored: dict[tuple[str, str], float] = {}

    def add(kind: str, text: str, weight: float, at_s: float) -> None:
        score = weight * _proximity(t0 - at_s)
        key = (kind, text)
        if score > scored.get(key, 0.0):
            scored[key] = score

    previous_condition: str | None = None
    for snapshot in bundle.frames:
        record = snapshot.record
        t = float(record.get("time_s", 0.0))
        frame = record.get("index")
        for label in record.get("faults", ()):
            if label.startswith("fault:"):
                add(
                    "fault",
                    f"injected {label[len('fault:'):]} "
                    f"({abs(t0 - t):.2f} s {'before' if t <= t0 else 'after'} trigger, frame {frame})",
                    1.0,
                    t,
                )
            elif label.startswith("degrade:"):
                add(
                    "degradation",
                    f"recovery action {label[len('degrade:'):]} (frame {frame})",
                    0.7,
                    t,
                )
        if record.get("reconfiguring"):
            add(
                "reconfig",
                "partial reconfiguration in flight around the trigger",
                0.5,
                t,
            )
        condition = record.get("condition")
        if previous_condition is not None and condition != previous_condition:
            add(
                "lighting",
                f"lighting condition switched {previous_condition} -> {condition} (frame {frame})",
                0.45,
                t,
            )
        previous_condition = condition
        for event in snapshot.zynq_events:
            kind = event.get("kind", "")
            weight = _CAUSAL_EVENT_WEIGHTS.get(kind)
            if weight is None:
                continue
            source = event.get("source", "?")
            add("zynq-event", f"{kind} from {source} (frame {frame})", weight, t)
    for violation in bundle.violations:
        slo = violation.get("slo", "?")
        weight = 0.9 if slo in ("reconfig-failed", "degradation") else 0.4
        add(
            "slo",
            f"{slo} violation: {violation.get('detail', '')}".rstrip(": "),
            weight,
            float(violation.get("time_s", t0)),
        )
    hints = [Hint(score=round(score, 4), kind=kind, text=text) for (kind, text), score in scored.items()]
    hints.sort(key=lambda h: (-h.score, h.kind, h.text))
    return hints[:limit]


def _frame_line(snapshot) -> str:
    record = snapshot.record
    flags = "".join(
        flag
        for flag, on in (
            ("R", record.get("reconfiguring")),
            ("D", record.get("degraded")),
            ("v", not record.get("vehicle_accepted")),
            ("p", not record.get("pedestrian_accepted")),
        )
        if on
    )
    parts = [
        f"frame {record.get('index'):>6}",
        f"cond={record.get('condition')}",
        f"cfg={record.get('vehicle_configuration') or '-'}",
        f"health={snapshot.health}",
    ]
    if flags:
        parts.append(f"[{flags}]")
    if snapshot.wall_ms is not None:
        parts.append(f"{snapshot.wall_ms:.2f}ms")
    if record.get("faults"):
        parts.append("; ".join(record["faults"]))
    return " ".join(parts)


def render_timeline(bundle: IncidentBundle) -> str:
    """Interleaved time-ordered view of everything in the bundle."""
    rows: list[tuple[float, int, str]] = []
    for snapshot in bundle.frames:
        t = snapshot.time_s
        rows.append((t, 3, _frame_line(snapshot)))
        for event in snapshot.zynq_events:
            rows.append(
                (
                    float(event.get("time_s", t)),
                    2,
                    f"event {event.get('kind')} source={event.get('source')}",
                )
            )
    for trigger in bundle.triggers:
        rows.append((trigger.time_s, 0, f">>> {trigger.label()}"))
    for violation in bundle.violations:
        rows.append(
            (
                float(violation.get("time_s", 0.0)),
                1,
                f"slo  {violation.get('slo')} [{violation.get('severity')}] "
                f"{violation.get('detail', '')}".rstrip(),
            )
        )
    for transition in bundle.transitions:
        rows.append(
            (
                float(transition.get("time_s", 0.0)),
                1,
                f"health {transition.get('previous')} -> {transition.get('new')} "
                f"({transition.get('reason', '')})",
            )
        )
    rows.sort(key=lambda row: (row[0], row[1]))
    lines = [f"incident {bundle.incident_id}  ({len(bundle.frames)} frames)"]
    lines += [f"  t={t:10.4f}s  {text}" for t, _, text in rows]
    return "\n".join(lines)


def render_report(bundle: IncidentBundle) -> str:
    """The ``incident report`` digest: summary, causes, context."""
    start, end = bundle.window
    lines = [
        f"incident   {bundle.incident_id}",
        f"path       {bundle.path}",
        f"schema     v{bundle.manifest.get('schema_version')}  "
        f"repro {bundle.manifest.get('repro_version', '?')}  "
        f"git {str(bundle.manifest.get('git_revision'))[:12]}",
        f"window     frames {start}..{end} ({len(bundle.frames)} recorded)",
    ]
    plan = (bundle.manifest.get("drive") or {}).get("fault_plan")
    if plan:
        lines.append(f"fault plan {plan.get('name')} ({len(plan.get('specs', []))} specs)")
    lines.append("")
    lines.append("triggers:")
    for trigger in bundle.triggers:
        lines.append(f"  t={trigger.time_s:.3f}s frame {trigger.frame_index}: {trigger.label()}")
    by_slo: dict[str, int] = {}
    for violation in bundle.violations:
        slo = violation.get("slo", "?")
        by_slo[slo] = by_slo.get(slo, 0) + 1
    if by_slo:
        lines.append("")
        lines.append("slo violations in window:")
        for slo, count in sorted(by_slo.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {slo:<22} x{count}")
    if bundle.transitions:
        lines.append("")
        lines.append("health transitions:")
        for transition in bundle.transitions:
            lines.append(
                f"  t={float(transition.get('time_s', 0.0)):.3f}s "
                f"{transition.get('previous')} -> {transition.get('new')} "
                f"({transition.get('reason', '')})"
            )
    hints = root_cause_hints(bundle)
    lines.append("")
    lines.append("root-cause hints (best first):")
    if hints:
        for i, hint in enumerate(hints, start=1):
            lines.append(f"  {i}. {hint.label()}")
    else:
        lines.append("  (no candidate causes found in the window)")
    return "\n".join(lines)


def render_list(bundles: list[IncidentBundle]) -> str:
    """One line per bundle for ``incident list``."""
    if not bundles:
        return "no incident bundles found"
    lines = []
    for bundle in bundles:
        trigger = bundle.triggers[0].label() if bundle.triggers else "<no trigger>"
        start, end = bundle.window
        lines.append(
            f"{bundle.incident_id:<32} frames {start:>6}..{end:<6} "
            f"violations={len(bundle.violations):<3} {trigger}"
        )
    return "\n".join(lines)
