"""Runtime SLOs derived from the paper's numbers, folded into one health state.

The paper's guarantees are operational: a frame every 20 ms (50 fps), an
8 MB partial bitstream reconfiguring in ~20 ms at ~390 MB/s, and a static
pedestrian partition that never stops.  The :class:`HealthMonitor` watches
a running drive against those budgets with rolling-window evaluators and
folds every violation into a single :class:`HealthState`:

* **OK** — every budget held over the recovery window;
* **DEGRADED** — a budget was missed but the system is still adapting
  (slow frame, reconfig overrun, ICAP below its floor, condition-switch
  flapping, a detections-per-frame anomaly, or a fallback configuration
  in effect);
* **CRITICAL** — the adaptation machinery itself failed (a reconfiguration
  failed or was abandoned) and the vehicle side can no longer be trusted
  to match the lighting condition.

Recovery is hysteretic: the state steps *down one level at a time* after
``recovery_frames`` consecutive clean frames, so a flapping signal cannot
bounce the health state sample to sample.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: The paper's ICAP throughput for its PL-DDR controller (Section IV-A).
PAPER_ICAP_MBS = 390.0

#: The paper's frame budget: one HDTV frame every 20 ms at 50 fps.
PAPER_FRAME_BUDGET_MS = 20.0

#: The paper's nominal partial-reconfiguration time (8 MB / ~390 MB/s).
PAPER_RECONFIG_MS = 20.0


class HealthState(enum.Enum):
    """Folded system health, ordered by severity."""

    OK = "ok"
    DEGRADED = "degraded"
    CRITICAL = "critical"

    @property
    def severity(self) -> int:
        return _SEVERITY[self]


_SEVERITY = {HealthState.OK: 0, HealthState.DEGRADED: 1, HealthState.CRITICAL: 2}
_BY_SEVERITY = {v: k for k, v in _SEVERITY.items()}


@dataclass(frozen=True)
class SloBudgets:
    """Paper-derived service-level budgets for a running drive.

    Attributes:
        frame_budget_ms: Wall-clock budget for one frame of host work
            (the paper's 20 ms at 50 fps).
        reconfig_budget_ms: Nominal partial-reconfiguration duration.
        reconfig_margin_rel: Tolerated relative overrun before a reconfig
            counts as an SLO violation (0.25 -> violation above 25 ms).
        icap_floor_mbs: Minimum acceptable measured ICAP throughput
            (default: the paper's 390 MB/s minus 10 %).
        flap_window_s: Trailing window for condition-change flap detection.
        flap_max_changes: Condition changes tolerated inside the window
            before the controller counts as flapping.
        anomaly_window: Trailing frame count for the detections-per-frame
            MAD estimator.
        anomaly_min_samples: Samples required before the estimator engages.
        anomaly_mad_k: Modified-z threshold (in MAD units) beyond which a
            detections count is anomalous.
        recovery_frames: Consecutive clean frames before the health state
            steps down one severity level.
        quality_window: Trailing scored-frame count for the windowed
            detection-quality evaluators (recall/FP-rate/drift).
        quality_min_samples: Scored frames required before the quality
            evaluators engage (cold-start guard).
        quality_recall_floor: Windowed recall below this marks the frame
            DEGRADED (``quality-recall``).
        quality_collapse_recall: Windowed recall below this marks the
            frame CRITICAL (``quality-collapse``) — the detector is no
            longer usably seeing vehicles.
        quality_fp_per_frame_max: Windowed false positives per scored
            frame above this marks the frame DEGRADED (``quality-fp-rate``).
        quality_drift_mad_k: Modified-z threshold (in MAD units) for the
            recall drift detector.
        quality_drift_floor: MAD floor for the drift detector; recall
            lives in [0, 1], so the flat-window fallback must be much
            finer than the detections-count one (a 0.05 floor with k=4
            flags a 0.2+ absolute recall drop, ignores ±0.03 noise).
    """

    frame_budget_ms: float = PAPER_FRAME_BUDGET_MS
    reconfig_budget_ms: float = PAPER_RECONFIG_MS
    reconfig_margin_rel: float = 0.25
    icap_floor_mbs: float = PAPER_ICAP_MBS * 0.9
    flap_window_s: float = 30.0
    flap_max_changes: int = 3
    anomaly_window: int = 64
    anomaly_min_samples: int = 16
    anomaly_mad_k: float = 5.0
    recovery_frames: int = 100
    quality_window: int = 64
    quality_min_samples: int = 16
    quality_recall_floor: float = 0.60
    quality_collapse_recall: float = 0.30
    quality_fp_per_frame_max: float = 1.0
    quality_drift_mad_k: float = 4.0
    quality_drift_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.frame_budget_ms <= 0 or self.reconfig_budget_ms <= 0:
            raise ConfigurationError("SLO time budgets must be positive")
        if self.reconfig_margin_rel < 0:
            raise ConfigurationError("reconfig_margin_rel must be >= 0")
        if self.icap_floor_mbs <= 0:
            raise ConfigurationError("icap_floor_mbs must be positive")
        if self.flap_window_s <= 0 or self.flap_max_changes < 1:
            raise ConfigurationError("flap window must be positive, max changes >= 1")
        if self.anomaly_window < 2 or self.anomaly_min_samples < 2:
            raise ConfigurationError("anomaly windows must hold at least 2 samples")
        if self.anomaly_mad_k <= 0:
            raise ConfigurationError("anomaly_mad_k must be positive")
        if self.recovery_frames < 1:
            raise ConfigurationError("recovery_frames must be >= 1")
        if self.quality_window < 2 or self.quality_min_samples < 2:
            raise ConfigurationError("quality windows must hold at least 2 samples")
        if not 0.0 <= self.quality_collapse_recall <= self.quality_recall_floor <= 1.0:
            raise ConfigurationError(
                "quality recall thresholds must satisfy "
                "0 <= collapse <= floor <= 1"
            )
        if self.quality_fp_per_frame_max <= 0:
            raise ConfigurationError("quality_fp_per_frame_max must be positive")
        if self.quality_drift_mad_k <= 0 or self.quality_drift_floor <= 0:
            raise ConfigurationError("quality drift parameters must be positive")

    @property
    def reconfig_limit_ms(self) -> float:
        """The hard overrun line: budget plus tolerated margin."""
        return self.reconfig_budget_ms * (1.0 + self.reconfig_margin_rel)

    @classmethod
    def for_fps(cls, fps: float, **overrides) -> "SloBudgets":
        """Budgets with the frame budget derived from a frame clock."""
        if fps <= 0:
            raise ConfigurationError(f"fps must be positive, got {fps}")
        overrides.setdefault("frame_budget_ms", 1e3 / fps)
        return cls(**overrides)

    def to_dict(self) -> dict:
        return {
            "frame_budget_ms": self.frame_budget_ms,
            "reconfig_budget_ms": self.reconfig_budget_ms,
            "reconfig_margin_rel": self.reconfig_margin_rel,
            "icap_floor_mbs": self.icap_floor_mbs,
            "flap_window_s": self.flap_window_s,
            "flap_max_changes": self.flap_max_changes,
            "anomaly_window": self.anomaly_window,
            "anomaly_min_samples": self.anomaly_min_samples,
            "anomaly_mad_k": self.anomaly_mad_k,
            "recovery_frames": self.recovery_frames,
            "quality_window": self.quality_window,
            "quality_min_samples": self.quality_min_samples,
            "quality_recall_floor": self.quality_recall_floor,
            "quality_collapse_recall": self.quality_collapse_recall,
            "quality_fp_per_frame_max": self.quality_fp_per_frame_max,
            "quality_drift_mad_k": self.quality_drift_mad_k,
            "quality_drift_floor": self.quality_drift_floor,
        }


@dataclass(frozen=True)
class SloViolation:
    """One budget miss found by an evaluator."""

    time_s: float
    slo: str                 # "frame-deadline", "reconfig-overrun", ...
    severity: HealthState
    detail: str = ""
    frame_index: int | None = None

    def label(self) -> str:
        base = f"slo:{self.slo}"
        return f"{base}({self.detail})" if self.detail else base

    def to_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "slo": self.slo,
            "severity": self.severity.value,
            "detail": self.detail,
            "frame_index": self.frame_index,
        }


@dataclass(frozen=True)
class HealthTransition:
    """One folded-state level change."""

    time_s: float
    previous: HealthState
    new: HealthState
    reason: str
    frame_index: int | None = None

    def to_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "previous": self.previous.value,
            "new": self.new.value,
            "reason": self.reason,
            "frame_index": self.frame_index,
        }


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class HealthMonitor:
    """Rolling-window SLO evaluators folded into one health state.

    Feed it observations (:meth:`observe_frame`, :meth:`observe_reconfig`,
    :meth:`observe_condition_change`, :meth:`observe_degradation`); read
    :attr:`state`, :attr:`transitions`, and :attr:`violations` back.  The
    monitor never touches the simulation — it is a pure consumer.
    """

    def __init__(self, budgets: SloBudgets | None = None):
        self.budgets = budgets or SloBudgets()
        self.state = HealthState.OK
        self.transitions: list[HealthTransition] = []
        self.violations: list[SloViolation] = []
        self.frames_observed = 0
        self._clean_streak = 0
        self._change_times: list[float] = []
        self._detections: list[float] = []
        # Windowed detection-quality counts (scored frames only) and the
        # history of windowed recalls the drift detector compares against.
        self._quality_counts: list[tuple[int, int, int]] = []  # (tp, fp, fn)
        self._recall_history: list[float] = []
        # Violations observed between frames (reconfig reports, degradation
        # events) are folded into the *next* frame observation.
        self._pending: list[SloViolation] = []

    # Evaluators --------------------------------------------------------------

    def observe_reconfig(
        self, duration_ms: float, throughput_mbs: float, ok: bool, time_s: float, detail: str = ""
    ) -> list[SloViolation]:
        """One finished reconfiguration attempt against the PR budgets."""
        b = self.budgets
        found: list[SloViolation] = []
        if not ok:
            found.append(
                SloViolation(
                    time_s=time_s,
                    slo="reconfig-failed",
                    severity=HealthState.CRITICAL,
                    detail=detail or "reconfiguration attempt failed",
                )
            )
        if duration_ms > b.reconfig_limit_ms:
            found.append(
                SloViolation(
                    time_s=time_s,
                    slo="reconfig-overrun",
                    severity=HealthState.DEGRADED,
                    detail=f"{duration_ms:.1f} ms > {b.reconfig_limit_ms:.1f} ms limit",
                )
            )
        if ok and throughput_mbs < b.icap_floor_mbs:
            found.append(
                SloViolation(
                    time_s=time_s,
                    slo="icap-throughput",
                    severity=HealthState.DEGRADED,
                    detail=f"{throughput_mbs:.0f} MB/s < {b.icap_floor_mbs:.0f} MB/s floor",
                )
            )
        self._pending.extend(found)
        return found

    def observe_condition_change(self, time_s: float) -> list[SloViolation]:
        """One controller condition change; detects switch flapping."""
        b = self.budgets
        self._change_times.append(time_s)
        cutoff = time_s - b.flap_window_s
        self._change_times = [t for t in self._change_times if t >= cutoff]
        if len(self._change_times) > b.flap_max_changes:
            violation = SloViolation(
                time_s=time_s,
                slo="condition-flapping",
                severity=HealthState.DEGRADED,
                detail=(
                    f"{len(self._change_times)} changes in {b.flap_window_s:.0f} s "
                    f"(max {b.flap_max_changes})"
                ),
            )
            self._pending.append(violation)
            return [violation]
        return []

    def observe_degradation(self, kind: str, time_s: float, detail: str = "") -> list[SloViolation]:
        """One graceful-degradation action taken by the stack.

        ``reconfig-abandoned`` means the system gave up bringing the
        required image up — the paper's adaptivity claim is broken, so it
        is CRITICAL; every other recovery action marks the frame DEGRADED.
        """
        severity = (
            HealthState.CRITICAL if kind == "reconfig-abandoned" else HealthState.DEGRADED
        )
        violation = SloViolation(
            time_s=time_s,
            slo="degradation",
            severity=severity,
            detail=f"{kind}: {detail}" if detail else kind,
        )
        self._pending.append(violation)
        return [violation]

    def _frame_violations(
        self,
        index: int,
        time_s: float,
        wall_ms: float | None,
        degraded: bool,
        detections: float | None,
    ) -> list[SloViolation]:
        b = self.budgets
        found: list[SloViolation] = []
        if wall_ms is not None and wall_ms > b.frame_budget_ms:
            found.append(
                SloViolation(
                    time_s=time_s,
                    slo="frame-deadline",
                    severity=HealthState.DEGRADED,
                    detail=f"{wall_ms:.1f} ms > {b.frame_budget_ms:.1f} ms budget",
                    frame_index=index,
                )
            )
        if degraded:
            found.append(
                SloViolation(
                    time_s=time_s,
                    slo="config-fallback",
                    severity=HealthState.DEGRADED,
                    detail="active configuration does not match the lighting condition",
                    frame_index=index,
                )
            )
        if detections is not None:
            if len(self._detections) >= b.anomaly_min_samples:
                median = _median(self._detections)
                mad = _median([abs(v - median) for v in self._detections])
                # MAD of a flat window is 0; fall back to a one-count floor
                # so constant traffic only flags genuinely different counts.
                spread = max(mad, 1.0 / b.anomaly_mad_k)
                if abs(detections - median) / spread > b.anomaly_mad_k:
                    found.append(
                        SloViolation(
                            time_s=time_s,
                            slo="detections-anomaly",
                            severity=HealthState.DEGRADED,
                            detail=(
                                f"{detections:g} detections vs median {median:g} "
                                f"(MAD {mad:g})"
                            ),
                            frame_index=index,
                        )
                    )
            self._detections.append(float(detections))
            if len(self._detections) > b.anomaly_window:
                del self._detections[: len(self._detections) - b.anomaly_window]
        return found

    def _quality_violations(self, index: int, time_s: float, quality) -> list[SloViolation]:
        """Windowed quality SLOs over one scored frame's TP/FP/FN counts.

        ``quality`` is any object with integer ``tp``/``fp``/``fn``
        attributes (a :class:`repro.quality.records.QualityRecord`); the
        evaluator is duck-typed so this module never imports the quality
        plane.  Three detectors, mirroring the latency ones:

        * ``quality-recall`` / ``quality-collapse`` — windowed recall
          against absolute floors (DEGRADED / CRITICAL);
        * ``quality-fp-rate`` — windowed false positives per scored frame;
        * ``quality-drift`` — the current windowed recall against the MAD
          of its own history (catches a sustained slide long before the
          absolute floor is crossed).
        """
        b = self.budgets
        found: list[SloViolation] = []
        self._quality_counts.append((int(quality.tp), int(quality.fp), int(quality.fn)))
        if len(self._quality_counts) > b.quality_window:
            del self._quality_counts[: len(self._quality_counts) - b.quality_window]
        if len(self._quality_counts) < b.quality_min_samples:
            return found
        tp = sum(c[0] for c in self._quality_counts)
        fp = sum(c[1] for c in self._quality_counts)
        fn = sum(c[2] for c in self._quality_counts)
        fp_per_frame = fp / len(self._quality_counts)
        if fp_per_frame > b.quality_fp_per_frame_max:
            found.append(
                SloViolation(
                    time_s=time_s,
                    slo="quality-fp-rate",
                    severity=HealthState.DEGRADED,
                    detail=(
                        f"{fp_per_frame:.2f} FP/frame > "
                        f"{b.quality_fp_per_frame_max:.2f} ceiling"
                    ),
                    frame_index=index,
                )
            )
        if tp + fn == 0:
            return found  # no ground-truth vehicles in the window: recall undefined
        recall = tp / (tp + fn)
        if recall < b.quality_collapse_recall:
            found.append(
                SloViolation(
                    time_s=time_s,
                    slo="quality-collapse",
                    severity=HealthState.CRITICAL,
                    detail=(
                        f"windowed recall {recall:.2f} < "
                        f"{b.quality_collapse_recall:.2f} collapse line"
                    ),
                    frame_index=index,
                )
            )
        elif recall < b.quality_recall_floor:
            found.append(
                SloViolation(
                    time_s=time_s,
                    slo="quality-recall",
                    severity=HealthState.DEGRADED,
                    detail=(
                        f"windowed recall {recall:.2f} < "
                        f"{b.quality_recall_floor:.2f} floor"
                    ),
                    frame_index=index,
                )
            )
        elif len(self._recall_history) >= b.quality_min_samples:
            median = _median(self._recall_history)
            mad = _median([abs(v - median) for v in self._recall_history])
            # Recall lives in [0, 1]; a flat window's MAD is 0, so fall
            # back to a fine absolute floor (not the one-count floor the
            # detections estimator uses).  Only *downward* drift flags.
            spread = max(mad, b.quality_drift_floor)
            if (median - recall) / spread > b.quality_drift_mad_k:
                found.append(
                    SloViolation(
                        time_s=time_s,
                        slo="quality-drift",
                        severity=HealthState.DEGRADED,
                        detail=(
                            f"windowed recall {recall:.2f} drifted below "
                            f"median {median:.2f} (MAD {mad:.3f})"
                        ),
                        frame_index=index,
                    )
                )
        self._recall_history.append(recall)
        if len(self._recall_history) > b.quality_window:
            del self._recall_history[: len(self._recall_history) - b.quality_window]
        return found

    # Folding -----------------------------------------------------------------

    def observe_frame(
        self,
        index: int,
        time_s: float,
        wall_ms: float | None = None,
        degraded: bool = False,
        detections: float | None = None,
        quality=None,
    ) -> tuple[list[SloViolation], HealthTransition | None]:
        """Fold one frame (plus anything pending) into the health state.

        ``quality`` is an optional scored-frame record (``tp``/``fp``/``fn``
        attributes) from the quality plane; ``None`` on unscored frames.
        Returns the violations attributed to this frame and the state
        transition it caused, if any.
        """
        self.frames_observed += 1
        found = self._pending
        self._pending = []
        found.extend(
            self._frame_violations(index, time_s, wall_ms, degraded, detections)
        )
        if quality is not None:
            found.extend(self._quality_violations(index, time_s, quality))
        found = [
            v if v.frame_index is not None else dataclasses.replace(v, frame_index=index)
            for v in found
        ]
        self.violations.extend(found)
        transition: HealthTransition | None = None
        if found:
            self._clean_streak = 0
            worst = max(found, key=lambda v: v.severity.severity)
            if worst.severity.severity > self.state.severity:
                transition = self._transition(worst.severity, worst.label(), time_s, index)
        else:
            self._clean_streak += 1
            if (
                self.state is not HealthState.OK
                and self._clean_streak >= self.budgets.recovery_frames
            ):
                recovered = _BY_SEVERITY[self.state.severity - 1]
                transition = self._transition(
                    recovered,
                    f"recovered: {self._clean_streak} clean frames",
                    time_s,
                    index,
                )
                self._clean_streak = 0
        return found, transition

    def _transition(
        self, new: HealthState, reason: str, time_s: float, index: int | None
    ) -> HealthTransition:
        transition = HealthTransition(
            time_s=time_s,
            previous=self.state,
            new=new,
            reason=reason,
            frame_index=index,
        )
        self.state = new
        self.transitions.append(transition)
        return transition

    def summary(self) -> dict:
        """Point-in-time digest of the health evaluation."""
        by_slo: dict[str, int] = {}
        for violation in self.violations:
            by_slo[violation.slo] = by_slo.get(violation.slo, 0) + 1
        return {
            "state": self.state.value,
            "frames_observed": self.frames_observed,
            "violations": len(self.violations),
            "violations_by_slo": by_slo,
            "transitions": len(self.transitions),
        }
