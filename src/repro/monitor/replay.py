"""Deterministic replay of incident bundles.

``replay_bundle`` reconstructs the *entire* drive from a bundle's manifest
— lux-trace knots, sensor noise/seed, the full fault plan, the system
configuration — re-runs it with a fresh in-memory monitor, locates the
incident window matching the recorded trigger, and byte-compares every
frame core against the bundle.  Because the drive is a pure function of
those inputs (the fault-injection replay invariant), a clean bundle always
verifies; a mismatch means either the bundle was edited or the codebase no
longer reproduces the recorded behaviour — both worth knowing.

This module imports :mod:`repro.core.system` and therefore must stay out
of ``repro.monitor.__init__`` (the core imports the monitor session; going
the other way here would close an import cycle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.adaptive.controller import ControllerConfig
from repro.adaptive.sensor import LightSensor, LuxTrace
from repro.core.system import AdaptiveDetectionSystem, DegradationPolicy, SystemConfig
from repro.datasets.lighting import LightingCondition
from repro.errors import MonitoringError
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.monitor.bundle import IncidentBundle, load_bundle
from repro.monitor.recorder import IncidentWindow
from repro.monitor.session import Monitor, MonitorConfig, canonical_frame_bytes
from repro.monitor.slo import SloBudgets
from repro.zynq.pr import ALL_CONTROLLERS

CONTROLLER_BY_NAME = {cls.name: cls for cls in ALL_CONTROLLERS}


@dataclass
class ReplayResult:
    """Outcome of replaying one bundle."""

    bundle: IncidentBundle
    ok: bool
    detail: str
    frames_compared: int = 0
    mismatched_indices: list[int] = field(default_factory=list)
    window: IncidentWindow | None = None
    monitor: Monitor | None = field(default=None, repr=False)

    def summary(self) -> dict:
        return {
            "incident_id": self.bundle.incident_id,
            "ok": self.ok,
            "detail": self.detail,
            "frames_compared": self.frames_compared,
            "mismatched_indices": list(self.mismatched_indices),
        }


def _plan_from_manifest(plan_dict: dict | None) -> FaultPlan | None:
    if plan_dict is None:
        return None
    specs = [
        FaultSpec(
            site=FaultSite(spec["site"]),
            target=spec["target"],
            start_s=spec["start_s"],
            end_s=math.inf if spec["end_s"] is None else spec["end_s"],
            magnitude=spec["magnitude"],
            max_firings=spec["max_firings"],
        )
        for spec in plan_dict["specs"]
    ]
    return FaultPlan(specs, name=plan_dict.get("name", "replayed"))


def _monitor_from_manifest(manifest: dict) -> Monitor:
    recorder = manifest.get("recorder", {})
    policy = manifest.get("triggers_policy", {})
    config = MonitorConfig(
        out_dir=None,
        budgets=SloBudgets(**manifest["budgets"]),
        capacity=recorder.get("capacity", 512),
        pre_roll=recorder.get("pre_roll", 32),
        post_roll=recorder.get("post_roll", 16),
        cooldown_frames=recorder.get("cooldown_frames", 64),
        max_incidents=recorder.get("max_incidents", 16),
        trigger_on_fault=policy.get("on_fault", True),
        trigger_on_reconfig_failure=policy.get("on_reconfig_failure", True),
        trigger_on_critical=policy.get("on_critical", True),
        trigger_on_deadline=policy.get("on_deadline", False),
        trigger_on_quality=policy.get("on_quality", True),
        wall_clock_slos=manifest.get("wall_clock_slos", True),
        quality_slos=manifest.get("quality_slos", True),
    )
    return Monitor(config)


def rebuild_drive(
    manifest: dict,
) -> tuple[AdaptiveDetectionSystem, LuxTrace, LightSensor, float, Monitor]:
    """Reconstruct (system, trace, sensor, duration, monitor) from a manifest."""
    drive = manifest.get("drive")
    if not drive:
        raise MonitoringError(
            "bundle manifest carries no 'drive' section; cannot replay"
        )
    trace = LuxTrace(points=tuple((float(t), float(lux)) for t, lux in drive["trace_points"]))
    plan = _plan_from_manifest(drive.get("fault_plan"))
    sensor_cfg = drive["sensor"]
    sensor = LightSensor(
        trace,
        noise_rel=sensor_cfg["noise_rel"],
        dropout_probability=sensor_cfg["dropout_probability"],
        seed=sensor_cfg["seed"],
        faults=plan,
    )
    system_cfg = drive["system"]
    controller_name = system_cfg["pr_controller"]
    controller_cls = CONTROLLER_BY_NAME.get(controller_name)
    if controller_cls is None:
        raise MonitoringError(
            f"bundle names unknown PR controller {controller_name!r} "
            f"(known: {sorted(CONTROLLER_BY_NAME)})"
        )
    config = SystemConfig(
        fps=system_cfg["fps"],
        controller=ControllerConfig(**system_cfg["controller"]),
        controller_cls=controller_cls,
        sensor_period_s=system_cfg["sensor_period_s"],
        initial_condition=LightingCondition(system_cfg["initial_condition"]),
        degradation=DegradationPolicy(**system_cfg["degradation"]),
    )
    monitor = _monitor_from_manifest(manifest)
    # A drive recorded with the quality plane attached must replay with an
    # identical observer: its records feed the quality SLOs, so the health
    # walk (and therefore the trigger window) depends on them.
    quality = None
    quality_prov = manifest.get("quality")
    if quality_prov is not None:
        from repro.quality.observer import observer_from_provenance

        quality = observer_from_provenance(quality_prov)
    system = AdaptiveDetectionSystem(
        config, fault_plan=plan, monitor=monitor, quality=quality
    )
    return system, trace, sensor, float(drive["duration_s"]), monitor


def _matching_window(monitor: Monitor, bundle: IncidentBundle) -> IncidentWindow | None:
    if not bundle.triggers:
        return None
    target = bundle.triggers[0]
    for window in monitor.recorder.incidents:
        first = window.triggers[0]
        if first.kind == target.kind and first.frame_index == target.frame_index:
            return window
    return None


def replay_bundle(bundle: IncidentBundle | str | Path) -> ReplayResult:
    """Re-run a bundle's drive and byte-verify the recorded frame window."""
    if not isinstance(bundle, IncidentBundle):
        bundle = load_bundle(bundle)
    system, trace, sensor, duration_s, monitor = rebuild_drive(bundle.manifest)
    system.run_drive(trace, duration_s=duration_s, sensor=sensor)
    window = _matching_window(monitor, bundle)
    if window is None:
        return ReplayResult(
            bundle=bundle,
            ok=False,
            detail=(
                "replay produced no incident window matching the recorded "
                f"trigger {bundle.triggers[0].label() if bundle.triggers else '<none>'} "
                f"({len(monitor.recorder.incidents)} windows reproduced)"
            ),
            monitor=monitor,
        )
    original = bundle.frame_records()
    replayed = [snapshot.record for snapshot in window.snapshots]
    if len(original) != len(replayed):
        return ReplayResult(
            bundle=bundle,
            ok=False,
            detail=(
                f"window length mismatch: bundle has {len(original)} frames, "
                f"replay produced {len(replayed)}"
            ),
            window=window,
            monitor=monitor,
        )
    mismatched = [
        rec["index"]
        for rec, rep in zip(original, replayed)
        if canonical_frame_bytes(rec) != canonical_frame_bytes(rep)
    ]
    ok = not mismatched
    detail = (
        f"{len(original)} frames byte-identical"
        if ok
        else f"{len(mismatched)} of {len(original)} frames differ"
    )
    return ReplayResult(
        bundle=bundle,
        ok=ok,
        detail=detail,
        frames_compared=len(original),
        mismatched_indices=mismatched,
        window=window,
        monitor=monitor,
    )
