"""Feature extraction: HOG (Dalal-Triggs) and sliding-window machinery."""

from repro.features.gradients import GradientField, gradient_field, orientation_bins
from repro.features.hog import (
    DenseHogLayout,
    HogConfig,
    HogDescriptor,
    cell_histograms,
    cell_histograms_from_field,
    normalize_block,
    normalize_blocks,
)
from repro.features.windows import Window, pyramid, slide, slide_pyramid

__all__ = [
    "DenseHogLayout",
    "GradientField",
    "HogConfig",
    "HogDescriptor",
    "Window",
    "cell_histograms",
    "cell_histograms_from_field",
    "gradient_field",
    "normalize_block",
    "normalize_blocks",
    "orientation_bins",
    "pyramid",
    "slide",
    "slide_pyramid",
]
