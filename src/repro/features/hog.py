"""Histogram-of-oriented-gradients descriptor (Dalal-Triggs).

This is the exact feature the paper uses for day/dusk vehicle detection and
for the static pedestrian detector: gradient -> per-cell orientation
histograms -> block normalisation (paper Fig. 1 / Fig. 2).  The
implementation mirrors the three hardware stages so the streaming timing
model in ``repro.hw`` can be attached to the same structure:

* ``cell_histograms``   <-> "Gradient Calculation" + "Histogram Generation"
* ``normalize_blocks``  <-> "Block Normalization" / "HOG Normalizer"
* ``HogDescriptor.extract`` <-> the full "HOG Feature Extraction" pipeline
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FeatureError
from repro.features.gradients import GradientField, gradient_field, orientation_bins
from repro.imaging.image import ensure_gray


@dataclass(frozen=True)
class HogConfig:
    """HOG layout parameters.

    Attributes:
        window: (height, width) of the detector window in pixels.
        cell_size: Side of a square cell in pixels.
        block_size: Side of a square block in cells (2 means 2x2 cells).
        block_stride: Block step in cells (1 means half-overlapping blocks
            for the default 2x2 block).
        n_bins: Orientation bins over [0, pi).
        clip: L2-Hys clipping value applied during block normalisation.
    """

    window: tuple[int, int] = (64, 64)
    cell_size: int = 8
    block_size: int = 2
    block_stride: int = 1
    n_bins: int = 9
    clip: float = 0.2

    def __post_init__(self) -> None:
        win_h, win_w = self.window
        if self.cell_size < 1:
            raise FeatureError(f"cell_size must be >= 1, got {self.cell_size}")
        if win_h % self.cell_size or win_w % self.cell_size:
            raise FeatureError(
                f"window {self.window} not divisible by cell_size {self.cell_size}"
            )
        if self.block_size < 1 or self.block_stride < 1:
            raise FeatureError("block_size and block_stride must be >= 1")
        if self.n_bins < 2:
            raise FeatureError(f"n_bins must be >= 2, got {self.n_bins}")
        if self.block_size > min(self.cells_shape):
            raise FeatureError(
                f"block of {self.block_size} cells exceeds window of {self.cells_shape} cells"
            )
        if self.clip <= 0:
            raise FeatureError(f"clip must be positive, got {self.clip}")

    @property
    def cells_shape(self) -> tuple[int, int]:
        """(rows, cols) of cells inside the window."""
        return (self.window[0] // self.cell_size, self.window[1] // self.cell_size)

    @property
    def blocks_shape(self) -> tuple[int, int]:
        """(rows, cols) of blocks inside the window."""
        cr, cc = self.cells_shape
        return (
            (cr - self.block_size) // self.block_stride + 1,
            (cc - self.block_size) // self.block_stride + 1,
        )

    @property
    def block_length(self) -> int:
        """Feature values per block."""
        return self.block_size * self.block_size * self.n_bins

    @property
    def feature_length(self) -> int:
        """Total descriptor length for one window."""
        br, bc = self.blocks_shape
        return br * bc * self.block_length


def cell_histograms(image: np.ndarray, config: HogConfig) -> np.ndarray:
    """Per-cell orientation histograms for a window-sized image.

    Args:
        image: Gray image whose shape equals ``config.window``.

    Returns:
        (cell_rows, cell_cols, n_bins) histogram tensor.
    """
    arr = ensure_gray(image)
    if arr.shape != config.window:
        raise FeatureError(f"image shape {arr.shape} != window {config.window}")
    field = gradient_field(arr)
    return cell_histograms_from_field(field, config.cell_size, config.n_bins)


def cell_histograms_from_field(field: GradientField, cell_size: int, n_bins: int) -> np.ndarray:
    """Cell histograms for an arbitrary-size gradient field.

    The field's shape must be divisible by ``cell_size``.  Dense detection
    reuses this over a whole frame, then slides windows over the cell grid.
    """
    height, width = field.shape
    if height % cell_size or width % cell_size:
        raise FeatureError(
            f"field shape {field.shape} not divisible by cell_size {cell_size}"
        )
    bin_lo, w_lo, w_hi = orientation_bins(field, n_bins)
    bin_hi = (bin_lo + 1) % n_bins
    rows, cols = height // cell_size, width // cell_size
    hist = np.zeros((rows, cols, n_bins), dtype=np.float64)
    mag = field.magnitude
    cell_row = np.repeat(np.arange(rows), cell_size)
    cell_col = np.repeat(np.arange(cols), cell_size)
    flat_cell = (cell_row[:, None] * cols + cell_col[None, :]).ravel()
    # Scatter-add magnitude into (cell, bin) pairs for both soft-assigned bins.
    flat_hist = np.zeros(rows * cols * n_bins, dtype=np.float64)
    np.add.at(flat_hist, flat_cell * n_bins + bin_lo.ravel(), (mag * w_lo).ravel())
    np.add.at(flat_hist, flat_cell * n_bins + bin_hi.ravel(), (mag * w_hi).ravel())
    hist[...] = flat_hist.reshape(rows, cols, n_bins)
    return hist


def normalize_block(block: np.ndarray, clip: float = 0.2, eps: float = 1e-6) -> np.ndarray:
    """L2-Hys normalisation of one flattened block vector."""
    vec = np.asarray(block, dtype=np.float64).ravel()
    norm = np.sqrt(np.dot(vec, vec) + eps**2)
    vec = vec / norm
    vec = np.minimum(vec, clip)
    norm = np.sqrt(np.dot(vec, vec) + eps**2)
    return vec / norm


def normalize_blocks(cells: np.ndarray, config: HogConfig) -> np.ndarray:
    """Form overlapping blocks from a cell-histogram tensor and L2-Hys them.

    Args:
        cells: (rows, cols, n_bins) cell histograms (any rows/cols >= block).

    Returns:
        (block_rows, block_cols, block_length) normalised block features.
    """
    tensor = np.asarray(cells, dtype=np.float64)
    if tensor.ndim != 3 or tensor.shape[2] != config.n_bins:
        raise FeatureError(
            f"cells must be (rows, cols, {config.n_bins}), got {tensor.shape}"
        )
    rows, cols, _ = tensor.shape
    bs, stride = config.block_size, config.block_stride
    if rows < bs or cols < bs:
        raise FeatureError(f"cell grid {rows}x{cols} smaller than block {bs}x{bs}")
    block_rows = (rows - bs) // stride + 1
    block_cols = (cols - bs) // stride + 1
    out = np.zeros((block_rows, block_cols, config.block_length), dtype=np.float64)
    for br in range(block_rows):
        for bc in range(block_cols):
            r0, c0 = br * stride, bc * stride
            block = tensor[r0 : r0 + bs, c0 : c0 + bs, :]
            out[br, bc, :] = normalize_block(block, clip=config.clip)
    return out


class HogDescriptor:
    """Window-level HOG feature extractor.

    The three-stage structure matches the hardware pipeline of paper Fig. 2;
    use :meth:`extract` for a single window and :meth:`extract_dense` to
    share cell histograms across all windows of a frame.
    """

    def __init__(self, config: HogConfig | None = None):
        self.config = config or HogConfig()

    @property
    def feature_length(self) -> int:
        return self.config.feature_length

    def extract(self, window: np.ndarray) -> np.ndarray:
        """Descriptor for one window-sized gray image (1-D float vector)."""
        cells = cell_histograms(window, self.config)
        blocks = normalize_blocks(cells, self.config)
        return blocks.ravel()

    def extract_batch(self, windows: np.ndarray) -> np.ndarray:
        """Descriptors for a stack of windows shaped (N, H, W)."""
        batch = np.asarray(windows, dtype=np.float64)
        if batch.ndim != 3:
            raise FeatureError(f"windows must be (N, H, W), got {batch.shape}")
        return np.stack([self.extract(w) for w in batch])

    def extract_dense(self, image: np.ndarray) -> tuple[np.ndarray, "DenseHogLayout"]:
        """Cell/block features over a whole frame for sliding-window reuse.

        The image is cropped (bottom/right) to a whole number of cells.

        Returns:
            (blocks, layout): ``blocks`` is the frame's normalised block
            tensor; ``layout`` maps window positions to feature slices.
        """
        arr = ensure_gray(image)
        cs = self.config.cell_size
        rows = (arr.shape[0] // cs) * cs
        cols = (arr.shape[1] // cs) * cs
        if rows < self.config.window[0] or cols < self.config.window[1]:
            raise FeatureError(
                f"image {arr.shape} smaller than window {self.config.window}"
            )
        field = gradient_field(arr[:rows, :cols])
        cells = cell_histograms_from_field(field, cs, self.config.n_bins)
        blocks = normalize_blocks(cells, self.config)
        return blocks, DenseHogLayout(self.config, blocks.shape[0], blocks.shape[1])


@dataclass(frozen=True)
class DenseHogLayout:
    """Maps window positions (in cells) into a dense block tensor."""

    config: HogConfig
    frame_block_rows: int
    frame_block_cols: int

    @property
    def window_blocks(self) -> tuple[int, int]:
        return self.config.blocks_shape

    def window_positions(self, cell_stride: int = 1) -> list[tuple[int, int]]:
        """All (block_row, block_col) origins of full windows in the frame."""
        wb_r, wb_c = self.window_blocks
        return [
            (r, c)
            for r in range(0, self.frame_block_rows - wb_r + 1, cell_stride)
            for c in range(0, self.frame_block_cols - wb_c + 1, cell_stride)
        ]

    def window_feature(self, blocks: np.ndarray, block_row: int, block_col: int) -> np.ndarray:
        """Slice one window's descriptor out of the dense block tensor."""
        wb_r, wb_c = self.window_blocks
        view = blocks[block_row : block_row + wb_r, block_col : block_col + wb_c, :]
        if view.shape[:2] != (wb_r, wb_c):
            raise FeatureError(
                f"window at block ({block_row}, {block_col}) exceeds frame blocks"
            )
        return view.ravel()

    def window_rect(self, block_row: int, block_col: int):
        """Pixel-space rectangle of the window at a block origin."""
        from repro.imaging.geometry import Rect

        cs = self.config.cell_size
        stride_px = self.config.block_stride * cs
        return Rect(
            float(block_col * stride_px),
            float(block_row * stride_px),
            float(self.config.window[1]),
            float(self.config.window[0]),
        )
