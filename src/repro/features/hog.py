"""Histogram-of-oriented-gradients descriptor (Dalal-Triggs).

This is the exact feature the paper uses for day/dusk vehicle detection and
for the static pedestrian detector: gradient -> per-cell orientation
histograms -> block normalisation (paper Fig. 1 / Fig. 2).  The
implementation mirrors the three hardware stages so the streaming timing
model in ``repro.hw`` can be attached to the same structure:

* ``cell_histograms``   <-> "Gradient Calculation" + "Histogram Generation"
* ``normalize_blocks``  <-> "Block Normalization" / "HOG Normalizer"
* ``HogDescriptor.extract`` <-> the full "HOG Feature Extraction" pipeline
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import FeatureError
from repro.features.gradients import (
    GradientField,
    gradient_field,
    gradient_field_batch,
    orientation_bins,
)
from repro.imaging.image import ensure_gray
from repro.ml.kernels import square_norm_rows


@dataclass(frozen=True)
class HogConfig:
    """HOG layout parameters.

    Attributes:
        window: (height, width) of the detector window in pixels.
        cell_size: Side of a square cell in pixels.
        block_size: Side of a square block in cells (2 means 2x2 cells).
        block_stride: Block step in cells (1 means half-overlapping blocks
            for the default 2x2 block).
        n_bins: Orientation bins over [0, pi).
        clip: L2-Hys clipping value applied during block normalisation.
    """

    window: tuple[int, int] = (64, 64)
    cell_size: int = 8
    block_size: int = 2
    block_stride: int = 1
    n_bins: int = 9
    clip: float = 0.2

    def __post_init__(self) -> None:
        win_h, win_w = self.window
        if self.cell_size < 1:
            raise FeatureError(f"cell_size must be >= 1, got {self.cell_size}")
        if win_h % self.cell_size or win_w % self.cell_size:
            raise FeatureError(
                f"window {self.window} not divisible by cell_size {self.cell_size}"
            )
        if self.block_size < 1 or self.block_stride < 1:
            raise FeatureError("block_size and block_stride must be >= 1")
        if self.n_bins < 2:
            raise FeatureError(f"n_bins must be >= 2, got {self.n_bins}")
        if self.block_size > min(self.cells_shape):
            raise FeatureError(
                f"block of {self.block_size} cells exceeds window of {self.cells_shape} cells"
            )
        if self.clip <= 0:
            raise FeatureError(f"clip must be positive, got {self.clip}")

    @property
    def cells_shape(self) -> tuple[int, int]:
        """(rows, cols) of cells inside the window."""
        return (self.window[0] // self.cell_size, self.window[1] // self.cell_size)

    @property
    def blocks_shape(self) -> tuple[int, int]:
        """(rows, cols) of blocks inside the window."""
        cr, cc = self.cells_shape
        return (
            (cr - self.block_size) // self.block_stride + 1,
            (cc - self.block_size) // self.block_stride + 1,
        )

    @property
    def block_length(self) -> int:
        """Feature values per block."""
        return self.block_size * self.block_size * self.n_bins

    @property
    def feature_length(self) -> int:
        """Total descriptor length for one window."""
        br, bc = self.blocks_shape
        return br * bc * self.block_length


def cell_histograms(image: np.ndarray, config: HogConfig) -> np.ndarray:
    """Per-cell orientation histograms for a window-sized image.

    Args:
        image: Gray image whose shape equals ``config.window``.

    Returns:
        (cell_rows, cell_cols, n_bins) histogram tensor.
    """
    arr = ensure_gray(image)
    if arr.shape != config.window:
        raise FeatureError(f"image shape {arr.shape} != window {config.window}")
    field = gradient_field(arr)
    return cell_histograms_from_field(field, config.cell_size, config.n_bins)


def cell_histograms_from_field(field: GradientField, cell_size: int, n_bins: int) -> np.ndarray:
    """Cell histograms for an arbitrary-size gradient field.

    The field's shape must be divisible by ``cell_size``.  Dense detection
    reuses this over a whole frame, then slides windows over the cell grid.
    """
    height, width = field.shape
    if height % cell_size or width % cell_size:
        raise FeatureError(
            f"field shape {field.shape} not divisible by cell_size {cell_size}"
        )
    bin_lo, w_lo, w_hi = orientation_bins(field, n_bins)
    bin_hi = (bin_lo + 1) % n_bins
    rows, cols = height // cell_size, width // cell_size
    hist = np.zeros((rows, cols, n_bins), dtype=np.float64)
    mag = field.magnitude
    cell_row = np.repeat(np.arange(rows), cell_size)
    cell_col = np.repeat(np.arange(cols), cell_size)
    flat_cell = (cell_row[:, None] * cols + cell_col[None, :]).ravel()
    # Scatter-add magnitude into (cell, bin) pairs for both soft-assigned bins.
    flat_hist = np.zeros(rows * cols * n_bins, dtype=np.float64)
    np.add.at(flat_hist, flat_cell * n_bins + bin_lo.ravel(), (mag * w_lo).ravel())
    np.add.at(flat_hist, flat_cell * n_bins + bin_hi.ravel(), (mag * w_hi).ravel())
    hist[...] = flat_hist.reshape(rows, cols, n_bins)
    return hist


def cell_histograms_batch(windows: np.ndarray, cell_size: int, n_bins: int) -> np.ndarray:
    """Cell histograms for an (N, H, W) stack of independent windows.

    One vectorised gradient pass plus one scatter-add covers the whole
    stack.  Window ``i`` of the result is bitwise equal to
    ``cell_histograms_from_field(gradient_field(windows[i]), ...)``: the
    gradient/binning math is elementwise, and the scatter visits each
    window's pixels in the same order as the single-window path (windows
    never share a histogram slot, so per-slot accumulation order — and
    therefore float rounding — is unchanged).

    Returns:
        (N, cell_rows, cell_cols, n_bins) histogram tensor.
    """
    stack = np.asarray(windows, dtype=np.float64)
    if stack.ndim != 3:
        raise FeatureError(f"windows must be (N, H, W), got shape {stack.shape}")
    n, height, width = stack.shape
    if height % cell_size or width % cell_size:
        raise FeatureError(
            f"window shape {(height, width)} not divisible by cell_size {cell_size}"
        )
    if n == 0:
        return np.zeros((0, height // cell_size, width // cell_size, n_bins))
    field = gradient_field_batch(stack)
    bin_lo, w_lo, w_hi = orientation_bins(field, n_bins)
    bin_hi = (bin_lo + 1) % n_bins
    rows, cols = height // cell_size, width // cell_size
    cell_row = np.repeat(np.arange(rows), cell_size)
    cell_col = np.repeat(np.arange(cols), cell_size)
    plane_cell = cell_row[:, None] * cols + cell_col[None, :]
    flat_cell = (np.arange(n) * (rows * cols))[:, None, None] + plane_cell[None, :, :]
    mag = field.magnitude
    flat_hist = np.zeros(n * rows * cols * n_bins, dtype=np.float64)
    np.add.at(flat_hist, (flat_cell * n_bins + bin_lo).ravel(), (mag * w_lo).ravel())
    np.add.at(flat_hist, (flat_cell * n_bins + bin_hi).ravel(), (mag * w_hi).ravel())
    return flat_hist.reshape(n, rows, cols, n_bins)


def normalize_block(block: np.ndarray, clip: float = 0.2, eps: float = 1e-6) -> np.ndarray:
    """L2-Hys normalisation of one flattened block vector.

    The squared norms use the same fixed-order einsum summation as the
    vectorised :func:`normalize_block_rows`, so normalising one block alone
    is bitwise equal to normalising it inside any batch of blocks.
    """
    vec = np.asarray(block, dtype=np.float64).ravel()
    norm = np.sqrt(np.einsum("d,d->", vec, vec) + eps**2)
    vec = vec / norm
    vec = np.minimum(vec, clip)
    norm = np.sqrt(np.einsum("d,d->", vec, vec) + eps**2)
    return vec / norm


def normalize_block_rows(rows: np.ndarray, clip: float = 0.2, eps: float = 1e-6) -> np.ndarray:
    """L2-Hys normalisation of a (N, block_length) batch of block vectors.

    Row ``i`` is bitwise equal to ``normalize_block(rows[i])`` — both paths
    share the batch-size-invariant squared-norm kernel — which lets the
    dense and batched descriptors reuse one vectorised normaliser without
    perturbing the per-window reference output.
    """
    batch = np.asarray(rows, dtype=np.float64)
    if batch.ndim != 2:
        raise FeatureError(f"rows must be (N, block_length), got shape {batch.shape}")
    norm = np.sqrt(square_norm_rows(batch) + eps**2)
    vec = batch / norm[:, None]
    np.minimum(vec, clip, out=vec)
    norm = np.sqrt(square_norm_rows(vec) + eps**2)
    vec /= norm[:, None]
    return vec


def _block_rows(cells: np.ndarray, config: HogConfig) -> np.ndarray:
    """Gather overlapping blocks of a (..., rows, cols, n_bins) tensor.

    Returns a (..., block_rows, block_cols, block_length) array whose last
    axis is each block flattened in the (cell_row, cell_col, bin) order the
    per-block loop used — a pure strided copy, no arithmetic.
    """
    bs, stride = config.block_size, config.block_stride
    view = sliding_window_view(cells, (bs, bs), axis=(-3, -2))
    view = view[..., ::stride, ::stride, :, :, :]
    # view axes: (..., block_rows, block_cols, n_bins, bs, bs); reorder the
    # trailing three to (bs, bs, n_bins) to match ravel() of a block slice.
    ordered = np.moveaxis(view, -3, -1)
    return ordered.reshape(*ordered.shape[:-3], config.block_length)


def normalize_blocks(cells: np.ndarray, config: HogConfig) -> np.ndarray:
    """Form overlapping blocks from a cell-histogram tensor and L2-Hys them.

    Vectorised: one strided gather plus one batched normalisation replaces
    the per-block Python loop (bitwise-identical output; see
    :func:`normalize_block_rows`).

    Args:
        cells: (rows, cols, n_bins) cell histograms (any rows/cols >= block).

    Returns:
        (block_rows, block_cols, block_length) normalised block features.
    """
    tensor = np.asarray(cells, dtype=np.float64)
    if tensor.ndim != 3 or tensor.shape[2] != config.n_bins:
        raise FeatureError(
            f"cells must be (rows, cols, {config.n_bins}), got {tensor.shape}"
        )
    rows, cols, _ = tensor.shape
    bs = config.block_size
    if rows < bs or cols < bs:
        raise FeatureError(f"cell grid {rows}x{cols} smaller than block {bs}x{bs}")
    gathered = _block_rows(tensor, config)
    block_rows, block_cols = gathered.shape[:2]
    flat = normalize_block_rows(
        gathered.reshape(block_rows * block_cols, config.block_length), clip=config.clip
    )
    return flat.reshape(block_rows, block_cols, config.block_length)


class HogDescriptor:
    """Window-level HOG feature extractor.

    The three-stage structure matches the hardware pipeline of paper Fig. 2;
    use :meth:`extract` for a single window and :meth:`extract_dense` to
    share cell histograms across all windows of a frame.
    """

    def __init__(self, config: HogConfig | None = None):
        self.config = config or HogConfig()

    @property
    def feature_length(self) -> int:
        return self.config.feature_length

    def extract(self, window: np.ndarray) -> np.ndarray:
        """Descriptor for one window-sized gray image (1-D float vector)."""
        cells = cell_histograms(window, self.config)
        blocks = normalize_blocks(cells, self.config)
        return blocks.ravel()

    def extract_batch(self, windows: np.ndarray) -> np.ndarray:
        """Descriptors for a stack of windows shaped (N, H, W).

        Routed through the dense vectorised path — one gradient pass, one
        histogram scatter and one batched block normalisation for the whole
        stack — while staying bitwise equal to
        ``np.stack([self.extract(w) for w in windows])`` (pinned by
        ``tests/features/test_hog.py``).
        """
        batch = np.asarray(windows, dtype=np.float64)
        if batch.ndim != 3:
            raise FeatureError(f"windows must be (N, H, W), got {batch.shape}")
        cfg = self.config
        if batch.shape[0] == 0:
            return np.zeros((0, cfg.feature_length))
        if batch.shape[1:] != cfg.window:
            raise FeatureError(
                f"window stack shape {batch.shape[1:]} != window {cfg.window}"
            )
        cells = cell_histograms_batch(batch, cfg.cell_size, cfg.n_bins)
        gathered = _block_rows(cells, cfg)
        n = batch.shape[0]
        flat = normalize_block_rows(
            gathered.reshape(n * cfg.blocks_shape[0] * cfg.blocks_shape[1], cfg.block_length),
            clip=cfg.clip,
        )
        return flat.reshape(n, cfg.feature_length)

    def extract_dense(self, image: np.ndarray) -> tuple[np.ndarray, "DenseHogLayout"]:
        """Cell/block features over a whole frame for sliding-window reuse.

        The image is cropped (bottom/right) to a whole number of cells.

        Returns:
            (blocks, layout): ``blocks`` is the frame's normalised block
            tensor; ``layout`` maps window positions to feature slices.
        """
        arr = ensure_gray(image)
        cs = self.config.cell_size
        rows = (arr.shape[0] // cs) * cs
        cols = (arr.shape[1] // cs) * cs
        if rows < self.config.window[0] or cols < self.config.window[1]:
            raise FeatureError(
                f"image {arr.shape} smaller than window {self.config.window}"
            )
        field = gradient_field(arr[:rows, :cols])
        cells = cell_histograms_from_field(field, cs, self.config.n_bins)
        blocks = normalize_blocks(cells, self.config)
        return blocks, DenseHogLayout(self.config, blocks.shape[0], blocks.shape[1])


@dataclass(frozen=True)
class DenseHogLayout:
    """Maps window positions (in cells) into a dense block tensor."""

    config: HogConfig
    frame_block_rows: int
    frame_block_cols: int

    @property
    def window_blocks(self) -> tuple[int, int]:
        return self.config.blocks_shape

    def window_positions(self, cell_stride: int = 1) -> list[tuple[int, int]]:
        """All (block_row, block_col) origins of full windows in the frame."""
        wb_r, wb_c = self.window_blocks
        return [
            (r, c)
            for r in range(0, self.frame_block_rows - wb_r + 1, cell_stride)
            for c in range(0, self.frame_block_cols - wb_c + 1, cell_stride)
        ]

    def window_grid(self, cell_stride: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """The (row_origins, col_origins) axes of the window grid.

        The full position list is their row-major product, in exactly the
        order :meth:`window_positions` yields.
        """
        if cell_stride < 1:
            raise FeatureError(f"cell_stride must be >= 1, got {cell_stride}")
        wb_r, wb_c = self.window_blocks
        rows = np.arange(0, max(self.frame_block_rows - wb_r + 1, 0), cell_stride)
        cols = np.arange(0, max(self.frame_block_cols - wb_c + 1, 0), cell_stride)
        return rows, cols

    def window_index_grid(self, cell_stride: int = 1) -> np.ndarray:
        """All window origins as an (n_windows, 2) int array, row-major.

        Row ``i`` equals ``window_positions(cell_stride)[i]`` — the batched
        scorer and the per-window reference path walk the same grid in the
        same order, so their outputs align index for index.
        """
        rows, cols = self.window_grid(cell_stride)
        if rows.size == 0 or cols.size == 0:
            return np.zeros((0, 2), dtype=np.int64)
        mesh = np.stack(np.meshgrid(rows, cols, indexing="ij"), axis=-1)
        return mesh.reshape(-1, 2).astype(np.int64, copy=False)

    def window_feature_matrix(
        self,
        blocks: np.ndarray,
        cell_stride: int = 1,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Every window's descriptor gathered into one (n_windows, D) matrix.

        One strided view plus one copy replaces n_windows Python-level
        slices: block histograms shared by overlapping windows are computed
        once in ``blocks`` and fanned out here.  Row ``i`` is bitwise equal
        to ``window_feature(blocks, *window_positions(cell_stride)[i])``
        (it is the same bytes, moved not recomputed).

        Args:
            blocks: Dense block tensor from ``HogDescriptor.extract_dense``.
            cell_stride: Window grid stride in block units.
            out: Optional preallocated C-contiguous (n_windows, D) float64
                buffer — steady-state frames can reuse it and allocate
                nothing here.

        Returns:
            (n_windows, feature_length) matrix (``out`` when given).
        """
        wb_r, wb_c = self.window_blocks
        if blocks.ndim != 3 or blocks.shape[:2] != (
            self.frame_block_rows,
            self.frame_block_cols,
        ):
            raise FeatureError(
                f"blocks shape {blocks.shape} does not match layout "
                f"({self.frame_block_rows}, {self.frame_block_cols}, ...)"
            )
        rows, cols = self.window_grid(cell_stride)
        n = rows.size * cols.size
        length = self.config.feature_length
        if out is None:
            out = np.empty((n, length), dtype=np.float64)
        elif (
            out.shape != (n, length)
            or out.dtype != np.float64
            or not out.flags.c_contiguous
        ):
            raise FeatureError(
                f"out buffer must be C-contiguous float64 {(n, length)}, "
                f"got {out.dtype} {out.shape}"
            )
        if n == 0:
            return out
        view = sliding_window_view(blocks, (wb_r, wb_c), axis=(0, 1))
        sub = view[::cell_stride, ::cell_stride]
        sub = sub[: rows.size, : cols.size]
        # sub axes: (rows, cols, L, wb_r, wb_c) — reorder the trailing trio
        # to the (wb_r, wb_c, L) ravel order of window_feature and copy
        # straight into the output buffer.
        shaped = out.reshape(rows.size, cols.size, wb_r, wb_c, blocks.shape[2])
        np.copyto(shaped, sub.transpose(0, 1, 3, 4, 2))
        return out

    def window_feature(self, blocks: np.ndarray, block_row: int, block_col: int) -> np.ndarray:
        """Slice one window's descriptor out of the dense block tensor."""
        wb_r, wb_c = self.window_blocks
        view = blocks[block_row : block_row + wb_r, block_col : block_col + wb_c, :]
        if view.shape[:2] != (wb_r, wb_c):
            raise FeatureError(
                f"window at block ({block_row}, {block_col}) exceeds frame blocks"
            )
        return view.ravel()

    def window_rect(self, block_row: int, block_col: int):
        """Pixel-space rectangle of the window at a block origin."""
        from repro.imaging.geometry import Rect

        cs = self.config.cell_size
        stride_px = self.config.block_stride * cs
        return Rect(
            float(block_col * stride_px),
            float(block_row * stride_px),
            float(self.config.window[1]),
            float(self.config.window[0]),
        )
