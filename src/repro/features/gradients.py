"""Gradient magnitude/orientation maps for HOG.

The hardware "Gradient Calculation" stage (paper Fig. 1) computes per-pixel
gradient magnitude and quantised orientation from central differences.  The
software model keeps full precision; the quantisation into orientation bins
happens in the histogram stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FeatureError
from repro.imaging.filters import central_gradient
from repro.imaging.image import ensure_gray


@dataclass(frozen=True)
class GradientField:
    """Per-pixel gradient magnitude and orientation.

    Attributes:
        magnitude: (H, W) non-negative gradient magnitudes.
        orientation: (H, W) angles in radians, folded into [0, pi) for the
            unsigned-gradient convention HOG uses.
    """

    magnitude: np.ndarray
    orientation: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return self.magnitude.shape


def gradient_field(image: np.ndarray) -> GradientField:
    """Compute the unsigned gradient field of a gray image."""
    arr = ensure_gray(image)
    gx, gy = central_gradient(arr)
    magnitude = np.hypot(gx, gy)
    orientation = np.arctan2(gy, gx)  # [-pi, pi]
    orientation = np.mod(orientation, np.pi)  # unsigned: [0, pi)
    return GradientField(magnitude=magnitude, orientation=orientation)


def gradient_field_batch(windows: np.ndarray) -> GradientField:
    """Unsigned gradient fields of an (N, H, W) window stack at once.

    Every operation is elementwise or a fixed slice, so plane ``i`` of the
    result is bitwise equal to ``gradient_field(windows[i])`` — the batched
    HOG descriptor leans on that to stay byte-identical to the per-window
    reference.  The returned :class:`GradientField` carries 3-D arrays.
    """
    stack = np.asarray(windows, dtype=np.float64)
    if stack.ndim != 3:
        raise FeatureError(f"windows must be (N, H, W), got shape {stack.shape}")
    if stack.shape[1] < 1 or stack.shape[2] < 1:
        raise FeatureError(f"windows must be non-empty, got shape {stack.shape}")
    padded = np.pad(stack, ((0, 0), (1, 1), (1, 1)), mode="edge")
    gx = 0.5 * (padded[:, 1:-1, 2:] - padded[:, 1:-1, :-2])
    gy = 0.5 * (padded[:, 2:, 1:-1] - padded[:, :-2, 1:-1])
    magnitude = np.hypot(gx, gy)
    orientation = np.mod(np.arctan2(gy, gx), np.pi)
    return GradientField(magnitude=magnitude, orientation=orientation)


def orientation_bins(field: GradientField, n_bins: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Soft-assign each pixel's orientation to two adjacent bins.

    Linear interpolation between neighbouring orientation bins, exactly as in
    Dalal-Triggs.  Returns (bin_lo, weight_lo, weight_hi) where ``bin_lo`` is
    the lower bin index per pixel and the upper bin is ``(bin_lo+1) % n_bins``.
    """
    if n_bins < 2:
        raise FeatureError(f"need at least 2 orientation bins, got {n_bins}")
    bin_width = np.pi / n_bins
    # Center of bin b is (b + 0.5) * bin_width.
    position = field.orientation / bin_width - 0.5
    bin_lo = np.floor(position).astype(int)
    frac = position - bin_lo
    bin_lo = np.mod(bin_lo, n_bins)
    weight_hi = frac
    weight_lo = 1.0 - frac
    return bin_lo, weight_lo, weight_hi
