"""Sliding windows and image pyramids for dense detection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import FeatureError
from repro.imaging.geometry import Rect
from repro.imaging.image import ensure_gray
from repro.imaging.resize import pyramid_scales, resize_bilinear


@dataclass(frozen=True)
class Window:
    """One sliding-window placement.

    Attributes:
        rect: Position in the coordinates of the *scaled* image it was cut
            from.
        scale: Scale factor of that pyramid level (1.0 = native resolution).
        patch: The pixel content of the window.
    """

    rect: Rect
    scale: float
    patch: np.ndarray

    def rect_in_frame(self) -> Rect:
        """The window's rectangle mapped back to native frame coordinates."""
        return self.rect.scaled(1.0 / self.scale)


def slide(
    image: np.ndarray,
    window: tuple[int, int],
    stride: tuple[int, int],
    scale: float = 1.0,
) -> Iterator[Window]:
    """Yield all full windows of ``window`` = (h, w) with the given stride."""
    arr = ensure_gray(image)
    win_h, win_w = window
    step_y, step_x = stride
    if win_h < 1 or win_w < 1:
        raise FeatureError(f"window must be positive, got {window}")
    if step_y < 1 or step_x < 1:
        raise FeatureError(f"stride must be positive, got {stride}")
    height, width = arr.shape
    for y in range(0, height - win_h + 1, step_y):
        for x in range(0, width - win_w + 1, step_x):
            yield Window(
                rect=Rect(float(x), float(y), float(win_w), float(win_h)),
                scale=scale,
                patch=arr[y : y + win_h, x : x + win_w],
            )


def pyramid(
    image: np.ndarray,
    window: tuple[int, int],
    scale_step: float = 1.25,
    max_levels: int | None = None,
) -> Iterator[tuple[float, np.ndarray]]:
    """Yield (scale, scaled_image) pyramid levels down to the window size."""
    arr = ensure_gray(image)
    scales = pyramid_scales(window, arr.shape, scale_step=scale_step)
    if max_levels is not None:
        scales = scales[:max_levels]
    for factor in scales:
        if factor == 1.0:
            yield factor, arr
        else:
            out_h = max(window[0], int(round(arr.shape[0] * factor)))
            out_w = max(window[1], int(round(arr.shape[1] * factor)))
            yield factor, resize_bilinear(arr, out_h, out_w)


def slide_pyramid(
    image: np.ndarray,
    window: tuple[int, int],
    stride: tuple[int, int],
    scale_step: float = 1.25,
    max_levels: int | None = None,
) -> Iterator[Window]:
    """Sliding windows over every pyramid level (multi-scale detection)."""
    for factor, level in pyramid(image, window, scale_step=scale_step, max_levels=max_levels):
        yield from slide(level, window, stride, scale=factor)
