"""Persist trained detector bundles to disk.

The hardware stores trained models in block RAM and partial bitstreams in
PL DDR; the software analogue is a *bundle directory* holding everything a
deployment needs:

    bundle/
      day.json  dusk.json  combined.json    # Fig. 1's three SVM models
      dark_dbn.npz                           # the 81-20-8-4 DBN
      dark_pair_svm.json                     # taillight pairing SVM
      dark_pair_scaler.npz                   # its feature standardiser
      manifest.json                          # versions and inventory

``save_detector_bundle`` / ``load_detector_bundle`` round-trip the full
adaptive detector set; loaded detectors are inference-ready.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.ml.linear import LinearModel
from repro.ml.model_io import load_dbn, load_linear_model, save_dbn, save_linear_model
from repro.ml.scaler import StandardScaler
from repro.pipelines.dark import DarkConfig, DarkVehicleDetector
from repro.pipelines.taillight import TaillightPairMatcher

BUNDLE_FORMAT = "repro-detector-bundle"
BUNDLE_VERSION = 1


def save_scaler(scaler: StandardScaler, path: str | Path) -> None:
    """Write a fitted StandardScaler to an npz file."""
    if scaler.mean_ is None or scaler.scale_ is None:
        raise ModelError("cannot save an unfitted StandardScaler")
    np.savez(Path(path), mean=scaler.mean_, scale=scaler.scale_)


def load_scaler(path: str | Path) -> StandardScaler:
    """Read a StandardScaler written by :func:`save_scaler`."""
    with np.load(Path(path)) as archive:
        scaler = StandardScaler()
        scaler.mean_ = archive["mean"]
        scaler.scale_ = archive["scale"]
    return scaler


def save_detector_bundle(
    directory: str | Path,
    condition_models: dict[str, LinearModel],
    dark_detector: DarkVehicleDetector,
) -> Path:
    """Write the full adaptive detector set to ``directory``.

    Args:
        directory: Target directory (created if missing).
        condition_models: The Fig. 1 models, e.g. {"day": ..., "dusk": ...,
            "combined": ...}.
        dark_detector: A *trained* dark pipeline.

    Returns:
        The bundle directory path.
    """
    if dark_detector.dbn is None or dark_detector.matcher is None or dark_detector.matcher.model is None:
        raise ModelError("dark detector must be trained before saving")
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    for name, model in condition_models.items():
        save_linear_model(model, root / f"{name}.json")
    save_dbn(dark_detector.dbn, root / "dark_dbn.npz")
    save_linear_model(dark_detector.matcher.model, root / "dark_pair_svm.json")
    save_scaler(dark_detector.matcher.scaler, root / "dark_pair_scaler.npz")
    manifest = {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "condition_models": sorted(condition_models),
        "dark_config": {
            "luma_threshold": dark_detector.config.luma_threshold,
            "luma_margin": dark_detector.config.luma_margin,
            "cr_threshold": dark_detector.config.cr_threshold,
            "use_chroma": dark_detector.config.use_chroma,
            "downsample_factor": dark_detector.config.downsample_factor,
            "downsample_vote": dark_detector.config.downsample_vote,
            "closing_size": dark_detector.config.closing_size,
            "min_blob_windows": dark_detector.config.min_blob_windows,
            "max_candidates": dark_detector.config.max_candidates,
            "aspect_range": list(dark_detector.config.aspect_range),
        },
    }
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return root


def load_detector_bundle(
    directory: str | Path,
) -> tuple[dict[str, LinearModel], DarkVehicleDetector]:
    """Read a bundle written by :func:`save_detector_bundle`.

    Returns:
        (condition_models, dark_detector) ready for inference.
    """
    root = Path(directory)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise ModelError(f"{root} is not a detector bundle (no manifest.json)")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != BUNDLE_FORMAT:
        raise ModelError(f"{root} has unknown bundle format {manifest.get('format')!r}")
    models = {
        name: load_linear_model(root / f"{name}.json")
        for name in manifest["condition_models"]
    }
    cfg = manifest["dark_config"]
    config = DarkConfig(
        luma_threshold=cfg["luma_threshold"],
        luma_margin=cfg["luma_margin"],
        cr_threshold=cfg["cr_threshold"],
        use_chroma=cfg["use_chroma"],
        downsample_factor=cfg["downsample_factor"],
        downsample_vote=cfg["downsample_vote"],
        closing_size=cfg["closing_size"],
        min_blob_windows=cfg["min_blob_windows"],
        max_candidates=cfg["max_candidates"],
        aspect_range=tuple(cfg["aspect_range"]),
    )
    matcher = TaillightPairMatcher()
    matcher.model = load_linear_model(root / "dark_pair_svm.json")
    matcher.scaler = load_scaler(root / "dark_pair_scaler.npz")
    dark = DarkVehicleDetector(
        config=config,
        dbn=load_dbn(root / "dark_dbn.npz"),
        matcher=matcher,
    )
    return models, dark
