"""Shared detection types: detections, scratch buffers, pipeline protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.imaging.geometry import Rect


class ScratchBuffers:
    """Keyed pool of preallocated arrays reused across frames.

    A detector running at frame rate allocates the same (n_windows, D)
    feature matrix and (n_windows,) score vector every frame.  This pool
    hands the previous frame's buffer back whenever the requested shape and
    dtype still match, so the batched hot path allocates nothing in steady
    state; a resolution or stride change simply reallocates once.
    """

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}

    def get(
        self, key: str, shape: tuple[int, ...], dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        """A C-contiguous buffer for ``key``; contents are unspecified."""
        want = np.dtype(dtype)
        arr = self._arrays.get(key)
        if arr is None or arr.shape != tuple(shape) or arr.dtype != want:
            arr = np.empty(shape, dtype=want)
            self._arrays[key] = arr
        return arr

    def clear(self) -> None:
        """Drop every pooled buffer (e.g. after a resolution change)."""
        self._arrays.clear()


@dataclass(frozen=True)
class Detection:
    """One detector output.

    Attributes:
        rect: Location in native frame coordinates.
        score: Detector confidence (SVM margin or pipeline-specific score).
        kind: "vehicle" or "pedestrian".
        extra: Pipeline-specific payload (e.g. taillight centers).
    """

    rect: Rect
    score: float
    kind: str = "vehicle"
    extra: dict = field(default_factory=dict)


@runtime_checkable
class DetectionPipeline(Protocol):
    """What the reconfigurable partition exposes to the system level.

    Both vehicle configurations (HOG+SVM and the dark DBN pipeline) and the
    static pedestrian detector implement this protocol, mirroring the
    paper's requirement that "the two partial configurations have the same
    interface to the other parts of the design".
    """

    name: str

    def detect(self, frame: np.ndarray) -> list[Detection]:
        """Run detection over an (H, W, 3) RGB frame in [0, 1]."""
        ...

    def classify_crop(self, crop: np.ndarray) -> tuple[bool, float]:
        """Classify one window crop; returns (is_target, score)."""
        ...
