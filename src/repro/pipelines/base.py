"""Shared detection types: detections, pipeline protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.imaging.geometry import Rect


@dataclass(frozen=True)
class Detection:
    """One detector output.

    Attributes:
        rect: Location in native frame coordinates.
        score: Detector confidence (SVM margin or pipeline-specific score).
        kind: "vehicle" or "pedestrian".
        extra: Pipeline-specific payload (e.g. taillight centers).
    """

    rect: Rect
    score: float
    kind: str = "vehicle"
    extra: dict = field(default_factory=dict)


@runtime_checkable
class DetectionPipeline(Protocol):
    """What the reconfigurable partition exposes to the system level.

    Both vehicle configurations (HOG+SVM and the dark DBN pipeline) and the
    static pedestrian detector implement this protocol, mirroring the
    paper's requirement that "the two partial configurations have the same
    interface to the other parts of the design".
    """

    name: str

    def detect(self, frame: np.ndarray) -> list[Detection]:
        """Run detection over an (H, W, 3) RGB frame in [0, 1]."""
        ...

    def classify_crop(self, crop: np.ndarray) -> tuple[bool, float]:
        """Classify one window crop; returns (is_target, score)."""
        ...
