"""Detection pipelines: day/dusk (HOG+SVM), dark (DBN+pairing), pedestrian."""

from repro.pipelines.base import Detection, DetectionPipeline
from repro.pipelines.dark import (
    DBN_STRIDE,
    DBN_WINDOW,
    DarkConfig,
    DarkStageTrace,
    DarkVehicleDetector,
)
from repro.pipelines.day_dusk import (
    DayDuskConfig,
    HogSvmVehicleDetector,
    hog_features_for_dataset,
    train_condition_models,
)
from repro.pipelines.evaluation import (
    ConfusionCounts,
    FrameEvaluation,
    confusion_from_predictions,
    evaluate_crop_classifier,
    evaluate_detections,
    evaluate_frames,
)
from repro.pipelines.pedestrian import PedestrianConfig, PedestrianDetector
from repro.pipelines.persistence import (
    load_detector_bundle,
    load_scaler,
    save_detector_bundle,
    save_scaler,
)
from repro.pipelines.tracking import (
    Track,
    TrackerConfig,
    TrackingEvaluation,
    TrackingPipeline,
    VehicleTracker,
    evaluate_tracking,
)
from repro.pipelines.taillight import (
    CLASS_RADIUS_PX,
    PAIR_FEATURE_LENGTH,
    PAIR_SEPARATION_RATIO,
    TaillightCandidate,
    TaillightPairMatcher,
    make_pair_training_set,
    pair_features,
    pair_gate,
    vehicle_box_from_pair,
)

__all__ = [
    "CLASS_RADIUS_PX",
    "ConfusionCounts",
    "DBN_STRIDE",
    "DBN_WINDOW",
    "DarkConfig",
    "DarkStageTrace",
    "DarkVehicleDetector",
    "DayDuskConfig",
    "Detection",
    "DetectionPipeline",
    "FrameEvaluation",
    "HogSvmVehicleDetector",
    "PAIR_FEATURE_LENGTH",
    "PAIR_SEPARATION_RATIO",
    "PedestrianConfig",
    "PedestrianDetector",
    "TaillightCandidate",
    "Track",
    "TrackerConfig",
    "TrackingEvaluation",
    "TrackingPipeline",
    "TaillightPairMatcher",
    "confusion_from_predictions",
    "evaluate_crop_classifier",
    "evaluate_detections",
    "evaluate_tracking",
    "evaluate_frames",
    "hog_features_for_dataset",
    "load_detector_bundle",
    "load_scaler",
    "make_pair_training_set",
    "pair_features",
    "pair_gate",
    "save_detector_bundle",
    "save_scaler",
    "train_condition_models",
    "VehicleTracker",
    "vehicle_box_from_pair",
]
