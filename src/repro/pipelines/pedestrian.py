"""Static-partition pedestrian detection (HOG + linear SVM).

The main functional block of the paper's *static* partition: "Similar to the
method that is used for detection of vehicles in day ... it extracts HOG
features of input image and use linear SVM classifier to detect pedestrians
on the road", after the real-time pipeline of Hemmati et al. (DAC'17).

It exists in the system "to showcase the seamless operation of other
detection modules during the partial reconfiguration": the system-level
tests assert it keeps detecting while the vehicle partition reconfigures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.samples import DetectionDataset, extract_window_samples
from repro.errors import PipelineError
from repro.features.hog import HogConfig, HogDescriptor
from repro.imaging.color import luminance
from repro.imaging.geometry import non_max_suppression
from repro.imaging.image import ensure_rgb
from repro.imaging.resize import resize_bilinear
from repro.ml.linear import LinearModel, require_trained
from repro.ml.svm import LinearSvm, SvmConfig
from repro.pipelines.base import Detection, ScratchBuffers
from repro.rng import make_rng
from repro.telemetry.metrics import DETECTIONS_BUCKETS
from repro.telemetry.session import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class PedestrianConfig:
    """Detector parameters; the 64x32 window matches upright pedestrians.

    ``batched`` selects the gathered-matrix hot path; False keeps the
    per-window reference scan (byte-identical output, for the equivalence
    suite and debugging).
    """

    hog: HogConfig = HogConfig(window=(64, 32))
    svm_c: float = 1.0
    decision_threshold: float = 0.0
    nms_iou: float = 0.3
    window_stride_blocks: int = 2
    negatives_per_frame: int = 6
    batched: bool = True


class PedestrianDetector:
    """HOG+SVM pedestrian detector living in the static partition."""

    def __init__(
        self,
        config: PedestrianConfig | None = None,
        model: LinearModel | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.config = config or PedestrianConfig()
        self.hog = HogDescriptor(self.config.hog)
        self.model = model
        self.name = "pedestrian"
        self.telemetry = telemetry or NULL_TELEMETRY
        self._scratch = ScratchBuffers()

    def train_from_frames(self, dataset: DetectionDataset, seed: int = 13) -> LinearModel:
        """Train from annotated frames: ground-truth boxes vs random windows."""
        rng = make_rng(seed)
        win = self.config.hog.window
        pos_feats: list[np.ndarray] = []
        neg_feats: list[np.ndarray] = []
        for frame in dataset.frames:
            positives, negatives = extract_window_samples(
                frame, win, self.config.negatives_per_frame, rng, kind="pedestrian"
            )
            pos_feats.extend(self.hog.extract(luminance(p)) for p in positives)
            neg_feats.extend(self.hog.extract(luminance(n)) for n in negatives)
        if not pos_feats or not neg_feats:
            raise PipelineError(
                "training frames produced no samples; add pedestrians to the dataset"
            )
        features = np.vstack([np.stack(pos_feats), np.stack(neg_feats)])
        labels = np.concatenate(
            [np.ones(len(pos_feats), dtype=np.int64), -np.ones(len(neg_feats), dtype=np.int64)]
        )
        svm = LinearSvm(SvmConfig(c=self.config.svm_c))
        self.model = svm.train(features, labels, name="pedestrian")
        self.model.meta["train_corpus"] = dataset.name
        return self.model

    def classify_crop(self, crop: np.ndarray) -> tuple[bool, float]:
        """Window-level classification."""
        model = require_trained(self.model, self.name)
        plane = luminance(ensure_rgb(crop, "crop"))
        win_h, win_w = self.config.hog.window
        if plane.shape != (win_h, win_w):
            plane = resize_bilinear(plane, win_h, win_w)
        score = float(model.decision_values(self.hog.extract(plane)))
        return score > self.config.decision_threshold, score

    def detect(self, frame: np.ndarray) -> list[Detection]:
        """Dense sliding-window detection with NMS."""
        telemetry = self.telemetry
        model = require_trained(self.model, self.name)
        plane = luminance(ensure_rgb(frame, "frame"))
        win_h, win_w = self.config.hog.window
        if plane.shape[0] < win_h or plane.shape[1] < win_w:
            raise PipelineError(
                f"frame {plane.shape} smaller than detector window {(win_h, win_w)}"
            )
        with telemetry.stage("pedestrian.hog_scan"):
            rects, kept = self._scan_plane(plane, model)
        with telemetry.stage("pedestrian.nms"):
            keep = non_max_suppression(rects, kept, iou_threshold=self.config.nms_iou)
        if telemetry.enabled:
            telemetry.histogram(
                "detections_per_frame", bounds=DETECTIONS_BUCKETS, detector=self.name
            ).observe(float(len(keep)))
        return [Detection(rect=rects[i], score=kept[i], kind="pedestrian") for i in keep]

    def _scan_plane(self, plane: np.ndarray, model: LinearModel) -> tuple[list, list[float]]:
        """Dense scan of the luma plane; returns (rects, scores), no NMS."""
        blocks, layout = self.hog.extract_dense(plane)
        if not self.config.batched:
            return self._scan_plane_reference(blocks, layout, model)
        stride = self.config.window_stride_blocks
        grid = layout.window_index_grid(stride)
        n = grid.shape[0]
        if n == 0:
            return [], []
        feats = layout.window_feature_matrix(
            blocks,
            stride,
            out=self._scratch.get("scan.features", (n, layout.config.feature_length)),
        )
        scores = model.decision_batch(feats, out=self._scratch.get("scan.scores", (n,)))
        rects, kept = [], []
        for i in np.flatnonzero(scores > self.config.decision_threshold):
            rects.append(layout.window_rect(int(grid[i, 0]), int(grid[i, 1])))
            kept.append(float(scores[i]))
        return rects, kept

    def _scan_plane_reference(self, blocks, layout, model) -> tuple[list, list[float]]:
        """Per-window reference scan pinned byte-identical to the hot path."""
        rects, kept = [], []
        for r, c in layout.window_positions(self.config.window_stride_blocks):
            score = float(model.decision_values(layout.window_feature(blocks, r, c)))
            if score > self.config.decision_threshold:
                rects.append(layout.window_rect(r, c))
                kept.append(score)
        return rects, kept
