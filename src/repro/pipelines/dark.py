"""Dark-condition vehicle detection (paper Fig. 3 / Fig. 4).

The full pipeline, stage for stage:

1. *Split channels* — RGB -> Y / Cb / Cr (BT.601).
2. *Threshold* — luminance threshold (light sources) AND chrominance
   threshold (red sources), merged into one binary mask.  "Instead of
   relying only on the luminance information, we consider both the
   chrominance and luminance channels during the threshold stage."
3. *Downsample* — 3x area decimation (1920x1080 -> 640x360 in the paper).
4. *Closing* — dilate + erode, removing threshold noise and smoothing
   contours.
5. *Sliding DBN* — the 81-20-8-4 network over 9x9 windows with stride 2,
   classifying each window's size/shape class.
6. *Spatial correlation & matching* — taillight candidates paired by the
   SVM matcher; each matched pair localises one vehicle.

Every stage is exposed separately (`preprocess`, `dbn_grid`,
`extract_candidates`) so the hardware timing model, the benchmarks, and the
ablation studies can instrument them individually.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PipelineError
from repro.imaging.color import split_channels
from repro.imaging.components import blob_statistics, label_components
from repro.imaging.geometry import Rect
from repro.imaging.image import ensure_rgb
from repro.imaging.morphology import closing, square_element
from repro.imaging.resize import downsample_binary
from repro.imaging.threshold import binary_threshold, otsu_threshold
from repro.ml.dbn import DbnConfig, DeepBeliefNetwork
from repro.pipelines.base import Detection
from repro.telemetry.metrics import DETECTIONS_BUCKETS
from repro.telemetry.session import NULL_TELEMETRY, Telemetry
from repro.pipelines.taillight import (
    TaillightCandidate,
    TaillightPairMatcher,
    vehicle_box_from_pair,
)

DBN_WINDOW = 9
DBN_STRIDE = 2


@dataclass(frozen=True)
class DarkConfig:
    """Dark-pipeline parameters.

    Attributes:
        luma_threshold: Fixed Y threshold; None = Otsu + ``luma_margin``.
        luma_margin: Margin added to the Otsu threshold in auto mode.
        cr_threshold: Cr (redness) threshold for the chroma mask.
        use_chroma: Merge the chroma mask (the paper's choice); False is
            the luma-only ablation.
        downsample_factor: Binary decimation factor (3 for 1080p -> 640x360).
        downsample_vote: Fraction of set pixels that keeps a decimated pixel.
        closing_size: Side of the square closing element.
        min_blob_windows: Minimum DBN hit-windows to accept a candidate.
        max_candidates: Keep at most this many largest candidates.
        aspect_range: Accepted hit-cluster width/height aspect band — the
            paper's "selection of detected taillights based on their
            obtained size features": lamps cluster roughly square; wet-road
            reflection streaks cluster tall-and-narrow and are dropped.
        dbn_batch: Max windows classified per DBN forward call.
        batched: Classify occupied windows in chunked batches (the hot
            path).  False keeps the one-window-at-a-time reference scan the
            equivalence suite pins the batched grid against.
    """

    luma_threshold: float | None = None
    luma_margin: float = 0.08
    cr_threshold: float = 0.15
    use_chroma: bool = True
    downsample_factor: int = 3
    downsample_vote: float = 0.25
    closing_size: int = 3
    min_blob_windows: int = 2
    max_candidates: int = 24
    aspect_range: tuple[float, float] = (0.36, 2.8)
    dbn_batch: int = 65536
    batched: bool = True


@dataclass
class DarkStageTrace:
    """Intermediate products of one frame, for debugging and benches."""

    luma_mask: np.ndarray | None = None
    chroma_mask: np.ndarray | None = None
    merged_mask: np.ndarray | None = None
    processed_mask: np.ndarray | None = None
    class_grid: np.ndarray | None = None
    candidates: list[TaillightCandidate] = field(default_factory=list)
    pairs: list[tuple[int, int, float]] = field(default_factory=list)


class DarkVehicleDetector:
    """The reconfigurable dark-condition vehicle-detection configuration."""

    def __init__(
        self,
        config: DarkConfig | None = None,
        dbn: DeepBeliefNetwork | None = None,
        matcher: TaillightPairMatcher | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.config = config or DarkConfig()
        self.dbn = dbn
        self.matcher = matcher
        self.name = "vehicle-dark"
        self.telemetry = telemetry or NULL_TELEMETRY

    # Training ----------------------------------------------------------------

    def train(
        self,
        windows: np.ndarray | None = None,
        labels: np.ndarray | None = None,
        dbn_config: DbnConfig | None = None,
        seed: int = 11,
    ) -> dict:
        """Train both learned stages.

        Defaults to the synthetic taillight-window corpus and synthetic
        pair corpus (see :mod:`repro.datasets.synthetic` /
        :mod:`repro.pipelines.taillight`).

        Returns:
            Training report with DBN traces and pair-SVM meta.
        """
        from repro.datasets.synthetic import make_taillight_windows

        if windows is None or labels is None:
            windows, labels = make_taillight_windows(seed=seed)
        self.dbn = DeepBeliefNetwork(dbn_config or DbnConfig())
        dbn_report = self.dbn.fit(windows, labels)
        self.matcher = TaillightPairMatcher()
        pair_model = self.matcher.train(seed=seed)
        return {
            "dbn": dbn_report,
            "dbn_train_accuracy": self.dbn.score(windows, labels),
            "pair_svm": pair_model.meta,
        }

    def _require_trained(self) -> None:
        if self.matcher is None or self.matcher.model is None:
            raise PipelineError("DarkVehicleDetector is not trained; call train()")
        self._require_dbn()

    def _require_dbn(self) -> None:
        if self.dbn is None:
            raise PipelineError("DarkVehicleDetector has no DBN; call train()")

    # Stages (Fig. 4) ----------------------------------------------------------

    def preprocess(self, frame: np.ndarray, trace: DarkStageTrace | None = None) -> np.ndarray:
        """Stages 1-4: split, threshold, merge, downsample, closing."""
        rgb = ensure_rgb(frame, "frame")
        cfg = self.config
        luma, _cb, cr = split_channels(rgb)
        threshold = cfg.luma_threshold
        if threshold is None:
            threshold = otsu_threshold(luma) + cfg.luma_margin
        luma_mask = binary_threshold(luma, threshold)
        if cfg.use_chroma:
            chroma_mask = binary_threshold(cr, cfg.cr_threshold)
            merged = luma_mask & chroma_mask
        else:
            chroma_mask = None
            merged = luma_mask
        factor = self._effective_factor(rgb.shape[0], rgb.shape[1])
        small = downsample_binary(merged, factor, vote=cfg.downsample_vote) if factor > 1 else merged
        processed = closing(small, square_element(cfg.closing_size))
        if trace is not None:
            trace.luma_mask = luma_mask
            trace.chroma_mask = chroma_mask
            trace.merged_mask = merged
            trace.processed_mask = processed
        return processed

    def _effective_factor(self, height: int, width: int) -> int:
        """Largest factor <= configured that divides the frame evenly."""
        for factor in range(self.config.downsample_factor, 0, -1):
            if height % factor == 0 and width % factor == 0:
                return factor
        return 1

    def dbn_grid(self, mask: np.ndarray) -> np.ndarray:
        """Stage 5: sliding 9x9 / stride-2 DBN over the processed mask.

        Returns:
            (ny, nx) int grid of DBN classes (0 = background) where cell
            (i, j) covers mask pixels [2i, 2i+9) x [2j, 2j+9).
        """
        self._require_dbn()
        src = np.asarray(mask, dtype=np.float64)
        if src.ndim != 2:
            raise PipelineError(f"mask must be 2-D, got shape {src.shape}")
        if src.shape[0] < DBN_WINDOW or src.shape[1] < DBN_WINDOW:
            return np.zeros((0, 0), dtype=np.int64)
        view = np.lib.stride_tricks.sliding_window_view(src, (DBN_WINDOW, DBN_WINDOW))
        view = view[::DBN_STRIDE, ::DBN_STRIDE]
        ny, nx = view.shape[:2]
        flat = view.reshape(ny * nx, DBN_WINDOW * DBN_WINDOW)
        grid = np.zeros(ny * nx, dtype=np.int64)
        # Only windows with any lit pixel can be taillights; the rest stay 0.
        occupied = np.flatnonzero(flat.any(axis=1))
        if not self.config.batched:
            self._dbn_grid_reference(flat, occupied, grid)
            return grid.reshape(ny, nx)
        for start in range(0, occupied.size, self.config.dbn_batch):
            idx = occupied[start : start + self.config.dbn_batch]
            grid[idx] = self.dbn.predict_batch(flat[idx])
        return grid.reshape(ny, nx)

    def _dbn_grid_reference(
        self, flat: np.ndarray, occupied: np.ndarray, grid: np.ndarray
    ) -> None:
        """One-window-at-a-time DBN scan, filled into ``grid`` in place.

        The ground truth the equivalence suite pins ``dbn_grid`` against:
        the whole stack runs through batch-size-invariant kernels, so a
        window classified alone equals the same window classified inside
        any chunk, bit for bit.
        """
        for i in occupied:
            grid[i] = int(self.dbn.predict(flat[i])[0])

    def extract_candidates(self, class_grid: np.ndarray) -> list[TaillightCandidate]:
        """Cluster DBN hits into taillight candidates.

        Hits are bridged by a one-step dilation before labelling so a lamp
        whose window responses fragment (the DBN is conservative near
        cluttered masks) still forms one candidate; cluster statistics use
        the true hit cells only.
        """
        if class_grid.size == 0:
            return []
        from repro.imaging.morphology import dilate, square_element

        hits = class_grid > 0
        bridged = dilate(hits, square_element(3))
        labels, count = label_components(bridged)
        labels = np.where(hits, labels, 0)
        blobs = blob_statistics(labels, count)
        candidates: list[TaillightCandidate] = []
        aspect_lo, aspect_hi = self.config.aspect_range
        for blob in blobs:
            if blob.area < self.config.min_blob_windows:
                continue
            if not aspect_lo <= blob.aspect <= aspect_hi:
                continue  # elongated cluster: reflection streak, not a lamp
            cells = class_grid[labels == blob.label]
            # Majority size class across the blob's hit windows.
            size_class = int(np.bincount(cells, minlength=4)[1:].argmax()) + 1
            gx, gy = blob.centroid
            center = (
                gx * DBN_STRIDE + DBN_WINDOW / 2.0,
                gy * DBN_STRIDE + DBN_WINDOW / 2.0,
            )
            bbox = Rect(
                blob.bbox.x * DBN_STRIDE,
                blob.bbox.y * DBN_STRIDE,
                blob.bbox.w * DBN_STRIDE + DBN_WINDOW - DBN_STRIDE,
                blob.bbox.h * DBN_STRIDE + DBN_WINDOW - DBN_STRIDE,
            )
            candidates.append(
                TaillightCandidate(
                    center=center, size_class=size_class, area=float(blob.area), bbox=bbox
                )
            )
        candidates.sort(key=lambda c: c.area, reverse=True)
        return candidates[: self.config.max_candidates]

    # Full pipeline -------------------------------------------------------------

    def detect(self, frame: np.ndarray, trace: DarkStageTrace | None = None) -> list[Detection]:
        """Stages 1-6: detections in native frame coordinates."""
        self._require_trained()
        telemetry = self.telemetry
        rgb = ensure_rgb(frame, "frame")
        factor = self._effective_factor(rgb.shape[0], rgb.shape[1])
        with telemetry.stage("dark.preprocess"):
            mask = self.preprocess(rgb, trace=trace)
        with telemetry.stage("dark.dbn_grid"):
            class_grid = self.dbn_grid(mask)
        with telemetry.stage("dark.extract_candidates"):
            candidates = self.extract_candidates(class_grid)
        with telemetry.stage("dark.match_pairs"):
            pairs = self.matcher.match_pairs(candidates)  # type: ignore[union-attr]
        if trace is not None:
            trace.class_grid = class_grid
            trace.candidates = candidates
            trace.pairs = pairs
        detections: list[Detection] = []
        for i, j, score in pairs:
            box = vehicle_box_from_pair(candidates[i], candidates[j]).scaled(float(factor))
            clipped = box.clipped(rgb.shape[1], rgb.shape[0])
            if clipped is None:
                continue
            detections.append(
                Detection(
                    rect=clipped,
                    score=score,
                    kind="vehicle",
                    extra={
                        "taillights": [
                            tuple(v * factor for v in candidates[i].center),
                            tuple(v * factor for v in candidates[j].center),
                        ],
                        "size_class": max(candidates[i].size_class, candidates[j].size_class),
                    },
                )
            )
        if telemetry.enabled:
            telemetry.histogram(
                "detections_per_frame", bounds=DETECTIONS_BUCKETS, detector=self.name
            ).observe(float(len(detections)))
        return detections

    def classify_crop(self, crop: np.ndarray) -> tuple[bool, float]:
        """Crop-level protocol: vehicle present iff a pair is matched."""
        detections = self.detect(crop)
        if not detections:
            return False, 0.0
        best = max(d.score for d in detections)
        return True, best
