"""Evaluation: confusion counts, accuracy (paper Eq. 1), detection matching.

The paper reports Accuracy = (TP + TN) / (TP + TN + FP + FN) together with
the four raw counts (Table I); :class:`ConfusionCounts` is exactly that row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import PipelineError
from repro.imaging.geometry import Rect, match_detections
from repro.pipelines.base import Detection, DetectionPipeline

if TYPE_CHECKING:  # imported for annotations only; avoids a package cycle
    from repro.datasets.samples import ClassificationDataset
    from repro.datasets.scene import SceneFrame


@dataclass
class ConfusionCounts:
    """TP/TN/FP/FN tallies with the paper's derived metrics."""

    tp: int = 0
    tn: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def total(self) -> int:
        """All samples counted, regardless of outcome."""
        return self.tp + self.tn + self.fp + self.fn

    @property
    def accuracy(self) -> float:
        """Paper Equation (1)."""
        if self.total == 0:
            raise PipelineError("no samples counted")
        return (self.tp + self.tn) / self.total

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0.0 with no positive predictions."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0.0 with no positive truth."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            tp=self.tp + other.tp,
            tn=self.tn + other.tn,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
        )

    @classmethod
    def merge(cls, counts: "Iterable[ConfusionCounts]") -> "ConfusionCounts":
        """Fold many count rows into one.

        ``+`` is associative and commutative with ``ConfusionCounts()`` as
        identity (pinned by property-based tests), so merging is
        order-independent: the fleet quality rollup folds per-drive,
        per-condition rows in whatever order outcomes arrive and always
        lands on the same totals.
        """
        total = cls()
        for item in counts:
            total = total + item
        return total

    def to_dict(self) -> dict:
        """Plain-dict form for JSON artefacts (rollups, baselines)."""
        return {"tp": self.tp, "tn": self.tn, "fp": self.fp, "fn": self.fn}

    @classmethod
    def from_dict(cls, data: dict) -> "ConfusionCounts":
        """Rehydrate a row written by :meth:`to_dict` (extra keys ignored)."""
        return cls(
            tp=int(data.get("tp", 0)),
            tn=int(data.get("tn", 0)),
            fp=int(data.get("fp", 0)),
            fn=int(data.get("fn", 0)),
        )

    def as_row(self) -> dict:
        """Table-I-style row."""
        return {
            "accuracy": self.accuracy,
            "TP": self.tp,
            "TN": self.tn,
            "FP": self.fp,
            "FN": self.fn,
        }


def confusion_from_predictions(labels: np.ndarray, predictions: np.ndarray) -> ConfusionCounts:
    """Counts from +1/-1 truth labels and +1/-1 predictions."""
    y = np.asarray(labels).ravel()
    p = np.asarray(predictions).ravel()
    if y.shape != p.shape:
        raise PipelineError(f"labels {y.shape} and predictions {p.shape} must align")
    return ConfusionCounts(
        tp=int(np.count_nonzero((y == 1) & (p == 1))),
        tn=int(np.count_nonzero((y == -1) & (p == -1))),
        fp=int(np.count_nonzero((y == -1) & (p == 1))),
        fn=int(np.count_nonzero((y == 1) & (p == -1))),
    )


def evaluate_crop_classifier(
    pipeline: DetectionPipeline, dataset: "ClassificationDataset"
) -> ConfusionCounts:
    """Run ``pipeline.classify_crop`` over a ClassificationDataset."""
    predictions = np.empty(len(dataset), dtype=np.int64)
    for i in range(len(dataset)):
        is_target, _score = pipeline.classify_crop(dataset.images[i])
        predictions[i] = 1 if is_target else -1
    return confusion_from_predictions(dataset.labels, predictions)


@dataclass
class FrameEvaluation:
    """Object-level detection tallies over a set of annotated frames."""

    detected: int = 0  # truth objects matched by a detection
    missed: int = 0  # truth objects with no matching detection
    spurious: int = 0  # detections matching no truth
    frames_correct: int = 0  # frames where presence/absence was judged right
    frames_total: int = 0

    @property
    def object_recall(self) -> float:
        """Truth objects found / truth objects present; 0.0 when empty."""
        denom = self.detected + self.missed
        return self.detected / denom if denom else 0.0

    @property
    def frame_accuracy(self) -> float:
        """Frame-level accuracy: the quantity behind the paper's "95 %"."""
        if self.frames_total == 0:
            raise PipelineError("no frames evaluated")
        return self.frames_correct / self.frames_total


def evaluate_detections(
    truth_boxes: list[Rect],
    detections: list[Detection],
    iou_threshold: float = 0.3,
) -> tuple[int, int, int]:
    """(matched, missed, spurious) counts for one frame."""
    rects = [d.rect for d in detections]
    matches, unmatched_truth, unmatched_det = match_detections(
        truth_boxes, rects, iou_threshold=iou_threshold
    )
    return len(matches), len(unmatched_truth), len(unmatched_det)


def evaluate_frames(
    pipeline: DetectionPipeline,
    frames: "Iterable[SceneFrame]",
    kind: str = "vehicle",
    iou_threshold: float = 0.3,
) -> FrameEvaluation:
    """Object- and frame-level evaluation over SceneFrame annotations."""
    result = FrameEvaluation()
    for frame in frames:
        truths = [o.rect for o in frame.objects if o.kind == kind]
        detections = [d for d in pipeline.detect(frame.rgb) if d.kind == kind]
        matched, missed, spurious = evaluate_detections(truths, detections, iou_threshold)
        result.detected += matched
        result.missed += missed
        result.spurious += spurious
        result.frames_total += 1
        if truths:
            frame_ok = matched > 0 and spurious == 0
        else:
            frame_ok = not detections
        if frame_ok:
            result.frames_correct += 1
    return result
