"""Taillight candidates and spatial pair matching (paper Fig. 3, stage 2).

After the sliding DBN has localised taillight-like blobs and labelled their
size/shape class, "the final stage is the spatial correlation which is
achieved by using a trained SVM classifier over a selection of detected
taillights.  Since the distance between the two taillights is expected to be
within a specific range, only a particular region around each detected
taillight is processed for matching."

This module defines the candidate type, the pair feature vector, the
geometric gate, a generator of synthetic pair-training data (the expected
pair geometry is fully determined by rear-lamp regulations: same height,
separation proportional to apparent size), and the pair classifier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import PipelineError
from repro.imaging.geometry import Rect
from repro.ml.linear import LinearModel
from repro.ml.scaler import StandardScaler
from repro.ml.svm import LinearSvm, SvmConfig
from repro.rng import make_rng

# Approximate blob radius (pixels, at the downsampled resolution) per DBN
# size class; used to normalise pair separations.
CLASS_RADIUS_PX = {1: 1.2, 2: 2.2, 3: 3.6}

# Lamp separation over lamp radius for real rear views: taillight radius is
# ~5-7 % of body width and lamps sit ~60-78 % of the width apart, so the
# ratio spans roughly 5-15.
PAIR_SEPARATION_RATIO = (4.0, 16.0)

PAIR_FEATURE_LENGTH = 6


@dataclass(frozen=True)
class TaillightCandidate:
    """One taillight hypothesis from the DBN stage.

    Attributes:
        center: (x, y) in downsampled-frame pixels.
        size_class: DBN class 1 (small) .. 3 (large).
        area: Number of DBN hit windows supporting the candidate.
        bbox: Bounding box of the supporting hits.
    """

    center: tuple[float, float]
    size_class: int
    area: float
    bbox: Rect

    @property
    def radius(self) -> float:
        """Nominal blob radius for this size class."""
        if self.size_class not in CLASS_RADIUS_PX:
            raise PipelineError(f"invalid size class {self.size_class}")
        return CLASS_RADIUS_PX[self.size_class]


def pair_features(a: TaillightCandidate, b: TaillightCandidate) -> np.ndarray:
    """Geometric feature vector for a candidate pair.

    Features (all scale-normalised where possible):
        0: horizontal separation / mean nominal radius
        1: vertical offset / horizontal separation (alignment)
        2: size-class difference
        3: area ratio (small/large)
        4: mean size class
        5: pair tilt angle in radians, measured left-to-right so the
           feature is invariant to the argument order.
    """
    ax, ay = a.center
    bx, by = b.center
    dx = abs(bx - ax)
    dy = abs(by - ay)
    mean_radius = (a.radius + b.radius) / 2.0
    sep_ratio = dx / mean_radius if mean_radius > 0 else 0.0
    alignment = dy / dx if dx > 1e-9 else 10.0
    area_lo, area_hi = min(a.area, b.area), max(a.area, b.area)
    area_ratio = area_lo / area_hi if area_hi > 0 else 0.0
    (lx, ly), (rx, ry) = sorted([a.center, b.center])
    tilt = abs(math.atan2(ry - ly, max(rx - lx, 1e-9)))
    return np.array(
        [
            sep_ratio,
            alignment,
            abs(a.size_class - b.size_class),
            area_ratio,
            (a.size_class + b.size_class) / 2.0,
            tilt,
        ]
    )


def pair_gate(a: TaillightCandidate, b: TaillightCandidate) -> bool:
    """Cheap geometric pre-filter ("only a particular region ... is processed").

    Rejects pairs whose separation is far outside the plausible band or
    whose vertical offset exceeds the separation — these never reach the
    SVM, which both "reduce[s] the processing time and increase[s] the
    reliability" (paper Section III-B).
    """
    ax, ay = a.center
    bx, by = b.center
    dx = abs(bx - ax)
    dy = abs(by - ay)
    mean_radius = (a.radius + b.radius) / 2.0
    if dx <= 1e-9:
        return False
    ratio = dx / mean_radius
    lo, hi = PAIR_SEPARATION_RATIO
    if not (lo * 0.5) <= ratio <= (hi * 1.5):
        return False
    return dy <= 0.6 * dx


def _random_candidate(
    rng: np.random.Generator,
    size_class: int,
    x: float,
    y: float,
) -> TaillightCandidate:
    radius = CLASS_RADIUS_PX[size_class]
    area = max(1.0, rng.normal(radius**2 * math.pi / 4.0, radius * 0.4))
    side = max(1.0, radius * 2.0)
    return TaillightCandidate(
        center=(x, y),
        size_class=size_class,
        area=float(area),
        bbox=Rect(x - side / 2.0, y - side / 2.0, side, side),
    )


def make_pair_training_set(
    n_per_class: int = 400,
    seed: int = 7,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic pair-feature corpus: matched pairs vs accidental pairs.

    Positive pairs follow rear-lamp geometry: equal size class, near-zero
    vertical offset, separation ratio inside :data:`PAIR_SEPARATION_RATIO`.
    Negatives are mismatched sizes, misaligned heights, or implausible
    separations (e.g. a taillight against a street lamp or a reflection).

    Returns:
        (features, labels) with labels +1 (same vehicle) / -1 (unrelated).
    """
    if n_per_class < 1:
        raise PipelineError(f"n_per_class must be >= 1, got {n_per_class}")
    rng = make_rng(seed)
    feats: list[np.ndarray] = []
    labels: list[int] = []
    lo, hi = PAIR_SEPARATION_RATIO
    for _ in range(n_per_class):
        cls = int(rng.integers(1, 4))
        radius = CLASS_RADIUS_PX[cls]
        x = float(rng.uniform(20, 300))
        y = float(rng.uniform(20, 160))
        sep = radius * float(rng.uniform(lo, hi))
        jitter_y = float(rng.normal(0.0, 0.04 * sep))
        a = _random_candidate(rng, cls, x, y)
        # The DBN's size-class estimate is noisy (glow asymmetry, blob
        # fragmentation), so genuine pairs frequently disagree by one class
        # and occasionally by two; the matcher must tolerate that.
        roll = rng.random()
        if roll < 0.55:
            cls_b = cls
        elif roll < 0.9:
            cls_b = int(np.clip(cls + rng.choice([-1, 1]), 1, 3))
        else:
            cls_b = int(rng.integers(1, 4))
        b = _random_candidate(rng, cls_b, x + sep, y + jitter_y)
        feats.append(pair_features(a, b))
        labels.append(1)
    for _ in range(n_per_class):
        mode = rng.integers(0, 3)
        cls_a = int(rng.integers(1, 4))
        x = float(rng.uniform(20, 300))
        y = float(rng.uniform(20, 160))
        a = _random_candidate(rng, cls_a, x, y)
        if mode == 0:  # wrong separation
            radius = CLASS_RADIUS_PX[cls_a]
            sep = radius * float(rng.choice([rng.uniform(0.3, lo * 0.7), rng.uniform(hi * 1.4, hi * 4)]))
            b = _random_candidate(rng, cls_a, x + sep, y + float(rng.normal(0, 1.0)))
        elif mode == 1:  # misaligned heights (lamp vs reflection)
            sep = CLASS_RADIUS_PX[cls_a] * float(rng.uniform(lo, hi))
            b = _random_candidate(rng, cls_a, x + sep, y + sep * float(rng.uniform(0.5, 1.5)))
        else:  # mismatched sizes at a wrong separation (near vs far lamp)
            cls_b = 1 if cls_a == 3 else 3
            sep = CLASS_RADIUS_PX[cls_a] * float(
                rng.choice([rng.uniform(0.5, lo * 0.8), rng.uniform(hi * 1.3, hi * 3)])
            )
            b = _random_candidate(rng, cls_b, x + sep, y + sep * float(rng.uniform(0.3, 0.9)))
        feats.append(pair_features(a, b))
        labels.append(-1)
    return np.stack(feats), np.asarray(labels, dtype=np.int64)


class TaillightPairMatcher:
    """SVM-based spatial correlation of taillight candidates."""

    def __init__(self, svm_c: float = 2.0, decision_threshold: float = 0.0):
        self.svm_c = svm_c
        self.decision_threshold = decision_threshold
        self.scaler = StandardScaler()
        self.model: LinearModel | None = None

    def train(self, features: np.ndarray | None = None, labels: np.ndarray | None = None, seed: int = 7) -> LinearModel:
        """Train on a pair corpus; defaults to the synthetic generator."""
        if features is None or labels is None:
            features, labels = make_pair_training_set(seed=seed)
        scaled = self.scaler.fit_transform(features)
        self.model = LinearSvm(SvmConfig(c=self.svm_c)).train(scaled, labels, name="taillight-pair")
        return self.model

    def match_score(self, a: TaillightCandidate, b: TaillightCandidate) -> float:
        """SVM margin for a gated pair; -inf when the gate rejects it."""
        if self.model is None:
            raise PipelineError("TaillightPairMatcher is not trained")
        if not pair_gate(a, b):
            return -math.inf
        scaled = self.scaler.transform(pair_features(a, b))
        return float(self.model.decision_values(scaled)[0])

    def match_pairs(
        self, candidates: list[TaillightCandidate]
    ) -> list[tuple[int, int, float]]:
        """Greedy one-to-one matching of candidates into vehicle pairs.

        Returns:
            (index_a, index_b, score) triples sorted by descending score;
            each candidate participates in at most one pair.
        """
        scored: list[tuple[float, int, int]] = []
        for i in range(len(candidates)):
            for j in range(i + 1, len(candidates)):
                score = self.match_score(candidates[i], candidates[j])
                if score > self.decision_threshold:
                    scored.append((score, i, j))
        scored.sort(reverse=True)
        used: set[int] = set()
        pairs: list[tuple[int, int, float]] = []
        for score, i, j in scored:
            if i in used or j in used:
                continue
            used.update((i, j))
            pairs.append((i, j, score))
        return pairs


def vehicle_box_from_pair(a: TaillightCandidate, b: TaillightCandidate) -> Rect:
    """Vehicle bounding box implied by a matched taillight pair.

    Uses the sprite-geometry priors: lamps sit ~69 % of the body width
    apart and ~42 % of the body height below the roof line.
    """
    ax, ay = a.center
    bx, by = b.center
    sep = abs(bx - ax)
    if sep <= 0:
        raise PipelineError("cannot form a vehicle box from coincident lights")
    width = sep / 0.69
    height = width * 0.77
    cx = (ax + bx) / 2.0
    cy = (ay + by) / 2.0
    return Rect(cx - width / 2.0, cy - 0.42 * height, width, height)
