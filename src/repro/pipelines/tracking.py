"""Temporal vehicle tracking on top of any detection pipeline.

The paper's related work consistently pairs nighttime lamp detection with
tracking ("several works have incorporated the tracking information for
efficient detection" — [3]-[5]); this module adds that extension: a
constant-velocity, IoU-gated greedy tracker that smooths single-frame
detector dropouts and assigns stable identities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import PipelineError
from repro.imaging.geometry import Rect
from repro.pipelines.base import Detection, DetectionPipeline

if TYPE_CHECKING:  # imported for annotations only; avoids a package cycle
    from repro.datasets.scene import SceneFrame


@dataclass
class Track:
    """One tracked vehicle.

    Attributes:
        track_id: Stable identity assigned at confirmation.
        rect: Current (possibly predicted) box.
        velocity: (vx, vy) center velocity in px/frame.
        hits: Matched detections so far.
        misses: Consecutive frames without a matching detection.
        confirmed: True once ``hits >= min_hits``.
        last_score: Detector score of the last matched detection.
    """

    track_id: int
    rect: Rect
    velocity: tuple[float, float] = (0.0, 0.0)
    hits: int = 1
    misses: int = 0
    confirmed: bool = False
    last_score: float = 0.0

    def predict(self) -> Rect:
        """Constant-velocity prediction of the next-frame box."""
        return self.rect.translated(*self.velocity)


@dataclass(frozen=True)
class TrackerConfig:
    """Association and lifecycle parameters.

    Attributes:
        iou_gate: Minimum IoU between prediction and detection to associate.
        min_hits: Detections needed before a track is confirmed (reported).
        max_misses: Consecutive missed frames before a track is dropped.
        velocity_smoothing: EMA factor for the velocity estimate.
        coast_confirmed: Whether confirmed tracks are reported on missed
            frames using their prediction (the dropout-smoothing behaviour).
    """

    iou_gate: float = 0.2
    min_hits: int = 2
    max_misses: int = 3
    velocity_smoothing: float = 0.5
    coast_confirmed: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.iou_gate <= 1.0:
            raise PipelineError(f"iou_gate must be in [0, 1], got {self.iou_gate}")
        if self.min_hits < 1 or self.max_misses < 0:
            raise PipelineError("min_hits must be >= 1 and max_misses >= 0")
        if not 0.0 <= self.velocity_smoothing <= 1.0:
            raise PipelineError("velocity_smoothing must be in [0, 1]")


class VehicleTracker:
    """Greedy IoU tracker with constant-velocity coasting."""

    def __init__(self, config: TrackerConfig | None = None):
        self.config = config or TrackerConfig()
        self.tracks: list[Track] = []
        self._next_id = 0
        self.frames_processed = 0
        self.id_switch_guard: dict[int, int] = {}

    def reset(self) -> None:
        """Drop all tracks and counters, ready for a new sequence."""
        self.tracks = []
        self._next_id = 0
        self.frames_processed = 0

    def update(self, detections: list[Detection]) -> list[Track]:
        """Advance one frame; returns the reportable (confirmed) tracks."""
        cfg = self.config
        predictions = [t.predict() for t in self.tracks]
        # Greedy best-IoU association.
        pairs: list[tuple[float, int, int]] = []
        for ti, pred in enumerate(predictions):
            for di, det in enumerate(detections):
                overlap = pred.iou(det.rect)
                if overlap >= cfg.iou_gate:
                    pairs.append((overlap, ti, di))
        pairs.sort(reverse=True)
        matched_t: set[int] = set()
        matched_d: set[int] = set()
        for _, ti, di in pairs:
            if ti in matched_t or di in matched_d:
                continue
            matched_t.add(ti)
            matched_d.add(di)
            self._apply_match(self.tracks[ti], detections[di])
        # Unmatched tracks coast or die.
        survivors: list[Track] = []
        for ti, track in enumerate(self.tracks):
            if ti in matched_t:
                survivors.append(track)
                continue
            track.misses += 1
            if track.misses <= cfg.max_misses:
                track.rect = track.predict()
                survivors.append(track)
        self.tracks = survivors
        # Unmatched detections open tentative tracks.
        for di, det in enumerate(detections):
            if di in matched_d:
                continue
            self.tracks.append(
                Track(track_id=self._next_id, rect=det.rect, last_score=det.score)
            )
            self._next_id += 1
        # Confirmation.
        for track in self.tracks:
            if not track.confirmed and track.hits >= cfg.min_hits:
                track.confirmed = True
        self.frames_processed += 1
        return self.reported()

    def _apply_match(self, track: Track, det: Detection) -> None:
        cfg = self.config
        old_cx, old_cy = track.rect.center
        new_cx, new_cy = det.rect.center
        alpha = cfg.velocity_smoothing
        vx = alpha * (new_cx - old_cx) + (1 - alpha) * track.velocity[0]
        vy = alpha * (new_cy - old_cy) + (1 - alpha) * track.velocity[1]
        track.velocity = (vx, vy)
        track.rect = det.rect
        track.hits += 1
        track.misses = 0
        track.last_score = det.score

    def reported(self) -> list[Track]:
        """Tracks exposed to the consumer this frame."""
        cfg = self.config
        out = []
        for track in self.tracks:
            if not track.confirmed:
                continue
            if track.misses > 0 and not cfg.coast_confirmed:
                continue
            out.append(track)
        return out


class TrackingPipeline:
    """A detection pipeline wrapped with temporal tracking.

    Exposes the same ``detect`` protocol; detections gain stable
    ``extra["track_id"]`` values and confirmed tracks coast through
    single-frame detector dropouts.
    """

    def __init__(self, detector, config: TrackerConfig | None = None):
        self.detector = detector
        self.tracker = VehicleTracker(config)
        self.name = f"{getattr(detector, 'name', 'detector')}+tracking"

    def reset(self) -> None:
        """Drop tracker state, ready for a new sequence."""
        self.tracker.reset()

    def detect(self, frame: np.ndarray) -> list[Detection]:
        """Detect via the wrapped detector, then associate and coast tracks."""
        raw = self.detector.detect(frame)
        tracks = self.tracker.update(raw)
        return [
            Detection(
                rect=t.rect,
                score=t.last_score,
                kind="vehicle",
                extra={"track_id": t.track_id, "coasting": t.misses > 0},
            )
            for t in tracks
        ]

    def classify_crop(self, crop: np.ndarray) -> tuple[bool, float]:
        """Delegate crop classification to the wrapped detector."""
        return self.detector.classify_crop(crop)


@dataclass
class TrackingEvaluation:
    """Sequence-level tracking metrics."""

    frames: int = 0
    truth_objects: int = 0
    matched: int = 0
    missed: int = 0
    spurious: int = 0
    id_switches: int = 0

    @property
    def recall(self) -> float:
        """Truth objects matched / truth objects present; 0.0 when empty."""
        denom = self.matched + self.missed
        return self.matched / denom if denom else 0.0

    @property
    def mota(self) -> float:
        """Multiple-object tracking accuracy (1 - error rate)."""
        if self.truth_objects == 0:
            return 0.0
        return 1.0 - (self.missed + self.spurious + self.id_switches) / self.truth_objects


def evaluate_tracking(
    pipeline: DetectionPipeline,
    frames: "Iterable[SceneFrame]",
    iou_threshold: float = 0.25,
) -> TrackingEvaluation:
    """Run a (tracking or plain) pipeline over a sequence and score it.

    ID switches are counted when a ground-truth track id becomes associated
    with a different predicted ``extra['track_id']`` than before; plain
    detectors (no track ids) score 0 switches but no coasting benefit.
    """
    from repro.imaging.geometry import match_detections

    result = TrackingEvaluation()
    gt_to_pred: dict[int, int] = {}
    if hasattr(pipeline, "reset"):
        pipeline.reset()
    for frame in frames:
        truths = frame.vehicles
        detections = [d for d in pipeline.detect(frame.rgb) if d.kind == "vehicle"]
        matches, unmatched_t, unmatched_d = match_detections(
            [t.rect for t in truths], [d.rect for d in detections], iou_threshold
        )
        result.frames += 1
        result.truth_objects += len(truths)
        result.matched += len(matches)
        result.missed += len(unmatched_t)
        result.spurious += len(unmatched_d)
        for ti, di in matches:
            gt_id = truths[ti].track_id
            pred_id = detections[di].extra.get("track_id")
            if gt_id is None or pred_id is None:
                continue
            previous = gt_to_pred.get(gt_id)
            if previous is not None and previous != pred_id:
                result.id_switches += 1
            gt_to_pred[gt_id] = pred_id
    return result
