"""Day / dusk vehicle detection: HOG features + linear SVM (paper Fig. 1/2).

The pipeline has the paper's three hardware stages — HOG descriptor,
normaliser, SVM classifier — with the trained model swapped per condition:
the *day* model, the *dusk* model, or the *combined* model trained on both
corpora (the Table-I ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.samples import ClassificationDataset
from repro.errors import PipelineError
from repro.features.hog import HogConfig, HogDescriptor
from repro.imaging.color import luminance
from repro.imaging.geometry import non_max_suppression
from repro.imaging.image import ensure_rgb
from repro.imaging.resize import resize_bilinear
from repro.ml.linear import LinearModel, require_trained
from repro.ml.svm import LinearSvm, SvmConfig
from repro.pipelines.base import Detection, ScratchBuffers
from repro.telemetry.metrics import DETECTIONS_BUCKETS
from repro.telemetry.session import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class DayDuskConfig:
    """Detector parameters.

    Attributes:
        hog: HOG layout (64x64 window by default — rear vehicle views are
            roughly square).
        svm_c: LibLINEAR C for model training.
        decision_threshold: SVM margin above which a window is a vehicle.
        nms_iou: Overlap threshold for non-maximum suppression.
        window_stride_blocks: Dense-scan stride in block units.
        batched: Score every window of a frame with one gathered feature
            matrix and one kernel call (the hot path).  False keeps the
            per-window reference scan the equivalence suite pins the
            batched path against — byte-identical output, just slow.
    """

    hog: HogConfig = HogConfig(window=(64, 64))
    svm_c: float = 1.0
    decision_threshold: float = 0.0
    nms_iou: float = 0.3
    window_stride_blocks: int = 2
    batched: bool = True


def hog_features_for_dataset(dataset: ClassificationDataset, hog: HogDescriptor) -> np.ndarray:
    """HOG feature matrix of every crop's luminance plane."""
    win_h, win_w = hog.config.window
    features = np.empty((len(dataset), hog.feature_length), dtype=np.float64)
    for i in range(len(dataset)):
        plane = luminance(dataset.images[i])
        if plane.shape != (win_h, win_w):
            plane = resize_bilinear(plane, win_h, win_w)
        features[i] = hog.extract(plane)
    return features


class HogSvmVehicleDetector:
    """The reconfigurable day/dusk vehicle-detection configuration."""

    def __init__(
        self,
        config: DayDuskConfig | None = None,
        model: LinearModel | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.config = config or DayDuskConfig()
        self.hog = HogDescriptor(self.config.hog)
        self.model = model
        self.name = "vehicle-day-dusk"
        self.telemetry = telemetry or NULL_TELEMETRY
        self._scratch = ScratchBuffers()

    # Training (paper Fig. 1) ------------------------------------------------

    def train(self, dataset: ClassificationDataset, name: str | None = None) -> LinearModel:
        """Train an SVM model from a crop corpus and install it."""
        features = hog_features_for_dataset(dataset, self.hog)
        svm = LinearSvm(SvmConfig(c=self.config.svm_c))
        self.model = svm.train(features, dataset.labels, name=name or dataset.name)
        self.model.meta["train_corpus"] = dataset.name
        return self.model

    def with_model(self, model: LinearModel) -> "HogSvmVehicleDetector":
        """A detector sharing this configuration but a different model.

        Models the hardware reality that day and dusk reuse the same
        pipeline "but with different versions of the trained model which
        are stored in two block RAM".
        """
        return HogSvmVehicleDetector(self.config, model, telemetry=self.telemetry)

    # Inference ---------------------------------------------------------------

    def classify_crop(self, crop: np.ndarray) -> tuple[bool, float]:
        """Window-level classification against the installed model."""
        model = require_trained(self.model, self.name)
        rgb = ensure_rgb(crop, "crop")
        plane = luminance(rgb)
        win_h, win_w = self.config.hog.window
        if plane.shape != (win_h, win_w):
            plane = resize_bilinear(plane, win_h, win_w)
        score = float(model.decision_values(self.hog.extract(plane)))
        return score > self.config.decision_threshold, score

    def detect_multiscale(
        self,
        frame: np.ndarray,
        scale_step: float = 1.25,
        max_levels: int | None = 4,
    ) -> list[Detection]:
        """Pyramid detection: dense scan per level, NMS across levels.

        The fixed 64x64 window only matches one apparent vehicle size; the
        pyramid recovers nearer (larger) vehicles by shrinking the frame.
        Detections are reported in native frame coordinates.
        """
        from repro.features.windows import pyramid

        rgb = ensure_rgb(frame, "frame")
        plane = luminance(rgb)
        window = self.config.hog.window
        all_rects, all_scores = [], []
        for factor, level in pyramid(
            plane, window, scale_step=scale_step, max_levels=max_levels
        ):
            rects, scores = self._scan_plane(level)
            for rect, score in zip(rects, scores):
                all_rects.append(rect.scaled(1.0 / factor))
                all_scores.append(score)
        keep = non_max_suppression(all_rects, all_scores, iou_threshold=self.config.nms_iou)
        return [
            Detection(rect=all_rects[i], score=all_scores[i], kind="vehicle") for i in keep
        ]

    def _scan_plane(self, plane: np.ndarray) -> tuple[list, list[float]]:
        """Dense scan of one luma plane; returns (rects, scores), no NMS."""
        model = require_trained(self.model, self.name)
        win_h, win_w = self.config.hog.window
        if plane.shape[0] < win_h or plane.shape[1] < win_w:
            raise PipelineError(
                f"frame {plane.shape} smaller than detector window {(win_h, win_w)}"
            )
        blocks, layout = self.hog.extract_dense(plane)
        if not self.config.batched:
            return self._scan_plane_reference(blocks, layout, model)
        stride = self.config.window_stride_blocks
        grid = layout.window_index_grid(stride)
        n = grid.shape[0]
        if n == 0:
            return [], []
        feats = layout.window_feature_matrix(
            blocks,
            stride,
            out=self._scratch.get("scan.features", (n, layout.config.feature_length)),
        )
        scores = model.decision_batch(feats, out=self._scratch.get("scan.scores", (n,)))
        rects, kept_scores = [], []
        for i in np.flatnonzero(scores > self.config.decision_threshold):
            rects.append(layout.window_rect(int(grid[i, 0]), int(grid[i, 1])))
            kept_scores.append(float(scores[i]))
        return rects, kept_scores

    def _scan_plane_reference(self, blocks, layout, model) -> tuple[list, list[float]]:
        """Per-window reference scan: slice, score, threshold, one at a time.

        This is the ground truth the differential equivalence suite pins
        ``_scan_plane`` against — both paths share the batch-size-invariant
        scoring kernel, so outputs must match byte for byte.
        """
        rects, kept_scores = [], []
        for r, c in layout.window_positions(self.config.window_stride_blocks):
            feature = layout.window_feature(blocks, r, c)
            score = float(model.decision_values(feature))
            if score > self.config.decision_threshold:
                rects.append(layout.window_rect(r, c))
                kept_scores.append(score)
        return rects, kept_scores

    def detect(self, frame: np.ndarray) -> list[Detection]:
        """Dense single-scale sliding-window detection with NMS."""
        telemetry = self.telemetry
        rgb = ensure_rgb(frame, "frame")
        with telemetry.stage("day_dusk.hog_scan"):
            rects, scores = self._scan_plane(luminance(rgb))
        with telemetry.stage("day_dusk.nms"):
            keep = non_max_suppression(rects, scores, iou_threshold=self.config.nms_iou)
        if telemetry.enabled:
            telemetry.histogram(
                "detections_per_frame", bounds=DETECTIONS_BUCKETS, detector=self.name
            ).observe(float(len(keep)))
        return [
            Detection(rect=rects[i], score=scores[i], kind="vehicle")
            for i in keep
        ]


def train_condition_models(
    day_train: ClassificationDataset,
    dusk_train: ClassificationDataset,
    config: DayDuskConfig | None = None,
) -> dict[str, LinearModel]:
    """Train the paper's three models: day, dusk, combined (Fig. 1).

    Returns:
        {"day": ..., "dusk": ..., "combined": ...} LinearModels.
    """
    detector = HogSvmVehicleDetector(config)
    day_model = detector.train(day_train, name="day")
    dusk_model = detector.train(dusk_train, name="dusk")
    combined_corpus = day_train.merged_with(dusk_train, name="combined")
    combined_model = detector.train(combined_corpus, name="combined")
    return {"day": day_model, "dusk": dusk_model, "combined": combined_model}
