"""repro.quality: the ground-truth detection-quality observation plane.

Everything here is *observation*: a seeded ground-truth model scores each
drive frame the way the paper's Table I was measured, per-frame records
fold into per-drive summaries and fleet-level rollups, and a committed
``QUALITY_BASELINE.json`` ratchets regressions — all without perturbing a
single frame core (the default observer is the no-op :data:`NULL_QUALITY`,
and deterministic artefacts strip every quality-derived value).

Layout:

* :mod:`repro.quality.records` — :class:`QualityRecord` + fold/merge algebra.
* :mod:`repro.quality.observer` — :data:`NULL_QUALITY`,
  :class:`ModelQualityObserver`, and the seeded scene/detector model.
* :mod:`repro.quality.events` — the declared quality-event vocabulary.
* :mod:`repro.quality.baseline` — suite, snapshots, and the compare gate
  (imported lazily where needed; it pulls in the drive loop).
* :mod:`repro.quality.cli` — ``python -m repro quality report|compare``.
"""

from repro.quality.events import (
    QUALITY_EVENT_KINDS,
    check_quality_event_kind,
    quality_event,
)
from repro.quality.observer import (
    MATCH_IOU_THRESHOLD,
    NULL_QUALITY,
    ModelQualityObserver,
    NullQualityObserver,
    QualityModelConfig,
    observer_from_provenance,
)
from repro.quality.records import (
    QUALITY_SUMMARY_SCHEMA,
    QualityRecord,
    fold_records,
    merge_summaries,
)

__all__ = [
    "QUALITY_EVENT_KINDS",
    "QUALITY_SUMMARY_SCHEMA",
    "MATCH_IOU_THRESHOLD",
    "NULL_QUALITY",
    "ModelQualityObserver",
    "NullQualityObserver",
    "QualityModelConfig",
    "QualityRecord",
    "check_quality_event_kind",
    "fold_records",
    "merge_summaries",
    "observer_from_provenance",
    "quality_event",
]
