"""The declared vocabulary of detection-quality events.

Mirrors :data:`repro.monitor.events.MONITOR_EVENT_KINDS` and
:data:`repro.fleet.events.FLEET_EVENT_KINDS`: every typed event the
quality plane emits (through
:meth:`~repro.quality.observer.ModelQualityObserver.quality_event` or the
baseline tooling) must use a kind from this set, so quality-report
readers and the acceptance tests can rely on the names being exhaustive.
The ``quality-event-vocabulary`` lint rule enforces the same contract
statically; :func:`check_quality_event_kind` enforces it at runtime.
"""

from __future__ import annotations

from repro.errors import QualityError

#: Legal quality-plane event kinds.
QUALITY_EVENT_KINDS: frozenset[str] = frozenset(
    {
        # A quality observer attached to a drive.
        "quality.drive.start",
        # A drive's quality observation finished; its summary is final.
        "quality.drive.summary",
        # A quality baseline snapshot was written to disk.
        "quality.baseline.write",
        # A compare run judged the current suite against a baseline.
        "quality.compare",
    }
)


def check_quality_event_kind(kind: str) -> None:
    """Reject event kinds outside the declared vocabulary (runtime gate)."""
    if kind not in QUALITY_EVENT_KINDS:
        raise QualityError(
            f"quality event kind {kind!r} is not in the declared vocabulary; "
            "add it to repro.quality.events.QUALITY_EVENT_KINDS first"
        )


def quality_event(kind: str, **attrs) -> dict:
    """Build one typed quality-event record (vocabulary-checked).

    The free-function twin of
    :meth:`~repro.quality.observer.ModelQualityObserver.quality_event`,
    used by the baseline tooling for events that outlive any single
    observer.  The ``quality-event-vocabulary`` lint rule checks both
    call forms statically.
    """
    check_quality_event_kind(kind)
    return {"kind": kind, **attrs}
