"""The quality observer: ground-truth scoring hooked into ``run_drive``.

The drive loop is a *hardware* model — it schedules DMA transfers and
partial reconfigurations, it never renders pixels — so runtime quality is
observed the same way the paper's Table I was measured: against a seeded
ground-truth scene model.  :class:`ModelQualityObserver` generates each
sampled frame's ground-truth vehicle boxes from a deterministic
scene-geometry model (the :mod:`repro.datasets.scene` placement math,
minus the pixels), synthesises what the *active* pipeline would detect —
conditioned on the frame's real state: a dropped frame or reconfiguring
partition detects nothing, a configuration serving the wrong lighting
condition detects at the paper's cross-condition recall, a matched
configuration at its Table-I recall — and scores the two box sets with
the real greedy IoU matcher (:func:`repro.imaging.geometry.match_detections`).

Every random draw flows from ``derive_seed(seed, "frame:<index>")``, so
records are a pure function of (seed, config, frame state): byte-stable
across runs, platforms, and fleet sharding.  Like ``NULL_TELEMETRY`` and
``NULL_MONITOR``, the default observer is :data:`NULL_QUALITY` — a shared
no-op behind one ``enabled`` attribute check, so an unobserved drive is
byte-identical to one built before the quality plane existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.adaptive.policy import CONFIG_FOR_CONDITION
from repro.datasets.lighting import condition_for_lux
from repro.errors import QualityError
from repro.imaging.geometry import Rect, match_detections
from repro.quality.events import check_quality_event_kind
from repro.quality.records import QualityRecord, fold_records
from repro.rng import derive_seed, make_rng

if TYPE_CHECKING:
    from repro.adaptive.sensor import LuxTrace
    from repro.core.spec import DriveSpec
    from repro.core.system import FrameRecord

#: IoU above which a modelled detection counts as localising its truth box.
MATCH_IOU_THRESHOLD = 0.5

#: Buckets for the ``detection_iou`` histogram: all matched IoUs land in
#: [MATCH_IOU_THRESHOLD, 1], so the buckets resolve that band.
DETECTION_IOU_BUCKETS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


@dataclass(frozen=True)
class QualityModelConfig:
    """Knobs of the ground-truth scene/detector model.

    The recall/false-positive levels follow the paper's Table-I shape:
    high (0.95+) when the active configuration serves the scene's true
    condition, collapsed when it does not — the cross-condition rows the
    adaptation exists to avoid — with the dark pipeline slightly noisier
    than the day/dusk one.

    Attributes:
        sample_every: Score every Nth frame (1 = every frame).
        frame_w / frame_h: Modelled frame geometry (aspect only; boxes
            are matched in this space, never rendered).
        max_vehicles: Ground-truth vehicles per frame drawn from
            ``[0, max_vehicles]``.
        vehicle_fill: (far, near) vehicle width as a fraction of frame
            width — the :mod:`repro.datasets.scene` placement numbers.
        recall_day / recall_dusk / recall_dark: Per-true-condition detect
            probability with a matched configuration.
        recall_mismatched: Detect probability when the active
            configuration does not serve the true condition.
        fp_rate: Spurious-detection probability per candidate slot with a
            matched configuration.
        fp_rate_dark: Same, matched configuration in the dark (taillight
            reflections; see the scene model's distractors).
        fp_rate_mismatched: Same, mismatched configuration.
        jitter_rel: Localisation jitter of a hit, relative to box size.
    """

    sample_every: int = 1
    frame_w: float = 192.0
    frame_h: float = 108.0
    max_vehicles: int = 3
    vehicle_fill: tuple[float, float] = (0.08, 0.30)
    recall_day: float = 0.97
    recall_dusk: float = 0.95
    recall_dark: float = 0.94
    recall_mismatched: float = 0.22
    fp_rate: float = 0.02
    fp_rate_dark: float = 0.06
    fp_rate_mismatched: float = 0.25
    jitter_rel: float = 0.06

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise QualityError(f"sample_every must be >= 1, got {self.sample_every}")
        if self.frame_w <= 0 or self.frame_h <= 0:
            raise QualityError("frame geometry must be positive")
        if self.max_vehicles < 0:
            raise QualityError(f"max_vehicles must be >= 0, got {self.max_vehicles}")
        far, near = self.vehicle_fill
        if not 0.0 < far <= near <= 0.5:
            raise QualityError(
                f"vehicle_fill must satisfy 0 < far <= near <= 0.5, got {self.vehicle_fill}"
            )
        rates = {
            "recall_day": self.recall_day,
            "recall_dusk": self.recall_dusk,
            "recall_dark": self.recall_dark,
            "recall_mismatched": self.recall_mismatched,
            "fp_rate": self.fp_rate,
            "fp_rate_dark": self.fp_rate_dark,
            "fp_rate_mismatched": self.fp_rate_mismatched,
        }
        for name, value in rates.items():
            if not 0.0 <= value <= 1.0:
                raise QualityError(f"{name} must be in [0, 1], got {value}")
        if self.jitter_rel < 0:
            raise QualityError(f"jitter_rel must be >= 0, got {self.jitter_rel}")

    def recall_for(self, true_condition: str, matched: bool) -> float:
        if not matched:
            return self.recall_mismatched
        return {
            "day": self.recall_day,
            "dusk": self.recall_dusk,
            "dark": self.recall_dark,
        }.get(true_condition, self.recall_mismatched)

    def fp_rate_for(self, true_condition: str, matched: bool) -> float:
        if not matched:
            return self.fp_rate_mismatched
        return self.fp_rate_dark if true_condition == "dark" else self.fp_rate

    def to_dict(self) -> dict:
        return {
            "sample_every": self.sample_every,
            "frame_w": self.frame_w,
            "frame_h": self.frame_h,
            "max_vehicles": self.max_vehicles,
            "vehicle_fill": list(self.vehicle_fill),
            "recall_day": self.recall_day,
            "recall_dusk": self.recall_dusk,
            "recall_dark": self.recall_dark,
            "recall_mismatched": self.recall_mismatched,
            "fp_rate": self.fp_rate,
            "fp_rate_dark": self.fp_rate_dark,
            "fp_rate_mismatched": self.fp_rate_mismatched,
            "jitter_rel": self.jitter_rel,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QualityModelConfig":
        known = dict(data)
        fill = known.get("vehicle_fill")
        if fill is not None:
            known["vehicle_fill"] = tuple(fill)
        return cls(**known)


class NullQualityObserver:
    """The zero-cost default: a shared no-op with ``enabled = False``.

    The drive loop guards every quality call behind one attribute check,
    exactly like ``NULL_TELEMETRY`` and ``NULL_MONITOR`` — an unobserved
    drive allocates nothing and stays byte-identical to the pre-quality
    code (the non-perturbation contract pinned by the quality tests).
    """

    enabled = False

    def begin_drive(self, trace, duration_s, n_frames) -> None:
        pass

    def observe_frame(self, record, expected_configuration) -> None:
        return None

    def finish_drive(self) -> None:
        pass

    def summary(self) -> dict:
        return {}

    def provenance(self) -> dict:
        return {}


#: Module-level no-op observer shared by every unobserved drive.
NULL_QUALITY = NullQualityObserver()


class ModelQualityObserver:
    """Ground-truth-model quality scoring for one drive.

    A pure consumer of the drive: it reads each finished
    :class:`~repro.core.system.FrameRecord` (and the trace's true lux),
    never mutates simulation state, and draws from its own seeded RNG
    streams — attaching it cannot perturb a single frame core.
    """

    enabled = True

    def __init__(self, seed: int, config: QualityModelConfig | None = None):
        self.seed = seed
        self.config = config or QualityModelConfig()
        #: Per-frame records, in frame order (sampled frames only).
        self.records: list[QualityRecord] = []
        #: Typed quality events (vocabulary-checked at emit time).
        self.events: list[dict] = []
        self._trace: "LuxTrace | None" = None

    @classmethod
    def for_spec(
        cls, spec: "DriveSpec", config: QualityModelConfig | None = None
    ) -> "ModelQualityObserver":
        """The canonical observer for a drive spec: seed derived from the
        spec's seed under the ``"quality"`` label, so quality streams are
        decorrelated from the sensor/fault streams but equally reproducible."""
        return cls(derive_seed(spec.seed, "quality"), config=config)

    # Drive lifecycle ---------------------------------------------------------

    def begin_drive(self, trace: "LuxTrace", duration_s: float, n_frames: int) -> None:
        if self._trace is not None:
            raise QualityError(
                "quality observer is already attached to a drive; "
                "call finish_drive() first"
            )
        self._trace = trace
        self.quality_event(
            "quality.drive.start",
            n_frames=n_frames,
            duration_s=duration_s,
            sample_every=self.config.sample_every,
        )

    def finish_drive(self) -> None:
        if self._trace is None:
            raise QualityError("finish_drive() before begin_drive()")
        self._trace = None
        summary = self.summary()
        self.quality_event(
            "quality.drive.summary",
            sampled_frames=summary["sampled_frames"],
            recall=summary["overall"]["recall"],
            precision=summary["overall"]["precision"],
        )

    # Scoring -----------------------------------------------------------------

    def observe_frame(
        self, record: "FrameRecord", expected_configuration: str
    ) -> QualityRecord | None:
        """Score one finished frame; returns ``None`` on unsampled frames."""
        if self._trace is None:
            raise QualityError("observe_frame() before begin_drive()")
        if record.index % self.config.sample_every:
            return None
        true_lux = self._trace.lux_at(record.time_s)
        true_condition = condition_for_lux(true_lux)
        required = CONFIG_FOR_CONDITION[true_condition].value
        matched = record.vehicle_configuration == required
        rng = make_rng(derive_seed(self.seed, f"frame:{record.index}"))
        truths = self._truth_boxes(rng)
        detections = self._detect(
            truths, rng, true_condition.value, matched, record
        )
        matches, unmatched_t, unmatched_d = match_detections(
            truths, detections, iou_threshold=MATCH_IOU_THRESHOLD
        )
        quality_record = QualityRecord(
            index=record.index,
            time_s=record.time_s,
            condition=record.condition.value,
            true_condition=true_condition.value,
            configuration=record.vehicle_configuration,
            matched=matched,
            tp=len(matches),
            fp=len(unmatched_d),
            fn=len(unmatched_t),
            matched_ious=tuple(
                round(truths[ti].iou(detections[di]), 6) for ti, di in matches
            ),
            truths=len(truths),
            detections=len(detections),
        )
        self.records.append(quality_record)
        return quality_record

    def _truth_boxes(self, rng) -> list[Rect]:
        """Seeded ground-truth vehicle boxes (the scene placement model)."""
        cfg = self.config
        width, height = cfg.frame_w, cfg.frame_h
        horizon_y = height * 0.42
        fill_far, fill_near = cfg.vehicle_fill
        n_vehicles = int(rng.integers(0, cfg.max_vehicles + 1))
        boxes: list[Rect] = []
        for depth in sorted(rng.uniform(0.25, 1.0, size=n_vehicles)):
            vw = width * (fill_far + (fill_near - fill_far) * depth)
            vh = vw * 0.62
            road_y = horizon_y + (height - horizon_y) * (0.15 + 0.8 * depth)
            lane = float(rng.choice([-0.13, 0.0, 0.13]))
            center_x = width / 2.0 + lane * width * 2.2 * (1.0 - 0.5 * depth)
            boxes.append(Rect(center_x - vw / 2.0, road_y - vh, vw, vh))
        return boxes

    def _detect(
        self,
        truths: list[Rect],
        rng,
        true_condition: str,
        matched: bool,
        record: "FrameRecord",
    ) -> list[Rect]:
        """What the active pipeline would emit for this frame's state."""
        # A dropped or mid-reconfiguration frame produces no vehicle
        # detections at all: the partition's watchdog flushed the pipeline,
        # or the region is being reprogrammed.
        if not record.vehicle_accepted or record.reconfiguring:
            return []
        cfg = self.config
        recall = cfg.recall_for(true_condition, matched)
        fp_rate = cfg.fp_rate_for(true_condition, matched)
        detections: list[Rect] = []
        for truth in truths:
            if rng.random() >= recall:
                continue
            dx = rng.normal(0.0, cfg.jitter_rel * truth.w)
            dy = rng.normal(0.0, cfg.jitter_rel * truth.h)
            scale = max(0.5, 1.0 + rng.normal(0.0, cfg.jitter_rel))
            w = truth.w * scale
            h = truth.h * scale
            detections.append(
                Rect(truth.x + dx + (truth.w - w) / 2.0, truth.y + dy + (truth.h - h) / 2.0, w, h)
            )
        # Spurious candidates: taillight reflections, headlight glare —
        # two independent slots per frame, small boxes anywhere on the road.
        for _ in range(2):
            if rng.random() >= fp_rate:
                continue
            vw = cfg.frame_w * rng.uniform(*cfg.vehicle_fill)
            vh = vw * 0.62
            x = rng.uniform(0.0, cfg.frame_w - vw)
            y = rng.uniform(cfg.frame_h * 0.42, cfg.frame_h - vh)
            detections.append(Rect(x, y, vw, vh))
        return detections

    # Reporting ---------------------------------------------------------------

    def summary(self) -> dict:
        """The per-drive quality summary (a pure fold of the records)."""
        return fold_records(self.records)

    def provenance(self) -> dict:
        """Everything needed to rebuild this observer for incident replay."""
        return {"kind": "model", "seed": self.seed, "config": self.config.to_dict()}

    def quality_event(self, kind: str, **attrs: Any) -> None:
        """One typed quality event; ``kind`` must be in the declared vocabulary.

        Mirrors ``Trace.emit`` / ``Monitor.emit_event``: runtime validation
        here, static validation by the ``quality-event-vocabulary`` lint rule.
        """
        check_quality_event_kind(kind)
        self.events.append({"kind": kind, **attrs})


def observer_from_provenance(data: dict) -> ModelQualityObserver:
    """Rebuild an observer from :meth:`ModelQualityObserver.provenance`.

    Used by incident replay: a bundle whose drive ran with the quality
    plane attached must reattach an identical observer, or the replayed
    health walk (and therefore the trigger window) would not reproduce.
    """
    kind = data.get("kind")
    if kind != "model":
        raise QualityError(f"unknown quality observer kind {kind!r} (want 'model')")
    return ModelQualityObserver(
        int(data["seed"]),
        config=QualityModelConfig.from_dict(dict(data.get("config", {}))),
    )
