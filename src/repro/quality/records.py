"""Per-frame quality records and their deterministic fold/merge algebra.

A :class:`QualityRecord` is one sampled frame scored against ground
truth: TP/FP/FN counts, the matched IoUs, and the condition split the
paper's Table I reports by.  Records fold into a per-drive summary dict
(:func:`fold_records`), drive summaries merge into fleet-level sections
(:func:`merge_summaries`) — both pure integer/float arithmetic on top of
:class:`~repro.pipelines.evaluation.ConfusionCounts`, whose ``+`` is
associative and commutative, so every aggregation order lands on the
same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.pipelines.evaluation import ConfusionCounts

#: Schema tag carried by every per-drive quality summary.
QUALITY_SUMMARY_SCHEMA = "repro.quality/drive"


@dataclass(frozen=True)
class QualityRecord:
    """One sampled frame's detection quality against ground truth.

    Attributes:
        index: Frame index within the drive.
        time_s: Simulation time of the frame.
        condition: The *controller's* lighting condition (what the stack
            believed).
        true_condition: The condition implied by the trace's true lux
            (no sensor noise, no hysteresis) — the Table-I row this
            frame's counts belong to.
        configuration: Active vehicle configuration at scoring time.
        matched: Whether ``configuration`` is the one ``true_condition``
            calls for; a mismatch is exactly the failure mode the paper's
            adaptation exists to avoid.
        tp / fp / fn: Detection counts from greedy IoU matching.
        matched_ious: IoU of every true-positive match, in match order.
        truths: Ground-truth boxes present in the frame.
        detections: Boxes the (modelled) detector emitted.
    """

    index: int
    time_s: float
    condition: str
    true_condition: str
    configuration: str
    matched: bool
    tp: int
    fp: int
    fn: int
    matched_ious: tuple[float, ...] = ()
    truths: int = 0
    detections: int = 0

    @property
    def counts(self) -> ConfusionCounts:
        return ConfusionCounts(tp=self.tp, fp=self.fp, fn=self.fn)

    @property
    def recall(self) -> float:
        return self.counts.recall

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "time_s": self.time_s,
            "condition": self.condition,
            "true_condition": self.true_condition,
            "configuration": self.configuration,
            "matched": self.matched,
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "matched_ious": list(self.matched_ious),
            "truths": self.truths,
            "detections": self.detections,
        }


def _iou_stats(ious: Iterable[float]) -> dict:
    values = list(ious)
    if not values:
        return {"count": 0, "sum": 0.0, "min": None, "max": None, "mean": None}
    total = sum(values)
    return {
        "count": len(values),
        "sum": total,
        "min": min(values),
        "max": max(values),
        "mean": total / len(values),
    }


def _metrics_block(counts: ConfusionCounts) -> dict:
    return {
        "tp": counts.tp,
        "fp": counts.fp,
        "fn": counts.fn,
        "precision": counts.precision,
        "recall": counts.recall,
        "f1": counts.f1,
    }


def fold_records(records: Iterable[QualityRecord]) -> dict:
    """Fold one drive's quality records into its summary dict.

    The summary is a pure function of the records (no wall values), so it
    rides :class:`~repro.fleet.outcome.DriveOutcome` and the quality
    baseline unchanged.
    """
    rows = list(records)
    by_condition: dict[str, ConfusionCounts] = {}
    by_condition_frames: dict[str, int] = {}
    ious: list[float] = []
    mismatched = 0
    for record in rows:
        counts = by_condition.setdefault(record.true_condition, ConfusionCounts())
        by_condition[record.true_condition] = counts + record.counts
        by_condition_frames[record.true_condition] = (
            by_condition_frames.get(record.true_condition, 0) + 1
        )
        ious.extend(record.matched_ious)
        if not record.matched:
            mismatched += 1
    overall = ConfusionCounts.merge(by_condition.values())
    return {
        "schema": QUALITY_SUMMARY_SCHEMA,
        "sampled_frames": len(rows),
        "mismatched_frames": mismatched,
        "overall": _metrics_block(overall),
        "by_condition": {
            condition: {
                "frames": by_condition_frames[condition],
                **_metrics_block(counts),
            }
            for condition, counts in sorted(by_condition.items())
        },
        "iou": _iou_stats(ious),
    }


def merge_summaries(summaries: Iterable[Mapping]) -> dict:
    """Merge per-drive quality summaries into one fleet-level section.

    Per-condition rows are folded through :meth:`ConfusionCounts.merge`
    (associative — shard order cannot change the result); IoU statistics
    merge from the per-drive sufficient statistics (count/sum/min/max).
    """
    docs = [dict(s) for s in summaries if s]
    by_condition: dict[str, ConfusionCounts] = {}
    frames_by_condition: dict[str, int] = {}
    sampled = 0
    mismatched = 0
    iou_count = 0
    iou_sum = 0.0
    iou_min: float | None = None
    iou_max: float | None = None
    for doc in docs:
        sampled += int(doc.get("sampled_frames", 0))
        mismatched += int(doc.get("mismatched_frames", 0))
        for condition, row in dict(doc.get("by_condition", {})).items():
            existing = by_condition.get(condition, ConfusionCounts())
            by_condition[condition] = ConfusionCounts.merge(
                [existing, ConfusionCounts.from_dict(row)]
            )
            frames_by_condition[condition] = frames_by_condition.get(
                condition, 0
            ) + int(row.get("frames", 0))
        iou = dict(doc.get("iou", {}))
        count = int(iou.get("count", 0))
        if count:
            iou_count += count
            iou_sum += float(iou.get("sum", 0.0))
            low, high = iou.get("min"), iou.get("max")
            if low is not None:
                iou_min = low if iou_min is None else min(iou_min, low)
            if high is not None:
                iou_max = high if iou_max is None else max(iou_max, high)
    overall = ConfusionCounts.merge(by_condition.values())
    return {
        "scored_drives": len(docs),
        "sampled_frames": sampled,
        "mismatched_frames": mismatched,
        "overall": _metrics_block(overall),
        "by_condition": {
            condition: {
                "frames": frames_by_condition[condition],
                **_metrics_block(counts),
            }
            for condition, counts in sorted(by_condition.items())
        },
        "iou": {
            "count": iou_count,
            "sum": iou_sum,
            "min": iou_min,
            "max": iou_max,
            "mean": iou_sum / iou_count if iou_count else None,
        },
    }
