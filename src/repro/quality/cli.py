"""The ``python -m repro quality`` subcommand.

    python -m repro quality report                         # run suite, print it
    python -m repro quality report --out QUALITY_BASELINE.json
    python -m repro quality compare QUALITY_BASELINE.json  # ratchet gate
    python -m repro quality compare QUALITY_BASELINE.json --format json

Exit codes follow the ``repro lint`` / ``repro bench`` convention: 0 clean
(no regression beyond the noise floor), 1 quality regressed, 2 usage or
configuration error (including a missing or malformed baseline).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import QualityError, ReproError
from repro.quality.baseline import (
    DEFAULT_NOISE_FLOOR,
    build_snapshot,
    compare,
    load_snapshot,
    quality_suite_specs,
    render_report,
    run_suite,
    write_snapshot,
)
from repro.quality.events import quality_event
from repro.quality.observer import QualityModelConfig
from repro.telemetry.metrics import Stopwatch


def _run_suite(args) -> tuple[dict, float]:
    specs = quality_suite_specs(duration_s=args.duration, seed=args.seed)
    config = QualityModelConfig(sample_every=args.sample_every)
    with Stopwatch() as sw:
        drives = run_suite(specs, config=config)
    return drives, sw.elapsed_s


def main(argv: list[str] | None = None) -> int:
    """Run the quality suite / ratchet gate; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro quality",
        description="ground-truth quality suite + QUALITY_BASELINE.json ratchet gate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report_p = sub.add_parser(
        "report", help="run the canonical quality suite and print its summary"
    )
    compare_p = sub.add_parser(
        "compare", help="run the suite and gate it against a committed baseline"
    )
    compare_p.add_argument("baseline", help="QUALITY_BASELINE.json path to gate against")
    compare_p.add_argument(
        "--noise-floor", type=float, default=DEFAULT_NOISE_FLOOR,
        help=f"absolute recall/precision drop tolerated (default {DEFAULT_NOISE_FLOOR})",
    )
    compare_p.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="compare-report format (default text)",
    )
    for p in (report_p, compare_p):
        p.add_argument(
            "--duration", type=float, default=None,
            help="suite drive duration in simulated seconds (default: canonical)",
        )
        p.add_argument("--seed", type=int, default=0,
                       help="suite root seed (default 0, the committed baseline's)")
        p.add_argument("--sample-every", type=int, default=1,
                       help="score every Nth frame (default 1)")
    report_p.add_argument(
        "--label", default="quality", help="snapshot label (default 'quality')"
    )
    report_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the suite as a QUALITY_BASELINE.json snapshot",
    )
    args = parser.parse_args(argv)
    if args.duration is None:
        from repro.quality.baseline import SUITE_DURATION_S

        args.duration = SUITE_DURATION_S

    try:
        if args.command == "compare":
            baseline_doc = load_snapshot(args.baseline)
        drives, suite_wall_s = _run_suite(args)
    except ReproError as exc:
        print(f"quality: {exc}", file=sys.stderr)
        return 2

    if args.command == "report":
        doc = build_snapshot(
            drives,
            label=args.label,
            config=QualityModelConfig(sample_every=args.sample_every),
            suite_wall_s=suite_wall_s,
        )
        print(render_report(drives, suite=doc["suite"]))
        if args.out is not None:
            write_snapshot(args.out, doc)
            event = quality_event(
                "quality.baseline.write", path=str(args.out), label=args.label
            )
            print(f"quality: snapshot -> {event['path']}")
        return 0

    try:
        report = compare(baseline_doc, drives, noise_floor=args.noise_floor)
    except QualityError as exc:
        print(f"quality: {exc}", file=sys.stderr)
        return 2
    print(report.render_json() if args.format == "json" else report.render_text())
    quality_event(
        "quality.compare",
        baseline=str(args.baseline),
        regressed=len(report.regressions),
    )
    return 1 if report.has_regressions else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro quality
    sys.exit(main())
