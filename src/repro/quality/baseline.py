"""The quality baseline store: schema-versioned snapshots + the ratchet gate.

A snapshot (``QUALITY_BASELINE.json``) holds the per-drive and merged
quality summaries of the canonical *quality suite* — a fixed list of
seeded drives covering every lighting regime and the fault scenarios that
stress adaptation.  Because the suite and the ground-truth model are
fully seeded, the summaries are a pure function of the code: re-running
the suite on any machine reproduces the committed numbers exactly, which
is what makes an *absolute* noise floor meaningful (unlike the bench
gate, nothing here measures a wall clock).

``compare`` judges a fresh suite run against a stored baseline: a drive
whose recall or precision drops more than ``noise_floor`` below the
committed value is a *regression* (exit 1 from the CLI); a rise beyond
the floor is an *improvement*, and the gate ratchets by re-writing the
baseline — mirroring ``repro bench --compare`` and the lint baseline.

The one wall-valued field (``suite_wall_s``, how long the suite took to
score) is segregated under :data:`WALL_QUALITY_KEYS`, which the
determinism-taint lint rule folds into its laundering list exactly like
the fleet's ``WALL_*`` sets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.core.spec import DriveSpec
from repro.errors import QualityError
from repro.quality.observer import ModelQualityObserver, QualityModelConfig
from repro.quality.records import merge_summaries
from repro.rng import derive_seed

QUALITY_SCHEMA = "repro.quality/baseline"
QUALITY_SCHEMA_VERSION = 1

#: Snapshot keys carrying wall-clock values (stripped from every
#: byte-compared artefact; laundering keys for the determinism-taint rule).
WALL_QUALITY_KEYS = frozenset({"suite_wall_s"})

#: Absolute recall/precision drop tolerated before a drive regresses.
#: The suite is fully deterministic, so the floor only absorbs *intended*
#: model-tuning noise (a re-tuned jitter constant), not measurement noise.
DEFAULT_NOISE_FLOOR = 0.02

#: Compare verdicts, in severity order (mirrors the bench gate).
STATUSES = ("regressed", "missing", "new", "improved", "unchanged")

#: The canonical suite: (short name, trace, fault scenario).  Every
#: lighting regime is crossed, and both fault rows stress the quality
#: plane's reason to exist — ``sensor_blackout`` holds the lux register
#: through a lighting transition (stale configuration, recall collapse),
#: ``flaky_dma`` drops vehicle frames outright.
_SUITE_ROWS: tuple[tuple[str, str, str | None], ...] = (
    ("sunset-clean", "sunset", None),
    ("urban-clean", "urban", None),
    ("tunnel-clean", "tunnel", None),
    ("flicker-clean", "flicker", None),
    ("sunset-blackout", "sunset", "sensor_blackout"),
    ("urban-flaky-dma", "urban", "flaky_dma"),
)

#: Suite drive length: long enough for every trace to cross a lighting
#: boundary, short enough for a check.sh gate.
SUITE_DURATION_S = 8.0


def quality_suite_specs(
    duration_s: float = SUITE_DURATION_S, seed: int = 0
) -> list[DriveSpec]:
    """The canonical quality-suite drive specs (deterministic)."""
    if duration_s <= 0:
        raise QualityError(f"suite duration_s must be positive, got {duration_s}")
    return [
        DriveSpec(
            name=f"quality-{name}",
            trace=trace,
            duration_s=duration_s,
            seed=derive_seed(seed, f"quality-suite:{name}"),
            fault_scenario=scenario,
        )
        for name, trace, scenario in _SUITE_ROWS
    ]


def run_suite(
    specs: Sequence[DriveSpec] | None = None,
    config: QualityModelConfig | None = None,
) -> dict[str, dict]:
    """Run the suite inline and return ``{drive name: quality summary}``."""
    from repro.core.system import run_drive_spec

    drives: dict[str, dict] = {}
    for spec in specs if specs is not None else quality_suite_specs():
        observer = ModelQualityObserver.for_spec(spec, config=config)
        run_drive_spec(spec, quality=observer)
        drives[spec.name] = observer.summary()
    return drives


def build_snapshot(
    drives: Mapping[str, Mapping],
    label: str = "quality",
    config: QualityModelConfig | None = None,
    suite_wall_s: float | None = None,
) -> dict:
    """Assemble the schema-versioned snapshot document."""
    model = (config or QualityModelConfig()).to_dict()
    doc = {
        "schema": QUALITY_SCHEMA,
        "schema_version": QUALITY_SCHEMA_VERSION,
        "label": label,
        "model": model,
        "drives": {name: dict(summary) for name, summary in sorted(drives.items())},
        "suite": merge_summaries(drives.values()),
    }
    if suite_wall_s is not None:
        doc["wall"] = {"suite_wall_s": suite_wall_s}
    return doc


def write_snapshot(path: "str | Path", doc: dict) -> Path:
    """Validate and write one snapshot (stable key order, human-diffable)."""
    validate_snapshot(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: "str | Path") -> dict:
    """Load and schema-check a snapshot written by :func:`write_snapshot`."""
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        raise QualityError(f"cannot read quality baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise QualityError(
            f"quality baseline {path!r} is not valid JSON: {exc}"
        ) from exc
    validate_snapshot(doc, origin=str(path))
    return doc


def validate_snapshot(doc: Mapping, origin: str = "snapshot") -> None:
    """Reject structurally broken snapshots (schema gate for readers)."""
    if not isinstance(doc, Mapping) or doc.get("schema") != QUALITY_SCHEMA:
        raise QualityError(f"{origin} is not a {QUALITY_SCHEMA} snapshot")
    version = doc.get("schema_version")
    if version != QUALITY_SCHEMA_VERSION:
        raise QualityError(
            f"{origin} has schema_version {version!r}; "
            f"this reader understands {QUALITY_SCHEMA_VERSION}"
        )
    if not isinstance(doc.get("drives"), Mapping):
        raise QualityError(f"{origin} has no drives table")
    for name, summary in doc["drives"].items():
        if not isinstance(summary, Mapping) or "overall" not in summary:
            raise QualityError(f"{origin} drive {name!r} carries no overall metrics")


@dataclass
class QualityCompareEntry:
    """One drive's verdict against the baseline."""

    name: str
    status: str
    baseline_recall: float | None = None
    current_recall: float | None = None
    baseline_precision: float | None = None
    current_precision: float | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "baseline_recall": self.baseline_recall,
            "current_recall": self.current_recall,
            "baseline_precision": self.baseline_precision,
            "current_precision": self.current_precision,
        }

    def render(self) -> str:
        def fmt(value: float | None) -> str:
            return f"{value:.3f}" if value is not None else "-"

        return (
            f"{self.name}: {self.status} "
            f"(recall {fmt(self.baseline_recall)} -> {fmt(self.current_recall)}, "
            f"precision {fmt(self.baseline_precision)} -> {fmt(self.current_precision)})"
        )


@dataclass
class QualityCompareReport:
    """The verdict of one suite run against one baseline snapshot."""

    baseline_label: str
    noise_floor: float
    entries: list[QualityCompareEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[QualityCompareEntry]:
        return [e for e in self.entries if e.status == "regressed"]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    @property
    def improvements(self) -> list[QualityCompareEntry]:
        return [e for e in self.entries if e.status == "improved"]

    def counts(self) -> dict[str, int]:
        table = {status: 0 for status in STATUSES}
        for entry in self.entries:
            table[entry.status] += 1
        return table

    def render_text(self) -> str:
        lines = [
            f"quality compare: suite vs baseline {self.baseline_label!r} "
            f"(noise floor {self.noise_floor:.3f})"
        ]
        order = {status: i for i, status in enumerate(STATUSES)}
        for entry in sorted(self.entries, key=lambda e: (order[e.status], e.name)):
            if entry.status == "unchanged":
                continue
            lines.append(f"  {entry.render()}")
        counts = self.counts()
        lines.append(
            "quality compare: "
            + ", ".join(f"{counts[s]} {s}" for s in STATUSES)
            + f" across {len(self.entries)} drives"
        )
        if self.has_regressions:
            lines.append("quality compare: FAILED (recall/precision regressed)")
        elif self.improvements:
            lines.append(
                "quality compare: improved beyond the floor — ratchet with "
                "`repro quality report --out QUALITY_BASELINE.json`"
            )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "tool": "repro-quality-compare",
                "baseline": self.baseline_label,
                "noise_floor": self.noise_floor,
                "counts": self.counts(),
                "has_regressions": self.has_regressions,
                "entries": [e.to_dict() for e in self.entries],
            },
            indent=2,
            sort_keys=True,
        )


def _overall(summary: Mapping) -> tuple[float, float]:
    overall = dict(summary.get("overall", {}))
    return float(overall.get("recall", 0.0)), float(overall.get("precision", 0.0))


def compare(
    baseline_doc: Mapping,
    current_drives: Mapping[str, Mapping],
    noise_floor: float = DEFAULT_NOISE_FLOOR,
) -> QualityCompareReport:
    """Judge a fresh suite run against a loaded baseline snapshot.

    A drive present in both regresses when recall *or* precision drops
    more than ``noise_floor`` below the baseline; the symmetric rise
    marks it improved (the ratchet signal).  Baseline-only drives are
    *missing*, current-only drives are *new* — worth noticing, not worth
    failing, exactly like the bench gate.
    """
    if noise_floor < 0:
        raise QualityError(f"noise_floor must be >= 0, got {noise_floor}")
    validate_snapshot(baseline_doc, origin="baseline")
    baseline = dict(baseline_doc["drives"])
    report = QualityCompareReport(
        baseline_label=str(baseline_doc.get("label", "?")),
        noise_floor=noise_floor,
    )
    for name in sorted(set(baseline) | set(current_drives)):
        base = baseline.get(name)
        cur = current_drives.get(name)
        if base is None:
            assert cur is not None
            recall, precision = _overall(cur)
            report.entries.append(
                QualityCompareEntry(
                    name=name,
                    status="new",
                    current_recall=recall,
                    current_precision=precision,
                )
            )
            continue
        if cur is None:
            recall, precision = _overall(base)
            report.entries.append(
                QualityCompareEntry(
                    name=name,
                    status="missing",
                    baseline_recall=recall,
                    baseline_precision=precision,
                )
            )
            continue
        base_recall, base_precision = _overall(base)
        cur_recall, cur_precision = _overall(cur)
        if (
            cur_recall < base_recall - noise_floor
            or cur_precision < base_precision - noise_floor
        ):
            status = "regressed"
        elif (
            cur_recall > base_recall + noise_floor
            or cur_precision > base_precision + noise_floor
        ):
            status = "improved"
        else:
            status = "unchanged"
        report.entries.append(
            QualityCompareEntry(
                name=name,
                status=status,
                baseline_recall=base_recall,
                current_recall=cur_recall,
                baseline_precision=base_precision,
                current_precision=cur_precision,
            )
        )
    return report


def render_report(drives: Mapping[str, Mapping], suite: Mapping | None = None) -> str:
    """A compact human-readable view of one suite run."""
    merged = dict(suite) if suite is not None else merge_summaries(drives.values())
    overall = merged.get("overall", {})
    lines = [
        f"quality suite: {merged.get('scored_drives', len(drives))} drives, "
        f"{merged.get('sampled_frames', 0)} frames scored",
        f"  overall: recall={overall.get('recall', 0.0):.3f} "
        f"precision={overall.get('precision', 0.0):.3f} "
        f"f1={overall.get('f1', 0.0):.3f}",
    ]
    for condition, row in dict(merged.get("by_condition", {})).items():
        lines.append(
            f"  {condition}: recall={row.get('recall', 0.0):.3f} "
            f"precision={row.get('precision', 0.0):.3f} "
            f"tp={row.get('tp', 0)} fp={row.get('fp', 0)} fn={row.get('fn', 0)}"
        )
    for name, summary in sorted(drives.items()):
        recall, precision = _overall(summary)
        lines.append(
            f"  {name}: recall={recall:.3f} precision={precision:.3f} "
            f"({summary.get('sampled_frames', 0)} frames, "
            f"{summary.get('mismatched_frames', 0)} mismatched)"
        )
    return "\n".join(lines)


def summaries_of(drives: Iterable[Mapping]) -> list[dict]:
    """Convenience: plain-dict copies of an iterable of summaries."""
    return [dict(d) for d in drives]
