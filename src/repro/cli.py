"""Command-line interface: regenerate any paper artefact from the shell.

    python -m repro list                 # what can be reproduced
    python -m repro table1 [--scale S]   # Table I
    python -m repro table2               # Table II
    python -m repro dark [--scale S]     # Section III-B dark accuracy
    python -m repro throughput           # Section IV-A MB/s comparison
    python -m repro latency              # Section IV-B drive + drops
    python -m repro fig1|fig2|fig4|fig5|fig6|fig7|fps
    python -m repro ablations            # all five ablations
    python -m repro drive [--trace T] [--duration D] [--fault-plan P]
                          [--telemetry-out PATH] [--telemetry-format F]
                          [--monitor-out DIR]
    python -m repro telemetry --telemetry-in PATH [--top N]
                          [--since S] [--until S]   # summarise a dump/bundle
                          [--format text|openmetrics]
    python -m repro incident list|show|report|replay|smoke ...   # see MONITOR.md
    python -m repro fleet run|top|report|smoke ...               # see FLEET.md
    python -m repro quality report|compare ...                   # see QUALITY.md
    python -m repro lint [PATHS] [--format text|json] [--select R] [--ignore R]
    python -m repro bench [--smoke] [--compare BASELINE] [--filter S]
    python -m repro all [--scale S]      # everything, in paper order
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable


def _table1(args) -> str:
    from repro.experiments.table1 import run_table1

    result = run_table1(scale=args.scale)
    checks = result.shape_checks()
    return result.render_with_paper() + f"\nshape checks: {checks}"


def _table2(args) -> str:
    from repro.experiments.table2 import run_table2

    result = run_table2()
    return result.render() + f"\nshape checks: {result.shape_checks()}"


def _dark(args) -> str:
    from repro.experiments.dark_accuracy import run_dark_accuracy

    result = run_dark_accuracy(scale=args.scale)
    return result.render() + f"\nshape checks: {result.shape_checks()}"


def _throughput(args) -> str:
    from repro.experiments.reconfig import run_throughput

    result = run_throughput()
    return result.render() + f"\nshape checks: {result.shape_checks()}"


def _latency(args) -> str:
    from repro.experiments.reconfig import run_latency

    result = run_latency(duration_s=120.0)
    return result.render() + f"\nshape checks: {result.shape_checks()}"


def _fig1(args) -> str:
    from repro.experiments.figures import run_training_flow

    result = run_training_flow(scale=min(args.scale, 0.5))
    return result.render() + f"\nshape checks: {result.shape_checks()}"


def _fig2(args) -> str:
    from repro.experiments.figures import run_fig2_pipeline

    return run_fig2_pipeline().render()


def _fig4(args) -> str:
    from repro.experiments.figures import run_fig4_pipeline

    return run_fig4_pipeline().render()


def _fig5(args) -> str:
    from repro.experiments.figures import run_fig5_samples

    return run_fig5_samples(n_frames=4).render()


def _fig6(args) -> str:
    from repro.experiments.figures import run_fig6_system

    return run_fig6_system().render()


def _fig7(args) -> str:
    from repro.experiments.figures import run_fig7_pr_controller

    return run_fig7_pr_controller().render()


def _fps(args) -> str:
    from repro.experiments.figures import run_fps

    return run_fps().render()


def _resources(args) -> str:
    from repro.hw.designs import animal_design, dark_design, day_dusk_design, static_design

    parts = []
    for design in (day_dusk_design(), dark_design(), static_design(), animal_design()):
        parts.append(design.render())
    return "\n\n".join(parts)


def _adaptive(args) -> str:
    from repro.experiments.adaptive_gain import run_adaptive_gain

    result = run_adaptive_gain(scale=min(args.scale, 0.3))
    return result.render() + f"\nshape checks: {result.shape_checks()}"


def _tracking(args) -> str:
    from repro.experiments.tracking_ext import run_tracking_extension

    result = run_tracking_extension()
    return result.render() + f"\nshape checks: {result.shape_checks()}"


def _drive(args) -> str:
    from repro.adaptive.sensor import sunset_trace, tunnel_trace, urban_evening_trace
    from repro.core.system import AdaptiveDetectionSystem
    from repro.faults.scenarios import get_scenario

    traces = {
        "sunset": sunset_trace,
        "tunnel": tunnel_trace,
        "urban": urban_evening_trace,
    }
    trace = traces[args.trace](duration_s=args.duration)
    plan = None
    if args.fault_plan != "none":
        plan = get_scenario(args.fault_plan, duration_s=args.duration)
    telemetry = None
    if args.telemetry_out is not None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry.recording(
            meta={
                "artefact": "drive",
                "trace": args.trace,
                "duration_s": args.duration,
                "fault_plan": args.fault_plan,
            }
        )
    monitor = None
    if args.monitor_out is not None:
        from repro.monitor import Monitor

        monitor = Monitor.recording(args.monitor_out, telemetry=telemetry)
    system = AdaptiveDetectionSystem(fault_plan=plan, telemetry=telemetry, monitor=monitor)
    report = system.run_drive(trace)
    summary = report.summary()
    lines = [f"drive: trace={args.trace} duration={args.duration:.0f}s "
             f"fault-plan={args.fault_plan}"]
    for key, value in summary.items():
        if key == "reconfig_ms":
            value = ", ".join(f"{v:.1f}" for v in value) or "-"
        lines.append(f"  {key:<26} {value}")
    if plan is not None:
        lines.append(f"  fault firings:             {plan.firings()}")
        for event in report.degradations:
            lines.append(f"    t={event.time_s:7.2f}s  {event.label()}")
    ped_ok = all(f.pedestrian_accepted for f in report.frames)
    lines.append(f"  pedestrian partition:      "
                 f"{'100% of frames processed' if ped_ok else 'DROPPED FRAMES'}")
    if telemetry is not None:
        from repro.telemetry import export

        export(telemetry, args.telemetry_out, args.telemetry_format)
        lines.append(
            f"  telemetry:                 {len(telemetry.tracer.spans)} spans, "
            f"{len(telemetry.metrics)} metric series -> "
            f"{args.telemetry_out} ({args.telemetry_format})"
        )
    if monitor is not None:
        digest = monitor.summary()
        lines.append(
            f"  monitor:                   health={digest['health']['state']}, "
            f"{digest['triggers']} triggers, {digest['incidents']} incidents -> "
            f"{args.monitor_out}"
        )
    return "\n".join(lines)


def _telemetry(args) -> str:
    from repro.telemetry import filter_spans, load_dump, render_report

    if args.telemetry_in is None:
        raise SystemExit("telemetry: --telemetry-in PATH is required")
    dump = load_dump(args.telemetry_in)
    if args.format == "openmetrics":
        from repro.telemetry import render_openmetrics

        # Exposition of the dump's metric snapshot (spans have no
        # OpenMetrics shape; the text report below covers them).
        return render_openmetrics(dump.metrics).rstrip("\n")
    if args.since is not None or args.until is not None:
        dump.spans = filter_spans(dump.spans, since_s=args.since, until_s=args.until)
        window = f"[{args.since if args.since is not None else '-inf'}, " \
                 f"{args.until if args.until is not None else '+inf'}]"
        dump.meta = {**dump.meta, "span_window_s": window}
    report = render_report(dump.spans, dump.metrics, dump.meta)
    if args.top is not None:
        from repro.perf import profile_dump

        report += "\n" + profile_dump(dump).render_top(args.top)
    return report


def _ablations(args) -> str:
    from repro.experiments.ablations import (
        run_contention,
        run_dbn_ablation,
        run_floorplan_sweep,
        run_hysteresis_ablation,
        run_threshold_ablation,
    )

    parts = [
        run_threshold_ablation().render(),
        run_dbn_ablation().render(),
        run_hysteresis_ablation().render(),
        run_floorplan_sweep().render(),
        run_contention().render(),
    ]
    return "\n\n".join(parts)


COMMANDS: dict[str, tuple[Callable, str]] = {
    "table1": (_table1, "Table I: day/dusk/combined SVM accuracy"),
    "table2": (_table2, "Table II: resource utilization on XC7Z100"),
    "dark": (_dark, "Section III-B: dark-pipeline accuracy (paper: 95%)"),
    "throughput": (_throughput, "Section IV-A: PR throughput comparison"),
    "latency": (_latency, "Section IV-B: 20 ms PR = one dropped frame"),
    "fig1": (_fig1, "Fig. 1: training flow"),
    "fig2": (_fig2, "Fig. 2: day/dusk pipeline timing"),
    "fig4": (_fig4, "Fig. 3/4: dark pipeline timing"),
    "fig5": (_fig5, "Fig. 5: sample dark detections (ASCII)"),
    "fig6": (_fig6, "Fig. 6: SoC data-movement audit"),
    "fig7": (_fig7, "Fig. 7: PR controller event trace"),
    "fps": (_fps, "Headline: 50 fps HDTV at 125 MHz"),
    "ablations": (_ablations, "All five design-choice ablations"),
    "resources": (_resources, "Block-level resource breakdown of every design"),
    "adaptive": (_adaptive, "Extension: adaptive vs fixed pipelines end to end"),
    "tracking": (_tracking, "Extension: temporal tracking on dark sequences"),
    "drive": (_drive, "Adaptive drive on the SoC model (supports --fault-plan)"),
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["lint"]:
        # The lint subcommand has its own option surface (paths, --format,
        # --select, ...); delegate before the artefact parser sees it.
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["bench"]:
        # Same story for the benchmark harness (--smoke, --compare, ...).
        from repro.perf.cli import main as bench_main

        return bench_main(argv[1:])
    if argv[:1] == ["incident"]:
        # And for the incident-bundle tooling (list/show/report/replay/smoke).
        from repro.monitor.cli import main as incident_main

        return incident_main(argv[1:])
    if argv[:1] == ["fleet"]:
        # And for the many-vehicle fleet service (run/report/smoke).
        from repro.fleet.cli import main as fleet_main

        return fleet_main(argv[1:])
    if argv[:1] == ["quality"]:
        # And for the ground-truth quality plane (report/compare).
        from repro.quality.cli import main as quality_main

        return quality_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate artefacts of the DATE'19 adaptive-detection paper.",
    )
    parser.add_argument(
        "command",
        choices=sorted(COMMANDS) + ["all", "list", "telemetry"],
        help="artefact to reproduce",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="corpus scale for accuracy experiments (1.0 = paper sizes)",
    )
    parser.add_argument(
        "--trace",
        choices=["sunset", "tunnel", "urban"],
        default="sunset",
        help="illuminance trace for the drive command",
    )
    def positive_seconds(value: str) -> float:
        seconds = float(value)
        if seconds <= 0:
            raise argparse.ArgumentTypeError(f"duration must be positive, got {value}")
        return seconds

    parser.add_argument(
        "--duration",
        type=positive_seconds,
        default=60.0,
        help="drive duration in seconds (drive command)",
    )
    from repro.faults.scenarios import SCENARIOS

    parser.add_argument(
        "--fault-plan",
        choices=sorted(SCENARIOS) + ["none"],
        default="none",
        help="canned fault scenario for the drive command",
    )
    from repro.telemetry import TELEMETRY_FORMATS

    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="record the drive and write a telemetry dump to PATH",
    )
    parser.add_argument(
        "--telemetry-format",
        choices=TELEMETRY_FORMATS,
        default="jsonl",
        help="telemetry dump format (drive command; default jsonl)",
    )
    parser.add_argument(
        "--telemetry-in",
        default=None,
        metavar="PATH",
        help="telemetry dump to summarise (telemetry command)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "openmetrics"],
        default="text",
        help="telemetry report format (telemetry command; default text)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="also print the top-N hot spans by self time (telemetry command)",
    )
    parser.add_argument(
        "--since",
        type=float,
        default=None,
        metavar="S",
        help="keep only spans overlapping [S, ...] sim-seconds (telemetry command)",
    )
    parser.add_argument(
        "--until",
        type=float,
        default=None,
        metavar="S",
        help="keep only spans overlapping [..., S] sim-seconds (telemetry command)",
    )
    parser.add_argument(
        "--monitor-out",
        default=None,
        metavar="DIR",
        help="monitor the drive and write incident bundles under DIR",
    )
    args = parser.parse_args(argv)

    if args.command == "telemetry":
        from repro.errors import ConfigurationError

        if args.telemetry_in is None:
            print("telemetry: --telemetry-in PATH is required", file=sys.stderr)
            return 2
        try:
            print(_telemetry(args))
        except (OSError, ConfigurationError) as exc:
            print(f"telemetry: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.command == "list":
        width = max(len(name) for name in COMMANDS)
        for name in sorted(COMMANDS):
            print(f"  {name:<{width}}  {COMMANDS[name][1]}")
        print(f"  {'lint':<{width}}  reprolint static analysis over src/ (see ANALYSIS.md)")
        print(f"  {'bench':<{width}}  statistical benchmarks + regression gate (see PERF.md)")
        print(f"  {'incident':<{width}}  flight-recorder bundles: list/report/replay (see MONITOR.md)")
        print(f"  {'fleet':<{width}}  many-vehicle drive service: run/report/smoke (see FLEET.md)")
        print(f"  {'quality':<{width}}  detection-quality baseline: report/compare (see QUALITY.md)")
        return 0

    names = sorted(COMMANDS) if args.command == "all" else [args.command]
    for name in names:
        runner, _ = COMMANDS[name]
        print(f"\n===== {name}: {COMMANDS[name][1]} =====")
        print(runner(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
