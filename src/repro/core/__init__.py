"""System core: the adaptive detection system (paper Fig. 6 + control loop)."""

from repro.core.functional import (
    AdaptiveVehicleDetector,
    FrameResult,
    FunctionalConfig,
)
from repro.core.spec import (
    CHAOS_MODES,
    TRACE_FACTORIES,
    DriveSpec,
    derive_drive_seed,
    frame_core_bytes,
    frame_core_dict,
    frames_digest,
)
from repro.core.system import (
    MODEL_FOR_CONDITION,
    AdaptiveDetectionSystem,
    DegradationPolicy,
    DriveReport,
    FrameRecord,
    SystemConfig,
    run_drive_spec,
)

__all__ = [
    "AdaptiveDetectionSystem",
    "AdaptiveVehicleDetector",
    "CHAOS_MODES",
    "DegradationPolicy",
    "DriveSpec",
    "FrameResult",
    "FunctionalConfig",
    "DriveReport",
    "FrameRecord",
    "MODEL_FOR_CONDITION",
    "SystemConfig",
    "TRACE_FACTORIES",
    "derive_drive_seed",
    "frame_core_bytes",
    "frame_core_dict",
    "frames_digest",
    "run_drive_spec",
]
