"""System core: the adaptive detection system (paper Fig. 6 + control loop)."""

from repro.core.functional import (
    AdaptiveVehicleDetector,
    FrameResult,
    FunctionalConfig,
)
from repro.core.system import (
    MODEL_FOR_CONDITION,
    AdaptiveDetectionSystem,
    DegradationPolicy,
    DriveReport,
    FrameRecord,
    SystemConfig,
)

__all__ = [
    "AdaptiveDetectionSystem",
    "AdaptiveVehicleDetector",
    "DegradationPolicy",
    "FrameResult",
    "FunctionalConfig",
    "DriveReport",
    "FrameRecord",
    "MODEL_FOR_CONDITION",
    "SystemConfig",
]
