"""The functional adaptive detector: lux in, detections out.

`AdaptiveDetectionSystem` (core.system) models the *hardware* story — frame
clocks, DMA, partial reconfiguration — without running the algorithms.
This module is its software twin: it holds the three trained pipelines,
routes every frame to the one the current lighting condition selects
(day/dusk: HOG+SVM with the matching model; dark: the DBN pipeline), and
mirrors the hardware's switching semantics — day<->dusk swaps are free,
dusk<->dark transitions cost a reconfiguration delay during which vehicle
frames return no detections.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.adaptive.controller import ControllerConfig, LightingController
from repro.adaptive.policy import SwitchKind, VehicleConfigurationId, plan_switch
from repro.datasets.lighting import LightingCondition
from repro.errors import ConfigurationError, PipelineError
from repro.faults.plan import FaultPlan, FaultSite
from repro.ml.linear import LinearModel
from repro.pipelines.base import Detection
from repro.pipelines.dark import DarkVehicleDetector
from repro.pipelines.day_dusk import DayDuskConfig, HogSvmVehicleDetector


@dataclass
class FrameResult:
    """Outcome of one functional frame.

    ``degraded`` marks frames where the active pipeline raised (or a fault
    plan injected an exception) and the detector fell back to reporting no
    detections instead of crashing the stream.
    """

    time_s: float
    condition: LightingCondition
    active_pipeline: str
    detections: list[Detection]
    reconfiguring: bool
    degraded: bool = False


@dataclass(frozen=True)
class FunctionalConfig:
    """Parameters of the functional adaptive detector.

    Attributes:
        controller: Hysteresis controller settings.
        reconfiguration_s: Blind window after a dusk<->dark switch (the
            hardware's ~20 ms; configurable for experiments).
        multiscale: Use pyramid detection for the HOG pipelines.
        batched: Run every pipeline's sliding-window stage on the batched
            hot path.  False selects the per-window reference scans —
            byte-identical results (the equivalence suite pins this), just
            slower; useful to bisect a suspected batching bug in the field.
    """

    controller: ControllerConfig = field(default_factory=ControllerConfig)
    reconfiguration_s: float = 0.0205
    multiscale: bool = False
    batched: bool = True

    def __post_init__(self) -> None:
        if self.reconfiguration_s < 0:
            raise ConfigurationError("reconfiguration_s must be >= 0")


class AdaptiveVehicleDetector:
    """Routes frames to the pipeline the lighting condition selects."""

    def __init__(
        self,
        condition_models: dict[str, LinearModel],
        dark_detector: DarkVehicleDetector,
        config: FunctionalConfig | None = None,
        day_dusk_config: DayDuskConfig | None = None,
        initial: LightingCondition = LightingCondition.DAY,
        fault_plan: FaultPlan | None = None,
    ):
        for required in ("day", "dusk"):
            if required not in condition_models:
                raise ConfigurationError(f"condition_models needs a {required!r} model")
        if dark_detector.dbn is None or dark_detector.matcher is None:
            raise PipelineError("dark detector must be trained")
        self.config = config or FunctionalConfig()
        hog_config = day_dusk_config or DayDuskConfig()
        if hog_config.batched != self.config.batched:
            hog_config = replace(hog_config, batched=self.config.batched)
        base = HogSvmVehicleDetector(hog_config)
        self._hog = {
            name: base.with_model(model) for name, model in condition_models.items()
        }
        if dark_detector.config.batched != self.config.batched:
            # Same trained stages, path flag flipped — detectors are cheap
            # shells around their models.
            dark_detector = DarkVehicleDetector(
                replace(dark_detector.config, batched=self.config.batched),
                dbn=dark_detector.dbn,
                matcher=dark_detector.matcher,
                telemetry=dark_detector.telemetry,
            )
        self._dark = dark_detector
        self.controller = LightingController(self.config.controller, initial=initial)
        self.fault_plan = fault_plan
        self._blind_until = float("-inf")
        self.results: list[FrameResult] = []
        self.degraded_frames = 0

    @property
    def condition(self) -> LightingCondition:
        return self.controller.condition

    @property
    def active_pipeline_name(self) -> str:
        if self.condition is LightingCondition.DARK:
            return self._dark.name
        return f"{self._hog[self.condition.value].name}:{self.condition.value}"

    def process(self, time_s: float, lux: float, frame: np.ndarray) -> FrameResult:
        """Classify the lighting, switch pipelines if needed, detect.

        During a reconfiguration blind window (dusk<->dark switches) the
        vehicle stream reports no detections — matching the hardware's one
        dropped frame at 50 fps.
        """
        change = self.controller.update(time_s, lux)
        if change is not None:
            plan = plan_switch(change.previous, change.new)
            if plan.kind is SwitchKind.PARTIAL_RECONFIG:
                self._blind_until = time_s + self.config.reconfiguration_s
        reconfiguring = time_s < self._blind_until
        condition = self.controller.condition
        degraded = False
        if reconfiguring:
            detections: list[Detection] = []
        else:
            try:
                if self.fault_plan is not None and self.fault_plan.fire(
                    FaultSite.PIPELINE_EXCEPTION, "vehicle", time_s
                ):
                    raise PipelineError(f"injected detector exception at t={time_s}")
                if condition is LightingCondition.DARK:
                    detections = self._dark.detect(frame)
                else:
                    detector = self._hog[condition.value]
                    if self.config.multiscale:
                        detections = detector.detect_multiscale(frame)
                    else:
                        detections = detector.detect(frame)
            except PipelineError:
                # Fail safe, not silent: report no detections for this
                # frame rather than killing the stream, and mark the frame
                # degraded so drives stay auditable.
                detections = []
                degraded = True
                self.degraded_frames += 1
        result = FrameResult(
            time_s=time_s,
            condition=condition,
            active_pipeline=self.active_pipeline_name,
            detections=detections,
            reconfiguring=reconfiguring,
            degraded=degraded,
        )
        self.results.append(result)
        return result

    def pipeline_for(self, condition: LightingCondition):
        """The pipeline the given condition routes to (introspection)."""
        if condition is LightingCondition.DARK:
            return self._dark
        return self._hog[condition.value]

    @staticmethod
    def configuration_for(condition: LightingCondition) -> VehicleConfigurationId:
        from repro.adaptive.policy import CONFIG_FOR_CONDITION

        return CONFIG_FOR_CONDITION[condition]
