"""The adaptive detection system: sensor -> controller -> PR -> detectors.

This is the paper's end-to-end story.  A frame clock runs at 50 fps; every
tick, both hardware detectors (static pedestrian + reconfigurable vehicle)
receive the frame through the SoC model.  An ambient-light sensor drives the
hysteresis controller; condition changes either swap the SVM model (day <->
dusk, instantaneous) or trigger a partial reconfiguration (dusk <-> dark,
~20 ms through the PR controller), during which the vehicle detector drops
frames while the pedestrian detector "continues its operation ... and
guarantees the real-time and safe behavior of the system".

Optionally, the drive also *renders* frames with the scene generator and
runs the active software pipeline on them, closing the loop functionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adaptive.controller import ConditionChange, ControllerConfig, LightingController
from repro.adaptive.policy import CONFIG_FOR_CONDITION, SwitchKind, plan_switch
from repro.adaptive.sensor import LightSensor, LuxTrace
from repro.core.spec import DriveSpec
from repro.datasets.lighting import LightingCondition
from repro.errors import ConfigurationError, ReconfigurationError
from repro.faults.plan import DegradationEvent, FaultPlan, FaultSite
from repro.monitor.session import NULL_MONITOR, Monitor
from repro.quality.observer import DETECTION_IOU_BUCKETS, NULL_QUALITY
from repro.telemetry.session import NULL_TELEMETRY, Telemetry
from repro.zynq.bitstream import BitstreamRepository, paper_bitstreams
from repro.zynq.pr import BasePrController, PaperPrController, ReconfigReport
from repro.zynq.soc import ZynqSoC


@dataclass(frozen=True)
class DegradationPolicy:
    """How the system degrades when the reconfigurable side misbehaves.

    The guiding rule is the paper's safety argument inverted: the static
    pedestrian partition must stay correct no matter what, so every
    recovery action below touches only the vehicle side.

    Attributes:
        max_reconfig_retries: Retries after a failed partial
            reconfiguration before the system stays on the last-good image.
        backoff_initial_s: First retry delay.
        backoff_factor: Multiplier per subsequent retry.
        backoff_max_s: Ceiling on the retry delay.
        pr_timeout_s: Watchdog deadline for one reconfiguration attempt
            (``None`` disables the watchdog).
        repair_bitstreams: Re-stage a corrupt bitstream from flash before
            retrying (models the PS reloading PL DDR).
    """

    max_reconfig_retries: int = 3
    backoff_initial_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    pr_timeout_s: float | None = 0.1
    repair_bitstreams: bool = True

    def __post_init__(self) -> None:
        if self.max_reconfig_retries < 0:
            raise ConfigurationError("max_reconfig_retries must be >= 0")
        if self.backoff_initial_s <= 0 or self.backoff_max_s <= 0:
            raise ConfigurationError("backoff delays must be positive")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.pr_timeout_s is not None and self.pr_timeout_s <= 0:
            raise ConfigurationError("pr_timeout_s must be positive or None")

    def retry_delay_s(self, attempt: int) -> float:
        """Bounded exponential backoff before retry ``attempt`` (1-based)."""
        return min(self.backoff_max_s, self.backoff_initial_s * self.backoff_factor ** (attempt - 1))


@dataclass(frozen=True)
class SystemConfig:
    """End-to-end system parameters.

    Attributes:
        fps: Frame clock (the paper's 50 fps).
        controller: Hysteresis controller settings.
        controller_cls: PR controller driving the vehicle partition.
        sensor_period_s: Ambient sensor sampling period.
        initial_condition: Lighting condition at t=0.
        degradation: Fault-recovery policy for the vehicle side.
    """

    fps: float = 50.0
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    controller_cls: type[BasePrController] = PaperPrController
    sensor_period_s: float = 0.1
    initial_condition: LightingCondition = LightingCondition.DAY
    degradation: DegradationPolicy = field(default_factory=DegradationPolicy)

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ConfigurationError(f"fps must be positive, got {self.fps}")
        if self.sensor_period_s <= 0:
            raise ConfigurationError("sensor period must be positive")
        if not (
            isinstance(self.controller_cls, type)
            and issubclass(self.controller_cls, BasePrController)
        ):
            raise ConfigurationError(
                "controller_cls must be a BasePrController subclass, got "
                f"{self.controller_cls!r}"
            )


@dataclass
class FrameRecord:
    """Per-frame outcome of a drive.

    ``faults`` carries the labels of every fault-injection and
    degradation event that landed since the previous frame, so a drive's
    frame sequence is a complete audit trail.  ``degraded`` marks frames
    where the vehicle partition is up but running a configuration other
    than the one the lighting condition calls for (a fallback in effect).
    """

    index: int
    time_s: float
    condition: LightingCondition
    lux: float
    vehicle_accepted: bool
    pedestrian_accepted: bool
    vehicle_configuration: str
    reconfiguring: bool
    faults: tuple[str, ...] = ()
    degraded: bool = False
    #: Telemetry span id of this frame's ``drive.frame`` span (None when
    #: telemetry is disabled) — the join key between the audit trail and an
    #: exported trace.
    span_id: int | None = None


@dataclass
class DriveReport:
    """Everything that happened during one simulated drive."""

    frames: list[FrameRecord] = field(default_factory=list)
    condition_changes: list[ConditionChange] = field(default_factory=list)
    model_swaps: list[tuple[float, str]] = field(default_factory=list)
    reconfigurations: list[ReconfigReport] = field(default_factory=list)
    degradations: list[DegradationEvent] = field(default_factory=list)
    #: The drive's telemetry session (None when run without telemetry).
    #: Deliberately excluded from :meth:`summary` so a report is identical
    #: whether or not the drive was observed.
    telemetry: Telemetry | None = field(default=None, repr=False, compare=False)
    #: The drive's monitor session (None when run unmonitored); excluded
    #: from :meth:`summary` for the same non-perturbation reason.
    monitor: Monitor | None = field(default=None, repr=False, compare=False)
    #: The drive's quality observer (None when run unscored); excluded
    #: from :meth:`summary` for the same non-perturbation reason.
    quality: object | None = field(default=None, repr=False, compare=False)

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def vehicle_dropped(self) -> int:
        return sum(1 for f in self.frames if not f.vehicle_accepted)

    @property
    def pedestrian_dropped(self) -> int:
        return sum(1 for f in self.frames if not f.pedestrian_accepted)

    def drops_per_reconfiguration(self) -> float:
        """Mean vehicle frames dropped per PR event (paper: ~1 at 50 fps)."""
        if not self.reconfigurations:
            return 0.0
        return self.vehicle_dropped / len(self.reconfigurations)

    @property
    def frames_degraded(self) -> int:
        return sum(1 for f in self.frames if f.degraded)

    @property
    def frames_with_faults(self) -> int:
        return sum(1 for f in self.frames if f.faults)

    @property
    def failed_reconfigurations(self) -> int:
        return sum(1 for r in self.reconfigurations if not r.ok)

    def summary(self, include_telemetry: bool = False) -> dict:
        """The drive in one dict.

        ``include_telemetry`` folds in an observability addendum (span and
        metric series counts) when the drive ran with telemetry; it
        defaults to off so the summary of an observed drive is *identical*
        to the summary of an unobserved one — the non-perturbation
        guarantee the telemetry tests pin down.
        """
        summary: dict = {
            "frames": self.n_frames,
            "vehicle_dropped": self.vehicle_dropped,
            "pedestrian_dropped": self.pedestrian_dropped,
            "condition_changes": len(self.condition_changes),
            "model_swaps": len(self.model_swaps),
            "reconfigurations": len(self.reconfigurations),
            "failed_reconfigurations": self.failed_reconfigurations,
            "drops_per_reconfiguration": self.drops_per_reconfiguration(),
            "reconfig_ms": [r.duration_s * 1e3 for r in self.reconfigurations],
            "degradations": len(self.degradations),
            "frames_degraded": self.frames_degraded,
            "frames_with_faults": self.frames_with_faults,
        }
        if include_telemetry and self.telemetry is not None and self.telemetry.enabled:
            summary["telemetry"] = {
                "spans": len(self.telemetry.tracer.spans),
                "metric_series": len(self.telemetry.metrics),
            }
        return summary


# Which SVM model the day-dusk configuration selects per condition.
MODEL_FOR_CONDITION = {
    LightingCondition.DAY: "day",
    LightingCondition.DUSK: "dusk",
}


class AdaptiveDetectionSystem:
    """The full Fig. 6 system with the adaptive switching loop."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        repository: BitstreamRepository | None = None,
        fault_plan: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
        monitor: Monitor | None = None,
        quality=None,
    ):
        self.config = config or SystemConfig()
        self.fault_plan = fault_plan
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.monitor = monitor if monitor is not None else NULL_MONITOR
        self.quality = quality if quality is not None else NULL_QUALITY
        policy = self.config.degradation
        self.soc = ZynqSoC(
            controller_cls=self.config.controller_cls,
            repository=repository or paper_bitstreams(),
            faults=fault_plan,
            pr_timeout_s=policy.pr_timeout_s,
            telemetry=self.telemetry,
        )
        self.controller = LightingController(
            self.config.controller, initial=self.config.initial_condition
        )
        self.report = DriveReport()
        if self.telemetry.enabled:
            self.report.telemetry = self.telemetry
            if fault_plan is not None:
                fault_plan.bind_telemetry(self.telemetry)
        if self.monitor.enabled:
            self.report.monitor = self.monitor
        if self.quality.enabled:
            self.report.quality = self.quality
        self.soc.on_degradation = self._on_soc_degradation
        self._pending_reconfig = False

    @classmethod
    def from_spec(
        cls,
        spec: DriveSpec,
        telemetry: Telemetry | None = None,
        monitor: Monitor | None = None,
        repository: BitstreamRepository | None = None,
        quality=None,
    ) -> "AdaptiveDetectionSystem":
        """Materialise a system from a plain-data :class:`DriveSpec`.

        The spec carries no live objects — the fault plan is rebuilt fresh
        (fully re-armed) and the system config is derived from the spec's
        scalar fields, so the construction is identical in every process
        that receives the same spec dict.
        """
        config = SystemConfig(
            fps=spec.fps,
            initial_condition=LightingCondition(spec.initial_condition),
        )
        return cls(
            config=config,
            repository=repository,
            fault_plan=spec.build_fault_plan(),
            telemetry=telemetry,
            monitor=monitor,
            quality=quality,
        )

    def _on_soc_degradation(self, event: DegradationEvent) -> None:
        self.report.degradations.append(event)
        if self.monitor.enabled:
            self.monitor.on_degradation(event)

    @property
    def condition(self) -> LightingCondition:
        return self.controller.condition

    def _degrade(self, kind: str, detail: str = "") -> None:
        event = DegradationEvent(time_s=self.soc.sim.now, kind=kind, detail=detail)
        self.report.degradations.append(event)
        if self.monitor.enabled:
            self.monitor.on_degradation(event)
        if self.telemetry.enabled:
            self.telemetry.event(
                "degrade", time_s=self.soc.sim.now, action=kind, detail=detail
            )
            self.telemetry.counter("degradations_total", kind=kind).inc()

    def _handle_change(self, change: ConditionChange) -> None:
        """Apply the switching policy for one condition change."""
        self.report.condition_changes.append(change)
        if self.monitor.enabled:
            self.monitor.on_condition_change(change)
        if self.telemetry.enabled:
            self.telemetry.event(
                "condition.change",
                time_s=change.time_s,
                previous=change.previous.value,
                new=change.new.value,
            )
            self.telemetry.counter("condition_changes").inc()
        plan = plan_switch(change.previous, change.new)
        if plan.kind is SwitchKind.MODEL_SWAP:
            model = MODEL_FOR_CONDITION[change.new]
            try:
                self.soc.swap_vehicle_model(model)
            except ReconfigurationError:
                # Partition busy: fall back to the last-good SVM model for
                # now — a stale model still detects, a half-swapped one
                # would not.
                self._degrade(
                    "model-swap-fallback",
                    f"kept {self.soc.vehicle_model!r} (wanted {model!r})",
                )
            else:
                self.report.model_swaps.append((change.time_s, model))
        elif plan.kind is SwitchKind.PARTIAL_RECONFIG:
            if self.soc.vehicle.available:
                self._start_reconfig(plan.target_configuration.value, attempt=1)
            else:
                # A reconfiguration is in flight; the policy will re-trigger
                # on the next change (the controller's dwell prevents storms).
                self._pending_reconfig = True

    # Reconfiguration with retry/backoff --------------------------------------

    def _start_reconfig(self, configuration: str, attempt: int) -> None:
        """One reconfiguration attempt; failures schedule bounded retries."""

        def done(report: ReconfigReport) -> None:
            report.attempt = attempt
            self.report.reconfigurations.append(report)
            if self.monitor.enabled:
                self.monitor.on_reconfig(report)
            if not report.ok:
                self._schedule_retry(configuration, attempt, report.error)

        try:
            self.soc.reconfigure_vehicle(configuration, on_done=done)
        except ReconfigurationError as exc:
            # Synchronous rejection (integrity check): the failed report is
            # already on the PR controller's list; fold it into the drive.
            report = self.soc.pr.reports[-1]
            report.attempt = attempt
            self.report.reconfigurations.append(report)
            if self.monitor.enabled:
                self.monitor.on_reconfig(report)
            self._schedule_retry(configuration, attempt, str(exc))

    def _schedule_retry(self, configuration: str, attempt: int, error: str) -> None:
        policy = self.config.degradation
        if attempt > policy.max_reconfig_retries:
            # Out of retries: stay on the last-good image.  Degraded — the
            # active pipeline no longer matches the lighting — but alive.
            self._degrade(
                "reconfig-abandoned",
                f"{configuration} failed {attempt}x; staying on "
                f"{self.soc.vehicle.configuration}",
            )
            return
        if policy.repair_bitstreams and not self.soc.repository.get(configuration).verify():
            self.soc.repository.restage(configuration)
            self._degrade("bitstream-repair", f"re-staged {configuration} from flash")
        delay = policy.retry_delay_s(attempt)
        self._degrade(
            "reconfig-retry",
            f"{configuration} attempt {attempt + 1} in {delay * 1e3:.0f} ms ({error})",
        )

        def retry() -> None:
            if self.soc.vehicle.configuration == configuration:
                return  # another path already brought the image up
            if not self.soc.vehicle.available:
                # A competing reconfiguration is in flight; let it finish.
                self._degrade("reconfig-retry-skipped", f"{configuration}: partition busy")
                return
            self._start_reconfig(configuration, attempt + 1)

        self.soc.sim.schedule(delay, retry)

    def run_drive(self, trace: LuxTrace, duration_s: float | None = None, sensor: LightSensor | None = None) -> DriveReport:
        """Drive the system over a lux trace; returns the full report."""
        if duration_s is None:
            duration_s = trace.duration
        if duration_s <= 0:
            raise ConfigurationError("drive duration must be positive")
        sensor = sensor or LightSensor(trace, noise_rel=0.03, faults=self.fault_plan)
        frame_period = 1.0 / self.config.fps
        deadline_ms = frame_period * 1e3
        n_frames = int(duration_s * self.config.fps)
        sim = self.soc.sim
        telemetry = self.telemetry
        observed = telemetry.enabled
        monitor = self.monitor
        monitored = monitor.enabled
        if monitored:
            monitor.begin_drive(self, trace, sensor, duration_s, n_frames)
        quality = self.quality
        scored = quality.enabled
        if scored:
            quality.begin_drive(trace, duration_s, n_frames)
        fault_plan = self.fault_plan
        fault_cursor = len(fault_plan.events) if fault_plan is not None else 0
        degrade_cursor = len(self.report.degradations)
        next_sensor_t = 0.0
        lux = sensor.read(0.0)
        drive_span = telemetry.tracer.begin(
            "drive", frames=n_frames, fps=self.config.fps, duration_s=duration_s
        )
        for i in range(n_frames):
            t = i * frame_period
            with telemetry.span("drive.frame", index=i) as frame_span:
                sim.run_until(t)
                # A detector exception on the vehicle accelerator costs that
                # frame: the partition's per-frame watchdog flushes the
                # pipeline and the stream resumes on the next tick.  The
                # static pedestrian partition is never consulted — it cannot
                # be made to skip a frame.
                if fault_plan is not None and fault_plan.fire(
                    FaultSite.PIPELINE_EXCEPTION, "vehicle", t
                ):
                    veh_ok = False
                    self.soc.vehicle.frames_dropped += 1
                    self._degrade("detector-flush", f"vehicle pipeline flushed at frame {i}")
                else:
                    veh_ok = self.soc.submit_frame("vehicle")
                ped_ok = self.soc.submit_frame("pedestrian")
                # Sensor + controller at their own (slower) cadence; the
                # light sensor is asynchronous to the frame clock, so its
                # samples land after the tick's frame has been issued.
                while next_sensor_t <= t:
                    lux = sensor.read(next_sensor_t)
                    change = self.controller.update(next_sensor_t, lux)
                    if change is not None:
                        self._handle_change(change)
                    next_sensor_t += self.config.sensor_period_s
                # Fold every fault/degradation event since the last frame
                # into this frame's audit trail.
                labels: list[str] = []
                if fault_plan is not None:
                    labels += [e.label() for e in fault_plan.events[fault_cursor:]]
                    fault_cursor = len(fault_plan.events)
                labels += [d.label() for d in self.report.degradations[degrade_cursor:]]
                degrade_cursor = len(self.report.degradations)
                expected_config = CONFIG_FOR_CONDITION[self.controller.condition].value
                reconfiguring = not self.soc.vehicle.available
                record = FrameRecord(
                    index=i,
                    time_s=t,
                    condition=self.controller.condition,
                    lux=lux,
                    vehicle_accepted=veh_ok,
                    pedestrian_accepted=ped_ok,
                    vehicle_configuration=self.soc.vehicle.configuration or "",
                    reconfiguring=reconfiguring,
                    faults=tuple(labels),
                    degraded=(
                        self.soc.vehicle.available
                        and self.soc.vehicle.configuration != expected_config
                    ),
                )
                self.report.frames.append(record)
                # Ground-truth scoring is a pure read of the finished record
                # (its own RNG streams, no simulation state touched), so the
                # frame core is identical with or without the quality plane.
                qrecord = quality.observe_frame(record, expected_config) if scored else None
                if observed:
                    record.span_id = frame_span.span_id
                    frame_span.set_attr("condition", record.condition.value)
                    frame_span.set_attr("vehicle_accepted", veh_ok)
                    frame_span.set_attr("pedestrian_accepted", ped_ok)
                    if reconfiguring:
                        frame_span.set_attr("reconfiguring", True)
                    if record.degraded:
                        frame_span.set_attr("degraded", True)
                    if labels:
                        frame_span.set_attr("faults", ";".join(labels))
                    telemetry.counter("drive_frames").inc()
                    if not veh_ok:
                        telemetry.counter("drive_vehicle_dropped").inc()
                    if not ped_ok:
                        telemetry.counter("drive_pedestrian_dropped").inc()
                    if qrecord is not None:
                        condition = qrecord.true_condition
                        telemetry.counter("quality_frames_scored_total").inc()
                        telemetry.counter("quality_tp_total", condition=condition).inc(qrecord.tp)
                        telemetry.counter("quality_fp_total", condition=condition).inc(qrecord.fp)
                        telemetry.counter("quality_fn_total", condition=condition).inc(qrecord.fn)
                        if qrecord.matched_ious:
                            iou_hist = telemetry.histogram(
                                "detection_iou", bounds=DETECTION_IOU_BUCKETS
                            )
                            for iou in qrecord.matched_ious:
                                iou_hist.observe(iou)
            wall_ms: float | None = None
            if observed:
                wall_ms = frame_span.wall_duration_s * 1e3
                telemetry.histogram("frame_wall_ms").observe(wall_ms)
                if wall_ms > deadline_ms:
                    telemetry.counter("frame_deadline_misses_total").inc()
            if monitored:
                monitor.observe_frame(record, expected_config, wall_ms=wall_ms, quality=qrecord)
        sim.run_until(duration_s + 0.1)
        telemetry.tracer.end(
            drive_span,
            vehicle_dropped=self.report.vehicle_dropped,
            pedestrian_dropped=self.report.pedestrian_dropped,
            reconfigurations=len(self.report.reconfigurations),
        )
        if observed:
            telemetry.counter("reconfigurations_total").inc(len(self.report.reconfigurations))
            telemetry.gauge("drops_per_reconfiguration").set(
                self.report.drops_per_reconfiguration()
            )
            self.soc.record_telemetry()
        if monitored:
            monitor.finish_drive()
        if scored:
            quality.finish_drive()
        return self.report


def run_drive_spec(
    spec: DriveSpec,
    telemetry: Telemetry | None = None,
    monitor: Monitor | None = None,
    repository: BitstreamRepository | None = None,
    quality=None,
) -> DriveReport:
    """One drive from a plain-data spec: the cheap, reentrant fleet unit.

    Everything the drive needs — system, fault plan, trace, seeded sensor —
    is materialised here from the spec's scalar fields, so the caller can
    hold nothing but a dict.  Two calls with equal specs produce reports
    whose frame cores are byte-identical (``frames_digest``), with or
    without telemetry/monitoring attached — the non-perturbation contract
    the fleet determinism tests pin.
    """
    system = AdaptiveDetectionSystem.from_spec(
        spec, telemetry=telemetry, monitor=monitor, repository=repository, quality=quality
    )
    trace = spec.build_trace()
    sensor = spec.build_sensor(trace, system.fault_plan)
    return system.run_drive(trace, duration_s=spec.duration_s, sensor=sensor)
