"""The adaptive detection system: sensor -> controller -> PR -> detectors.

This is the paper's end-to-end story.  A frame clock runs at 50 fps; every
tick, both hardware detectors (static pedestrian + reconfigurable vehicle)
receive the frame through the SoC model.  An ambient-light sensor drives the
hysteresis controller; condition changes either swap the SVM model (day <->
dusk, instantaneous) or trigger a partial reconfiguration (dusk <-> dark,
~20 ms through the PR controller), during which the vehicle detector drops
frames while the pedestrian detector "continues its operation ... and
guarantees the real-time and safe behavior of the system".

Optionally, the drive also *renders* frames with the scene generator and
runs the active software pipeline on them, closing the loop functionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adaptive.controller import ConditionChange, ControllerConfig, LightingController
from repro.adaptive.policy import SwitchKind, plan_switch
from repro.adaptive.sensor import LightSensor, LuxTrace
from repro.datasets.lighting import LightingCondition
from repro.errors import ConfigurationError
from repro.zynq.bitstream import BitstreamRepository, paper_bitstreams
from repro.zynq.pr import BasePrController, PaperPrController, ReconfigReport
from repro.zynq.soc import ZynqSoC


@dataclass(frozen=True)
class SystemConfig:
    """End-to-end system parameters.

    Attributes:
        fps: Frame clock (the paper's 50 fps).
        controller: Hysteresis controller settings.
        controller_cls: PR controller driving the vehicle partition.
        sensor_period_s: Ambient sensor sampling period.
        initial_condition: Lighting condition at t=0.
    """

    fps: float = 50.0
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    controller_cls: type[BasePrController] = PaperPrController
    sensor_period_s: float = 0.1
    initial_condition: LightingCondition = LightingCondition.DAY

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ConfigurationError(f"fps must be positive, got {self.fps}")
        if self.sensor_period_s <= 0:
            raise ConfigurationError("sensor period must be positive")


@dataclass
class FrameRecord:
    """Per-frame outcome of a drive."""

    index: int
    time_s: float
    condition: LightingCondition
    lux: float
    vehicle_accepted: bool
    pedestrian_accepted: bool
    vehicle_configuration: str
    reconfiguring: bool


@dataclass
class DriveReport:
    """Everything that happened during one simulated drive."""

    frames: list[FrameRecord] = field(default_factory=list)
    condition_changes: list[ConditionChange] = field(default_factory=list)
    model_swaps: list[tuple[float, str]] = field(default_factory=list)
    reconfigurations: list[ReconfigReport] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def vehicle_dropped(self) -> int:
        return sum(1 for f in self.frames if not f.vehicle_accepted)

    @property
    def pedestrian_dropped(self) -> int:
        return sum(1 for f in self.frames if not f.pedestrian_accepted)

    def drops_per_reconfiguration(self) -> float:
        """Mean vehicle frames dropped per PR event (paper: ~1 at 50 fps)."""
        if not self.reconfigurations:
            return 0.0
        return self.vehicle_dropped / len(self.reconfigurations)

    def summary(self) -> dict:
        return {
            "frames": self.n_frames,
            "vehicle_dropped": self.vehicle_dropped,
            "pedestrian_dropped": self.pedestrian_dropped,
            "condition_changes": len(self.condition_changes),
            "model_swaps": len(self.model_swaps),
            "reconfigurations": len(self.reconfigurations),
            "drops_per_reconfiguration": self.drops_per_reconfiguration(),
            "reconfig_ms": [r.duration_s * 1e3 for r in self.reconfigurations],
        }


# Which SVM model the day-dusk configuration selects per condition.
MODEL_FOR_CONDITION = {
    LightingCondition.DAY: "day",
    LightingCondition.DUSK: "dusk",
}


class AdaptiveDetectionSystem:
    """The full Fig. 6 system with the adaptive switching loop."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        repository: BitstreamRepository | None = None,
    ):
        self.config = config or SystemConfig()
        self.soc = ZynqSoC(
            controller_cls=self.config.controller_cls,
            repository=repository or paper_bitstreams(),
        )
        self.controller = LightingController(
            self.config.controller, initial=self.config.initial_condition
        )
        self.report = DriveReport()
        self._pending_reconfig = False

    @property
    def condition(self) -> LightingCondition:
        return self.controller.condition

    def _handle_change(self, change: ConditionChange) -> None:
        """Apply the switching policy for one condition change."""
        self.report.condition_changes.append(change)
        plan = plan_switch(change.previous, change.new)
        if plan.kind is SwitchKind.MODEL_SWAP:
            model = MODEL_FOR_CONDITION[change.new]
            self.soc.swap_vehicle_model(model)
            self.report.model_swaps.append((change.time_s, model))
        elif plan.kind is SwitchKind.PARTIAL_RECONFIG:
            if self.soc.vehicle.available:
                self.soc.reconfigure_vehicle(
                    plan.target_configuration.value,
                    on_done=self.report.reconfigurations.append,
                )
            else:
                # A reconfiguration is in flight; the policy will re-trigger
                # on the next change (the controller's dwell prevents storms).
                self._pending_reconfig = True

    def run_drive(self, trace: LuxTrace, duration_s: float | None = None, sensor: LightSensor | None = None) -> DriveReport:
        """Drive the system over a lux trace; returns the full report."""
        if duration_s is None:
            duration_s = trace.duration
        if duration_s <= 0:
            raise ConfigurationError("drive duration must be positive")
        sensor = sensor or LightSensor(trace, noise_rel=0.03)
        frame_period = 1.0 / self.config.fps
        n_frames = int(duration_s * self.config.fps)
        sim = self.soc.sim
        next_sensor_t = 0.0
        lux = sensor.read(0.0)
        for i in range(n_frames):
            t = i * frame_period
            sim.run_until(t)
            veh_ok = self.soc.submit_frame("vehicle")
            ped_ok = self.soc.submit_frame("pedestrian")
            # Sensor + controller at their own (slower) cadence; the light
            # sensor is asynchronous to the frame clock, so its samples land
            # after the tick's frame has been issued.
            while next_sensor_t <= t:
                lux = sensor.read(next_sensor_t)
                change = self.controller.update(next_sensor_t, lux)
                if change is not None:
                    self._handle_change(change)
                next_sensor_t += self.config.sensor_period_s
            self.report.frames.append(
                FrameRecord(
                    index=i,
                    time_s=t,
                    condition=self.controller.condition,
                    lux=lux,
                    vehicle_accepted=veh_ok,
                    pedestrian_accepted=ped_ok,
                    vehicle_configuration=self.soc.vehicle.configuration or "",
                    reconfiguring=not self.soc.vehicle.available,
                )
            )
        sim.run_until(duration_s + 0.1)
        return self.report
