"""Plain-data drive specifications: the picklable unit of fleet work.

A :class:`DriveSpec` names everything one simulated drive needs — a lux
trace, a duration, a fault scenario, a frame clock, sensor noise — as
*plain data* (strings, numbers, ``None``).  No live sensor, controller, or
SoC object is required up front: the spec crosses process boundaries as a
dict and the receiving side materialises the simulation from it.  All
randomness in the resulting drive flows from :attr:`DriveSpec.seed`
through :func:`repro.rng.derive_seed`, so two executions of the same spec
— in-process, in another process, on another day — produce byte-identical
frame cores (pinned by the fleet non-perturbation tests).

The module also owns the canonical *frame core* encoding: the
deterministic subset of a :class:`~repro.core.system.FrameRecord` (no
telemetry span ids, no wall-clock values) serialised as sorted-key JSON,
and :func:`frames_digest`, the SHA-256 chain over a drive's frame cores
that the fleet uses to byte-compare drives without shipping every frame.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.adaptive.sensor import (
    LightSensor,
    LuxTrace,
    flicker_trace,
    sunset_trace,
    tunnel_trace,
    urban_evening_trace,
)
from repro.datasets.lighting import LightingCondition
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.rng import derive_seed

if TYPE_CHECKING:
    from repro.core.system import FrameRecord

#: Named lux-trace factories a spec may reference (all take ``duration_s``).
TRACE_FACTORIES = {
    "sunset": sunset_trace,
    "tunnel": tunnel_trace,
    "urban": urban_evening_trace,
    "flicker": flicker_trace,
}

#: Chaos hooks for worker-containment testing (see FLEET.md).  ``crash``
#: hard-exits the executing worker process; ``hang`` goes fully silent —
#: heartbeats stop, then the worker sleeps past any drive timeout;
#: ``slow`` keeps heartbeating while sleeping past the deadline, so the
#: scheduler can tell a wedged worker from a merely overloaded one.  All
#: are plain data, so a chaos drive is as shardable as a real one — the
#: scheduler must contain it, not crash with it.
CHAOS_MODES = ("crash", "hang", "slow")


def _scenario_names() -> tuple[str, ...]:
    from repro.faults.scenarios import SCENARIOS

    return tuple(sorted(SCENARIOS))


@dataclass(frozen=True)
class DriveSpec:
    """One deterministic drive, described entirely by plain picklable data.

    Attributes:
        name: Human-readable drive id (lands in outcomes and rollups).
        trace: Lux-trace name from :data:`TRACE_FACTORIES`.
        duration_s: Drive duration in simulated seconds.
        seed: Root seed; every stream in the drive derives from it via
            :func:`repro.rng.derive_seed` (the sensor uses the
            ``"sensor"`` label).
        fault_scenario: Canned scenario name from
            :data:`repro.faults.scenarios.SCENARIOS`, or ``None``.
        fps: Frame clock (the paper's 50 fps).
        initial_condition: Lighting condition at t=0 (enum value string).
        sensor_noise_rel: Relative sensor noise (the drive-loop default).
        sensor_dropout: Sensor sample dropout probability.
        chaos: ``None`` for a real drive, or one of :data:`CHAOS_MODES`
            for containment testing.
    """

    name: str = "drive"
    trace: str = "sunset"
    duration_s: float = 30.0
    seed: int = 0
    fault_scenario: str | None = None
    fps: float = 50.0
    initial_condition: str = LightingCondition.DAY.value
    sensor_noise_rel: float = 0.03
    sensor_dropout: float = 0.0
    chaos: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("drive spec needs a non-empty name")
        if self.trace not in TRACE_FACTORIES:
            raise ConfigurationError(
                f"unknown trace {self.trace!r} (known: {sorted(TRACE_FACTORIES)})"
            )
        if self.duration_s <= 0:
            raise ConfigurationError("drive duration_s must be positive")
        if self.fps <= 0:
            raise ConfigurationError("drive fps must be positive")
        if self.fault_scenario is not None and self.fault_scenario not in _scenario_names():
            raise ConfigurationError(
                f"unknown fault scenario {self.fault_scenario!r} "
                f"(canned: {list(_scenario_names())})"
            )
        values = [c.value for c in LightingCondition]
        if self.initial_condition not in values:
            raise ConfigurationError(
                f"unknown initial_condition {self.initial_condition!r} (one of {values})"
            )
        if self.sensor_noise_rel < 0:
            raise ConfigurationError("sensor_noise_rel must be >= 0")
        if not 0.0 <= self.sensor_dropout < 1.0:
            raise ConfigurationError("sensor_dropout must be in [0, 1)")
        if self.chaos is not None and self.chaos not in CHAOS_MODES:
            raise ConfigurationError(
                f"unknown chaos mode {self.chaos!r} (one of {CHAOS_MODES})"
            )

    # Derived streams ---------------------------------------------------------

    @property
    def sensor_seed(self) -> int:
        """The sensor's decorrelated stream seed (derived, never stored)."""
        return derive_seed(self.seed, "sensor")

    # Materialisation ---------------------------------------------------------

    def build_trace(self) -> LuxTrace:
        """The lux trace this spec names, at this spec's duration."""
        return TRACE_FACTORIES[self.trace](duration_s=self.duration_s)

    def build_fault_plan(self) -> FaultPlan | None:
        """A fresh (fully re-armed) fault plan, or ``None``."""
        if self.fault_scenario is None:
            return None
        from repro.faults.scenarios import get_scenario

        return get_scenario(self.fault_scenario, duration_s=self.duration_s)

    def build_sensor(self, trace: LuxTrace, fault_plan: FaultPlan | None) -> LightSensor:
        """The drive's light sensor, seeded from this spec's root seed."""
        return LightSensor(
            trace,
            noise_rel=self.sensor_noise_rel,
            dropout_probability=self.sensor_dropout,
            seed=self.sensor_seed,
            faults=fault_plan,
        )

    # Wire format -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (the shape that crosses process boundaries)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DriveSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        fields = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - fields
        if unknown:
            raise ConfigurationError(
                f"unknown DriveSpec fields: {sorted(unknown)} (known: {sorted(fields)})"
            )
        return cls(**dict(data))


def derive_drive_seed(fleet_seed: int, index: int, prefix: str = "drive") -> int:
    """Per-drive root seed: fold the drive's fleet index into the fleet seed."""
    return derive_seed(fleet_seed, f"{prefix}:{index}")


# Canonical frame cores -------------------------------------------------------


def frame_core_dict(record: "FrameRecord") -> dict:
    """The deterministic core of one frame record.

    Everything sim-derived survives; the telemetry-only ``span_id`` (and
    anything wall-clock-valued) is excluded, so the core is identical for
    observed and unobserved drives — the same non-perturbation contract
    the telemetry and monitor layers pin.
    """
    return {
        "index": record.index,
        "time_s": record.time_s,
        "condition": record.condition.value,
        "lux": record.lux,
        "vehicle_accepted": record.vehicle_accepted,
        "pedestrian_accepted": record.pedestrian_accepted,
        "vehicle_configuration": record.vehicle_configuration,
        "reconfiguring": record.reconfiguring,
        "faults": list(record.faults),
        "degraded": record.degraded,
    }


def frame_core_bytes(record: "FrameRecord") -> bytes:
    """Canonical byte encoding of one frame core (sorted-key JSON)."""
    return json.dumps(frame_core_dict(record), sort_keys=True).encode("utf-8")


def frames_digest(frames: Iterable["FrameRecord"]) -> str:
    """SHA-256 over a drive's chained frame cores.

    The fleet's byte-identity comparator: two drives agree on every frame
    core if and only if their digests match, and the digest travels in a
    :class:`~repro.fleet.outcome.DriveOutcome` without shipping frames.
    """
    h = hashlib.sha256()
    for record in frames:
        h.update(frame_core_bytes(record))
        h.update(b"\n")
    return h.hexdigest()
