"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  Subsystem-specific errors
refine it: image-shape problems, model-training problems, and hardware /
simulation problems each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ImageError(ReproError):
    """An image has the wrong shape, dtype, or value range for an operation."""


class GeometryError(ReproError):
    """A rectangle or region is degenerate or out of bounds."""


class FeatureError(ReproError):
    """Feature extraction was configured inconsistently with its input."""


class ModelError(ReproError):
    """A machine-learning model is misconfigured, untrained, or mismatched."""


class NotTrainedError(ModelError):
    """Prediction was requested from a model that has not been trained."""


class DatasetError(ReproError):
    """A synthetic dataset was requested with inconsistent parameters."""


class PipelineError(ReproError):
    """A detection pipeline was assembled or driven incorrectly."""


class HardwareError(ReproError):
    """Base class for errors in the hardware models (hw/ and zynq/)."""


class ResourceError(HardwareError):
    """A design does not fit the FPGA resources or partition it targets."""


class SimulationError(HardwareError):
    """The discrete-event simulation was driven into an invalid state."""


class BusError(HardwareError):
    """An AXI transaction was malformed or addressed an unmapped region."""


class DmaError(HardwareError):
    """A DMA engine was programmed inconsistently or aborted a transfer."""


class BitstreamError(HardwareError):
    """A partial bitstream is malformed, corrupt, or targets the wrong region."""


class ReconfigurationError(HardwareError):
    """Partial reconfiguration was requested in an invalid controller state."""


class ConfigurationError(ReproError):
    """A system-level configuration object is inconsistent."""


class FaultInjectionError(ReproError):
    """A fault plan is malformed or was driven inconsistently."""


class MonitoringError(ReproError):
    """The runtime monitor was configured or driven inconsistently."""


class FleetError(ReproError):
    """The fleet scheduler was configured or driven inconsistently."""


class QualityError(ReproError):
    """The detection-quality plane was configured or driven inconsistently."""
