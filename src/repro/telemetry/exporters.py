"""Exporters: JSONL span dumps, Chrome ``trace_event`` JSON, text reports.

Three formats, one source of truth (a :class:`Telemetry` session):

* **jsonl** — one JSON object per line (``meta`` / ``span`` / ``metric``
  records); lossless, grep-able, and the canonical round-trip format.
* **chrome** — the Catapult/Perfetto ``trace_event`` array.  Simulator
  seconds map to trace microseconds, spans become complete (``"X"``)
  events grouped into one named track per component, span events become
  instant (``"i"``) events, and the metrics snapshot rides along under
  ``otherData`` so a Chrome dump still round-trips through
  :func:`load_dump`.
* **text** — the aggregate report (per-span-name timing table + metrics),
  also what ``python -m repro telemetry`` prints for a dump file.

:func:`load_dump` additionally recognises monitor *incident bundles* (a
directory holding ``manifest.json`` + ``records.jsonl``) and lifts their
embedded spans/metrics into a :class:`TelemetryDump`, so the ``telemetry``
command can summarise an incident with the same report pipeline.  The
bundle files are parsed directly here — importing :mod:`repro.monitor`
from the telemetry layer would invert the dependency.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.telemetry.session import Telemetry
from repro.telemetry.spans import Span

TELEMETRY_FORMATS = ("jsonl", "chrome", "text", "openmetrics")

# Reserved argument keys carrying span structure through the Chrome format.
_SPAN_ID_KEY = "__span_id__"
_PARENT_ID_KEY = "__parent_id__"
_WALL_MS_KEY = "__wall_ms__"


@dataclass
class TelemetryDump:
    """A reloaded telemetry artefact (from any exported format)."""

    meta: dict[str, Any] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)


def _track(span_name: str) -> str:
    """Track (Chrome tid) grouping: the component prefix of the span name."""
    return span_name.split(".", 1)[0] if "." in span_name else span_name


# Writing -------------------------------------------------------------------


def export_jsonl(telemetry: Telemetry, path: str) -> None:
    """One JSON object per line: meta, then spans, then metric series."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "meta", **telemetry.meta}) + "\n")
        for span in telemetry.tracer.spans:
            fh.write(json.dumps({"type": "span", **span.to_dict()}) + "\n")
        for series in telemetry.metrics.snapshot():
            fh.write(json.dumps({"type": "metric", **series}) + "\n")


def export_chrome(telemetry: Telemetry, path: str) -> None:
    """Chrome ``trace_event`` JSON (open in Perfetto / chrome://tracing).

    Simulator time maps to the trace's microsecond timeline, so a 20 ms
    reconfiguration reads as 20 ms in the viewer; wall-clock duration is
    preserved per event under ``args.__wall_ms__``.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}
    for span in telemetry.tracer.spans:
        track = _track(span.name)
        tid = tids.setdefault(track, len(tids) + 1)
        args = {k: _jsonable(v) for k, v in span.attrs.items()}
        args[_SPAN_ID_KEY] = span.span_id
        if span.parent_id is not None:
            args[_PARENT_ID_KEY] = span.parent_id
        args[_WALL_MS_KEY] = round(span.wall_duration_s * 1e3, 6)
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "args": args,
            }
        )
        for ev in span.events:
            events.append(
                {
                    "name": ev.name,
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid,
                    "ts": ev.time_s * 1e6,
                    "args": {
                        **{k: _jsonable(v) for k, v in ev.attrs.items()},
                        _PARENT_ID_KEY: span.span_id,
                    },
                }
            )
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"meta": telemetry.meta, "metrics": telemetry.metrics.snapshot()},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)


def export_text(telemetry: Telemetry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_report(telemetry.tracer.spans, telemetry.metrics.snapshot(), telemetry.meta))
        fh.write("\n")


def export(telemetry: Telemetry, path: str, format: str) -> None:
    """Write one dump in the named format ("jsonl", "chrome", "text")."""
    if format == "jsonl":
        export_jsonl(telemetry, path)
    elif format == "chrome":
        export_chrome(telemetry, path)
    elif format == "text":
        export_text(telemetry, path)
    elif format == "openmetrics":
        from repro.telemetry.openmetrics import export_openmetrics

        export_openmetrics(telemetry, path)
    else:
        raise ConfigurationError(
            f"unknown telemetry format {format!r}; expected one of {TELEMETRY_FORMATS}"
        )


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# Loading -------------------------------------------------------------------


def load_dump(path: str) -> TelemetryDump:
    """Reload an exported dump; the format is sniffed from the content.

    Accepts jsonl and Chrome dumps (by content), and incident-bundle
    directories or their ``manifest.json`` (by shape).
    """
    p = Path(path)
    if p.is_dir() or p.name == "manifest.json":
        return _load_bundle(p)
    with open(path, "r", encoding="utf-8") as fh:
        content = fh.read()
    stripped = content.lstrip()
    if not stripped:
        raise ConfigurationError(f"telemetry dump {path!r} is empty")
    if stripped.startswith("{") and '"traceEvents"' in stripped:
        return _load_chrome(content, path)
    return _load_jsonl(content, path)


def _load_jsonl(content: str, path: str) -> TelemetryDump:
    dump = TelemetryDump()
    for lineno, line in enumerate(content.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path}:{lineno}: not valid JSONL ({exc})") from exc
        kind = record.pop("type", None)
        if kind == "meta":
            dump.meta.update(record)
        elif kind == "span":
            dump.spans.append(Span.from_dict(record))
        elif kind == "metric":
            dump.metrics.append(record)
        else:
            raise ConfigurationError(f"{path}:{lineno}: unknown record type {kind!r}")
    return dump


def _load_bundle(path: Path) -> TelemetryDump:
    """Lift the telemetry carried inside a monitor incident bundle."""
    manifest_path = path / "manifest.json" if path.is_dir() else path
    records_path = manifest_path.parent / "records.jsonl"
    if not manifest_path.is_file() or not records_path.is_file():
        raise ConfigurationError(
            f"{path} is not an incident bundle (needs manifest.json + records.jsonl)"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{manifest_path}: not valid JSON ({exc})") from exc
    dump = TelemetryDump()
    dump.meta = {
        "source": "incident-bundle",
        "incident_id": manifest.get("incident_id", manifest_path.parent.name),
        "schema_version": manifest.get("schema_version"),
        "trigger": (manifest.get("trigger") or {}).get("kind"),
    }
    counts: dict[str, int] = {}
    for lineno, line in enumerate(
        records_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{records_path}:{lineno}: not valid JSONL ({exc})"
            ) from exc
        kind = record.pop("type", None)
        if kind == "span":
            dump.spans.append(Span.from_dict(record))
        elif kind == "metric":
            dump.metrics.append(record)
        elif kind is not None:
            counts[kind] = counts.get(kind, 0) + 1
    for kind, count in sorted(counts.items()):
        dump.meta[f"{kind}_records"] = count
    return dump


def filter_spans(
    spans: list[Span], since_s: float | None = None, until_s: float | None = None
) -> list[Span]:
    """Spans overlapping the simulator-clock window ``[since_s, until_s]``.

    A span overlaps when any part of it lies inside the window; open spans
    count as zero-length at their start.  ``None`` bounds are unbounded.
    """
    if since_s is not None and until_s is not None and until_s < since_s:
        raise ConfigurationError(
            f"empty span window: until ({until_s}) is before since ({since_s})"
        )
    selected: list[Span] = []
    for span in spans:
        end_s = span.end_s if span.end_s is not None else span.start_s
        if since_s is not None and end_s < since_s:
            continue
        if until_s is not None and span.start_s > until_s:
            continue
        selected.append(span)
    return selected


def _load_chrome(content: str, path: str) -> TelemetryDump:
    try:
        document = json.loads(content)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: not valid Chrome trace JSON ({exc})") from exc
    dump = TelemetryDump()
    other = document.get("otherData", {})
    dump.meta = dict(other.get("meta", {}))
    dump.metrics = list(other.get("metrics", []))
    spans_by_id: dict[int, Span] = {}
    instants: list[dict] = []
    for event in document.get("traceEvents", ()):
        phase = event.get("ph")
        if phase == "X":
            args = dict(event.get("args", {}))
            span_id = args.pop(_SPAN_ID_KEY, len(spans_by_id))
            parent_id = args.pop(_PARENT_ID_KEY, None)
            wall_ms = args.pop(_WALL_MS_KEY, 0.0)
            start_s = event.get("ts", 0.0) / 1e6
            span = Span(
                name=event.get("name", "?"),
                span_id=span_id,
                parent_id=parent_id,
                start_s=start_s,
                end_s=start_s + event.get("dur", 0.0) / 1e6,
                wall_start_s=0.0,
                wall_end_s=wall_ms / 1e3,
                attrs=args,
            )
            dump.spans.append(span)
            spans_by_id[span_id] = span
        elif phase == "i":
            instants.append(event)
    for event in instants:
        args = dict(event.get("args", {}))
        parent_id = args.pop(_PARENT_ID_KEY, None)
        time_s = event.get("ts", 0.0) / 1e6
        parent = spans_by_id.get(parent_id)
        if parent is not None:
            parent.add_event(event.get("name", "?"), time_s, **args)
        else:
            orphan = Span(
                name=event.get("name", "?"), span_id=-1, start_s=time_s, end_s=time_s, attrs=args
            )
            dump.spans.append(orphan)
    return dump


# Text report ---------------------------------------------------------------


def render_report(spans: list[Span], metrics: list[dict], meta: dict[str, Any]) -> str:
    """The plain-text aggregate: per-span-name timings + metric values."""
    lines: list[str] = ["telemetry report"]
    if meta:
        lines.append("  meta: " + ", ".join(f"{k}={v}" for k, v in sorted(meta.items())))
    by_name: dict[str, list[Span]] = {}
    n_events = 0
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
        n_events += len(span.events)
    lines.append(f"  spans: {len(spans)} across {len(by_name)} names; {n_events} events")
    if by_name:
        lines.append(
            f"  {'span':<28} {'count':>6} {'sim total ms':>13} {'sim mean ms':>12} "
            f"{'sim max ms':>11} {'wall total ms':>14}"
        )
        for name in sorted(by_name):
            group = by_name[name]
            durations = [s.duration_s * 1e3 for s in group]
            wall = sum(s.wall_duration_s for s in group) * 1e3
            lines.append(
                f"  {name:<28} {len(group):>6} {sum(durations):>13.3f} "
                f"{sum(durations) / len(durations):>12.3f} {max(durations):>11.3f} {wall:>14.3f}"
            )
    if metrics:
        lines.append(f"  metrics: {len(metrics)} series")
        for series in metrics:
            labels = series.get("labels", {})
            label_text = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}" if labels else ""
            )
            if series["kind"] == "histogram":
                count = series.get("count", 0)
                mean = series.get("sum", 0.0) / count if count else 0.0
                lines.append(
                    f"    {series['name']}{label_text}: count={count} mean={mean:.3f} "
                    f"min={series.get('min')} max={series.get('max')}"
                )
            else:
                lines.append(f"    {series['name']}{label_text}: {series.get('value', 0.0):g}")
    return "\n".join(lines)


def summarize_file(path: str) -> str:
    """Load any exported dump and render the text aggregate for it."""
    dump = load_dump(path)
    return render_report(dump.spans, dump.metrics, dump.meta)
