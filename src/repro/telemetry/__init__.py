"""Structured tracing, metrics, and profiling for the reproduction.

See TELEMETRY.md at the repository root.  The subsystem has three parts:

* :mod:`repro.telemetry.spans` — the tracing core: :class:`Span`,
  :class:`SpanEvent`, the recording :class:`Tracer`, and the zero-cost
  :class:`NullTracer` default;
* :mod:`repro.telemetry.metrics` — :class:`Counter` / :class:`Gauge` /
  fixed-bucket :class:`Histogram` series in a :class:`MetricsRegistry`,
  plus the shared timing helpers (:func:`throughput_mbs`,
  :class:`Stopwatch`);
* :mod:`repro.telemetry.exporters` — JSONL, Chrome ``trace_event``
  (Perfetto-loadable), and plain-text report exporters with a
  format-sniffing loader for the ``python -m repro telemetry`` summary;
* :mod:`repro.telemetry.openmetrics` — OpenMetrics text exposition
  (render/parse/export) for metrics snapshots, so a fleet run scrapes
  like any production service.

:class:`Telemetry` bundles one tracer and one registry into the session
object that `ZynqSoC`, `AdaptiveDetectionSystem`, and the pipelines accept;
:data:`NULL_TELEMETRY` is the shared off-by-default instance — with it, all
instrumentation collapses to a single attribute check.
"""

from repro.telemetry.exporters import (
    TELEMETRY_FORMATS,
    TelemetryDump,
    export,
    export_chrome,
    export_jsonl,
    export_text,
    filter_spans,
    load_dump,
    render_report,
    summarize_file,
)
from repro.telemetry.metrics import (
    DEFAULT_MS_BUCKETS,
    DEFAULT_TIME_BUCKETS_S,
    DETECTIONS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Stopwatch,
    merge_snapshots,
    snapshot_values,
    throughput_mbs,
)
from repro.telemetry.openmetrics import (
    export_openmetrics,
    parse_openmetrics,
    render_openmetrics,
    write_exposition,
)
from repro.telemetry.session import NULL_TELEMETRY, NullMetrics, Telemetry
from repro.telemetry.spans import NULL_SPAN, NullTracer, Span, SpanEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_TIME_BUCKETS_S",
    "DETECTIONS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NullMetrics",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Stopwatch",
    "TELEMETRY_FORMATS",
    "Telemetry",
    "TelemetryDump",
    "Tracer",
    "export",
    "export_chrome",
    "export_jsonl",
    "export_openmetrics",
    "export_text",
    "filter_spans",
    "load_dump",
    "merge_snapshots",
    "parse_openmetrics",
    "render_openmetrics",
    "render_report",
    "snapshot_values",
    "summarize_file",
    "throughput_mbs",
    "write_exposition",
]
