"""The telemetry session: one tracer + one metrics registry + metadata.

A :class:`Telemetry` object is what gets threaded through the layers
(``ZynqSoC``, ``AdaptiveDetectionSystem``, the detection pipelines, the
CLI).  The module-level :data:`NULL_TELEMETRY` is the off-by-default
instance: disabled, allocation-free, and shared — instrumented code either
checks ``telemetry.enabled`` or calls straight through, and both cost
nothing when telemetry is off.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.telemetry.metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import NullTracer, Span, Tracer


class _NullSeries:
    """Inert counter/gauge/histogram accepted anywhere a real one is."""

    __slots__ = ()

    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> None:
        return None

    def percentiles(self, qs=()) -> dict:
        return {}


_NULL_SERIES = _NullSeries()


class NullMetrics:
    """No-op metrics registry backing :data:`NULL_TELEMETRY`."""

    def counter(self, name: str, **labels: Any) -> _NullSeries:
        return _NULL_SERIES

    def gauge(self, name: str, **labels: Any) -> _NullSeries:
        return _NULL_SERIES

    def histogram(self, name: str, bounds: Iterable[float] = (), **labels: Any) -> _NullSeries:
        return _NULL_SERIES

    def __len__(self) -> int:
        return 0

    def series(self) -> list:
        return []

    def snapshot(self) -> list[dict]:
        return []

    def value(self, name: str, **labels: Any) -> None:
        return None


class _StageContext:
    """Span + wall-time histogram observation for one pipeline stage."""

    __slots__ = ("_telemetry", "_name", "_attrs", "_ctx", "_span")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict[str, Any]):
        self._telemetry = telemetry
        self._name = name
        self._attrs = attrs
        self._ctx = telemetry.tracer.span(name, **attrs)
        self._span = None

    def __enter__(self) -> Span:
        self._span = self._ctx.__enter__()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._ctx.__exit__(exc_type, exc, tb)
        span = self._span
        if span is not None and getattr(span, "wall_end_s", None) is not None:
            self._telemetry.metrics.histogram("stage_wall_ms", stage=self._name).observe(
                span.wall_duration_s * 1e3
            )


class Telemetry:
    """One observation session: spans, metrics, and run metadata."""

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | NullMetrics | None = None,
        meta: dict[str, Any] | None = None,
    ):
        self.tracer = tracer if tracer is not None else NullTracer()
        if metrics is not None:
            self.metrics = metrics
        else:
            self.metrics = MetricsRegistry() if self.tracer.enabled else NullMetrics()
        self.meta: dict[str, Any] = dict(meta or {})

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    @classmethod
    def recording(
        cls,
        clock: Callable[[], float] | None = None,
        wall_clock: Callable[[], float] | None = None,
        max_spans: int | None = None,
        meta: dict[str, Any] | None = None,
    ) -> "Telemetry":
        """An enabled session (optionally bound to a simulator clock)."""
        return cls(
            tracer=Tracer(clock=clock, wall_clock=wall_clock, max_spans=max_spans),
            metrics=MetricsRegistry(),
            meta=meta,
        )

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer's sim clock at a simulator created after it."""
        if self.enabled:
            self.tracer.clock = clock

    # Shorthand instrumentation surface --------------------------------------

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, time_s: float | None = None, **attrs: Any) -> None:
        self.tracer.event(name, time_s=time_s, **attrs)

    def stage(self, name: str, **attrs: Any):
        """Span a pipeline stage and histogram its wall time (ms)."""
        if not self.enabled:
            from repro.telemetry.spans import NULL_SPAN

            return NULL_SPAN
        return _StageContext(self, name, attrs)

    def counter(self, name: str, **labels: Any) -> Counter | _NullSeries:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge | _NullSeries:
        return self.metrics.gauge(name, **labels)

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_MS_BUCKETS, **labels: Any
    ) -> Histogram | _NullSeries:
        return self.metrics.histogram(name, bounds=bounds, **labels)


#: The off-by-default session every instrumented layer falls back to.
NULL_TELEMETRY = Telemetry(tracer=NullTracer(), metrics=NullMetrics())
