"""OpenMetrics text exposition for ``MetricsRegistry`` snapshots.

The fleet's live plane (and anything else holding a metrics snapshot)
can expose itself the way production services do: one text document per
scrape, one ``# TYPE`` family header per metric, counters suffixed
``_total``, histograms as cumulative ``_bucket{le=...}`` series plus
``_sum``/``_count``, terminated by ``# EOF``.  The input is the plain
snapshot shape (:meth:`MetricsRegistry.snapshot` output or a reloaded
dump's ``metrics`` list) — no live registry required, so a fleet
scheduler can re-render the exposition on every status snapshot and a
node-exporter-style textfile collector can scrape the result.

:func:`parse_openmetrics` is the inverse for the subset this module
emits; :func:`render_openmetrics` ∘ :func:`parse_openmetrics` is the
identity on canonical expositions, which the round-trip tests pin
against a hand-written fixture.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Mapping

from repro.errors import ConfigurationError

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str) -> str:
    """Sanitize a series name into a legal OpenMetrics metric name."""
    cleaned = _NAME_BAD_CHARS.sub("_", str(name))
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _label_text(labels: Mapping[str, Any], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(str(k), str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{metric_name(k)}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _number(value: Any) -> str:
    """Canonical sample-value rendering (shortest float repr)."""
    return repr(float(value))


def _family(series: Mapping) -> tuple[str, str]:
    """The (family, sample-name) pair for one snapshot series.

    Counters expose ``<family>_total`` samples; a series already named
    ``*_total`` keeps its name as the sample and drops the suffix from
    the family, so ``faults_total`` stays ``faults_total`` rather than
    growing into ``faults_total_total``.
    """
    name = metric_name(series["name"])
    if series["kind"] == "counter":
        family = name[: -len("_total")] if name.endswith("_total") else name
        return family, family + "_total"
    return name, name


def render_openmetrics(snapshot: Iterable[Mapping]) -> str:
    """Render a metrics snapshot as an OpenMetrics text exposition."""
    lines: list[str] = []
    seen_families: dict[str, str] = {}
    order: list[tuple[str, str, list[Mapping]]] = []
    grouped: dict[str, list[Mapping]] = {}
    for series in snapshot:
        kind = series["kind"]
        if kind not in ("counter", "gauge", "histogram"):
            raise ConfigurationError(f"unknown metric kind {kind!r} in snapshot")
        family, _ = _family(series)
        previous = seen_families.get(family)
        if previous is None:
            seen_families[family] = kind
            grouped[family] = [series]
            order.append((family, kind, grouped[family]))
        elif previous != kind:
            raise ConfigurationError(
                f"metric family {family!r} appears as both {previous} and {kind}"
            )
        else:
            grouped[family].append(series)
    for family, kind, group in order:
        lines.append(f"# TYPE {family} {kind}")
        for series in group:
            labels = series.get("labels", {})
            if kind == "counter":
                _, sample = _family(series)
                lines.append(
                    f"{sample}{_label_text(labels)} {_number(series.get('value', 0.0))}"
                )
            elif kind == "gauge":
                lines.append(
                    f"{family}{_label_text(labels)} {_number(series.get('value', 0.0))}"
                )
            else:
                bounds = [float(b) for b in series.get("bounds", ())]
                counts = [int(n) for n in series.get("bucket_counts", ())]
                if len(counts) != len(bounds) + 1:
                    raise ConfigurationError(
                        f"histogram {series['name']}: {len(counts)} bucket counts "
                        f"do not fit {len(bounds)} bounds"
                    )
                cumulative = 0
                for bound, n in zip(bounds, counts[:-1]):
                    cumulative += n
                    le = _label_text(labels, extra=(("le", _number(bound)),))
                    lines.append(f"{family}_bucket{le} {cumulative}")
                total = int(series.get("count", cumulative + counts[-1]))
                inf = _label_text(labels, extra=(("le", "+Inf"),))
                lines.append(f"{family}_bucket{inf} {total}")
                lines.append(
                    f"{family}_sum{_label_text(labels)} {_number(series.get('sum', 0.0))}"
                )
                lines.append(f"{family}_count{_label_text(labels)} {total}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_labels(text: str | None) -> dict[str, str]:
    if not text:
        return {}
    return {key: _unescape_label(value) for key, value in _LABEL_PAIR.findall(text)}


class _HistogramAccumulator:
    """Rebuilds one histogram series from its exposition samples."""

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.buckets: list[tuple[float, int]] = []
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def to_series(self) -> dict:
        bounds = [b for b, _ in self.buckets]
        cumulative = [n for _, n in self.buckets] + [self.inf_count]
        counts: list[int] = []
        previous = 0
        for value in cumulative:
            counts.append(value - previous)
            previous = value
        return {
            "kind": "histogram",
            "name": self.name,
            "labels": self.labels,
            "bounds": bounds,
            "bucket_counts": counts,
            "count": self.count,
            "sum": self.sum,
            "min": None,
            "max": None,
        }


def parse_openmetrics(text: str) -> list[dict]:
    """Parse an exposition produced by :func:`render_openmetrics`.

    Returns snapshot-shaped series dicts (counter/gauge values, histogram
    bounds and de-cumulated bucket counts).  Histogram ``min``/``max`` are
    not part of the exposition format and come back as ``None``.
    """
    kinds: dict[str, str] = {}
    series: list[dict] = []
    histograms: dict[tuple, _HistogramAccumulator] = {}
    saw_eof = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                raise ConfigurationError(f"line {lineno}: malformed TYPE line {line!r}")
            kinds[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ConfigurationError(f"line {lineno}: not a sample line: {line!r}")
        sample = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = match.group("value")
        family, suffix = _split_sample(sample, kinds)
        if family is None:
            raise ConfigurationError(
                f"line {lineno}: sample {sample!r} has no preceding TYPE line"
            )
        kind = kinds[family]
        if kind == "counter":
            series.append(
                {"kind": "counter", "name": sample, "labels": labels, "value": float(value)}
            )
        elif kind == "gauge":
            series.append(
                {"kind": "gauge", "name": family, "labels": labels, "value": float(value)}
            )
        else:
            le = labels.pop("le", None)
            key = (family, tuple(sorted(labels.items())))
            accumulator = histograms.get(key)
            if accumulator is None:
                accumulator = _HistogramAccumulator(family, labels)
                histograms[key] = accumulator
                series.append(accumulator)  # type: ignore[arg-type] - resolved below
            if suffix == "bucket":
                if le is None:
                    raise ConfigurationError(f"line {lineno}: bucket sample without le")
                if le == "+Inf":
                    accumulator.inf_count = int(float(value))
                else:
                    accumulator.buckets.append((float(le), int(float(value))))
            elif suffix == "sum":
                accumulator.sum = float(value)
            elif suffix == "count":
                accumulator.count = int(float(value))
            else:
                raise ConfigurationError(
                    f"line {lineno}: unknown histogram sample {sample!r}"
                )
    if not saw_eof:
        raise ConfigurationError("exposition is missing the # EOF terminator")
    return [
        s.to_series() if isinstance(s, _HistogramAccumulator) else s for s in series
    ]


def _split_sample(sample: str, kinds: Mapping[str, str]) -> tuple[str | None, str]:
    """Resolve a sample name to its (family, suffix) under known TYPEs."""
    if sample in kinds:
        return sample, ""
    for suffix in ("bucket", "sum", "count", "total"):
        marker = "_" + suffix
        if sample.endswith(marker) and sample[: -len(marker)] in kinds:
            return sample[: -len(marker)], suffix
    return None, ""


def export_openmetrics(telemetry, path: str) -> None:
    """Write one telemetry session's metrics snapshot as an exposition."""
    write_exposition(telemetry.metrics.snapshot(), path)


def write_exposition(snapshot: Iterable[Mapping], path: str) -> None:
    """Render and write an exposition document (single atomic rewrite)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_openmetrics(snapshot))
